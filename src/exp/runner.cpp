#include "exp/runner.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "exec/task_pool.hpp"
#include "obs/export.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

// Fixed stream ids so that adding a new consumer never perturbs the draws
// of existing ones.
constexpr std::uint64_t kCatalogStream = 0x0001;
constexpr std::uint64_t kTraceStream = 0x0002;
constexpr std::uint64_t kPredictorStream = 0x0003;
constexpr std::uint64_t kFaultStream = 0x0004;

/// Everything a trace can make the simulator execute ends by the latest
/// absolute deadline — the fault horizon only needs to cover that.
Time trace_horizon(const Trace& trace) {
    Time horizon = 0.0;
    for (const Request& request : trace)
        horizon = std::max(horizon, request.absolute_deadline());
    return horizon;
}

Catalog build_catalog(const ExperimentConfig& config, const Platform& platform) {
    Rng rng = Rng(config.seed).derive(kCatalogStream);
    return generate_catalog(platform, config.catalog, rng);
}

} // namespace

ExperimentRunner::ExperimentRunner(ExperimentConfig config, std::size_t jobs)
    : config_(std::move(config)),
      platform_(config_.make_platform()),
      catalog_(build_catalog(config_, platform_)),
      traces_(generate_traces(catalog_, config_.trace, config_.trace_count,
                              Rng(config_.seed).derive(kTraceStream))),
      predictor_root_(Rng(config_.seed).derive(kPredictorStream)),
      fault_root_(Rng(config_.seed).derive(kFaultStream)),
      jobs_(jobs == 0 ? default_jobs() : jobs) {
    // RMWP_OBS_METRICS=1 attaches a metrics-only sink to every trace cell
    // (no event files), so benches export the §10 counters into their
    // BENCH_<id>.json without any code change.  Simulated results are
    // bit-identical either way; only TraceResult::obs_metrics fills in.
    obs_.collect_metrics = env_flag("RMWP_OBS_METRICS");
}

RunOutcome ExperimentRunner::run(const RunSpec& spec) const {
    const std::unique_ptr<ResourceManager> rm = make_rm(spec.rm);
    RunOutcome outcome = run_with(*rm, spec.predictor);
    outcome.spec = spec;
    return outcome;
}

TraceResult ExperimentRunner::run_trace(std::size_t t, ResourceManager& rm,
                                        const PredictorSpec& predictor) const {
    RMWP_EXPECT(t < traces_.size());
    const Trace& trace = traces_[t];

    PredictorSpec resolved = predictor;
    if (resolved.overhead_interarrival_coeff != 0.0 && trace.size() >= 2) {
        resolved.overhead +=
            resolved.overhead_interarrival_coeff * trace.mean_interarrival();
        resolved.overhead_interarrival_coeff = 0.0;
    }
    const std::unique_ptr<Predictor> instance =
        make_predictor(resolved, catalog_, predictor_root_.derive(t));

    SimOptions sim_options;
    sim_options.lookahead = resolved.lookahead;
    // Per-trace fault schedule from its own stream: every RM/predictor
    // pairing faces the identical fault sequence on the same trace, so
    // rescue comparisons are paired just like admission comparisons.
    FaultSchedule faults;
    if (config_.fault.any()) {
        Rng fault_rng = fault_root_.derive(t);
        faults = generate_fault_schedule(platform_, config_.fault, trace_horizon(trace),
                                         fault_rng);
        sim_options.fault_schedule = &faults;
    }
    if (!obs_.enabled())
        return simulate_trace(platform_, catalog_, trace, rm, *instance, sim_options);

    // One sink per trace cell: sinks are single-threaded by contract, and
    // cells never share one, so the parallel fan-out stays lock-free.
    obs::TraceSink sink(obs_.ring_capacity);
    sim_options.sink = &sink;
    TraceResult result = simulate_trace(platform_, catalog_, trace, rm, *instance, sim_options);
    if (!obs_.trace_dir.empty()) export_artefacts(sink, t, rm, resolved);
    return result;
}

void ExperimentRunner::export_artefacts(const obs::TraceSink& sink, std::size_t t,
                                        const ResourceManager& rm,
                                        const PredictorSpec& predictor) const {
    const std::filesystem::path dir(obs_.trace_dir);
    std::filesystem::create_directories(dir);

    obs::ExportOptions options; // host time omitted: files are jobs-invariant
    options.resource_names.reserve(platform_.size());
    for (ResourceId i = 0; i < platform_.size(); ++i)
        options.resource_names.push_back(platform_.resource(i).name());

    const std::string stem =
        obs::sanitize_label(rm.name() + "_" + predictor.label()) + "_t" + std::to_string(t);
    const std::vector<obs::TraceEvent> events = sink.events();
    if (obs_.chrome) {
        std::ofstream out(dir / (stem + ".trace.json"));
        RMWP_ENSURE(out.good());
        obs::write_chrome_trace(out, events, options);
    }
    if (obs_.jsonl) {
        std::ofstream out(dir / (stem + ".events.jsonl"));
        RMWP_ENSURE(out.good());
        obs::write_events_jsonl(out, events, options);
    }
}

RunOutcome ExperimentRunner::run_with(ResourceManager& rm, const PredictorSpec& predictor) const {
    RunOutcome outcome;
    outcome.spec.predictor = predictor;
    outcome.per_trace.resize(traces_.size());

    // Every trace cell is independent (per-trace RNG streams, index-slot
    // results), so fanning out over threads cannot perturb a single draw;
    // the aggregate is rebuilt in trace order below, making serial and
    // parallel runs bit-identical.
    parallel_for(jobs_, traces_.size(),
                 [&](std::size_t t) { outcome.per_trace[t] = run_trace(t, rm, predictor); });

    outcome.aggregate = AggregateResult::over(outcome.per_trace);
    return outcome;
}

} // namespace rmwp
