// Experiment configuration: the platform/catalog/trace setup of Sec 5.1
// plus which RM and predictor to run.  The defaults reproduce the paper's
// configuration; bench binaries scale trace counts to the host budget via
// environment variables (see runner.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/manager.hpp"
#include "fault/fault.hpp"
#include "platform/platform.hpp"
#include "predict/predictor.hpp"
#include "workload/catalog.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {

/// Which resource manager implementation to run.
enum class RmKind {
    heuristic, ///< Algorithm 1 (Sec 4.3)
    exact,     ///< branch-and-bound exact optimiser (the MILP's role, Sec 4.2)
    milp,      ///< the literal big-M MILP encoding on the in-repo solver
    baseline,  ///< greedy non-replanning admission (ours, for ablation)
};

[[nodiscard]] const char* to_string(RmKind kind) noexcept;
[[nodiscard]] std::unique_ptr<ResourceManager> make_rm(RmKind kind);

struct ExperimentConfig {
    std::uint64_t seed = 42;
    std::size_t cpu_count = 5;
    std::size_t gpu_count = 1;
    CatalogParams catalog;
    TraceGenParams trace;
    std::size_t trace_count = 500;
    /// Fault injection (fault-tolerance extension).  The default is
    /// fault-free, which leaves every existing experiment bit-identical.
    /// When any rate is set, the runner generates one deterministic fault
    /// schedule per trace (its own seed stream) covering the trace horizon.
    FaultParams fault;

    [[nodiscard]] Platform make_platform() const;

    /// Paper configuration for one deadline group.
    [[nodiscard]] static ExperimentConfig paper(DeadlineGroup group, std::uint64_t seed = 42);
};

/// One (RM, predictor) pairing to evaluate.
struct RunSpec {
    RmKind rm = RmKind::heuristic;
    PredictorSpec predictor;

    [[nodiscard]] std::string label() const;
};

} // namespace rmwp
