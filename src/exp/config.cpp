#include "exp/config.hpp"

#include "core/baseline_rm.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/milp_rm.hpp"
#include "util/check.hpp"

namespace rmwp {

const char* to_string(RmKind kind) noexcept {
    switch (kind) {
    case RmKind::heuristic: return "heuristic";
    case RmKind::exact: return "exact";
    case RmKind::milp: return "milp";
    case RmKind::baseline: return "baseline";
    }
    return "unknown";
}

std::unique_ptr<ResourceManager> make_rm(RmKind kind) {
    switch (kind) {
    case RmKind::heuristic: return std::make_unique<HeuristicRM>();
    case RmKind::exact: return std::make_unique<ExactRM>();
    case RmKind::milp: return std::make_unique<MilpRM>();
    case RmKind::baseline: return std::make_unique<BaselineRM>();
    }
    RMWP_ENSURE(false);
}

Platform ExperimentConfig::make_platform() const {
    PlatformBuilder builder;
    for (std::size_t i = 1; i <= cpu_count; ++i) builder.add_cpu("CPU" + std::to_string(i));
    for (std::size_t i = 1; i <= gpu_count; ++i)
        builder.add_gpu(gpu_count == 1 ? "GPU" : "GPU" + std::to_string(i));
    return builder.build();
}

ExperimentConfig ExperimentConfig::paper(DeadlineGroup group, std::uint64_t seed) {
    ExperimentConfig config;
    config.seed = seed;
    config.trace.group = group;
    return config;
}

std::string RunSpec::label() const {
    return std::string(to_string(rm)) + "/" + predictor.label();
}

} // namespace rmwp
