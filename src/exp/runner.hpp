// The experiment runner: generates the catalog and trace set once per
// configuration (identical traces feed every RM/predictor pairing, enabling
// the paired per-trace comparisons of Sec 5.2), then simulates each RunSpec
// and aggregates the results.
//
// Scaling: the paper runs 500 traces x 500 requests per group.  Bench
// binaries honour RMWP_TRACES and RMWP_REQUESTS environment variables so the
// full study can be reproduced when time allows; the defaults keep every
// bench within a laptop-minutes budget while preserving the paper's shapes.
//
// Parallelism: traces are simulated across `jobs` threads (RMWP_JOBS or the
// hardware concurrency by default).  Every per-trace random stream is
// derived from a fixed (seed, stream, trace-index) tuple and results land in
// index-addressed slots, so the per-trace results and the aggregate are
// bit-identical for every jobs value (only the host wall-clock fields of
// TraceResult differ; tests/test_parallel.cpp pins this).  The RM passed to
// run_with is shared across threads: its decide()/rescue() must be
// re-entrant, which holds for every RM in this repository (they are
// stateless beyond construction-time options).
#pragma once

#include <vector>

#include "exp/config.hpp"
#include "metrics/aggregate.hpp"
#include "sim/simulator.hpp"
#include "util/env.hpp"

namespace rmwp {

/// All per-trace results plus their aggregate for one RunSpec.
struct RunOutcome {
    RunSpec spec;
    std::vector<TraceResult> per_trace;
    AggregateResult aggregate;

    [[nodiscard]] double mean_rejection_percent() const {
        return aggregate.rejection_percent.mean();
    }
    [[nodiscard]] double mean_normalized_energy() const {
        return aggregate.normalized_energy.mean();
    }
};

class ExperimentRunner {
public:
    /// `jobs` = 0 selects the session default (RMWP_JOBS or hardware
    /// concurrency); 1 forces serial execution.
    explicit ExperimentRunner(ExperimentConfig config, std::size_t jobs = 0);

    /// Simulate one RM/predictor pairing over every trace.
    [[nodiscard]] RunOutcome run(const RunSpec& spec) const;

    /// Same, but with a caller-provided resource manager (e.g. a HeuristicRM
    /// with ablation options).  The RM must be stateless across traces and
    /// re-entrant (decide/rescue may run concurrently when jobs > 1).
    [[nodiscard]] RunOutcome run_with(ResourceManager& rm, const PredictorSpec& predictor) const;

    /// Simulate a single trace cell — the unit the parallel engine fans
    /// out.  Deterministic in (config, t, predictor) alone.
    [[nodiscard]] TraceResult run_trace(std::size_t t, ResourceManager& rm,
                                        const PredictorSpec& predictor) const;

    [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }
    [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
    [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
    [[nodiscard]] const std::vector<Trace>& traces() const noexcept { return traces_; }
    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

private:
    ExperimentConfig config_;
    Platform platform_;
    Catalog catalog_;
    std::vector<Trace> traces_;
    Rng predictor_root_;
    Rng fault_root_;
    std::size_t jobs_ = 1;
};

} // namespace rmwp
