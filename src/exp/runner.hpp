// The experiment runner: generates the catalog and trace set once per
// configuration (identical traces feed every RM/predictor pairing, enabling
// the paired per-trace comparisons of Sec 5.2), then simulates each RunSpec
// and aggregates the results.
//
// Scaling: the paper runs 500 traces x 500 requests per group.  Bench
// binaries honour RMWP_TRACES and RMWP_REQUESTS environment variables so the
// full study can be reproduced when time allows; the defaults keep every
// bench within a laptop-minutes budget while preserving the paper's shapes.
#pragma once

#include <vector>

#include "exp/config.hpp"
#include "metrics/aggregate.hpp"
#include "sim/simulator.hpp"

namespace rmwp {

/// All per-trace results plus their aggregate for one RunSpec.
struct RunOutcome {
    RunSpec spec;
    std::vector<TraceResult> per_trace;
    AggregateResult aggregate;

    [[nodiscard]] double mean_rejection_percent() const {
        return aggregate.rejection_percent.mean();
    }
    [[nodiscard]] double mean_normalized_energy() const {
        return aggregate.normalized_energy.mean();
    }
};

class ExperimentRunner {
public:
    explicit ExperimentRunner(ExperimentConfig config);

    /// Simulate one RM/predictor pairing over every trace.
    [[nodiscard]] RunOutcome run(const RunSpec& spec) const;

    /// Same, but with a caller-provided resource manager (e.g. a HeuristicRM
    /// with ablation options).  The RM must be stateless across traces.
    [[nodiscard]] RunOutcome run_with(ResourceManager& rm, const PredictorSpec& predictor) const;

    [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }
    [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
    [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
    [[nodiscard]] const std::vector<Trace>& traces() const noexcept { return traces_; }

private:
    ExperimentConfig config_;
    Platform platform_;
    Catalog catalog_;
    std::vector<Trace> traces_;
    Rng predictor_root_;
    Rng fault_root_;
};

/// Read a size scaling knob from the environment (RMWP_TRACES,
/// RMWP_REQUESTS, ...), falling back to `fallback` when the variable is
/// unset or empty.  A set-but-malformed value (non-numeric, trailing
/// garbage, negative, or zero) throws std::runtime_error: a typo'd scaling
/// knob must not silently run the default-sized experiment.
[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback);

} // namespace rmwp
