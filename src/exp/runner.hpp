// The experiment runner: generates the catalog and trace set once per
// configuration (identical traces feed every RM/predictor pairing, enabling
// the paired per-trace comparisons of Sec 5.2), then simulates each RunSpec
// and aggregates the results.
//
// Scaling: the paper runs 500 traces x 500 requests per group.  Bench
// binaries honour RMWP_TRACES and RMWP_REQUESTS environment variables so the
// full study can be reproduced when time allows; the defaults keep every
// bench within a laptop-minutes budget while preserving the paper's shapes.
//
// Parallelism: traces are simulated across `jobs` threads (RMWP_JOBS or the
// hardware concurrency by default).  Every per-trace random stream is
// derived from a fixed (seed, stream, trace-index) tuple and results land in
// index-addressed slots, so the per-trace results and the aggregate are
// bit-identical for every jobs value (only the host wall-clock fields of
// TraceResult differ; tests/test_parallel.cpp pins this).  The RM passed to
// run_with is shared across threads: its decide()/rescue() must be
// re-entrant, which holds for every RM in this repository (they are
// stateless beyond construction-time options).
#pragma once

#include <string>
#include <vector>

#include "exp/config.hpp"
#include "metrics/aggregate.hpp"
#include "obs/trace_sink.hpp"
#include "sim/simulator.hpp"
#include "util/env.hpp"

namespace rmwp {

/// Per-trace observability artefacts (DESIGN.md §10).  When enabled, every
/// trace cell runs with its own TraceSink (one sink per run, so the
/// parallel engine needs no locking) and optionally exports the event
/// stream to `trace_dir`.  Exports omit host timestamps by default, so the
/// artefact files are byte-identical for every jobs value.
struct ObsOptions {
    /// Directory receiving per-trace files; empty = no files written.
    /// Created (recursively) on first use.
    std::string trace_dir;
    bool chrome = true; ///< write <stem>.trace.json (Chrome trace_event)
    bool jsonl = false; ///< write <stem>.events.jsonl (flat, re-parseable)
    std::size_t ring_capacity = obs::TraceSink::kDefaultCapacity;
    /// Attach a sink (filling TraceResult::obs_metrics) even with no
    /// trace_dir — metrics without event files.
    bool collect_metrics = false;

    [[nodiscard]] bool enabled() const noexcept {
        return collect_metrics || !trace_dir.empty();
    }
};

/// All per-trace results plus their aggregate for one RunSpec.
struct RunOutcome {
    RunSpec spec;
    std::vector<TraceResult> per_trace;
    AggregateResult aggregate;

    [[nodiscard]] double mean_rejection_percent() const {
        return aggregate.rejection_percent.mean();
    }
    [[nodiscard]] double mean_normalized_energy() const {
        return aggregate.normalized_energy.mean();
    }
};

class ExperimentRunner {
public:
    /// `jobs` = 0 selects the session default (RMWP_JOBS or hardware
    /// concurrency); 1 forces serial execution.
    explicit ExperimentRunner(ExperimentConfig config, std::size_t jobs = 0);

    /// Simulate one RM/predictor pairing over every trace.
    [[nodiscard]] RunOutcome run(const RunSpec& spec) const;

    /// Same, but with a caller-provided resource manager (e.g. a HeuristicRM
    /// with ablation options).  The RM must be stateless across traces and
    /// re-entrant (decide/rescue may run concurrently when jobs > 1).
    [[nodiscard]] RunOutcome run_with(ResourceManager& rm, const PredictorSpec& predictor) const;

    /// Simulate a single trace cell — the unit the parallel engine fans
    /// out.  Deterministic in (config, t, predictor) alone.
    [[nodiscard]] TraceResult run_trace(std::size_t t, ResourceManager& rm,
                                        const PredictorSpec& predictor) const;

    /// Enable per-trace observability for subsequent run/run_with calls.
    void set_obs(ObsOptions obs) { obs_ = std::move(obs); }
    [[nodiscard]] const ObsOptions& obs() const noexcept { return obs_; }

    [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }
    [[nodiscard]] const Platform& platform() const noexcept { return platform_; }
    [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
    [[nodiscard]] const std::vector<Trace>& traces() const noexcept { return traces_; }
    [[nodiscard]] std::size_t jobs() const noexcept { return jobs_; }

private:
    /// Write the per-trace Chrome/JSONL files for one finished cell.
    void export_artefacts(const obs::TraceSink& sink, std::size_t t, const ResourceManager& rm,
                          const PredictorSpec& predictor) const;

    ExperimentConfig config_;
    Platform platform_;
    Catalog catalog_;
    std::vector<Trace> traces_;
    Rng predictor_root_;
    Rng fault_root_;
    std::size_t jobs_ = 1;
    ObsOptions obs_;
};

} // namespace rmwp
