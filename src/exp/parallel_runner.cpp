#include "exp/parallel_runner.hpp"

#include "exec/task_pool.hpp"

namespace rmwp {

ParallelRunner::ParallelRunner(ExperimentConfig config, std::size_t jobs)
    : runner_(std::move(config), jobs) {}

std::vector<RunOutcome> ParallelRunner::run_all(std::span<const RunSpec> specs) const {
    const std::size_t traces = runner_.traces().size();
    std::vector<RunOutcome> outcomes(specs.size());
    for (std::size_t c = 0; c < specs.size(); ++c) {
        outcomes[c].spec = specs[c];
        outcomes[c].per_trace.resize(traces);
    }

    // One flat (cell, trace) grid on one pool: cell-major so the merge
    // order below is the natural spec order.  Every grid point is
    // self-contained — own RM instance, own predictor, per-trace RNG
    // streams — so execution order cannot influence any result.
    parallel_for(runner_.jobs(), specs.size() * traces, [&](std::size_t flat) {
        const std::size_t c = flat / traces;
        const std::size_t t = flat % traces;
        const std::unique_ptr<ResourceManager> rm = make_rm(specs[c].rm);
        outcomes[c].per_trace[t] = runner_.run_trace(t, *rm, specs[c].predictor);
    });

    for (RunOutcome& outcome : outcomes)
        outcome.aggregate = AggregateResult::over(outcome.per_trace);
    return outcomes;
}

} // namespace rmwp
