// ParallelRunner — the deterministic fan-out layer over ExperimentRunner.
//
// A whole study is a grid of (RM, predictor) cells x traces.  Running cells
// one after another (each internally parallel over traces) leaves threads
// idle at every cell boundary; ParallelRunner instead flattens the full
// (cell, trace) grid into one index space and feeds it to a single pool, so
// the tail of one cell overlaps the head of the next.  Each grid point
// constructs its own RM (make_rm — all RMs are cheap, stateless objects),
// derives its randomness from the per-trace streams, and writes into an
// index-addressed slot; outcomes are merged in (spec order, trace order),
// which makes the result bit-identical to running every cell serially.
#pragma once

#include <span>

#include "exp/runner.hpp"

namespace rmwp {

class ParallelRunner {
public:
    /// `jobs` = 0 selects the session default (RMWP_JOBS or hardware
    /// concurrency).
    explicit ParallelRunner(ExperimentConfig config, std::size_t jobs = 0);

    /// Evaluate every spec over every trace on one shared pool.  The
    /// returned outcomes match `specs` in order; each per_trace vector is in
    /// trace order, bit-identical to ExperimentRunner::run(spec) at any
    /// jobs value.
    [[nodiscard]] std::vector<RunOutcome> run_all(std::span<const RunSpec> specs) const;

    /// Forwarded to the underlying ExperimentRunner: per-trace sinks and
    /// artefact files for every grid point of subsequent run_all calls.
    void set_obs(ObsOptions obs) { runner_.set_obs(std::move(obs)); }

    [[nodiscard]] const ExperimentRunner& runner() const noexcept { return runner_; }
    [[nodiscard]] std::size_t jobs() const noexcept { return runner_.jobs(); }

private:
    ExperimentRunner runner_;
};

} // namespace rmwp
