#include "workload/catalog.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rmwp {

void CatalogParams::validate() const {
    RMWP_EXPECT(type_count > 0);
    RMWP_EXPECT(cpu_wcet_mean > 0.0 && cpu_wcet_stddev >= 0.0);
    RMWP_EXPECT(cpu_energy_mean > 0.0 && cpu_energy_stddev >= 0.0);
    RMWP_EXPECT(gpu_divisor_min >= 1.0 && gpu_divisor_min <= gpu_divisor_max);
    RMWP_EXPECT(migration_fraction_min >= 0.0);
    RMWP_EXPECT(migration_fraction_min <= migration_fraction_max);
    RMWP_EXPECT(gpu_incompatible_fraction >= 0.0 && gpu_incompatible_fraction <= 1.0);
    RMWP_EXPECT(static_energy_fraction >= 0.0 && static_energy_fraction <= 1.0);
}

Catalog::Catalog(std::vector<TaskType> types) : types_(std::move(types)) {
    RMWP_EXPECT(!types_.empty());
    const std::size_t n = types_.front().resource_count();
    for (std::size_t i = 0; i < types_.size(); ++i) {
        RMWP_EXPECT(types_[i].id() == i);
        RMWP_EXPECT(types_[i].resource_count() == n);
    }
}

const TaskType& Catalog::type(TaskTypeId id) const {
    RMWP_EXPECT(id < types_.size());
    return types_[id];
}

Catalog generate_catalog(const Platform& platform, const CatalogParams& params, Rng& rng) {
    params.validate();
    const std::size_t n = platform.size();
    RMWP_EXPECT(platform.cpu_count() > 0);

    std::vector<TaskType> types;
    types.reserve(params.type_count);

    for (TaskTypeId id = 0; id < params.type_count; ++id) {
        std::vector<double> wcet(n, kNotExecutable);
        std::vector<double> energy(n, kNotExecutable);

        // Per-CPU draws at nominal frequency; the truncation floor is ~4.4
        // sigma below the mean with the default parameters, so it virtually
        // never triggers but keeps pathological parameterisations
        // well-defined.  DVFS operating points of a core derive from the
        // core's nominal draw: time scales with 1/f and energy with f^2 (the
        // usual voltage-tracks-frequency CMOS model).
        double cpu_wcet_sum = 0.0;
        double cpu_energy_sum = 0.0;
        std::size_t cpu_count = 0;
        for (const Resource& r : platform) {
            if (r.kind() != ResourceKind::cpu || r.physical() != r.id()) continue;
            wcet[r.id()] = rng.gaussian_above(params.cpu_wcet_mean, params.cpu_wcet_stddev,
                                              params.cpu_wcet_mean * 0.01);
            energy[r.id()] = rng.gaussian_above(params.cpu_energy_mean, params.cpu_energy_stddev,
                                                params.cpu_energy_mean * 0.01);
            cpu_wcet_sum += wcet[r.id()];
            cpu_energy_sum += energy[r.id()];
            ++cpu_count;
        }
        const double s_frac = params.static_energy_fraction;
        for (const Resource& r : platform) {
            if (r.kind() != ResourceKind::cpu || r.physical() == r.id()) continue;
            const double f = r.frequency();
            wcet[r.id()] = wcet[r.physical()] / f;
            // Dynamic share scales with f^2; the static (leakage) share
            // grows with the stretched runtime.
            energy[r.id()] = energy[r.physical()] * ((1.0 - s_frac) * f * f + s_frac / f);
        }
        const double cpu_wcet_avg = cpu_wcet_sum / static_cast<double>(cpu_count);
        const double cpu_energy_avg = cpu_energy_sum / static_cast<double>(cpu_count);

        // One divisor per type, shared by time and energy ("divided by a
        // random number in range 2-10", Sec 5.1).
        const bool gpu_capable = !rng.bernoulli(params.gpu_incompatible_fraction);
        const double divisor = rng.uniform(params.gpu_divisor_min, params.gpu_divisor_max);
        for (const Resource& r : platform) {
            if (r.kind() == ResourceKind::cpu) continue;
            if (!gpu_capable) continue;
            wcet[r.id()] = cpu_wcet_avg / divisor;
            energy[r.id()] = cpu_energy_avg / divisor;
        }

        // Resource-averaged magnitudes over executable *physical* resources
        // (an operating point is not an extra resource).
        double mean_wcet = 0.0;
        double mean_energy = 0.0;
        std::size_t executable = 0;
        for (const Resource& r : platform) {
            const std::size_t i = r.id();
            if (!std::isfinite(wcet[i]) || r.physical() != i) continue;
            mean_wcet += wcet[i];
            mean_energy += energy[i];
            ++executable;
        }
        mean_wcet /= static_cast<double>(executable);
        mean_energy /= static_cast<double>(executable);

        const double time_frac =
            rng.uniform(params.migration_fraction_min, params.migration_fraction_max);
        const double energy_frac =
            rng.uniform(params.migration_fraction_min, params.migration_fraction_max);

        std::vector<std::vector<double>> cm(n, std::vector<double>(n, 0.0));
        std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.0));
        for (std::size_t from = 0; from < n; ++from) {
            for (std::size_t to = 0; to < n; ++to) {
                if (from == to) continue;
                // Switching the operating point of one core moves no state.
                if (platform.resource(from).physical() == platform.resource(to).physical())
                    continue;
                cm[from][to] = time_frac * mean_wcet;
                em[from][to] = energy_frac * mean_energy;
            }
        }

        types.emplace_back(id, std::move(wcet), std::move(energy), std::move(cm), std::move(em));
    }

    return Catalog(std::move(types));
}

Catalog generate_partitioned_catalog(const Platform& platform, const CatalogParams& params,
                                     std::size_t islands, Rng& rng) {
    params.validate();
    RMWP_EXPECT(islands >= 1);
    const std::size_t n = platform.size();

    // Island of each resource: physical cores round-robin in id order,
    // operating points inherit their core's island.
    std::vector<std::size_t> island_of(n, 0);
    std::vector<std::size_t> island_cpus(islands, 0);
    std::size_t physical_index = 0;
    for (const Resource& r : platform) {
        if (r.physical() != r.id()) continue;
        island_of[r.id()] = physical_index++ % islands;
        if (r.kind() == ResourceKind::cpu) ++island_cpus[island_of[r.id()]];
    }
    for (const Resource& r : platform)
        if (r.physical() != r.id()) island_of[r.id()] = island_of[r.physical()];
    for (std::size_t g = 0; g < islands; ++g) RMWP_EXPECT(island_cpus[g] > 0);

    std::vector<TaskType> types;
    types.reserve(params.type_count);

    for (TaskTypeId id = 0; id < params.type_count; ++id) {
        const std::size_t island = id % islands;
        std::vector<double> wcet(n, kNotExecutable);
        std::vector<double> energy(n, kNotExecutable);

        // Same per-CPU draws and DVFS derivation as generate_catalog, over
        // the island's CPUs only.
        double cpu_wcet_sum = 0.0;
        double cpu_energy_sum = 0.0;
        std::size_t cpu_count = 0;
        for (const Resource& r : platform) {
            if (island_of[r.id()] != island) continue;
            if (r.kind() != ResourceKind::cpu || r.physical() != r.id()) continue;
            wcet[r.id()] = rng.gaussian_above(params.cpu_wcet_mean, params.cpu_wcet_stddev,
                                              params.cpu_wcet_mean * 0.01);
            energy[r.id()] = rng.gaussian_above(params.cpu_energy_mean, params.cpu_energy_stddev,
                                                params.cpu_energy_mean * 0.01);
            cpu_wcet_sum += wcet[r.id()];
            cpu_energy_sum += energy[r.id()];
            ++cpu_count;
        }
        const double s_frac = params.static_energy_fraction;
        for (const Resource& r : platform) {
            if (island_of[r.id()] != island) continue;
            if (r.kind() != ResourceKind::cpu || r.physical() == r.id()) continue;
            const double f = r.frequency();
            wcet[r.id()] = wcet[r.physical()] / f;
            energy[r.id()] = energy[r.physical()] * ((1.0 - s_frac) * f * f + s_frac / f);
        }
        const double cpu_wcet_avg = cpu_wcet_sum / static_cast<double>(cpu_count);
        const double cpu_energy_avg = cpu_energy_sum / static_cast<double>(cpu_count);

        const bool gpu_capable = !rng.bernoulli(params.gpu_incompatible_fraction);
        const double divisor = rng.uniform(params.gpu_divisor_min, params.gpu_divisor_max);
        for (const Resource& r : platform) {
            if (island_of[r.id()] != island) continue;
            if (r.kind() == ResourceKind::cpu || !gpu_capable) continue;
            wcet[r.id()] = cpu_wcet_avg / divisor;
            energy[r.id()] = cpu_energy_avg / divisor;
        }

        double mean_wcet = 0.0;
        double mean_energy = 0.0;
        std::size_t executable = 0;
        for (const Resource& r : platform) {
            const std::size_t i = r.id();
            if (!std::isfinite(wcet[i]) || r.physical() != i) continue;
            mean_wcet += wcet[i];
            mean_energy += energy[i];
            ++executable;
        }
        RMWP_ENSURE(executable > 0);
        mean_wcet /= static_cast<double>(executable);
        mean_energy /= static_cast<double>(executable);

        const double time_frac =
            rng.uniform(params.migration_fraction_min, params.migration_fraction_max);
        const double energy_frac =
            rng.uniform(params.migration_fraction_min, params.migration_fraction_max);

        // Migration only ever happens within the island; cross-island cells
        // stay 0 and are never consulted (the target is not executable).
        std::vector<std::vector<double>> cm(n, std::vector<double>(n, 0.0));
        std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.0));
        for (std::size_t from = 0; from < n; ++from) {
            for (std::size_t to = 0; to < n; ++to) {
                if (from == to) continue;
                if (!std::isfinite(wcet[from]) || !std::isfinite(wcet[to])) continue;
                if (platform.resource(from).physical() == platform.resource(to).physical())
                    continue;
                cm[from][to] = time_frac * mean_wcet;
                em[from][to] = energy_frac * mean_energy;
            }
        }

        types.emplace_back(id, std::move(wcet), std::move(energy), std::move(cm), std::move(em));
    }

    return Catalog(std::move(types));
}

} // namespace rmwp
