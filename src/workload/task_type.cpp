#include "workload/task_type.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rmwp {

TaskType::TaskType(TaskTypeId id, std::vector<double> wcet, std::vector<double> energy,
                   std::vector<std::vector<double>> migration_time,
                   std::vector<std::vector<double>> migration_energy)
    : id_(id),
      wcet_(std::move(wcet)),
      energy_(std::move(energy)),
      migration_time_(std::move(migration_time)),
      migration_energy_(std::move(migration_energy)) {
    const std::size_t n = wcet_.size();
    RMWP_EXPECT(n > 0);
    RMWP_EXPECT(energy_.size() == n);
    RMWP_EXPECT(migration_time_.size() == n);
    RMWP_EXPECT(migration_energy_.size() == n);
    for (std::size_t from = 0; from < n; ++from) {
        RMWP_EXPECT(migration_time_[from].size() == n);
        RMWP_EXPECT(migration_energy_[from].size() == n);
        RMWP_EXPECT(migration_time_[from][from] == 0.0);
        RMWP_EXPECT(migration_energy_[from][from] == 0.0);
    }

    min_wcet_ = kNotExecutable;
    min_energy_ = kNotExecutable;
    for (std::size_t i = 0; i < n; ++i) {
        const bool wcet_ok = std::isfinite(wcet_[i]);
        const bool energy_ok = std::isfinite(energy_[i]);
        // Executability must be consistent between the two tables.
        RMWP_EXPECT(wcet_ok == energy_ok);
        if (!wcet_ok) continue;
        RMWP_EXPECT(wcet_[i] > 0.0);
        RMWP_EXPECT(energy_[i] > 0.0);
        executable_.push_back(i);
        mean_wcet_ += wcet_[i];
        mean_energy_ += energy_[i];
        min_wcet_ = std::min(min_wcet_, wcet_[i]);
        min_energy_ = std::min(min_energy_, energy_[i]);
    }
    RMWP_EXPECT(!executable_.empty()); // footnote 1: at least one resource
    mean_wcet_ /= static_cast<double>(executable_.size());
    mean_energy_ /= static_cast<double>(executable_.size());
}

double TaskType::wcet(ResourceId i) const {
    RMWP_EXPECT(i < wcet_.size());
    return wcet_[i];
}

double TaskType::energy(ResourceId i) const {
    RMWP_EXPECT(i < energy_.size());
    return energy_[i];
}

bool TaskType::executable_on(ResourceId i) const {
    RMWP_EXPECT(i < wcet_.size());
    return std::isfinite(wcet_[i]);
}

double TaskType::migration_time(ResourceId from, ResourceId to) const {
    RMWP_EXPECT(from < migration_time_.size());
    RMWP_EXPECT(to < migration_time_.size());
    return migration_time_[from][to];
}

double TaskType::migration_energy(ResourceId from, ResourceId to) const {
    RMWP_EXPECT(from < migration_energy_.size());
    RMWP_EXPECT(to < migration_energy_.size());
    return migration_energy_[from][to];
}

} // namespace rmwp
