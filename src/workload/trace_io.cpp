#include "workload/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace rmwp {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
    std::vector<std::string> fields;
    std::string field;
    std::istringstream is(line);
    while (std::getline(is, field, ',')) fields.push_back(field);
    return fields;
}

double parse_value(const std::string& text) {
    if (text == "inf") return std::numeric_limits<double>::infinity();
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    RMWP_EXPECT(consumed == text.size());
    return value;
}

std::string render_value(double value) {
    if (std::isinf(value)) return "inf";
    std::ostringstream os;
    os.precision(17);
    os << value;
    return os.str();
}

std::ifstream open_input(const std::string& path) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("cannot open for reading: " + path);
    return is;
}

std::ofstream open_output(const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot open for writing: " + path);
    return os;
}

} // namespace

void write_trace_csv(std::ostream& os, const Trace& trace) {
    os << "arrival,type,relative_deadline\n";
    for (const Request& r : trace) {
        os << render_value(r.arrival) << ',' << r.type << ','
           << render_value(r.relative_deadline) << '\n';
    }
}

Trace read_trace_csv(std::istream& is) {
    const auto fail = [](std::size_t line_number, const std::string& what,
                         const std::string& line) {
        throw std::runtime_error("trace CSV line " + std::to_string(line_number) + ": " + what +
                                 " (line: \"" + line + "\")");
    };

    std::string line;
    if (!std::getline(is, line) || line != "arrival,type,relative_deadline")
        throw std::runtime_error(
            "trace CSV: missing or wrong header (expected \"arrival,type,relative_deadline\")");

    std::vector<Request> requests;
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty()) continue;
        const auto fields = split_csv_line(line);
        if (fields.size() != 3) fail(line_number, "expected 3 fields", line);
        Request r;
        try {
            r.arrival = parse_value(fields[0]);
            r.type = static_cast<TaskTypeId>(std::stoull(fields[1]));
            r.relative_deadline = parse_value(fields[2]);
        } catch (const std::exception&) {
            fail(line_number, "unparseable field", line);
        }
        if (!std::isfinite(r.arrival) || r.arrival < 0.0)
            fail(line_number, "arrival must be finite and non-negative", line);
        if (!std::isfinite(r.relative_deadline) || r.relative_deadline <= 0.0)
            fail(line_number, "relative_deadline must be finite and positive", line);
        if (!requests.empty() && r.arrival < requests.back().arrival)
            fail(line_number, "arrivals must be non-decreasing", line);
        requests.push_back(r);
    }
    return Trace(std::move(requests));
}

TraceCsvStream::TraceCsvStream(std::istream& is, std::function<void(const std::string&)> warn)
    : is_(is), warn_(std::move(warn)) {
    if (!warn_)
        warn_ = [](const std::string& message) { std::cerr << message << '\n'; };
}

std::optional<Request> TraceCsvStream::next() {
    std::string line;
    if (!header_checked_) {
        if (!std::getline(is_, line) || line != "arrival,type,relative_deadline")
            throw std::runtime_error(
                "trace CSV: missing or wrong header (expected \"arrival,type,relative_deadline\")");
        header_checked_ = true;
        line_number_ = 1;
    }

    const auto skip = [this](const std::string& what, const std::string& bad_line) {
        ++parse_errors_;
        warn_("trace CSV line " + std::to_string(line_number_) + ": " + what + " — skipped (line: \"" +
              bad_line + "\")");
    };

    while (std::getline(is_, line)) {
        ++line_number_;
        if (line.empty()) continue;
        const auto fields = split_csv_line(line);
        if (fields.size() != 3) {
            skip("expected 3 fields", line);
            continue;
        }
        Request r;
        try {
            r.arrival = parse_value(fields[0]);
            r.type = static_cast<TaskTypeId>(std::stoull(fields[1]));
            r.relative_deadline = parse_value(fields[2]);
        } catch (const std::exception&) {
            skip("unparseable field", line);
            continue;
        }
        if (!std::isfinite(r.arrival) || r.arrival < 0.0) {
            skip("arrival must be finite and non-negative", line);
            continue;
        }
        if (!std::isfinite(r.relative_deadline) || r.relative_deadline <= 0.0) {
            skip("relative_deadline must be finite and positive", line);
            continue;
        }
        if (have_last_arrival_ && r.arrival < last_arrival_) {
            skip("arrivals must be non-decreasing", line);
            continue;
        }
        last_arrival_ = r.arrival;
        have_last_arrival_ = true;
        ++delivered_;
        return r;
    }
    return std::nullopt;
}

void validate_trace(const Trace& trace, const Catalog& catalog) {
    for (std::size_t j = 0; j < trace.size(); ++j) {
        const Request& r = trace.request(j);
        if (r.type >= catalog.size())
            throw std::runtime_error("trace request " + std::to_string(j) +
                                     " references unknown task type " + std::to_string(r.type) +
                                     " (catalog has " + std::to_string(catalog.size()) +
                                     " types)");
    }
}

void write_trace_csv_file(const std::string& path, const Trace& trace) {
    auto os = open_output(path);
    write_trace_csv(os, trace);
}

Trace read_trace_csv_file(const std::string& path) {
    auto is = open_input(path);
    return read_trace_csv(is);
}

void write_catalog_csv(std::ostream& os, const Catalog& catalog) {
    os << "type,resource,wcet,energy\n";
    for (const TaskType& t : catalog) {
        for (std::size_t i = 0; i < t.resource_count(); ++i) {
            os << t.id() << ',' << i << ',' << render_value(t.wcet(i)) << ','
               << render_value(t.energy(i)) << '\n';
        }
    }
    os << "#migration\n";
    for (const TaskType& t : catalog) {
        for (std::size_t from = 0; from < t.resource_count(); ++from) {
            for (std::size_t to = 0; to < t.resource_count(); ++to) {
                if (from == to) continue;
                os << t.id() << ',' << from << ',' << to << ','
                   << render_value(t.migration_time(from, to)) << ','
                   << render_value(t.migration_energy(from, to)) << '\n';
            }
        }
    }
}

Catalog read_catalog_csv(std::istream& is) {
    // Malformed external input is a user error, not a programming error:
    // every check reports a descriptive std::runtime_error naming the
    // offending 1-based line (same contract as read_trace_csv).
    const auto fail = [](std::size_t line_number, const std::string& what,
                         const std::string& line) {
        throw std::runtime_error("catalog CSV line " + std::to_string(line_number) + ": " + what +
                                 " (line: \"" + line + "\")");
    };

    std::string line;
    if (!std::getline(is, line) || line != "type,resource,wcet,energy")
        throw std::runtime_error(
            "catalog CSV: missing or wrong header (expected \"type,resource,wcet,energy\")");

    struct TypeData {
        std::map<std::size_t, std::pair<double, double>> cost; // resource -> (wcet, energy)
        std::map<std::pair<std::size_t, std::size_t>, std::pair<double, double>> migration;
    };
    std::map<std::size_t, TypeData> data;

    bool in_migration = false;
    std::size_t resource_count = 0;
    std::size_t line_number = 1;
    while (std::getline(is, line)) {
        ++line_number;
        if (line.empty()) continue;
        if (line == "#migration") {
            in_migration = true;
            continue;
        }
        const auto fields = split_csv_line(line);
        try {
            if (!in_migration) {
                if (fields.size() != 4) fail(line_number, "expected 4 fields", line);
                const auto type = static_cast<std::size_t>(std::stoull(fields[0]));
                const auto resource = static_cast<std::size_t>(std::stoull(fields[1]));
                data[type].cost[resource] = {parse_value(fields[2]), parse_value(fields[3])};
                resource_count = std::max(resource_count, resource + 1);
            } else {
                if (fields.size() != 5) fail(line_number, "expected 5 fields", line);
                const auto type = static_cast<std::size_t>(std::stoull(fields[0]));
                const auto from = static_cast<std::size_t>(std::stoull(fields[1]));
                const auto to = static_cast<std::size_t>(std::stoull(fields[2]));
                data[type].migration[{from, to}] = {parse_value(fields[3]),
                                                    parse_value(fields[4])};
            }
        } catch (const std::runtime_error&) {
            throw;
        } catch (const std::exception&) {
            fail(line_number, "unparseable field", line);
        }
    }
    if (data.empty()) throw std::runtime_error("catalog CSV: no task types");

    std::vector<TaskType> types;
    types.reserve(data.size());
    std::size_t expected_id = 0;
    for (const auto& [type_id, record] : data) {
        if (type_id != expected_id++)
            throw std::runtime_error("catalog CSV: task type ids must be contiguous from 0 "
                                     "(missing type " +
                                     std::to_string(expected_id - 1) + ")");
        std::vector<double> wcet(resource_count, kNotExecutable);
        std::vector<double> energy(resource_count, kNotExecutable);
        for (const auto& [resource, cost] : record.cost) {
            wcet[resource] = cost.first;
            energy[resource] = cost.second;
        }
        std::vector<std::vector<double>> cm(resource_count, std::vector<double>(resource_count, 0.0));
        std::vector<std::vector<double>> em(resource_count, std::vector<double>(resource_count, 0.0));
        for (const auto& [pair, overhead] : record.migration) {
            cm[pair.first][pair.second] = overhead.first;
            em[pair.first][pair.second] = overhead.second;
        }
        types.emplace_back(type_id, std::move(wcet), std::move(energy), std::move(cm),
                           std::move(em));
    }
    return Catalog(std::move(types));
}

void write_catalog_csv_file(const std::string& path, const Catalog& catalog) {
    auto os = open_output(path);
    write_catalog_csv(os, catalog);
}

Catalog read_catalog_csv_file(const std::string& path) {
    auto is = open_input(path);
    return read_catalog_csv(is);
}

} // namespace rmwp
