#include "workload/trace.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rmwp {

Trace::Trace(std::vector<Request> requests) : requests_(std::move(requests)) {
    for (std::size_t i = 0; i < requests_.size(); ++i) {
        RMWP_EXPECT(requests_[i].relative_deadline > 0.0);
        if (i > 0) RMWP_EXPECT(requests_[i].arrival >= requests_[i - 1].arrival);
    }
}

const Request& Trace::request(std::size_t index) const {
    RMWP_EXPECT(index < requests_.size());
    return requests_[index];
}

double Trace::mean_interarrival() const {
    RMWP_EXPECT(requests_.size() >= 2);
    const double span = requests_.back().arrival - requests_.front().arrival;
    return span / static_cast<double>(requests_.size() - 1);
}

Time Trace::horizon() const noexcept {
    Time latest = 0.0;
    for (const Request& r : requests_) latest = std::max(latest, r.absolute_deadline());
    return latest;
}

} // namespace rmwp
