// Request traces: a trace is a time-ordered stream of requests, each
// carrying arrival time, task type, and relative deadline (Sec 5.1's three
// fields).
#pragma once

#include <cstddef>
#include <vector>

#include "workload/task_type.hpp"

namespace rmwp {

/// Simulation time; all times in this repository are in milliseconds.
using Time = double;

/// One incoming request req_j.
struct Request {
    Time arrival = 0.0;        ///< absolute arrival time s_j
    TaskTypeId type = 0;       ///< which task the request triggers
    Time relative_deadline = 0.0; ///< d_j, relative to arrival

    [[nodiscard]] Time absolute_deadline() const noexcept { return arrival + relative_deadline; }
};

/// A time-ordered stream of requests.
class Trace {
public:
    Trace() = default;
    explicit Trace(std::vector<Request> requests);

    [[nodiscard]] std::size_t size() const noexcept { return requests_.size(); }
    [[nodiscard]] bool empty() const noexcept { return requests_.empty(); }
    [[nodiscard]] const Request& request(std::size_t index) const;
    [[nodiscard]] const std::vector<Request>& requests() const noexcept { return requests_; }

    /// Mean of the interarrival gaps.  Requires size() >= 2.
    [[nodiscard]] double mean_interarrival() const;

    /// Latest absolute deadline in the trace; 0 for an empty trace.
    [[nodiscard]] Time horizon() const noexcept;

    [[nodiscard]] auto begin() const noexcept { return requests_.begin(); }
    [[nodiscard]] auto end() const noexcept { return requests_.end(); }

private:
    std::vector<Request> requests_;
};

} // namespace rmwp
