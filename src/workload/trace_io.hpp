// CSV import/export for traces and catalogs, so experiments can be run
// against externally produced request streams (e.g. converted cluster
// traces) and generated workloads can be inspected offline.
//
// Trace CSV columns:   arrival,type,relative_deadline
// Catalog CSV columns: type,resource,wcet,energy  followed by migration rows
//                      type,from,to,migration_time,migration_energy in a
//                      second section separated by a "#migration" line.
// Non-executable (type, resource) pairs are written as "inf".
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace rmwp {

void write_trace_csv(std::ostream& os, const Trace& trace);
/// Parse a trace, rejecting malformed input with a descriptive
/// std::runtime_error: wrong header/field counts, unparseable numbers,
/// negative or non-finite times, and non-monotone arrivals.
[[nodiscard]] Trace read_trace_csv(std::istream& is);

/// Check that every request's task type exists in the catalog; throws a
/// descriptive std::runtime_error otherwise.  Run this after loading an
/// external trace against the catalog it will be simulated with.
void validate_trace(const Trace& trace, const Catalog& catalog);

void write_trace_csv_file(const std::string& path, const Trace& trace);
[[nodiscard]] Trace read_trace_csv_file(const std::string& path);

/// Incremental trace-CSV reader for long-running services (DESIGN.md §11).
///
/// Unlike read_trace_csv — which validates a whole file up front and throws
/// on the first defect — a live service must outlast a corrupted producer:
/// a malformed mid-stream line (wrong field count, unparseable number,
/// non-finite/negative time, or an arrival that runs backwards) is *skipped*
/// with a line-numbered warning and counted in parse_errors(), and the
/// stream keeps delivering the well-formed remainder.  Only a missing or
/// wrong header is fatal (the input is not a trace CSV at all).
///
/// The reader holds one line of the input at a time — memory is O(1) in the
/// stream length.
class TraceCsvStream {
public:
    /// `warn` receives one human-readable message per skipped line; the
    /// default writes to stderr.  The header line is consumed (and checked)
    /// by the first next() call.
    explicit TraceCsvStream(std::istream& is,
                            std::function<void(const std::string&)> warn = {});

    /// The next well-formed request, or nullopt at end of stream.  Throws
    /// std::runtime_error only for a missing/wrong header.
    [[nodiscard]] std::optional<Request> next();

    /// Malformed lines skipped so far.
    [[nodiscard]] std::uint64_t parse_errors() const noexcept { return parse_errors_; }
    /// Well-formed requests delivered so far.
    [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
    /// 1-based number of the last line read.
    [[nodiscard]] std::uint64_t line_number() const noexcept { return line_number_; }

private:
    std::istream& is_;
    std::function<void(const std::string&)> warn_;
    std::uint64_t parse_errors_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t line_number_ = 0;
    Time last_arrival_ = 0.0;
    bool header_checked_ = false;
    bool have_last_arrival_ = false;
};

void write_catalog_csv(std::ostream& os, const Catalog& catalog);
[[nodiscard]] Catalog read_catalog_csv(std::istream& is);

void write_catalog_csv_file(const std::string& path, const Catalog& catalog);
[[nodiscard]] Catalog read_catalog_csv_file(const std::string& path);

} // namespace rmwp
