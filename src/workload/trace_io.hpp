// CSV import/export for traces and catalogs, so experiments can be run
// against externally produced request streams (e.g. converted cluster
// traces) and generated workloads can be inspected offline.
//
// Trace CSV columns:   arrival,type,relative_deadline
// Catalog CSV columns: type,resource,wcet,energy  followed by migration rows
//                      type,from,to,migration_time,migration_energy in a
//                      second section separated by a "#migration" line.
// Non-executable (type, resource) pairs are written as "inf".
#pragma once

#include <iosfwd>
#include <string>

#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace rmwp {

void write_trace_csv(std::ostream& os, const Trace& trace);
/// Parse a trace, rejecting malformed input with a descriptive
/// std::runtime_error: wrong header/field counts, unparseable numbers,
/// negative or non-finite times, and non-monotone arrivals.
[[nodiscard]] Trace read_trace_csv(std::istream& is);

/// Check that every request's task type exists in the catalog; throws a
/// descriptive std::runtime_error otherwise.  Run this after loading an
/// external trace against the catalog it will be simulated with.
void validate_trace(const Trace& trace, const Catalog& catalog);

void write_trace_csv_file(const std::string& path, const Trace& trace);
[[nodiscard]] Trace read_trace_csv_file(const std::string& path);

void write_catalog_csv(std::ostream& os, const Catalog& catalog);
[[nodiscard]] Catalog read_catalog_csv(std::istream& is);

void write_catalog_csv_file(const std::string& path, const Catalog& catalog);
[[nodiscard]] Catalog read_catalog_csv_file(const std::string& path);

} // namespace rmwp
