#include "workload/trace_generator.hpp"

#include "util/check.hpp"

namespace rmwp {

const char* to_string(DeadlineGroup group) noexcept {
    switch (group) {
    case DeadlineGroup::very_tight: return "VT";
    case DeadlineGroup::less_tight: return "LT";
    }
    return "unknown";
}

double TraceGenParams::deadline_coefficient_min() const noexcept {
    return group == DeadlineGroup::very_tight ? 1.5 : 2.0;
}

double TraceGenParams::deadline_coefficient_max() const noexcept {
    return group == DeadlineGroup::very_tight ? 2.0 : 6.0;
}

void TraceGenParams::validate() const {
    RMWP_EXPECT(length > 0);
    RMWP_EXPECT(interarrival_mean > 0.0);
    RMWP_EXPECT(interarrival_stddev >= 0.0);
    RMWP_EXPECT(burst_scale > 0.0);
    RMWP_EXPECT(lull_scale >= burst_scale);
    RMWP_EXPECT(phase_switch_probability >= 0.0 && phase_switch_probability <= 1.0);
    RMWP_EXPECT(type_correlation >= 0.0 && type_correlation <= 1.0);
}

Trace generate_trace(const Catalog& catalog, const TraceGenParams& params, Rng& rng) {
    params.validate();

    std::vector<Request> requests;
    requests.reserve(params.length);

    // Per-trace random successor permutation for correlated type streams.
    std::vector<TaskTypeId> successor(catalog.size());
    if (params.type_correlation > 0.0) {
        std::vector<TaskTypeId> shuffled(catalog.size());
        for (std::size_t t = 0; t < shuffled.size(); ++t) shuffled[t] = t;
        rng.shuffle(shuffled);
        // A single cycle through the shuffled order: every type has a
        // deterministic "next" a Markov predictor can learn.
        for (std::size_t t = 0; t < shuffled.size(); ++t)
            successor[shuffled[t]] = shuffled[(t + 1) % shuffled.size()];
    }

    // Draw order is part of the reproducibility contract: the extension
    // paths must not consume draws when disabled, so defaults regenerate
    // byte-identical paper traces.
    const double cv = params.interarrival_stddev / params.interarrival_mean;
    bool burst_phase =
        params.arrival_model == ArrivalModel::two_phase ? rng.bernoulli(0.5) : false;
    TaskTypeId previous_type = 0;
    Time arrival = 0.0;
    for (std::size_t j = 0; j < params.length; ++j) {
        if (j > 0) {
            double mean = params.interarrival_mean;
            if (params.arrival_model == ArrivalModel::two_phase) {
                if (rng.bernoulli(params.phase_switch_probability)) burst_phase = !burst_phase;
                mean *= burst_phase ? params.burst_scale : params.lull_scale;
            }
            // Gaps must stay positive; the floor is far below the mean, so
            // the truncation bias is negligible for the paper's CV of 1/3.
            arrival += rng.gaussian_above(mean, mean * cv, mean * 0.01);
        }

        TaskTypeId type_id;
        if (j > 0 && params.type_correlation > 0.0 && rng.bernoulli(params.type_correlation)) {
            type_id = successor[previous_type];
        } else {
            type_id = rng.index(catalog.size());
        }
        previous_type = type_id;
        const TaskType& type = catalog.type(type_id);

        // RWCET: the WCET on a randomly selected executable resource.
        const auto& executable = type.executable_resources();
        const ResourceId picked = executable[rng.index(executable.size())];
        const double rwcet = type.wcet(picked);
        const double coefficient =
            rng.uniform(params.deadline_coefficient_min(), params.deadline_coefficient_max());

        requests.push_back(Request{arrival, type_id, rwcet * coefficient});
    }

    return Trace(std::move(requests));
}

std::vector<Trace> generate_traces(const Catalog& catalog, const TraceGenParams& params,
                                   std::size_t count, const Rng& rng) {
    std::vector<Trace> traces;
    traces.reserve(count);
    for (std::size_t t = 0; t < count; ++t) {
        Rng child = rng.derive(t);
        traces.push_back(generate_trace(catalog, params, child));
    }
    return traces;
}

} // namespace rmwp
