// A task type tau_j as defined in Sec 2: per-resource WCET c_{j,i}, average
// energy e_{j,i}, and per-resource-pair migration overheads cm_{j,k,i} /
// em_{j,k,i}.  Resources on which the type cannot execute carry
// "dummy values" (the paper's footnote 1); we encode them as +infinity so
// that any feasibility comparison naturally rejects them.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "platform/platform.hpp"

namespace rmwp {

/// Index of a task type within its Catalog.
using TaskTypeId = std::size_t;

/// Sentinel WCET/energy for "not executable on this resource".
inline constexpr double kNotExecutable = std::numeric_limits<double>::infinity();

/// Immutable description of one task type.
class TaskType {
public:
    /// wcet/energy are indexed by ResourceId; cm/em are [from][to] matrices.
    /// All four containers must agree with the same resource count N, and a
    /// type must be executable on at least one resource.
    TaskType(TaskTypeId id, std::vector<double> wcet, std::vector<double> energy,
             std::vector<std::vector<double>> migration_time,
             std::vector<std::vector<double>> migration_energy);

    [[nodiscard]] TaskTypeId id() const noexcept { return id_; }
    [[nodiscard]] std::size_t resource_count() const noexcept { return wcet_.size(); }

    /// WCET c_{j,i}; +infinity if not executable on i.
    [[nodiscard]] double wcet(ResourceId i) const;
    /// Average energy e_{j,i}; +infinity if not executable on i.
    [[nodiscard]] double energy(ResourceId i) const;
    [[nodiscard]] bool executable_on(ResourceId i) const;

    /// Migration time overhead cm_{j,k,i} for moving from k to i (0 if k==i).
    [[nodiscard]] double migration_time(ResourceId from, ResourceId to) const;
    /// Migration energy overhead em_{j,k,i} (0 if k==i).
    [[nodiscard]] double migration_energy(ResourceId from, ResourceId to) const;

    /// Mean WCET over the resources the type can execute on.
    [[nodiscard]] double mean_wcet() const noexcept { return mean_wcet_; }
    /// Mean energy over the resources the type can execute on.
    [[nodiscard]] double mean_energy() const noexcept { return mean_energy_; }
    /// Smallest WCET over executable resources.
    [[nodiscard]] double min_wcet() const noexcept { return min_wcet_; }
    /// Smallest energy over executable resources.
    [[nodiscard]] double min_energy() const noexcept { return min_energy_; }

    /// Ids of the resources this type can execute on.
    [[nodiscard]] const std::vector<ResourceId>& executable_resources() const noexcept {
        return executable_;
    }

private:
    TaskTypeId id_;
    std::vector<double> wcet_;
    std::vector<double> energy_;
    std::vector<std::vector<double>> migration_time_;
    std::vector<std::vector<double>> migration_energy_;
    std::vector<ResourceId> executable_;
    double mean_wcet_ = 0.0;
    double mean_energy_ = 0.0;
    double min_wcet_ = 0.0;
    double min_energy_ = 0.0;
};

} // namespace rmwp
