// Trace generation per Sec 5.1:
//  * arrivals start at 0 and advance by Gaussian interarrival gaps;
//  * each arrival is assigned a uniformly random task type;
//  * the relative deadline is RWCET * C, where RWCET is the WCET on a
//    randomly selected (executable) resource and C is drawn uniformly from
//    [1.5, 2] for the very-tight (VT) group or [2, 6] for the less-tight
//    (LT) group.
//
// Calibration note (see DESIGN.md §5 and EXPERIMENTS.md): the paper prints
// interarrival ~ Gaussian(1.2, 0.4^2) next to WCETs of ~40 ms, which is
// inconsistent as written (either ~0% or ~100% rejection depending on the
// unit read).  We keep the Gaussian shape and the paper's CV (stddev/mean =
// 1/3) and calibrate the mean so the no-prediction operating point matches
// the paper's reported 24.5% / 31% rejection.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace rmwp {

/// Deadline tightness groups of Sec 5.1.
enum class DeadlineGroup {
    very_tight, ///< VT: C in [1.5, 2]
    less_tight, ///< LT: C in [2, 6]
};

[[nodiscard]] const char* to_string(DeadlineGroup group) noexcept;

/// Arrival-process models.  The paper uses i.i.d. Gaussian gaps; the
/// two-phase model (extension) alternates between a burst and a lull regime
/// — the structure the authors' prior work [12] exploits for prediction and
/// the one the online predictor's phase-aware estimator targets.
enum class ArrivalModel {
    gaussian,  ///< i.i.d. Gaussian(interarrival_mean, interarrival_stddev^2)
    two_phase, ///< Markov-modulated: burst/lull regimes with geometric dwell
};

/// Knobs for generate_trace(); defaults reproduce Sec 5.1 (with the
/// calibrated interarrival mean; see the header comment).
struct TraceGenParams {
    std::size_t length = 500;
    /// Calibrated default (see EXPERIMENTS.md): keeps the paper's CV of 1/3
    /// while placing the system in the moderate-contention regime where the
    /// paper's prediction mechanism (reserving the non-preemptable GPU for
    /// predicted urgent tasks) is visible.
    double interarrival_mean = 6.0;
    double interarrival_stddev = 2.0;
    DeadlineGroup group = DeadlineGroup::very_tight;

    // --- extensions (defaults reproduce the paper exactly) ---

    ArrivalModel arrival_model = ArrivalModel::gaussian;
    /// two_phase regimes: the burst regime's mean gap is
    /// interarrival_mean * burst_scale, the lull's interarrival_mean *
    /// lull_scale (both with the Gaussian CV of the base parameters); the
    /// regime switches after each request with `phase_switch_probability`.
    double burst_scale = 0.4;
    double lull_scale = 2.0;
    double phase_switch_probability = 0.05;

    /// Temporal structure over task identities: with this probability the
    /// next request's type follows a per-trace random successor permutation
    /// of the previous type (learnable by a first-order Markov predictor);
    /// otherwise it is uniform, as in the paper.  0 = the paper's i.i.d.
    /// type choice.
    double type_correlation = 0.0;

    [[nodiscard]] double deadline_coefficient_min() const noexcept;
    [[nodiscard]] double deadline_coefficient_max() const noexcept;

    void validate() const;
};

/// Generate one trace.  Deterministic in `rng`.
[[nodiscard]] Trace generate_trace(const Catalog& catalog, const TraceGenParams& params, Rng& rng);

/// Generate `count` traces from independent child streams of `rng`, so any
/// single trace can be regenerated without generating its predecessors.
[[nodiscard]] std::vector<Trace> generate_traces(const Catalog& catalog,
                                                 const TraceGenParams& params, std::size_t count,
                                                 const Rng& rng);

} // namespace rmwp
