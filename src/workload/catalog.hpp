// The task-type catalog and its random generation per Sec 5.1:
//  * 100 task types;
//  * per-CPU WCET ~ Gaussian(40, 9^2), per-CPU energy ~ Gaussian(15, 3^2);
//  * GPU WCET / energy = the CPU averages divided by a random factor in
//    [2, 10];
//  * migration overhead (time and energy) a random fraction in [0.1, 0.2]
//    of the resource-averaged WCET / energy of the type.
#pragma once

#include <cstddef>
#include <vector>

#include "platform/platform.hpp"
#include "util/rng.hpp"
#include "workload/task_type.hpp"

namespace rmwp {

/// Knobs for generate_catalog(); defaults reproduce Sec 5.1.
struct CatalogParams {
    std::size_t type_count = 100;
    double cpu_wcet_mean = 40.0;
    double cpu_wcet_stddev = 9.0;
    double cpu_energy_mean = 15.0;
    double cpu_energy_stddev = 3.0;
    double gpu_divisor_min = 2.0;
    double gpu_divisor_max = 10.0;
    double migration_fraction_min = 0.1;
    double migration_fraction_max = 0.2;
    /// Extension knob (0 in the paper): fraction of types that cannot run on
    /// non-preemptable resources (footnote 1's "dummy values" path).
    double gpu_incompatible_fraction = 0.0;
    /// Extension knob (0 in the paper): fraction of a task's nominal energy
    /// that is *static* (leakage) rather than dynamic.  At DVFS level f the
    /// per-task energy becomes e_nom * ((1-s) * f^2 + s / f): dynamic energy
    /// shrinks quadratically with frequency while the static share grows
    /// with the longer runtime — the classic race-to-idle-vs-slow-down
    /// trade-off, which moves the energy-optimal operating point away from
    /// the slowest level.
    double static_energy_fraction = 0.0;

    void validate() const;
};

/// Immutable set of task types sharing one platform's resource count.
class Catalog {
public:
    explicit Catalog(std::vector<TaskType> types);

    [[nodiscard]] std::size_t size() const noexcept { return types_.size(); }
    [[nodiscard]] const TaskType& type(TaskTypeId id) const;
    [[nodiscard]] const std::vector<TaskType>& types() const noexcept { return types_; }
    [[nodiscard]] std::size_t resource_count() const noexcept {
        return types_.front().resource_count();
    }

    [[nodiscard]] auto begin() const noexcept { return types_.begin(); }
    [[nodiscard]] auto end() const noexcept { return types_.end(); }

private:
    std::vector<TaskType> types_;
};

/// Generate a catalog for `platform` per Sec 5.1.  Deterministic in `rng`.
[[nodiscard]] Catalog generate_catalog(const Platform& platform, const CatalogParams& params,
                                       Rng& rng);

/// Generate an *islands* catalog: physical resources are assigned
/// round-robin (in id order) to `islands` disjoint resource islands, and
/// each task type executes only within island `type_id % islands` — the
/// Sec 5.1 magnitudes, confined.  The executability relation then has
/// `islands` connected components, which is exactly what sharded admission
/// (DESIGN.md §15) partitions on: with this catalog, shards split both the
/// work and the O(tasks^2) solve cost instead of degenerating to one group.
/// Every island must receive at least one CPU core.  Deterministic in
/// `rng`; `islands == 1` draws differently from generate_catalog (only
/// island CPUs are sampled) but has the same distribution shape.
[[nodiscard]] Catalog generate_partitioned_catalog(const Platform& platform,
                                                   const CatalogParams& params,
                                                   std::size_t islands, Rng& rng);

} // namespace rmwp
