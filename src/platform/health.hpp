// Runtime health of the platform's resources (fault-tolerance extension).
//
// The Platform itself stays immutable — what changes at runtime is carried
// in a PlatformHealth mask alongside it: per resource, whether it is online
// and by which factor its effective WCETs are inflated (thermal throttling,
// frequency capping).  Health is a property of *physical* cores: every
// operating point of a DVFS core shares one health entry, mapped through
// Resource::physical().
//
// A default-constructed (empty) PlatformHealth means "all resources
// nominal" and costs nothing to query, so fault-free code paths are
// unaffected.
#pragma once

#include <vector>

#include "platform/platform.hpp"

namespace rmwp {

/// Health of one resource entry.
struct ResourceHealth {
    bool online = true;     ///< offline resources cannot host any task
    double throttle = 1.0;  ///< effective-WCET multiplier, >= 1.0
};

/// Per-resource health mask over one Platform (dense ResourceId indexing,
/// same order as Platform::resources()).
class PlatformHealth {
public:
    /// All resources nominal; valid for any platform.
    PlatformHealth() = default;

    /// Explicit mask for a platform with `resource_count` entries.
    explicit PlatformHealth(std::size_t resource_count);

    /// True when every resource is online at nominal speed.
    [[nodiscard]] bool all_nominal() const noexcept;

    [[nodiscard]] bool online(ResourceId i) const noexcept {
        return i >= states_.size() || states_[i].online;
    }
    [[nodiscard]] double throttle(ResourceId i) const noexcept {
        return i >= states_.size() ? 1.0 : states_[i].throttle;
    }

    /// Take the physical core `physical` (and every operating point sharing
    /// it) offline or back online.
    void set_online(const Platform& platform, ResourceId physical, bool online);

    /// Set the throttle factor of the physical core `physical` (and every
    /// operating point sharing it).  Requires factor >= 1.0.
    void set_throttle(const Platform& platform, ResourceId physical, double factor);

    /// Number of physical cores currently online (all cores when empty).
    [[nodiscard]] std::size_t online_physical_count(const Platform& platform) const;

private:
    void materialize(const Platform& platform);

    std::vector<ResourceHealth> states_; ///< empty = all nominal
};

} // namespace rmwp
