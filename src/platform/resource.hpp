// A single computation resource of the heterogeneous platform (Sec 2).
//
// The distinction the paper cares about is preemptability: CPUs allow a task
// to be suspended and resumed (or migrated) mid-execution, while GPU-like
// resources force a started task to run to the end.  Everything else that
// makes a resource "different" (speed, energy) lives in the per-task-type
// WCET/energy tables of the workload model, matching the paper's
// resource-indexed c_{j,i} / e_{j,i} formulation.
#pragma once

#include <cstddef>
#include <string>

namespace rmwp {

/// Index of a resource within its Platform.
using ResourceId = std::size_t;

/// Broad resource class; determines default preemptability.
enum class ResourceKind {
    cpu,         ///< general-purpose core; preemptable
    gpu,         ///< throughput accelerator; started tasks run to the end
    accelerator, ///< fixed-function block; non-preemptable like a GPU
};

[[nodiscard]] const char* to_string(ResourceKind kind) noexcept;

/// One computation resource r_i — or, on DVFS-capable platforms, one
/// *operating point* of a physical core.
///
/// DVFS (named in the paper's intro as one of the RM's decision types) is
/// modelled by giving each frequency level of a core its own Resource entry
/// that shares the core's `physical()` id: the workload tables carry the
/// level-scaled WCET/energy (time x 1/f, energy x f^2 under the usual
/// V-proportional-to-f CMOS model), the mapper picks among the entries like
/// any other resource, and the schedule engine serialises everything that
/// shares a physical core onto one timeline.
class Resource {
public:
    Resource(ResourceId id, ResourceKind kind, std::string name);
    /// Operating-point constructor: a level of the physical core
    /// `physical_id` running at `frequency` (fraction of nominal, in
    /// (0, 1]).
    Resource(ResourceId id, ResourceKind kind, std::string name, ResourceId physical_id,
             double frequency);

    [[nodiscard]] ResourceId id() const noexcept { return id_; }
    [[nodiscard]] ResourceKind kind() const noexcept { return kind_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// The physical core this entry occupies; entries with equal physical()
    /// share one execution timeline.  Equals id() on non-DVFS resources.
    [[nodiscard]] ResourceId physical() const noexcept { return physical_; }

    /// Operating frequency as a fraction of nominal (1.0 = full speed).
    [[nodiscard]] double frequency() const noexcept { return frequency_; }

    /// Whether a task executing on this resource may be preempted, resumed,
    /// or migrated away before completion.
    [[nodiscard]] bool preemptable() const noexcept { return kind_ == ResourceKind::cpu; }

private:
    ResourceId id_;
    ResourceKind kind_;
    std::string name_;
    ResourceId physical_;
    double frequency_ = 1.0;
};

} // namespace rmwp
