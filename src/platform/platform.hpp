// The heterogeneous platform: an immutable collection of resources plus the
// factory functions for the configurations used in the paper (Sec 3's
// 2 CPU + 1 GPU motivational platform, Sec 5.1's 5 CPU + 1 GPU evaluation
// platform).
#pragma once

#include <cstddef>
#include <vector>

#include "platform/resource.hpp"
#include "util/check.hpp"

namespace rmwp {

/// Immutable set of resources r_1..r_N.  ResourceIds are dense [0, size).
class Platform {
public:
    explicit Platform(std::vector<Resource> resources);

    [[nodiscard]] std::size_t size() const noexcept { return resources_.size(); }
    // Defined inline: this is the innermost lookup of the admission hot
    // path (millions of calls per serve run).
    [[nodiscard]] const Resource& resource(ResourceId id) const {
        RMWP_EXPECT(id < resources_.size());
        return resources_[id];
    }
    [[nodiscard]] const std::vector<Resource>& resources() const noexcept { return resources_; }

    [[nodiscard]] std::size_t cpu_count() const noexcept;
    [[nodiscard]] std::size_t non_preemptable_count() const noexcept;

    /// Number of physical cores (operating points of one core count once).
    [[nodiscard]] std::size_t physical_count() const noexcept;
    /// Whether any resource exposes multiple operating points.
    [[nodiscard]] bool has_dvfs() const noexcept;

    [[nodiscard]] auto begin() const noexcept { return resources_.begin(); }
    [[nodiscard]] auto end() const noexcept { return resources_.end(); }

private:
    std::vector<Resource> resources_;
};

/// Incrementally assembles a Platform with dense ids and default names.
class PlatformBuilder {
public:
    PlatformBuilder& add_cpu(std::string name = {});
    PlatformBuilder& add_gpu(std::string name = {});
    PlatformBuilder& add_accelerator(std::string name = {});
    PlatformBuilder& add(ResourceKind kind, std::string name = {});

    /// Add a DVFS-capable CPU exposing one Resource entry per frequency
    /// level.  `levels` are fractions of nominal frequency, strictly
    /// decreasing, starting with 1.0 (the canonical full-speed entry whose
    /// id is the core's physical id).  Entries are named
    /// "<name>@<frequency>".
    PlatformBuilder& add_cpu_with_dvfs(std::vector<double> levels, std::string name = {});

    [[nodiscard]] Platform build();

private:
    std::vector<Resource> resources_;
};

/// Sec 5.1 evaluation platform: five CPUs and one GPU.
[[nodiscard]] Platform make_paper_platform();

/// Sec 3 motivational platform: two CPUs and one GPU
/// (resource order: CPU1 = 0, CPU2 = 1, GPU = 2, matching Table 1).
[[nodiscard]] Platform make_motivational_platform();

} // namespace rmwp
