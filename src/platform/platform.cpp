#include "platform/platform.hpp"

#include <string>

#include "util/check.hpp"

namespace rmwp {

Platform::Platform(std::vector<Resource> resources) : resources_(std::move(resources)) {
    RMWP_EXPECT(!resources_.empty());
    for (std::size_t i = 0; i < resources_.size(); ++i) {
        RMWP_EXPECT(resources_[i].id() == i);
        // A physical anchor is its own physical resource, shares the kind
        // of its operating points, and runs at nominal frequency.
        const ResourceId anchor = resources_[i].physical();
        RMWP_EXPECT(anchor <= i);
        RMWP_EXPECT(resources_[anchor].physical() == anchor);
        RMWP_EXPECT(resources_[anchor].kind() == resources_[i].kind());
        if (anchor == i) RMWP_EXPECT(resources_[i].frequency() == 1.0);
    }
}

std::size_t Platform::cpu_count() const noexcept {
    std::size_t n = 0;
    for (const auto& r : resources_)
        if (r.kind() == ResourceKind::cpu) ++n;
    return n;
}

std::size_t Platform::non_preemptable_count() const noexcept {
    std::size_t n = 0;
    for (const auto& r : resources_)
        if (!r.preemptable()) ++n;
    return n;
}

std::size_t Platform::physical_count() const noexcept {
    std::size_t n = 0;
    for (const auto& r : resources_)
        if (r.physical() == r.id()) ++n;
    return n;
}

bool Platform::has_dvfs() const noexcept { return physical_count() != resources_.size(); }

PlatformBuilder& PlatformBuilder::add(ResourceKind kind, std::string name) {
    const ResourceId id = resources_.size();
    if (name.empty()) name = std::string(to_string(kind)) + std::to_string(id);
    resources_.emplace_back(id, kind, std::move(name));
    return *this;
}

PlatformBuilder& PlatformBuilder::add_cpu(std::string name) {
    return add(ResourceKind::cpu, std::move(name));
}

PlatformBuilder& PlatformBuilder::add_gpu(std::string name) {
    return add(ResourceKind::gpu, std::move(name));
}

PlatformBuilder& PlatformBuilder::add_accelerator(std::string name) {
    return add(ResourceKind::accelerator, std::move(name));
}

PlatformBuilder& PlatformBuilder::add_cpu_with_dvfs(std::vector<double> levels,
                                                    std::string name) {
    RMWP_EXPECT(!levels.empty());
    RMWP_EXPECT(levels.front() == 1.0);
    for (std::size_t k = 1; k < levels.size(); ++k) {
        RMWP_EXPECT(levels[k] > 0.0);
        RMWP_EXPECT(levels[k] < levels[k - 1]);
    }
    const ResourceId anchor = resources_.size();
    if (name.empty()) name = "cpu" + std::to_string(anchor);
    for (const double level : levels) {
        const ResourceId id = resources_.size();
        std::string level_name = name;
        if (levels.size() > 1) {
            std::string frequency = std::to_string(level);
            frequency.erase(frequency.find_last_not_of('0') + 1);
            if (frequency.back() == '.') frequency.pop_back();
            level_name += "@" + frequency;
        }
        resources_.emplace_back(id, ResourceKind::cpu, std::move(level_name), anchor, level);
    }
    return *this;
}

Platform PlatformBuilder::build() {
    RMWP_EXPECT(!resources_.empty());
    return Platform(std::move(resources_));
}

Platform make_paper_platform() {
    PlatformBuilder builder;
    for (int i = 1; i <= 5; ++i) builder.add_cpu("CPU" + std::to_string(i));
    builder.add_gpu("GPU");
    return builder.build();
}

Platform make_motivational_platform() {
    PlatformBuilder builder;
    builder.add_cpu("CPU1").add_cpu("CPU2").add_gpu("GPU");
    return builder.build();
}

} // namespace rmwp
