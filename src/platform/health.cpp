#include "platform/health.hpp"

#include <unordered_set>

#include "util/check.hpp"

namespace rmwp {

PlatformHealth::PlatformHealth(std::size_t resource_count) : states_(resource_count) {}

bool PlatformHealth::all_nominal() const noexcept {
    for (const ResourceHealth& state : states_)
        if (!state.online || state.throttle != 1.0) return false;
    return true;
}

void PlatformHealth::materialize(const Platform& platform) {
    if (states_.empty()) states_.resize(platform.size());
    RMWP_EXPECT(states_.size() == platform.size());
}

void PlatformHealth::set_online(const Platform& platform, ResourceId physical, bool online) {
    materialize(platform);
    for (const Resource& resource : platform)
        if (resource.physical() == physical) states_[resource.id()].online = online;
}

void PlatformHealth::set_throttle(const Platform& platform, ResourceId physical, double factor) {
    RMWP_EXPECT(factor >= 1.0);
    materialize(platform);
    for (const Resource& resource : platform)
        if (resource.physical() == physical) states_[resource.id()].throttle = factor;
}

std::size_t PlatformHealth::online_physical_count(const Platform& platform) const {
    std::unordered_set<ResourceId> online_physical;
    for (const Resource& resource : platform)
        if (online(resource.id())) online_physical.insert(resource.physical());
    return online_physical.size();
}

} // namespace rmwp
