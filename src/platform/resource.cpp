#include "platform/resource.hpp"

#include "util/check.hpp"

namespace rmwp {

const char* to_string(ResourceKind kind) noexcept {
    switch (kind) {
    case ResourceKind::cpu: return "cpu";
    case ResourceKind::gpu: return "gpu";
    case ResourceKind::accelerator: return "accelerator";
    }
    return "unknown";
}

Resource::Resource(ResourceId id, ResourceKind kind, std::string name)
    : id_(id), kind_(kind), name_(std::move(name)), physical_(id) {
    RMWP_EXPECT(!name_.empty());
}

Resource::Resource(ResourceId id, ResourceKind kind, std::string name, ResourceId physical_id,
                   double frequency)
    : id_(id), kind_(kind), name_(std::move(name)), physical_(physical_id),
      frequency_(frequency) {
    RMWP_EXPECT(!name_.empty());
    RMWP_EXPECT(frequency_ > 0.0 && frequency_ <= 1.0);
    RMWP_EXPECT(physical_ <= id);
}

} // namespace rmwp
