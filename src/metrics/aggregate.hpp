// Aggregation across traces: mean rejection percentage, mean normalised
// energy, confidence intervals, and paired comparisons (used for Sec 5.2's
// "for 88% of traces the MILP acceptance was higher").
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "metrics/trace_result.hpp"
#include "util/stats.hpp"

namespace rmwp {

struct AggregateResult {
    Samples rejection_percent;
    Samples normalized_energy;
    Samples migrations;
    Samples decision_milliseconds_per_activation;
    /// Fault-tolerance extension: loss (rejected + aborted + fault-aborted)
    /// and per-trace rescue outcomes (all zero without injected faults).
    Samples loss_percent;
    Samples rescued;
    Samples fault_aborted;

    [[nodiscard]] static AggregateResult over(std::span<const TraceResult> results);
};

/// Paired per-trace comparison of two configurations run on the same traces.
struct PairedComparison {
    std::size_t traces = 0;
    std::size_t a_strictly_better = 0; ///< a accepted strictly more than b
    std::size_t ties = 0;
    std::size_t b_strictly_better = 0;

    [[nodiscard]] double a_better_or_equal_percent() const noexcept {
        return traces == 0 ? 0.0
                           : 100.0 * static_cast<double>(a_strictly_better + ties) /
                                 static_cast<double>(traces);
    }
    [[nodiscard]] double a_strictly_better_percent() const noexcept {
        return traces == 0 ? 0.0
                           : 100.0 * static_cast<double>(a_strictly_better) /
                                 static_cast<double>(traces);
    }
};

/// Compare acceptance counts trace by trace (same length required).
[[nodiscard]] PairedComparison compare_acceptance(std::span<const TraceResult> a,
                                                  std::span<const TraceResult> b);

/// Paired significance test on per-trace rejection percentages (a paired
/// t-test with the normal approximation that is accurate at the trace
/// counts the benches use).  Positive mean_difference means `a` rejects
/// more than `b`.
struct PairedTTest {
    std::size_t pairs = 0;
    double mean_difference = 0.0;   ///< mean of (a - b) per trace
    double standard_error = 0.0;    ///< of the mean difference
    double t_statistic = 0.0;       ///< mean / SE (0 when SE is 0)
    double p_value = 1.0;           ///< two-sided, normal approximation

    [[nodiscard]] bool significant(double alpha = 0.05) const noexcept {
        return p_value < alpha;
    }
};

[[nodiscard]] PairedTTest paired_rejection_test(std::span<const TraceResult> a,
                                                std::span<const TraceResult> b);

/// Write per-trace results as CSV (one row per trace) for external
/// plotting; `label` is repeated in the first column.
void write_results_csv(std::ostream& os, const std::string& label,
                       std::span<const TraceResult> results, bool header = true);

} // namespace rmwp
