#include "metrics/trace_result.hpp"

namespace rmwp {

bool equivalent_ignoring_host_time(const TraceResult& a, const TraceResult& b) noexcept {
    // Exact comparisons throughout, doubles included: the parallel engine
    // promises bit-identical simulation state, not approximately-equal
    // state, so any drift here is a determinism bug worth failing on.
    // obs_metrics is intentionally not compared: the observational layer
    // carries host-scoped entries and has its own deterministic_equal.
    return a.requests == b.requests && a.accepted == b.accepted && a.rejected == b.rejected &&
           a.completed == b.completed && a.deadline_misses == b.deadline_misses &&
           a.aborted == b.aborted && a.fault_aborted == b.fault_aborted &&
           a.total_energy == b.total_energy && a.migration_energy == b.migration_energy &&
           a.migrations == b.migrations && a.critical_energy == b.critical_energy &&
           a.activations == b.activations &&
           a.plans_with_prediction == b.plans_with_prediction &&
           a.audit_checks == b.audit_checks &&
           a.audit_differential_checks == b.audit_differential_checks &&
           a.audit_differential_gaps == b.audit_differential_gaps &&
           a.resource_outages == b.resource_outages &&
           a.throttle_events == b.throttle_events &&
           a.rescue_activations == b.rescue_activations && a.rescued == b.rescued &&
           a.rescue_migrations == b.rescue_migrations &&
           a.degraded_energy == b.degraded_energy &&
           a.reference_energy == b.reference_energy;
}

} // namespace rmwp
