#include "metrics/trace_result.hpp"

// TraceResult is a value type; the implementation lives in the header.
// This translation unit anchors the library target.
