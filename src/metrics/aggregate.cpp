#include "metrics/aggregate.hpp"

#include <cmath>
#include <ostream>

#include "util/check.hpp"

namespace rmwp {

AggregateResult AggregateResult::over(std::span<const TraceResult> results) {
    AggregateResult aggregate;
    for (const TraceResult& r : results) {
        aggregate.rejection_percent.add(r.rejection_percent());
        aggregate.normalized_energy.add(r.normalized_energy());
        aggregate.migrations.add(static_cast<double>(r.migrations));
        aggregate.loss_percent.add(r.loss_percent());
        aggregate.rescued.add(static_cast<double>(r.rescued));
        aggregate.fault_aborted.add(static_cast<double>(r.fault_aborted));
        if (r.activations > 0)
            aggregate.decision_milliseconds_per_activation.add(
                1000.0 * r.decision_seconds / static_cast<double>(r.activations));
    }
    return aggregate;
}

PairedComparison compare_acceptance(std::span<const TraceResult> a,
                                    std::span<const TraceResult> b) {
    RMWP_EXPECT(a.size() == b.size());
    PairedComparison comparison;
    comparison.traces = a.size();
    for (std::size_t t = 0; t < a.size(); ++t) {
        if (a[t].accepted > b[t].accepted) ++comparison.a_strictly_better;
        else if (a[t].accepted < b[t].accepted) ++comparison.b_strictly_better;
        else ++comparison.ties;
    }
    return comparison;
}

PairedTTest paired_rejection_test(std::span<const TraceResult> a,
                                  std::span<const TraceResult> b) {
    RMWP_EXPECT(a.size() == b.size());
    RMWP_EXPECT(a.size() >= 2);

    RunningStats differences;
    for (std::size_t t = 0; t < a.size(); ++t)
        differences.add(a[t].rejection_percent() - b[t].rejection_percent());

    PairedTTest test;
    test.pairs = a.size();
    test.mean_difference = differences.mean();
    test.standard_error = differences.standard_error();
    if (test.standard_error > 0.0) {
        test.t_statistic = test.mean_difference / test.standard_error;
        // Two-sided normal-approximation p-value via the complementary
        // error function.
        test.p_value = std::erfc(std::abs(test.t_statistic) / std::sqrt(2.0));
    } else {
        test.t_statistic = 0.0;
        test.p_value = test.mean_difference == 0.0 ? 1.0 : 0.0;
    }
    return test;
}

void write_results_csv(std::ostream& os, const std::string& label,
                       std::span<const TraceResult> results, bool header) {
    if (header) {
        os << "label,trace,requests,accepted,rejected,aborted,rejection_percent,"
              "total_energy,normalized_energy,migrations,critical_energy,"
              "fault_aborted,rescued,rescue_migrations,resource_outages,throttle_events\n";
    }
    for (std::size_t t = 0; t < results.size(); ++t) {
        const TraceResult& r = results[t];
        os << label << ',' << t << ',' << r.requests << ',' << r.accepted << ',' << r.rejected
           << ',' << r.aborted << ',' << r.rejection_percent() << ',' << r.total_energy << ','
           << r.normalized_energy() << ',' << r.migrations << ',' << r.critical_energy << ','
           << r.fault_aborted << ',' << r.rescued << ',' << r.rescue_migrations << ','
           << r.resource_outages << ',' << r.throttle_events << '\n';
    }
}

} // namespace rmwp
