// Per-trace outcome of one simulation run: admission counts, energy, and
// RM bookkeeping — the raw material for every figure of Sec 5.
#pragma once

#include <cstddef>

namespace rmwp {

struct TraceResult {
    std::size_t requests = 0;
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t completed = 0;
    /// Admitted tasks that missed their deadline — the firm-real-time
    /// guarantee means this must be 0; the simulator validates it.
    std::size_t deadline_misses = 0;
    /// Admitted tasks aborted because prediction/RM overhead stalls made
    /// their deadline unreachable (only possible when overhead > 0; their
    /// firm-real-time result would be useless, so they are dropped).
    std::size_t aborted = 0;

    double total_energy = 0.0;      ///< execution + migration energy (adaptive tasks)
    double migration_energy = 0.0;
    std::size_t migrations = 0;
    /// Energy consumed by design-time critical reservations within the
    /// simulated horizon (kept separate from the adaptive total so RM
    /// comparisons are unaffected by the static workload).
    double critical_energy = 0.0;

    std::size_t activations = 0;
    /// Activations whose accepted plan used the predicted task.
    std::size_t plans_with_prediction = 0;
    /// Wall-clock seconds spent inside ResourceManager::decide.
    double decision_seconds = 0.0;

    /// Normalisation reference: the sum over *all* requests (accepted or
    /// not) of the request's resource-averaged energy.  Dividing by it makes
    /// energies comparable across traces and RM configurations: a manager
    /// that accepts more work reports proportionally higher normalised
    /// energy, which is exactly the effect Fig 3 discusses.
    double reference_energy = 0.0;

    [[nodiscard]] double rejection_percent() const noexcept {
        return requests == 0 ? 0.0
                             : 100.0 * static_cast<double>(rejected) /
                                   static_cast<double>(requests);
    }
    /// Requests that produced no useful result: rejected at admission or
    /// aborted later because of overhead stalls.
    [[nodiscard]] double loss_percent() const noexcept {
        return requests == 0 ? 0.0
                             : 100.0 * static_cast<double>(rejected + aborted) /
                                   static_cast<double>(requests);
    }
    [[nodiscard]] double acceptance_percent() const noexcept {
        return requests == 0 ? 0.0 : 100.0 - rejection_percent();
    }
    [[nodiscard]] double normalized_energy() const noexcept {
        return reference_energy <= 0.0 ? 0.0 : total_energy / reference_energy;
    }
};

} // namespace rmwp
