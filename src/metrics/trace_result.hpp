// Per-trace outcome of one simulation run: admission counts, energy, and
// RM bookkeeping — the raw material for every figure of Sec 5.
#pragma once

#include <cstddef>

#include "obs/metrics.hpp"

namespace rmwp {

struct TraceResult {
    std::size_t requests = 0;
    std::size_t accepted = 0;
    std::size_t rejected = 0;
    std::size_t completed = 0;
    /// Admitted tasks that missed their deadline — the firm-real-time
    /// guarantee means this must be 0; the simulator validates it.
    std::size_t deadline_misses = 0;
    /// Admitted tasks aborted because prediction/RM overhead stalls made
    /// their deadline unreachable (only possible when overhead > 0; their
    /// firm-real-time result would be useless, so they are dropped).
    std::size_t aborted = 0;
    /// Admitted tasks aborted by a fault-rescue activation: their resource
    /// failed (or throttled) and no re-mapping could still meet their
    /// deadline.  Accounting: accepted = completed + aborted + fault_aborted.
    std::size_t fault_aborted = 0;

    double total_energy = 0.0;      ///< execution + migration energy (adaptive tasks)
    double migration_energy = 0.0;
    std::size_t migrations = 0;
    /// Energy consumed by design-time critical reservations within the
    /// simulated horizon (kept separate from the adaptive total so RM
    /// comparisons are unaffected by the static workload).
    double critical_energy = 0.0;

    std::size_t activations = 0;
    /// Activations whose accepted plan used the predicted task.
    std::size_t plans_with_prediction = 0;
    /// Wall-clock seconds spent inside ResourceManager::decide.  (Like the
    /// audit counters below, excluded from bit-identical run comparisons:
    /// it measures the host, not the simulated system.)
    double decision_seconds = 0.0;

    // -- auditing (all zero unless built with RMWP_AUDIT and audit on) --
    /// Audit passes performed (decisions, rescues, rebuilds, completions).
    /// A violation never increments anything: the simulator throws.
    std::size_t audit_checks = 0;
    /// Admission verdicts the differential mode solved exactly.
    std::size_t audit_differential_checks = 0;
    /// Heuristic rejections the complete search overturned — allowed
    /// incompleteness (Sec 5.2), counted for visibility, never an error.
    std::size_t audit_differential_gaps = 0;

    // -- fault-tolerance extension (all zero without injected faults) --
    /// Outage/permanent-failure onsets that struck the platform.
    std::size_t resource_outages = 0;
    /// Throttle-interval onsets.
    std::size_t throttle_events = 0;
    /// Capacity-loss events that triggered a fault-rescue RM activation.
    std::size_t rescue_activations = 0;
    /// Displaced tasks (their resource went offline) that a rescue
    /// activation re-mapped onto surviving capacity and kept alive.
    std::size_t rescued = 0;
    /// Physical migrations performed by rescue activations (also counted in
    /// `migrations`/`migration_energy`).
    std::size_t rescue_migrations = 0;
    /// Wall-clock seconds spent inside ResourceManager::rescue — the
    /// re-planning component of recovery latency.
    double rescue_decision_seconds = 0.0;
    /// Share of total_energy consumed while the platform was degraded
    /// (at least one resource offline or throttled).
    double degraded_energy = 0.0;

    /// Normalisation reference: the sum over *all* requests (accepted or
    /// not) of the request's resource-averaged energy.  Dividing by it makes
    /// energies comparable across traces and RM configurations: a manager
    /// that accepts more work reports proportionally higher normalised
    /// energy, which is exactly the effect Fig 3 discusses.
    double reference_energy = 0.0;

    /// Metrics recorded by the observability layer (DESIGN.md §10); empty
    /// unless a TraceSink was attached to the run.  Deliberately outside
    /// `equivalent_ignoring_host_time`: the snapshot mixes sim- and
    /// host-scoped entries and has its own determinism predicate
    /// (obs::deterministic_equal), and attaching a sink must never change
    /// whether two runs compare equal.
    obs::MetricsSnapshot obs_metrics;

    [[nodiscard]] double rejection_percent() const noexcept {
        return requests == 0 ? 0.0
                             : 100.0 * static_cast<double>(rejected) /
                                   static_cast<double>(requests);
    }
    /// Requests that produced no useful result: rejected at admission,
    /// aborted because of overhead stalls, or aborted by a fault rescue.
    [[nodiscard]] double loss_percent() const noexcept {
        return requests == 0 ? 0.0
                             : 100.0 * static_cast<double>(rejected + aborted + fault_aborted) /
                                   static_cast<double>(requests);
    }
    [[nodiscard]] double acceptance_percent() const noexcept {
        return requests == 0 ? 0.0 : 100.0 - rejection_percent();
    }
    [[nodiscard]] double normalized_energy() const noexcept {
        return reference_energy <= 0.0 ? 0.0 : total_energy / reference_energy;
    }
};

/// Bit-exact equality over every simulated-system field.  The two
/// wall-clock fields (`decision_seconds`, `rescue_decision_seconds`)
/// measure the host, not the simulation, and are the only fields allowed
/// to differ between runs — this is the determinism contract the parallel
/// experiment engine is tested against (DESIGN.md Sec 9).
[[nodiscard]] bool equivalent_ignoring_host_time(const TraceResult& a,
                                                 const TraceResult& b) noexcept;

} // namespace rmwp
