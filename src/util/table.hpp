// Fixed-width console table printing used by the bench binaries to emit
// paper-style rows (Fig 2-5, Table 1, Sec 5.2) in a stable, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rmwp {

/// Column-aligned text table.  Cells are strings; convenience overloads
/// format numbers with a fixed precision so benchmark output is stable.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Start a new row.  Subsequent cell() calls fill it left to right.
    Table& row();
    Table& cell(std::string text);
    Table& cell(double value, int precision = 2);
    Table& cell(long long value);
    Table& cell(int value) { return cell(static_cast<long long>(value)); }
    Table& cell(std::size_t value) { return cell(static_cast<long long>(value)); }

    /// Render with a header underline and two-space column gaps.
    void print(std::ostream& os) const;

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper shared with CSV output).
[[nodiscard]] std::string format_fixed(double value, int precision);

} // namespace rmwp
