#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace rmwp {

std::string format_fixed(double value, int precision) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << value;
    return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    RMWP_EXPECT(!headers_.empty());
}

Table& Table::row() {
    rows_.emplace_back();
    return *this;
}

Table& Table::cell(std::string text) {
    RMWP_EXPECT(!rows_.empty());
    RMWP_EXPECT(rows_.back().size() < headers_.size());
    rows_.back().push_back(std::move(text));
    return *this;
}

Table& Table::cell(double value, int precision) { return cell(format_fixed(value, precision)); }

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& text = c < cells.size() ? cells[c] : std::string{};
            os << text << std::string(widths[c] - text.size(), ' ');
            if (c + 1 < headers_.size()) os << "  ";
        }
        os << '\n';
    };

    emit(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

} // namespace rmwp
