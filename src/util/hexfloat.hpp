// Bit-exact double serialization for text checkpoints (DESIGN.md §11).
//
// Doubles travel as C99 hex-floats ("%a"): exact round trip, locale
// independent, and still human-inspectable.  operator>> cannot parse
// hex-floats portably, so reading goes token -> strtod.  Shared by the
// online predictor's model checkpoint, the SimEngine stream checkpoint,
// and the serve-mode snapshot, so all three agree on the wire format.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace rmwp {

inline void put_f64(std::ostream& os, double value) {
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    os << buffer << '\n';
}

/// `context` names the stream in error messages, e.g. "predictor checkpoint".
inline double get_f64(std::istream& is, const char* context) {
    std::string token;
    if (!(is >> token)) throw std::runtime_error(std::string(context) + ": truncated stream");
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0')
        throw std::runtime_error(std::string(context) + ": bad number \"" + token + "\"");
    return value;
}

inline std::uint64_t get_u64(std::istream& is, const char* context) {
    std::uint64_t value = 0;
    if (!(is >> value)) throw std::runtime_error(std::string(context) + ": truncated stream");
    return value;
}

} // namespace rmwp
