// Strict environment-variable parsing shared by the experiment harness, the
// execution engine, and the benches (RMWP_TRACES, RMWP_REQUESTS, RMWP_SEED,
// RMWP_JOBS, ...).
#pragma once

#include <cstddef>

namespace rmwp {

/// Read a size scaling knob from the environment, falling back to `fallback`
/// when the variable is unset or empty.  A set-but-malformed value
/// (non-numeric, trailing garbage, negative, or zero) throws
/// std::runtime_error: a typo'd scaling knob must not silently run the
/// default-sized experiment.
[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback);

/// Read a boolean knob (RMWP_OBS_METRICS, ...): unset, empty, or "0" is
/// false, "1" is true, and anything else throws std::runtime_error — the
/// same fail-loudly contract as env_size.
[[nodiscard]] bool env_flag(const char* name);

} // namespace rmwp
