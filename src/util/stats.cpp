#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rmwp {

void RunningStats::add(double x) noexcept {
    if (n_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
    RMWP_EXPECT(n_ > 0);
    return mean_;
}

double RunningStats::variance() const {
    RMWP_EXPECT(n_ > 1);
    return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
    RMWP_EXPECT(n_ > 0);
    return min_;
}

double RunningStats::max() const {
    RMWP_EXPECT(n_ > 0);
    return max_;
}

double RunningStats::standard_error() const {
    return stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void Samples::add(double x) {
    values_.push_back(x);
    stats_.add(x);
    sorted_valid_ = false;
}

double Samples::quantile(double q) const {
    RMWP_EXPECT(!values_.empty());
    RMWP_EXPECT(q >= 0.0 && q <= 1.0);
    if (!sorted_valid_) {
        sorted_ = values_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
    if (sorted_.size() == 1) return sorted_.front();
    const double pos = q * static_cast<double>(sorted_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

double Samples::ci_halfwidth(double level) const {
    RMWP_EXPECT(level > 0.0 && level < 1.0);
    // Normal-approximation z for the common levels; defaults are all this
    // repository uses, so a tiny table beats pulling in an inverse-erf.
    double z = 1.959963984540054; // 95%
    if (level < 0.925) z = 1.6448536269514722; // 90%
    else if (level > 0.975) z = 2.5758293035489004; // 99%
    return z * stats_.standard_error();
}

double rmse(std::span<const double> predicted, std::span<const double> actual) {
    RMWP_EXPECT(predicted.size() == actual.size());
    RMWP_EXPECT(!predicted.empty());
    double acc = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double e = predicted[i] - actual[i];
        acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double nrmse(std::span<const double> predicted, std::span<const double> actual) {
    double mean_abs = 0.0;
    for (const double a : actual) mean_abs += std::abs(a);
    mean_abs /= static_cast<double>(actual.size());
    RMWP_EXPECT(mean_abs > 0.0);
    return rmse(predicted, actual) / mean_abs;
}

} // namespace rmwp
