#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace rmwp {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

} // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) noexcept {
    // Seed expansion per the reference implementation's recommendation.
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
}

Xoshiro256StarStar::result_type Xoshiro256StarStar::operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng::Rng(std::uint64_t seed) noexcept : engine_(seed), seed_(seed) {}

Rng Rng::derive(std::uint64_t stream_id) const noexcept {
    // Mix the parent seed with the stream id through splitmix64 twice so
    // that nearby ids map to distant seeds.
    std::uint64_t s = seed_ ^ (0xa0761d6478bd642fULL * (stream_id + 1));
    const std::uint64_t a = splitmix64(s);
    const std::uint64_t b = splitmix64(s);
    return Rng(a ^ rotl(b, 32));
}

double Rng::uniform01() noexcept {
    // 53 random bits into the mantissa: uniform on [0, 1).
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    RMWP_EXPECT(lo <= hi);
    return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
    RMWP_EXPECT(lo <= hi);
    const std::uint64_t range = hi - lo + 1; // range == 0 means the full 2^64 span
    if (range == 0) return engine_();
    // Debiased modulo by rejection (bounded iterations in expectation).
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range + 1) % range;
    std::uint64_t draw = engine_();
    while (draw > limit) draw = engine_();
    return lo + draw % range;
}

std::size_t Rng::index(std::size_t n) {
    RMWP_EXPECT(n > 0);
    return static_cast<std::size_t>(uniform_int(0, n - 1));
}

std::size_t Rng::index_excluding(std::size_t n, std::size_t excluded) {
    RMWP_EXPECT(n > 1);
    RMWP_EXPECT(excluded < n);
    // Draw from [0, n-2] and skip over the excluded slot.
    const std::size_t draw = static_cast<std::size_t>(uniform_int(0, n - 2));
    return draw >= excluded ? draw + 1 : draw;
}

double Rng::gaussian(double mean, double stddev) {
    RMWP_EXPECT(stddev >= 0.0);
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return mean + stddev * cached_gaussian_;
    }
    // Box-Muller; u1 must be strictly positive for the log.
    double u1 = uniform01();
    while (u1 <= 0.0) u1 = uniform01();
    const double u2 = uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return mean + stddev * radius * std::cos(angle);
}

double Rng::gaussian_above(double mean, double stddev, double lo) {
    RMWP_EXPECT(mean > lo);
    double draw = gaussian(mean, stddev);
    // Resampling keeps the upper tail intact; the acceptance probability is
    // high for every use in this repository (lo is several sigma below the
    // mean), so this terminates quickly.
    while (draw <= lo) draw = gaussian(mean, stddev);
    return draw;
}

bool Rng::bernoulli(double p) {
    RMWP_EXPECT(p >= 0.0 && p <= 1.0);
    return uniform01() < p;
}

} // namespace rmwp
