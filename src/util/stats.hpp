// Small statistics toolkit used by the experiment harness and tests:
// streaming moments (Welford), sample collections with quantiles and
// confidence intervals, and error metrics (RMSE / NRMSE) used to calibrate
// the noisy predictor.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rmwp {

/// Streaming mean/variance/extrema accumulator (Welford's algorithm).
class RunningStats {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

    /// Mean of the observed samples.  Requires count() > 0.
    [[nodiscard]] double mean() const;
    /// Unbiased sample variance.  Requires count() > 1.
    [[nodiscard]] double variance() const;
    /// Unbiased sample standard deviation.  Requires count() > 1.
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double sum() const noexcept { return sum_; }

    /// Standard error of the mean.  Requires count() > 1.
    [[nodiscard]] double standard_error() const;

    /// Merge another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Sample container with order statistics on top of RunningStats.
class Samples {
public:
    void add(double x);
    void reserve(std::size_t n) { values_.reserve(n); }

    [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
    [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
    [[nodiscard]] double mean() const { return stats_.mean(); }
    [[nodiscard]] double stddev() const { return stats_.stddev(); }
    [[nodiscard]] double min() const { return stats_.min(); }
    [[nodiscard]] double max() const { return stats_.max(); }
    [[nodiscard]] double sum() const noexcept { return stats_.sum(); }

    /// Linear-interpolation quantile, q in [0, 1].  Requires non-empty.
    [[nodiscard]] double quantile(double q) const;
    [[nodiscard]] double median() const { return quantile(0.5); }

    /// Half-width of the normal-approximation confidence interval around the
    /// mean at the given level (0.95 -> 1.96 sigma).  Requires count() > 1.
    [[nodiscard]] double ci_halfwidth(double level = 0.95) const;

    [[nodiscard]] const std::vector<double>& values() const noexcept { return values_; }

private:
    std::vector<double> values_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
    RunningStats stats_;
};

/// Root mean square error between predictions and truths (same length, > 0).
[[nodiscard]] double rmse(std::span<const double> predicted, std::span<const double> actual);

/// RMSE normalised by the mean magnitude of the actual values.
[[nodiscard]] double nrmse(std::span<const double> predicted, std::span<const double> actual);

} // namespace rmwp
