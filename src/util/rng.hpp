// Deterministic, platform-independent random number generation.
//
// std::normal_distribution and friends are implementation-defined, so the
// same seed yields different traces on different standard libraries.  All
// experiments in this repository must be bit-reproducible from a seed, so we
// implement the generator (xoshiro256**), the seeding scheme (splitmix64),
// and the samplers (Box-Muller Gaussian, Lemire-style bounded integers)
// ourselves.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace rmwp {

/// splitmix64: used to expand a single 64-bit seed into generator state and
/// to derive independent child streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** 1.0 by Blackman & Vigna — small, fast, and high quality.
class Xoshiro256StarStar {
public:
    using result_type = std::uint64_t;

    explicit Xoshiro256StarStar(std::uint64_t seed) noexcept;

    result_type operator()() noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

private:
    std::array<std::uint64_t, 4> s_{};
};

/// High-level sampling facade bound to one deterministic stream.
///
/// A single experiment seed fans out into per-trace / per-component child
/// streams through derive(), so adding a consumer in one place never
/// perturbs the draws seen by another.
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept;

    /// Child stream that is statistically independent of this one.  The
    /// (seed, stream_id) pair fully determines the child sequence.
    [[nodiscard]] Rng derive(std::uint64_t stream_id) const noexcept;

    /// Uniform in [0, 1).
    double uniform01() noexcept;

    /// Uniform in [lo, hi).  Requires lo <= hi.
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
    std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

    /// Index uniform in [0, n).  Requires n > 0.
    std::size_t index(std::size_t n);

    /// Index uniform in [0, n) excluding `excluded`.  Requires n > 1.
    std::size_t index_excluding(std::size_t n, std::size_t excluded);

    /// Gaussian with the given mean and standard deviation (Box-Muller).
    double gaussian(double mean, double stddev);

    /// Gaussian truncated (by resampling) to values > lo.
    double gaussian_above(double mean, double stddev, double lo);

    /// Bernoulli draw with probability p of returning true.
    bool bernoulli(double p);

    /// Fisher-Yates shuffle.
    template <typename T>
    void shuffle(std::vector<T>& v) {
        if (v.empty()) return;
        for (std::size_t i = v.size() - 1; i > 0; --i) {
            using std::swap;
            swap(v[i], v[index(i + 1)]);
        }
    }

    std::uint64_t raw() noexcept { return engine_(); }

private:
    Xoshiro256StarStar engine_;
    std::uint64_t seed_;
    bool has_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

} // namespace rmwp
