#include "util/env.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rmwp {

std::size_t env_size(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    // strtoull tolerates leading whitespace and signs (wrapping negatives
    // into huge values); require plain digits so "-5" and " 7" fail loudly
    // instead of requesting 2^64-5 traces or sneaking past review.
    for (const char* c = raw; *c != '\0'; ++c)
        if (*c < '0' || *c > '9')
            throw std::runtime_error(std::string(name) + " is not a valid positive integer: \"" +
                                     raw + "\"");
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0')
        throw std::runtime_error(std::string(name) + " is not a valid integer: \"" + raw + "\"");
    if (value == 0)
        throw std::runtime_error(std::string(name) + " must be at least 1, got \"" + raw + "\"");
    return static_cast<std::size_t>(value);
}

bool env_flag(const char* name) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return false;
    const std::string value(raw);
    if (value == "0") return false;
    if (value == "1") return true;
    throw std::runtime_error(std::string(name) + " must be 0 or 1, got \"" + raw + "\"");
}

} // namespace rmwp
