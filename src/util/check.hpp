// Runtime contract checking in the spirit of the C++ Core Guidelines
// (I.6 "Prefer Expects()", I.8 "Prefer Ensures()").  Violations throw, so
// tests can assert on them and callers can recover at a library boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace rmwp {

/// Thrown when a precondition (RMWP_EXPECT) is violated.
class precondition_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

/// Thrown when a postcondition or invariant (RMWP_ENSURE) is violated.
class postcondition_error : public std::logic_error {
public:
    using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_expect(const char* cond, const char* file, int line) {
    throw precondition_error(std::string("precondition failed: ") + cond + " at " + file + ":" +
                             std::to_string(line));
}

[[noreturn]] inline void fail_ensure(const char* cond, const char* file, int line) {
    throw postcondition_error(std::string("postcondition failed: ") + cond + " at " + file + ":" +
                              std::to_string(line));
}

} // namespace detail
} // namespace rmwp

#define RMWP_EXPECT(cond)                                                 \
    do {                                                                  \
        if (!(cond)) ::rmwp::detail::fail_expect(#cond, __FILE__, __LINE__); \
    } while (false)

#define RMWP_ENSURE(cond)                                                 \
    do {                                                                  \
        if (!(cond)) ::rmwp::detail::fail_ensure(#cond, __FILE__, __LINE__); \
    } while (false)
