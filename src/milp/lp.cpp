#include "milp/lp.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace rmwp::milp {

int LinearProgram::add_variable(std::string name, double lower, double upper) {
    RMWP_EXPECT(lower <= upper);
    variables_.push_back(Variable{std::move(name), lower, upper, /*integral=*/false});
    objective_.push_back(0.0);
    return static_cast<int>(variables_.size()) - 1;
}

int LinearProgram::add_integer_variable(std::string name, double lower, double upper) {
    const int index = add_variable(std::move(name), lower, upper);
    variables_[static_cast<std::size_t>(index)].integral = true;
    return index;
}

int LinearProgram::add_binary_variable(std::string name) {
    return add_integer_variable(std::move(name), 0.0, 1.0);
}

void LinearProgram::set_objective(int variable, double coefficient) {
    RMWP_EXPECT(variable >= 0 && variable < variable_count());
    objective_[static_cast<std::size_t>(variable)] = coefficient;
}

double LinearProgram::objective_coefficient(int variable) const {
    RMWP_EXPECT(variable >= 0 && variable < variable_count());
    return objective_[static_cast<std::size_t>(variable)];
}

int LinearProgram::add_constraint(std::vector<LinearTerm> terms, Relation relation, double rhs,
                                  std::string name) {
    // Merge duplicate variables so the tableau sees clean rows.
    std::map<int, double> merged;
    for (const LinearTerm& term : terms) {
        RMWP_EXPECT(term.variable >= 0 && term.variable < variable_count());
        merged[term.variable] += term.coefficient;
    }
    std::vector<LinearTerm> clean;
    clean.reserve(merged.size());
    for (const auto& [variable, coefficient] : merged)
        if (coefficient != 0.0) clean.push_back(LinearTerm{variable, coefficient});

    constraints_.push_back(Constraint{std::move(clean), relation, rhs, std::move(name)});
    return static_cast<int>(constraints_.size()) - 1;
}

const Variable& LinearProgram::variable(int index) const {
    RMWP_EXPECT(index >= 0 && index < variable_count());
    return variables_[static_cast<std::size_t>(index)];
}

const Constraint& LinearProgram::constraint(int index) const {
    RMWP_EXPECT(index >= 0 && index < constraint_count());
    return constraints_[static_cast<std::size_t>(index)];
}

void LinearProgram::set_bounds(int variable, double lower, double upper) {
    RMWP_EXPECT(variable >= 0 && variable < variable_count());
    RMWP_EXPECT(lower <= upper);
    variables_[static_cast<std::size_t>(variable)].lower = lower;
    variables_[static_cast<std::size_t>(variable)].upper = upper;
}

} // namespace rmwp::milp
