// Depth-first branch & bound over the integer variables of a
// LinearProgram, using the simplex LP relaxation for bounds.
#pragma once

#include <cstdint>

#include "milp/simplex.hpp"

namespace rmwp::milp {

struct MilpOptions {
    SimplexOptions simplex;
    std::uint64_t node_limit = 200000;
    double integrality_tolerance = 1e-6;
    /// Gap below which an incumbent stops the search early (absolute).
    double absolute_gap = 1e-9;
};

struct MilpSolution {
    SolveStatus status = SolveStatus::infeasible;
    double objective = 0.0;
    std::vector<double> values;
    std::uint64_t nodes = 0;
    bool proven_optimal = false; ///< false if the node limit cut the search
};

/// Solve the MILP.  `status == optimal` means an integer-feasible solution
/// was found (check proven_optimal for whether the search completed).
[[nodiscard]] MilpSolution solve_milp(const LinearProgram& lp, const MilpOptions& options = {});

} // namespace rmwp::milp
