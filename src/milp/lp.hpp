// A small mixed-integer linear programming toolkit, self-contained so the
// paper's exact formulation (Sec 4.2) can be encoded literally — big-M
// conditionals included — without an external solver.
//
// lp.hpp      problem representation (variables, bounds, rows, objective)
// simplex.hpp two-phase dense primal simplex for the LP relaxation
// milp.hpp    depth-first branch & bound on the integer variables
#pragma once

#include <string>
#include <vector>

namespace rmwp::milp {

enum class Relation { less_equal, greater_equal, equal };
enum class Sense { minimize, maximize };

/// One coefficient of a row or the objective.
struct LinearTerm {
    int variable = 0;
    double coefficient = 0.0;
};

/// A linear constraint  sum(terms) REL rhs.
struct Constraint {
    std::vector<LinearTerm> terms;
    Relation relation = Relation::less_equal;
    double rhs = 0.0;
    std::string name;
};

/// Variable metadata; bounds may be infinite.
struct Variable {
    std::string name;
    double lower = 0.0;
    double upper = 0.0;
    bool integral = false;
};

/// The problem container.  Variables are referenced by the dense index
/// returned from add_variable().
class LinearProgram {
public:
    /// Add a continuous variable with the given bounds (may be +/-inf).
    int add_variable(std::string name, double lower, double upper);
    /// Add an integral variable (branch & bound enforces integrality).
    int add_integer_variable(std::string name, double lower, double upper);
    /// Add a {0, 1} variable.
    int add_binary_variable(std::string name);

    void set_sense(Sense sense) noexcept { sense_ = sense; }
    [[nodiscard]] Sense sense() const noexcept { return sense_; }

    /// Set (overwrite) one objective coefficient.
    void set_objective(int variable, double coefficient);
    [[nodiscard]] double objective_coefficient(int variable) const;

    /// Add a constraint; terms referencing the same variable are summed.
    int add_constraint(std::vector<LinearTerm> terms, Relation relation, double rhs,
                       std::string name = {});

    [[nodiscard]] int variable_count() const noexcept { return static_cast<int>(variables_.size()); }
    [[nodiscard]] int constraint_count() const noexcept {
        return static_cast<int>(constraints_.size());
    }
    [[nodiscard]] const Variable& variable(int index) const;
    [[nodiscard]] const Constraint& constraint(int index) const;
    [[nodiscard]] const std::vector<Variable>& variables() const noexcept { return variables_; }
    [[nodiscard]] const std::vector<Constraint>& constraints() const noexcept {
        return constraints_;
    }

    /// Tighten a variable's bounds (used by branch & bound).
    void set_bounds(int variable, double lower, double upper);

private:
    std::vector<Variable> variables_;
    std::vector<Constraint> constraints_;
    std::vector<double> objective_;
    Sense sense_ = Sense::minimize;
};

} // namespace rmwp::milp
