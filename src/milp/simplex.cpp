#include "milp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace rmwp::milp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// How an original variable maps onto standard-form columns (x' >= 0).
struct ColumnMap {
    enum class Kind { shifted, negated, split } kind = Kind::shifted;
    int column = -1;       ///< primary column
    int negative_column = -1; ///< second column for split (free) variables
    double offset = 0.0;   ///< x = offset + x'  (shifted)  or  x = offset - x' (negated)
};

struct StandardForm {
    int columns = 0; ///< structural standard-form columns
    std::vector<ColumnMap> map; ///< per original variable
    // rows: coefficients over structural columns, all relations normalised
    // to rhs >= 0.
    struct Row {
        std::vector<double> coeffs;
        Relation relation = Relation::less_equal;
        double rhs = 0.0;
    };
    std::vector<Row> rows;
    std::vector<double> cost; ///< minimisation cost over structural columns
    double cost_offset = 0.0;
    double sign = 1.0; ///< +1 minimise, -1 original was maximise
};

StandardForm standardise(const LinearProgram& lp) {
    StandardForm sf;
    sf.map.resize(static_cast<std::size_t>(lp.variable_count()));
    sf.sign = lp.sense() == Sense::minimize ? 1.0 : -1.0;

    // Assign columns and record upper-bound rows to add afterwards.
    struct BoundRow {
        int column;
        double rhs;
    };
    std::vector<BoundRow> bound_rows;
    for (int v = 0; v < lp.variable_count(); ++v) {
        const Variable& var = lp.variable(v);
        ColumnMap& cm = sf.map[static_cast<std::size_t>(v)];
        if (std::isfinite(var.lower)) {
            cm.kind = ColumnMap::Kind::shifted;
            cm.column = sf.columns++;
            cm.offset = var.lower;
            if (std::isfinite(var.upper)) bound_rows.push_back({cm.column, var.upper - var.lower});
        } else if (std::isfinite(var.upper)) {
            cm.kind = ColumnMap::Kind::negated;
            cm.column = sf.columns++;
            cm.offset = var.upper;
        } else {
            cm.kind = ColumnMap::Kind::split;
            cm.column = sf.columns++;
            cm.negative_column = sf.columns++;
        }
    }

    sf.cost.assign(static_cast<std::size_t>(sf.columns), 0.0);
    for (int v = 0; v < lp.variable_count(); ++v) {
        const double c = sf.sign * lp.objective_coefficient(v);
        if (c == 0.0) continue;
        const ColumnMap& cm = sf.map[static_cast<std::size_t>(v)];
        switch (cm.kind) {
        case ColumnMap::Kind::shifted:
            sf.cost[static_cast<std::size_t>(cm.column)] += c;
            sf.cost_offset += c * cm.offset;
            break;
        case ColumnMap::Kind::negated:
            sf.cost[static_cast<std::size_t>(cm.column)] -= c;
            sf.cost_offset += c * cm.offset;
            break;
        case ColumnMap::Kind::split:
            sf.cost[static_cast<std::size_t>(cm.column)] += c;
            sf.cost[static_cast<std::size_t>(cm.negative_column)] -= c;
            break;
        }
    }

    auto add_row = [&](const std::vector<double>& coeffs, Relation rel, double rhs) {
        StandardForm::Row row;
        row.coeffs = coeffs;
        row.relation = rel;
        row.rhs = rhs;
        if (row.rhs < 0.0) {
            for (double& a : row.coeffs) a = -a;
            row.rhs = -row.rhs;
            if (row.relation == Relation::less_equal) row.relation = Relation::greater_equal;
            else if (row.relation == Relation::greater_equal) row.relation = Relation::less_equal;
        }
        sf.rows.push_back(std::move(row));
    };

    for (int r = 0; r < lp.constraint_count(); ++r) {
        const Constraint& con = lp.constraint(r);
        std::vector<double> coeffs(static_cast<std::size_t>(sf.columns), 0.0);
        double rhs = con.rhs;
        for (const LinearTerm& term : con.terms) {
            const ColumnMap& cm = sf.map[static_cast<std::size_t>(term.variable)];
            switch (cm.kind) {
            case ColumnMap::Kind::shifted:
                coeffs[static_cast<std::size_t>(cm.column)] += term.coefficient;
                rhs -= term.coefficient * cm.offset;
                break;
            case ColumnMap::Kind::negated:
                coeffs[static_cast<std::size_t>(cm.column)] -= term.coefficient;
                rhs -= term.coefficient * cm.offset;
                break;
            case ColumnMap::Kind::split:
                coeffs[static_cast<std::size_t>(cm.column)] += term.coefficient;
                coeffs[static_cast<std::size_t>(cm.negative_column)] -= term.coefficient;
                break;
            }
        }
        add_row(coeffs, con.relation, rhs);
    }
    for (const BoundRow& bound : bound_rows) {
        std::vector<double> coeffs(static_cast<std::size_t>(sf.columns), 0.0);
        coeffs[static_cast<std::size_t>(bound.column)] = 1.0;
        add_row(coeffs, Relation::less_equal, bound.rhs);
    }

    return sf;
}

/// Dense tableau with an explicit cost row; columns are
/// [structural | slack/surplus | artificial | rhs].
class Tableau {
public:
    Tableau(const StandardForm& sf, const SimplexOptions& options)
        : sf_(sf), options_(options), m_(sf.rows.size()) {
        // Count auxiliary columns.
        std::size_t slack = 0;
        std::size_t artificial = 0;
        for (const auto& row : sf.rows) {
            if (row.relation == Relation::less_equal) ++slack;
            else if (row.relation == Relation::greater_equal) ++slack, ++artificial;
            else ++artificial;
        }
        structural_ = static_cast<std::size_t>(sf.columns);
        total_ = structural_ + slack + artificial;
        artificial_begin_ = structural_ + slack;

        a_.assign(m_, std::vector<double>(total_ + 1, 0.0));
        basis_.assign(m_, 0);

        std::size_t next_slack = structural_;
        std::size_t next_artificial = artificial_begin_;
        for (std::size_t i = 0; i < m_; ++i) {
            const auto& row = sf.rows[i];
            for (std::size_t j = 0; j < structural_; ++j) a_[i][j] = row.coeffs[j];
            a_[i][total_] = row.rhs;
            switch (row.relation) {
            case Relation::less_equal:
                a_[i][next_slack] = 1.0;
                basis_[i] = next_slack++;
                break;
            case Relation::greater_equal:
                a_[i][next_slack] = -1.0;
                ++next_slack;
                a_[i][next_artificial] = 1.0;
                basis_[i] = next_artificial++;
                break;
            case Relation::equal:
                a_[i][next_artificial] = 1.0;
                basis_[i] = next_artificial++;
                break;
            }
        }
    }

    /// Run both phases; returns the solver status.
    SolveStatus solve() {
        // Phase 1: minimise the artificial sum.
        cost_.assign(total_ + 1, 0.0);
        for (std::size_t j = artificial_begin_; j < total_; ++j) cost_[j] = 1.0;
        for (std::size_t i = 0; i < m_; ++i)
            if (basis_[i] >= artificial_begin_) subtract_row(i);
        phase1_ = true;
        SolveStatus status = iterate();
        if (status != SolveStatus::optimal) return status;
        if (-cost_[total_] > 1e-7) return SolveStatus::infeasible;
        purge_artificials();

        // Phase 2: the real objective.
        cost_.assign(total_ + 1, 0.0);
        for (std::size_t j = 0; j < structural_; ++j) cost_[j] = sf_.cost[j];
        for (std::size_t i = 0; i < m_; ++i) {
            const double cb = basis_[i] < structural_ ? sf_.cost[basis_[i]] : 0.0;
            if (cb != 0.0)
                for (std::size_t j = 0; j <= total_; ++j) cost_[j] -= cb * a_[i][j];
        }
        phase1_ = false;
        return iterate();
    }

    /// Structural-column values of the current basic solution.
    [[nodiscard]] std::vector<double> structural_values() const {
        std::vector<double> x(structural_, 0.0);
        for (std::size_t i = 0; i < m_; ++i)
            if (basis_[i] < structural_) x[basis_[i]] = a_[i][total_];
        return x;
    }

    [[nodiscard]] int iterations() const noexcept { return iterations_; }

private:
    void subtract_row(std::size_t i) {
        for (std::size_t j = 0; j <= total_; ++j) cost_[j] -= a_[i][j];
    }

    /// After phase 1, pivot remaining artificials out of the basis (or drop
    /// their rows when redundant) and block the columns from re-entering.
    void purge_artificials() {
        for (std::size_t i = 0; i < m_; ++i) {
            if (basis_[i] < artificial_begin_) continue;
            std::size_t pivot_col = total_;
            for (std::size_t j = 0; j < artificial_begin_; ++j) {
                if (std::abs(a_[i][j]) > 1e-9) {
                    pivot_col = j;
                    break;
                }
            }
            if (pivot_col == total_) {
                // Redundant row: everything is zero; neutralise it.
                for (std::size_t j = 0; j <= total_; ++j) a_[i][j] = 0.0;
                dead_rows_.push_back(i);
                continue;
            }
            pivot(i, pivot_col);
        }
        artificial_blocked_ = true;
    }

    SolveStatus iterate() {
        while (true) {
            if (iterations_ >= options_.max_iterations) return SolveStatus::iteration_limit;
            const bool bland = iterations_ >= options_.bland_threshold;

            const std::size_t enter_limit = artificial_blocked_ ? artificial_begin_ : total_;
            std::size_t entering = total_;
            double best = -options_.tolerance;
            for (std::size_t j = 0; j < enter_limit; ++j) {
                if (cost_[j] < best) {
                    best = cost_[j];
                    entering = j;
                    if (bland) break; // first improving column
                }
            }
            if (entering == total_) return SolveStatus::optimal;

            // Ratio test; ties resolved by the smallest basis index
            // (lexicographic enough for our problem sizes).
            std::size_t leaving = m_;
            double best_ratio = kInf;
            for (std::size_t i = 0; i < m_; ++i) {
                if (is_dead(i)) continue;
                if (a_[i][entering] <= options_.tolerance) continue;
                const double ratio = a_[i][total_] / a_[i][entering];
                if (ratio < best_ratio - 1e-12 ||
                    (ratio < best_ratio + 1e-12 && (leaving == m_ || basis_[i] < basis_[leaving]))) {
                    best_ratio = ratio;
                    leaving = i;
                }
            }
            if (leaving == m_) return phase1_ ? SolveStatus::infeasible : SolveStatus::unbounded;

            pivot(leaving, entering);
            ++iterations_;
        }
    }

    [[nodiscard]] bool is_dead(std::size_t row) const {
        return std::find(dead_rows_.begin(), dead_rows_.end(), row) != dead_rows_.end();
    }

    void pivot(std::size_t row, std::size_t col) {
        const double p = a_[row][col];
        RMWP_ENSURE(std::abs(p) > 1e-12);
        for (std::size_t j = 0; j <= total_; ++j) a_[row][j] /= p;
        for (std::size_t i = 0; i < m_; ++i) {
            if (i == row) continue;
            const double factor = a_[i][col];
            if (factor == 0.0) continue;
            for (std::size_t j = 0; j <= total_; ++j) a_[i][j] -= factor * a_[row][j];
        }
        const double cf = cost_[col];
        if (cf != 0.0)
            for (std::size_t j = 0; j <= total_; ++j) cost_[j] -= cf * a_[row][j];
        basis_[row] = col;
    }

    const StandardForm& sf_;
    const SimplexOptions& options_;
    std::size_t m_;
    std::size_t structural_ = 0;
    std::size_t total_ = 0;
    std::size_t artificial_begin_ = 0;
    std::vector<std::vector<double>> a_;
    std::vector<double> cost_;
    std::vector<std::size_t> basis_;
    std::vector<std::size_t> dead_rows_;
    bool artificial_blocked_ = false;
    bool phase1_ = true;
    int iterations_ = 0;
};

} // namespace

const char* to_string(SolveStatus status) noexcept {
    switch (status) {
    case SolveStatus::optimal: return "optimal";
    case SolveStatus::infeasible: return "infeasible";
    case SolveStatus::unbounded: return "unbounded";
    case SolveStatus::iteration_limit: return "iteration_limit";
    }
    return "unknown";
}

LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options) {
    const StandardForm sf = standardise(lp);
    Tableau tableau(sf, options);

    LpSolution solution;
    solution.status = tableau.solve();
    if (solution.status != SolveStatus::optimal) return solution;

    const std::vector<double> x = tableau.structural_values();
    solution.values.resize(static_cast<std::size_t>(lp.variable_count()));
    for (int v = 0; v < lp.variable_count(); ++v) {
        const ColumnMap& cm = sf.map[static_cast<std::size_t>(v)];
        double value = 0.0;
        switch (cm.kind) {
        case ColumnMap::Kind::shifted:
            value = cm.offset + x[static_cast<std::size_t>(cm.column)];
            break;
        case ColumnMap::Kind::negated:
            value = cm.offset - x[static_cast<std::size_t>(cm.column)];
            break;
        case ColumnMap::Kind::split:
            value = x[static_cast<std::size_t>(cm.column)] -
                    x[static_cast<std::size_t>(cm.negative_column)];
            break;
        }
        solution.values[static_cast<std::size_t>(v)] = value;
    }

    solution.objective = 0.0;
    for (int v = 0; v < lp.variable_count(); ++v)
        solution.objective +=
            lp.objective_coefficient(v) * solution.values[static_cast<std::size_t>(v)];
    return solution;
}

} // namespace rmwp::milp
