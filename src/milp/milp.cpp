#include "milp/milp.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace rmwp::milp {
namespace {

struct BranchState {
    LinearProgram problem; ///< working copy whose bounds get tightened
    const MilpOptions* options = nullptr;
    double best_objective = 0.0;
    std::vector<double> best_values;
    bool have_incumbent = false;
    std::uint64_t nodes = 0;
    bool exhausted_budget = false;
    double sense_sign = 1.0; ///< +1 minimise, -1 maximise

    [[nodiscard]] int most_fractional(const std::vector<double>& values) const {
        int best = -1;
        double best_frac = options->integrality_tolerance;
        for (int v = 0; v < problem.variable_count(); ++v) {
            if (!problem.variable(v).integral) continue;
            const double value = values[static_cast<std::size_t>(v)];
            const double frac = std::abs(value - std::round(value));
            if (frac > best_frac) {
                best_frac = frac;
                best = v;
            }
        }
        return best;
    }

    void dfs() {
        if (nodes >= options->node_limit) {
            exhausted_budget = true;
            return;
        }
        ++nodes;

        const LpSolution relaxed = solve_lp(problem, options->simplex);
        if (relaxed.status == SolveStatus::infeasible) return;
        if (relaxed.status != SolveStatus::optimal) {
            // Unbounded relaxations and iteration limits poison the node: we
            // cannot bound the subtree, so we conservatively stop claiming
            // optimality but keep any incumbent.
            exhausted_budget = true;
            return;
        }

        const double bound = sense_sign * relaxed.objective;
        if (have_incumbent && bound >= sense_sign * best_objective - options->absolute_gap) return;

        const int branch_var = most_fractional(relaxed.values);
        if (branch_var < 0) {
            // Integer feasible.
            if (!have_incumbent || bound < sense_sign * best_objective) {
                best_objective = relaxed.objective;
                best_values = relaxed.values;
                have_incumbent = true;
            }
            return;
        }

        const double value = relaxed.values[static_cast<std::size_t>(branch_var)];
        const Variable saved = problem.variable(branch_var);
        const double floor_value = std::floor(value);

        // Down branch: x <= floor(value).
        if (floor_value >= saved.lower - options->integrality_tolerance) {
            problem.set_bounds(branch_var, saved.lower, std::min(saved.upper, floor_value));
            dfs();
            problem.set_bounds(branch_var, saved.lower, saved.upper);
        }
        // Up branch: x >= ceil(value).
        const double ceil_value = floor_value + 1.0;
        if (ceil_value <= saved.upper + options->integrality_tolerance) {
            problem.set_bounds(branch_var, std::max(saved.lower, ceil_value), saved.upper);
            dfs();
            problem.set_bounds(branch_var, saved.lower, saved.upper);
        }
    }
};

} // namespace

MilpSolution solve_milp(const LinearProgram& lp, const MilpOptions& options) {
    BranchState state;
    state.problem = lp;
    state.options = &options;
    state.sense_sign = lp.sense() == Sense::minimize ? 1.0 : -1.0;

    state.dfs();

    MilpSolution solution;
    solution.nodes = state.nodes;
    if (state.have_incumbent) {
        solution.status = SolveStatus::optimal;
        solution.objective = state.best_objective;
        solution.values = std::move(state.best_values);
        solution.proven_optimal = !state.exhausted_budget;
    } else {
        solution.status =
            state.exhausted_budget ? SolveStatus::iteration_limit : SolveStatus::infeasible;
        solution.proven_optimal = false;
    }
    return solution;
}

} // namespace rmwp::milp
