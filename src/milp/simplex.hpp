// Two-phase dense primal simplex for the LP relaxation.
//
// Bounded and free variables are reduced to the standard form x >= 0 by
// shifting/negating/splitting; finite upper bounds become explicit rows.
// Phase 1 minimises the sum of artificial variables; phase 2 optimises the
// user objective.  Dantzig pricing with a switch to Bland's rule after a
// degeneracy threshold guarantees termination.
#pragma once

#include <vector>

#include "milp/lp.hpp"

namespace rmwp::milp {

enum class SolveStatus {
    optimal,
    infeasible,
    unbounded,
    iteration_limit,
};

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

struct LpSolution {
    SolveStatus status = SolveStatus::iteration_limit;
    double objective = 0.0;
    std::vector<double> values; ///< one entry per LinearProgram variable
};

struct SimplexOptions {
    int max_iterations = 20000;
    /// Iterations of Dantzig pricing before switching to Bland's rule.
    int bland_threshold = 5000;
    double tolerance = 1e-9;
};

/// Solve the LP relaxation (integrality ignored).
[[nodiscard]] LpSolution solve_lp(const LinearProgram& lp, const SimplexOptions& options = {});

} // namespace rmwp::milp
