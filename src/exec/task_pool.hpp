// Parallel execution engine for the Monte-Carlo experiment sweeps.
//
// The whole evaluation (Sec 5) is embarrassingly parallel: every
// (trace, RM, predictor) cell derives its randomness from fixed per-trace
// stream ids (`Rng(seed).derive(stream)`), so cells share no mutable state
// and can run on any thread in any order without perturbing a single draw.
// TaskPool exploits that with a chunked self-scheduling index loop: workers
// steal the next unclaimed index from a shared atomic counter, results are
// written to index-addressed slots, and the caller merges them in
// deterministic index order — `RMWP_JOBS=1` and `RMWP_JOBS=N` are required
// to produce bit-identical results (tests/test_parallel.cpp pins this).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rmwp {

/// A fixed set of worker threads executing index ranges.  Workers
/// self-schedule single indices off a shared atomic cursor — each index of
/// an experiment sweep is a whole trace simulation, so per-index stealing
/// gives ideal load balance with negligible contention.
class TaskPool {
public:
    /// Spawns `threads` workers (at least 1).
    explicit TaskPool(std::size_t threads);
    ~TaskPool();

    TaskPool(const TaskPool&) = delete;
    TaskPool& operator=(const TaskPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Run fn(i) for every i in [0, count), distributed across the workers;
    /// blocks until all indices completed.  The first exception thrown by
    /// any fn(i) is rethrown here (remaining unclaimed indices are
    /// abandoned).  Not reentrant: one for_each at a time per pool.
    void for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();
    void run_indices();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    std::uint64_t generation_ = 0; ///< bumped per for_each to wake workers
    std::size_t busy_ = 0;         ///< workers currently inside a job
    bool stop_ = false;

    // Per-job state (valid between start and completion of one for_each).
    const std::function<void(std::size_t)>* fn_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> done_{0};
    std::atomic<bool> failed_{false};
    std::exception_ptr error_;
};

/// One-shot parallel index loop: runs fn(i) for i in [0, count) on `jobs`
/// threads (inline on the calling thread when jobs <= 1 or count <= 1).
/// Completion order is unspecified; determinism comes from writing results
/// into index-addressed slots.  Rethrows the first exception.
void parallel_for(std::size_t jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

/// The session's parallelism: RMWP_JOBS when set (strictly parsed, >= 1),
/// otherwise the hardware concurrency (>= 1).
[[nodiscard]] std::size_t default_jobs();

/// Persistent thread-local pool for intra-decision parallelism (the sharded
/// admission probes of DESIGN.md §15).  Unlike parallel_for, which spawns a
/// one-shot pool per call, this pool is created on first use and reused for
/// every subsequent decision on the calling thread — the steady-state hot
/// path never spawns threads.  Grows (never shrinks) to at least `workers`
/// pool threads; the caller participates in for_each, so `workers` should
/// be the desired total concurrency minus one.  Thread-local so RM objects
/// shared across the experiment engine's threads never contend on it.
[[nodiscard]] TaskPool& probe_pool(std::size_t workers);

} // namespace rmwp
