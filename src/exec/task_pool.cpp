#include "exec/task_pool.hpp"

#include <algorithm>
#include <memory>

#include "util/check.hpp"
#include "util/env.hpp"

namespace rmwp {

TaskPool::TaskPool(std::size_t threads) {
    threads = std::max<std::size_t>(threads, 1);
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

TaskPool::~TaskPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void TaskPool::run_indices() {
    // Self-scheduling: claim one index at a time.  After an exception the
    // remaining indices are still claimed but skipped, so `done_` always
    // drains to `count_` and the waiter in for_each wakes up to rethrow —
    // parking the cursor instead would strand the unclaimed indices and
    // deadlock the completion wait.
    while (true) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_) return;
        if (!failed_.load(std::memory_order_acquire)) {
            try {
                (*fn_)(i);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    if (!error_) error_ = std::current_exception();
                }
                failed_.store(true, std::memory_order_release);
            }
        }
        if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
            const std::lock_guard<std::mutex> lock(mutex_);
            done_cv_.notify_all();
        }
    }
}

void TaskPool::worker_loop() {
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) return;
            seen = generation_;
            ++busy_;
        }
        run_indices();
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            --busy_;
        }
        done_cv_.notify_all();
    }
}

void TaskPool::for_each(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    std::unique_lock<std::mutex> lock(mutex_);
    // A worker from the previous job may still be between its last index
    // and going idle; it reads the job state, so drain before rewriting it.
    done_cv_.wait(lock, [&] { return busy_ == 0; });
    fn_ = &fn;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    failed_.store(false, std::memory_order_relaxed);
    error_ = nullptr;
    ++generation_;
    lock.unlock();
    start_cv_.notify_all();
    // The caller works too: with all indices claimed by workers this returns
    // immediately, otherwise it shortens the tail.
    run_indices();
    lock.lock();
    done_cv_.wait(lock, [&] { return done_.load(std::memory_order_acquire) == count_; });
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void parallel_for(std::size_t jobs, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
    if (jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }
    // No point spawning more workers than indices; the caller participates,
    // so `jobs` total execution streams means jobs - 1 pool threads.
    TaskPool pool(std::min(jobs - 1, count - 1));
    pool.for_each(count, fn);
}

TaskPool& probe_pool(std::size_t workers) {
    static thread_local std::unique_ptr<TaskPool> pool;
    workers = std::max<std::size_t>(workers, 1);
    if (pool == nullptr || pool->size() < workers) pool = std::make_unique<TaskPool>(workers);
    return *pool;
}

std::size_t default_jobs() {
    const std::size_t hardware = std::max<unsigned>(std::thread::hardware_concurrency(), 1U);
    return env_size("RMWP_JOBS", hardware);
}

} // namespace rmwp
