#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rmwp {
namespace {

/// Exponential draw with the given mean (inverse-CDF on a uniform).
double exponential(Rng& rng, double mean) { return -mean * std::log1p(-rng.uniform01()); }

/// Physical core ids of the platform, ascending.
std::vector<ResourceId> physical_ids(const Platform& platform) {
    std::vector<ResourceId> ids;
    for (const Resource& resource : platform) ids.push_back(resource.physical());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

/// Number of distinct physical cores (other than `self`) offline at time t
/// under the already accepted events.
std::size_t offline_others_at(const std::vector<FaultEvent>& accepted, ResourceId self, Time t) {
    std::vector<ResourceId> offline;
    for (const FaultEvent& event : accepted) {
        if (!event.takes_offline() || event.resource == self || !event.active_at(t)) continue;
        offline.push_back(event.resource);
    }
    std::sort(offline.begin(), offline.end());
    offline.erase(std::unique(offline.begin(), offline.end()), offline.end());
    return offline.size();
}

/// Whether taking `candidate.resource` offline during the candidate's span
/// would ever leave fewer than `min_online` physical cores up.
bool violates_min_online(const std::vector<FaultEvent>& accepted, const FaultEvent& candidate,
                         std::size_t physical_count, std::size_t min_online) {
    // The offline count is piecewise constant; its breakpoints inside the
    // candidate's span are the accepted events' starts and ends.
    std::vector<Time> probes{candidate.start};
    for (const FaultEvent& event : accepted) {
        if (!event.takes_offline()) continue;
        if (event.start > candidate.start && event.start < candidate.end)
            probes.push_back(event.start);
        if (event.end > candidate.start && event.end < candidate.end) probes.push_back(event.end);
    }
    for (const Time t : probes) {
        const std::size_t offline = offline_others_at(accepted, candidate.resource, t) + 1;
        if (physical_count - offline < min_online) return true;
    }
    return false;
}

void sort_events(std::vector<FaultEvent>& events) {
    std::sort(events.begin(), events.end(), [](const FaultEvent& a, const FaultEvent& b) {
        if (a.start != b.start) return a.start < b.start;
        if (a.resource != b.resource) return a.resource < b.resource;
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    });
}

} // namespace

const char* to_string(FaultKind kind) noexcept {
    switch (kind) {
    case FaultKind::outage: return "outage";
    case FaultKind::permanent: return "permanent";
    case FaultKind::throttle: return "throttle";
    }
    return "unknown";
}

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events) : events_(std::move(events)) {
    for (const FaultEvent& event : events_) {
        RMWP_EXPECT(event.start >= 0.0);
        RMWP_EXPECT(event.end > event.start);
        RMWP_EXPECT(event.kind != FaultKind::throttle || event.factor >= 1.0);
        RMWP_EXPECT(event.kind != FaultKind::permanent || std::isinf(event.end));
    }
    sort_events(events_);
}

PlatformHealth FaultSchedule::health_at(const Platform& platform, Time t) const {
    PlatformHealth health;
    for (const FaultEvent& event : events_) {
        if (!event.active_at(t)) continue;
        if (event.takes_offline()) {
            health.set_online(platform, event.resource, false);
        } else if (event.factor > health.throttle(event.resource)) {
            // Overlapping throttles: the harshest factor wins.
            health.set_throttle(platform, event.resource, event.factor);
        }
    }
    return health;
}

FaultSchedule generate_fault_schedule(const Platform& platform, const FaultParams& params,
                                      Time horizon, Rng& rng) {
    RMWP_EXPECT(params.min_online >= 1);
    RMWP_EXPECT(params.throttle_factor_min >= 1.0);
    RMWP_EXPECT(params.throttle_factor_max >= params.throttle_factor_min);
    if (!params.any() || horizon <= 0.0) return FaultSchedule{};

    const std::vector<ResourceId> cores = physical_ids(platform);
    std::vector<FaultEvent> accepted;

    // Outages and permanent failures first (they constrain each other via
    // min_online); resources in ascending id order for determinism.
    for (const ResourceId core : cores) {
        if (params.outage_rate > 0.0) {
            const double gap_mean = 1000.0 / params.outage_rate;
            Time t = exponential(rng, gap_mean);
            while (t < horizon) {
                FaultEvent event;
                event.kind = FaultKind::outage;
                event.resource = core;
                event.start = t;
                event.end = t + std::max(1e-3, exponential(rng, params.outage_duration_mean));
                if (!violates_min_online(accepted, event, cores.size(), params.min_online))
                    accepted.push_back(event);
                // Next onset only after this outage would have ended, so one
                // resource's outages never overlap each other.
                t = event.end + exponential(rng, gap_mean);
            }
        }
        if (params.permanent_prob > 0.0 && rng.bernoulli(params.permanent_prob)) {
            FaultEvent event;
            event.kind = FaultKind::permanent;
            event.resource = core;
            event.start = horizon * rng.uniform(0.1, 0.9);
            if (!violates_min_online(accepted, event, cores.size(), params.min_online))
                accepted.push_back(event);
        }
    }

    // Throttle intervals are independent of the offline budget.
    for (const ResourceId core : cores) {
        if (params.throttle_rate <= 0.0) continue;
        const double gap_mean = 1000.0 / params.throttle_rate;
        Time t = exponential(rng, gap_mean);
        while (t < horizon) {
            FaultEvent event;
            event.kind = FaultKind::throttle;
            event.resource = core;
            event.start = t;
            event.end = t + std::max(1e-3, exponential(rng, params.throttle_duration_mean));
            event.factor = rng.uniform(params.throttle_factor_min, params.throttle_factor_max);
            accepted.push_back(event);
            t = event.end + exponential(rng, gap_mean);
        }
    }

    sort_events(accepted);
    // Schedule-wide postcondition (independent of the incremental filter
    // above): at every onset instant — the only times the offline count can
    // grow — at least min_online distinct physical cores remain up.
    for (const FaultEvent& event : accepted) {
        if (!event.takes_offline()) continue;
        const std::size_t offline = offline_others_at(accepted, event.resource, event.start) + 1;
        RMWP_ENSURE(cores.size() - offline >= params.min_online);
    }
    return FaultSchedule(std::move(accepted));
}

} // namespace rmwp
