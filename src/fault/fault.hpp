// Fault injection: a deterministic, seeded schedule of per-resource fault
// events — transient outages (the resource goes offline for an interval and
// recovers), permanent failures (offline until the end of the run), and
// throttle intervals (effective WCETs inflated by a factor, e.g. thermal
// capping).
//
// Faults strike *physical* cores: on DVFS platforms every operating point
// of the struck core is affected together.  The schedule is pure data; the
// simulator turns each onset/recovery into a discrete event, maintains the
// resulting PlatformHealth mask, and triggers a fault-rescue RM activation
// whenever capacity is lost (see sim/simulator.cpp and DESIGN.md §7).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "platform/health.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"
#include "workload/trace.hpp"

namespace rmwp {

/// The numeric order is part of the observability contract (DESIGN.md §10):
/// fault_onset/fault_recovery TraceEvents carry static_cast<uint32_t>(kind)
/// in their aux field and the Chrome exporter's span names index by it
/// (src/obs/export.cpp) — append new kinds at the end only.
enum class FaultKind {
    outage,    ///< resource offline during [start, end), then recovers
    permanent, ///< resource offline from `start` forever (end = +inf)
    throttle,  ///< effective WCETs on the resource x factor during [start, end)
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One injected fault on one physical resource.
struct FaultEvent {
    FaultKind kind = FaultKind::outage;
    ResourceId resource = 0; ///< physical core id
    Time start = 0.0;
    Time end = std::numeric_limits<Time>::infinity(); ///< recovery instant (exclusive)
    double factor = 1.0;     ///< WCET multiplier while active (throttle only)

    /// Whether the fault is in effect at time t (half-open interval).
    [[nodiscard]] bool active_at(Time t) const noexcept { return start <= t && t < end; }
    [[nodiscard]] bool takes_offline() const noexcept { return kind != FaultKind::throttle; }
};

/// Generation knobs.  Rates are expected events per physical resource per
/// 1000 time units (milliseconds in this repository), drawn as Poisson
/// processes; durations are exponential.  All zero (the default) means no
/// faults, so fault-free configurations are bit-identical to the seed.
struct FaultParams {
    double outage_rate = 0.0;
    double outage_duration_mean = 40.0;
    /// Per-resource probability of one permanent failure somewhere in the
    /// horizon (uniform onset over the middle 80% of the horizon).
    double permanent_prob = 0.0;
    double throttle_rate = 0.0;
    double throttle_duration_mean = 60.0;
    double throttle_factor_min = 1.5;
    double throttle_factor_max = 3.0;
    /// Minimum number of physical cores the generator keeps online at every
    /// instant (outages that would sink below this are dropped).  At least 1.
    std::size_t min_online = 1;

    [[nodiscard]] bool any() const noexcept {
        return outage_rate > 0.0 || permanent_prob > 0.0 || throttle_rate > 0.0;
    }
};

/// An immutable, time-sorted set of fault events for one run.
class FaultSchedule {
public:
    FaultSchedule() = default;
    /// Validates: resources are physical ids of some platform (checked at
    /// use), intervals well-formed, throttle factors >= 1.
    explicit FaultSchedule(std::vector<FaultEvent> events);

    [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
    [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept { return events_; }

    /// The health mask in effect at time t: a resource is offline while any
    /// outage/permanent event covers t, and throttled by the largest factor
    /// of the throttle events covering t.
    [[nodiscard]] PlatformHealth health_at(const Platform& platform, Time t) const;

private:
    std::vector<FaultEvent> events_; ///< sorted by (start, resource)
};

/// Deterministically generate a fault schedule over [0, horizon) from the
/// given seed stream.  Guarantees at least params.min_online physical cores
/// online at every instant.
[[nodiscard]] FaultSchedule generate_fault_schedule(const Platform& platform,
                                                    const FaultParams& params, Time horizon,
                                                    Rng& rng);

} // namespace rmwp
