#include "sim/simulator.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "obs/trace_sink.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

#ifdef RMWP_AUDIT
#include "audit/audit.hpp"
#endif

namespace rmwp {
namespace {

constexpr double kFractionEps = 1e-9;
constexpr double kTimeEps = 1e-6;

constexpr std::uint32_t kArrivalEvent = 0;
constexpr std::uint32_t kCompletionEvent = 1;
constexpr std::uint32_t kActivationEvent = 2;
constexpr std::uint32_t kFaultOnsetEvent = 3;
constexpr std::uint32_t kFaultRecoveryEvent = 4;

#ifdef RMWP_OBS
/// Cached instrument handles (DESIGN.md §10).  Registered once per run, in
/// a fixed order, so hot-path sites update through pointers instead of
/// name lookups and the snapshot layout never depends on which events the
/// run happens to hit.
struct Instruments {
    obs::Counter* admit = nullptr;
    std::array<obs::Counter*, kRejectReasonCount> reject{};
    obs::Counter* preempt = nullptr;
    obs::Counter* migrate = nullptr;
    obs::Counter* complete = nullptr;
    obs::Counter* abort_overhead = nullptr;
    obs::Counter* plan_rebuild = nullptr;
    obs::Counter* rescue_activation = nullptr;
    obs::Counter* rescue_keep = nullptr;
    obs::Counter* rescue_abort = nullptr;
    obs::Counter* fault_onset = nullptr;
    obs::Counter* fault_recovery = nullptr;
    std::vector<obs::Gauge*> busy_time; ///< indexed by ResourceId
    obs::Histogram* plan_size = nullptr;
    obs::Histogram* admission_latency_us = nullptr;
};
#endif

class Simulation {
public:
    Simulation(const Platform& platform, const Catalog& catalog, const Trace& trace,
               ResourceManager& rm, Predictor& predictor,
               const ReservationTable* reservations, const SimOptions& options)
        : platform_(platform),
          catalog_(catalog),
          trace_(trace),
          rm_(rm),
          predictor_(predictor),
          reservations_(reservations),
          options_(options),
          execution_rng_(options.execution_seed) {}

    TraceResult run() {
#ifdef RMWP_OBS
        if (options_.sink != nullptr) init_obs();
#endif
        result_.requests = trace_.size();
        for (const Request& request : trace_)
            result_.reference_energy += catalog_.type(request.type).mean_energy();

        for (std::size_t j = 0; j < trace_.size(); ++j)
            events_.schedule(trace_.request(j).arrival, kArrivalEvent, j);

        if (options_.fault_schedule != nullptr) {
            const auto& faults = options_.fault_schedule->events();
            for (std::size_t f = 0; f < faults.size(); ++f) {
                events_.schedule(faults[f].start, kFaultOnsetEvent, f);
                if (std::isfinite(faults[f].end))
                    events_.schedule(faults[f].end, kFaultRecoveryEvent, f);
            }
        }

        while (!events_.empty()) {
            const Event event = events_.pop();
            if (event.kind == kArrivalEvent) {
                RMWP_TRACE(options_.sink, event.time, obs::EventKind::arrival, event.payload,
                           obs::kNoResource,
                           trace_.request(static_cast<std::size_t>(event.payload))
                               .absolute_deadline());
                if (options_.activation_period > 0.0) {
                    enqueue_for_batch(static_cast<std::size_t>(event.payload));
                } else {
                    handle_arrival(static_cast<std::size_t>(event.payload));
                }
            } else if (event.kind == kActivationEvent) {
                handle_activation(event.time);
            } else if (event.kind == kFaultOnsetEvent || event.kind == kFaultRecoveryEvent) {
                handle_fault(event.time, event.kind == kFaultOnsetEvent,
                             static_cast<std::size_t>(event.payload));
            } else {
                advance(event.time);
                // The completion event is only valid for the current plan
                // generation, so the task must really be gone by now.
                if (options_.validate) RMWP_ENSURE(find_task(event.payload) == nullptr);
#ifdef RMWP_AUDIT
                // Completion audit: the executed window must still satisfy
                // every structural invariant it satisfied when planned.
                // (Window-only: task states have advanced past the items.)
                if (options_.audit)
                    run_audit(auditor_.audit_window(platform_, audited_now_, audited_items_,
                                                    schedule_, &health_));
#endif
                // With execution-time variation the completion was (likely)
                // earlier than the WCET plan assumed: re-plan immediately so
                // queued tasks reclaim the slack.
                if (options_.execution_time_factor_min < 1.0) rebuild(event.time);
            }
        }
        advance(std::numeric_limits<Time>::infinity());
        RMWP_ENSURE(active_.empty());
#ifdef RMWP_OBS
        if (options_.sink != nullptr) result_.obs_metrics = options_.sink->metrics().snapshot();
#endif
        return result_;
    }

private:
    [[nodiscard]] ActiveTask* find_task(TaskUid uid) {
        for (ActiveTask& task : active_)
            if (task.uid == uid) return &task;
        return nullptr;
    }

    /// Fraction of the WCET this task actually needs (1.0 without the
    /// execution-time-variation extension).
    [[nodiscard]] double actual_work(TaskUid uid) const {
        const auto it = actual_work_.find(uid);
        return it == actual_work_.end() ? 1.0 : it->second;
    }

    /// Accrue energy, splitting off the share consumed while the platform
    /// was degraded (some resource offline or throttled).
    void charge_energy(double energy) {
        result_.total_energy += energy;
        if (!health_.all_nominal()) result_.degraded_energy += energy;
    }

    /// Execute the current window schedule from the last advance point up
    /// to `to`: progress fractions, consume migration overhead, accrue
    /// energy, and retire completed tasks.  The health mask is constant
    /// over the executed span: every health change is a discrete event that
    /// advances up to itself before updating the mask and rebuilding.
    void advance(Time to) {
        const Time from = clock_;
        to = std::max(to, from);
        for (ResourceId i = 0; i < platform_.size(); ++i) {
            if (schedule_.per_resource.size() <= i) break;
            const bool non_preemptable = !platform_.resource(i).preemptable();
            for (const Segment& segment : schedule_.per_resource[i].segments) {
                if (segment.start >= to) break;
                // Only the part of the segment inside (from, to] is new work;
                // earlier advances already consumed the prefix.
                const Time begin = std::max(segment.start, from);
                const Time executed_until = std::min(segment.end, to);
                const double duration = executed_until - begin;
                if (duration <= 0.0) continue;

                if (is_reserved_uid(segment.uid)) {
                    // Critical reservation: accrue its energy pro rata.
                    const CriticalTask& critical = reservations_->task_of(segment.uid);
                    result_.critical_energy +=
                        duration / critical.duration * critical.energy_per_instance;
                    continue;
                }
                ActiveTask* task = find_task(segment.uid);
                RMWP_ENSURE(task != nullptr);
                task->started = true;
                if (non_preemptable) task->pinned = true;

                // One exec slice per executed span; repeated advances over
                // one segment yield adjacent slices, never overlaps, so the
                // per-resource busy time is the plain sum of slice durations.
                RMWP_TRACE(options_.sink, begin, obs::EventKind::exec, segment.uid,
                           static_cast<std::int64_t>(i), duration);
#ifdef RMWP_OBS
                if (options_.sink != nullptr) ins_.busy_time[i]->add(duration);
#endif

                const double overhead = std::min(task->pending_overhead, duration);
                task->pending_overhead -= overhead;
                const double progress_time = duration - overhead;
                // Progress and energy rates come from the task's mapped
                // resource entry (its operating point on DVFS platforms);
                // `i` is the physical timeline the segment lives on.
                const TaskType& type = catalog_.type(task->type);
                // A throttled resource stretches the effective WCET by its
                // factor (the energy per unit of work is unchanged).
                const double wcet =
                    type.wcet(task->resource) * health_.throttle(task->resource);
                double fraction = std::min(progress_time / wcet, task->remaining_fraction);

                // Early completion: the task's real work can be less than
                // its WCET budget; it finishes the moment the actual work is
                // done, mid-segment.
                const double done_before = 1.0 - task->remaining_fraction;
                const double actual = actual_work(task->uid);
                Time completed_at = -1.0;
                if (done_before + fraction >= actual - kFractionEps) {
                    fraction = std::max(0.0, actual - done_before);
                    completed_at = begin + overhead + fraction * wcet;
                }

                charge_energy(fraction * type.energy(task->resource));
                task->remaining_fraction -= fraction;

                if (completed_at >= 0.0) {
                    task->remaining_fraction = 0.0;
                    ++result_.completed;
                    RMWP_TRACE(options_.sink, completed_at, obs::EventKind::complete,
                               segment.uid, static_cast<std::int64_t>(i));
#ifdef RMWP_OBS
                    if (options_.sink != nullptr) ins_.complete->add();
#endif
                    if (completed_at > task->absolute_deadline + kTimeEps) {
                        ++result_.deadline_misses;
                        if (options_.validate) RMWP_ENSURE(false); // firm guarantee violated
                    }
                } else if (executed_until >= segment.end &&
                           task->remaining_fraction > kFractionEps) {
                    // The planned slice closed with work left: the task is
                    // preempted here and resumes in a later slice.
                    RMWP_TRACE(options_.sink, segment.end, obs::EventKind::preempt, segment.uid,
                               static_cast<std::int64_t>(i));
#ifdef RMWP_OBS
                    if (options_.sink != nullptr) ins_.preempt->add();
#endif
                }
            }
        }
        std::erase_if(active_, [](const ActiveTask& task) { return task.finished(); });
        clock_ = std::max(clock_, std::min(to, schedule_horizon()));
    }

    [[nodiscard]] Time schedule_horizon() const {
        Time latest = clock_;
        for (const ResourceTimeline& timeline : schedule_.per_resource)
            if (!timeline.segments.empty())
                latest = std::max(latest, timeline.segments.back().end);
        return latest;
    }

    /// Run the decision wake-up protocol at `wake`: advance (or stall)
    /// execution and return the decision instant.
    [[nodiscard]] Time wake_up(Time wake) {
        const Time overhead = predictor_.overhead();
        Time decision_time = std::max(wake + overhead, clock_);
        if (overhead > 0.0 && options_.overhead_stalls_platform) {
            // The manager runs on the platform: execution halts during the
            // decision window.  Progress stops at the wake-up; the clock
            // jumps to the decision time with the skipped segments left
            // unexecuted (rebuild() re-plans the remaining work from there).
            advance(wake);
            decision_time = std::max(wake, clock_) + overhead;
            clock_ = decision_time;
            abort_doomed(decision_time);
        } else {
            advance(decision_time);
        }
        return decision_time;
    }

    /// Decide on one request at `decision_time` (no rebuild; the caller
    /// rebuilds once after a batch).
    void process_request(std::size_t index, Time decision_time) {
        const Request& request = trace_.request(index);
        predictor_.observe(trace_, index);

        ActiveTask candidate;
        candidate.uid = static_cast<TaskUid>(index);
        candidate.type = request.type;
        candidate.arrival = request.arrival;
        candidate.absolute_deadline = request.absolute_deadline();

        // A request whose deadline already passed while waiting for the
        // activation boundary cannot be served.
        if (candidate.absolute_deadline <= decision_time + kTimeEps) {
            ++result_.rejected;
            RMWP_TRACE(options_.sink, decision_time, obs::EventKind::reject, candidate.uid,
                       obs::kNoResource, 0.0,
                       static_cast<std::uint32_t>(RejectReason::deadline_passed));
#ifdef RMWP_OBS
            if (options_.sink != nullptr)
                ins_.reject[static_cast<std::size_t>(RejectReason::deadline_passed)]->add();
#endif
            return;
        }

        ArrivalContext context;
        context.now = decision_time;
        context.platform = &platform_;
        context.catalog = &catalog_;
        context.active = active_;
        context.candidate = candidate;
        context.predicted =
            predictor_.predict_horizon(trace_, index, decision_time, options_.lookahead);
        context.reservations = reservations_;
        context.health = &health_;

        const auto started = std::chrono::steady_clock::now();
        const Decision decision = rm_.decide(context);
        const auto finished = std::chrono::steady_clock::now();
        result_.decision_seconds += std::chrono::duration<double>(finished - started).count();

#ifdef RMWP_OBS
        if (options_.sink != nullptr) {
            // host scope: measures this machine, excluded from determinism.
            ins_.admission_latency_us->record(
                std::chrono::duration<double, std::micro>(finished - started).count());
            // sim scope: the size of the instance the RM planned over.
            ins_.plan_size->record(static_cast<double>(context.active.size() + 1));
        }
#endif

#ifdef RMWP_AUDIT
        if (options_.audit) {
            AuditReport report = auditor_.audit_decision(context, decision);
            if (options_.audit_differential) {
                auto differential = auditor_.differential_admission(context, decision);
                if (differential.checked) {
                    ++result_.audit_differential_checks;
                    if (differential.exact_admits && !decision.admitted)
                        ++result_.audit_differential_gaps;
                    report.merge(std::move(differential.report));
                }
            }
            run_audit(std::move(report));
        }
#endif

        if (decision.admitted) {
            ++result_.accepted;
            if (decision.used_prediction) ++result_.plans_with_prediction;
#ifdef RMWP_OBS
            if (options_.sink != nullptr) {
                std::int64_t mapped = obs::kNoResource;
                for (const TaskAssignment& assignment : decision.assignments)
                    if (assignment.uid == candidate.uid)
                        mapped = static_cast<std::int64_t>(assignment.resource);
                options_.sink->emit(decision_time, obs::EventKind::admit, candidate.uid, mapped,
                                    0.0, decision.used_prediction ? 1u : 0u);
                ins_.admit->add();
            }
#endif
            apply(decision, candidate, decision_time);
        } else {
            ++result_.rejected;
            RMWP_TRACE(options_.sink, decision_time, obs::EventKind::reject, candidate.uid,
                       obs::kNoResource, 0.0, static_cast<std::uint32_t>(decision.reason));
#ifdef RMWP_OBS
            if (options_.sink != nullptr)
                ins_.reject[static_cast<std::size_t>(decision.reason)]->add();
#endif
        }
    }

    void handle_arrival(std::size_t index) {
        const Time decision_time = wake_up(trace_.request(index).arrival);
        ++result_.activations;
        process_request(index, decision_time);
        rebuild(decision_time);
    }

    void enqueue_for_batch(std::size_t index) {
        pending_.push_back(index);
        const Time arrival = trace_.request(index).arrival;
        const double periods = std::ceil(arrival / options_.activation_period);
        const Time boundary = std::max(periods * options_.activation_period, arrival);
        if (boundary > last_activation_scheduled_ + kTimeEps) {
            events_.schedule(boundary, kActivationEvent, 0);
            last_activation_scheduled_ = boundary;
        }
    }

    void handle_activation(Time boundary) {
        if (pending_.empty()) return;
        const Time decision_time = wake_up(boundary);
        ++result_.activations;
        for (const std::size_t index : pending_) process_request(index, decision_time);
        pending_.clear();
        rebuild(decision_time);
    }

    /// Process one fault onset/recovery event: execute up to the event
    /// under the old health mask, switch to the new mask, then either run a
    /// rescue activation (capacity loss) or just rebuild (capacity gain).
    void handle_fault(Time event_time, bool onset, std::size_t fault_index) {
        advance(event_time);
        // A decision stall can have pushed the clock past the event; health
        // and the re-plan are then evaluated at the later instant.
        const Time now = std::max(event_time, clock_);
        const FaultEvent& fault = options_.fault_schedule->events()[fault_index];
        health_ = options_.fault_schedule->health_at(platform_, now);

        if (onset) {
            if (fault.takes_offline()) ++result_.resource_outages;
            else ++result_.throttle_events;
            RMWP_TRACE(options_.sink, now, obs::EventKind::fault_onset, obs::kNoTask,
                       static_cast<std::int64_t>(fault.resource), fault.factor,
                       static_cast<std::uint32_t>(fault.kind));
#ifdef RMWP_OBS
            if (options_.sink != nullptr) ins_.fault_onset->add();
#endif
            rescue_activation(now);
        } else {
            RMWP_TRACE(options_.sink, now, obs::EventKind::fault_recovery, obs::kNoTask,
                       static_cast<std::int64_t>(fault.resource), 1.0,
                       static_cast<std::uint32_t>(fault.kind));
#ifdef RMWP_OBS
            if (options_.sink != nullptr) ins_.fault_recovery->add();
#endif
            // Capacity restored (or a throttle relaxed): the current set is
            // still feasible, so only the schedule needs refreshing.
            rebuild(now);
        }
    }

    /// Capacity was lost: interrupt the tasks on struck resources and let
    /// the RM re-plan the surviving set on the healthy capacity.
    void rescue_activation(Time now) {
        ++result_.rescue_activations;
        RMWP_TRACE(options_.sink, now, obs::EventKind::rescue_begin, obs::kNoTask,
                   obs::kNoResource, static_cast<double>(active_.size()));
#ifdef RMWP_OBS
        if (options_.sink != nullptr) ins_.rescue_activation->add();
#endif

        // Interrupt displaced tasks (their resource went offline).  On a
        // preemptable resource the saved context survives the fault and the
        // task resumes elsewhere after a real migration; non-preemptable
        // resources (GPU-like) lose the in-flight execution state, so the
        // task restarts from scratch — no longer started, pinned, or owing
        // migration time.
        std::vector<TaskUid> displaced;
        for (ActiveTask& task : active_) {
            if (health_.online(task.resource)) continue;
            displaced.push_back(task.uid);
            if (!platform_.resource(task.resource).preemptable()) {
                task.remaining_fraction = 1.0;
                task.started = false;
                task.pinned = false;
                task.pending_overhead = 0.0;
            }
        }

        RescueContext context;
        context.now = now;
        context.platform = &platform_;
        context.catalog = &catalog_;
        context.active = active_;
        context.health = &health_;
        context.reservations = reservations_;

        const auto started = std::chrono::steady_clock::now();
        const RescueDecision decision = rm_.rescue(context);
        const auto finished = std::chrono::steady_clock::now();
        result_.rescue_decision_seconds +=
            std::chrono::duration<double>(finished - started).count();

#ifdef RMWP_AUDIT
        if (options_.audit) run_audit(auditor_.audit_rescue(context, decision));
#endif

        if (options_.validate)
            RMWP_ENSURE(decision.kept.size() + decision.aborted.size() == active_.size());

        for (const TaskUid uid : decision.aborted) {
            const std::size_t before = active_.size();
            std::erase_if(active_, [uid](const ActiveTask& task) { return task.uid == uid; });
            RMWP_ENSURE(active_.size() + 1 == before);
            ++result_.fault_aborted;
            RMWP_TRACE(options_.sink, now, obs::EventKind::rescue_abort, uid);
#ifdef RMWP_OBS
            if (options_.sink != nullptr) ins_.rescue_abort->add();
#endif
        }

        const auto was_displaced = [&](TaskUid uid) {
            return std::find(displaced.begin(), displaced.end(), uid) != displaced.end();
        };
        for (const TaskAssignment& assignment : decision.kept) {
            ActiveTask* task = find_task(assignment.uid);
            RMWP_ENSURE(task != nullptr);
            if (options_.validate) RMWP_ENSURE(health_.online(assignment.resource));
            if (assignment.resource != task->resource) {
                RMWP_ENSURE(!task->pinned);
                const bool physical_move = platform_.resource(task->resource).physical() !=
                                           platform_.resource(assignment.resource).physical();
                if (task->started) {
                    const TaskType& type = catalog_.type(task->type);
                    task->pending_overhead =
                        type.migration_time(task->resource, assignment.resource);
                    if (physical_move) {
                        const double energy =
                            type.migration_energy(task->resource, assignment.resource);
                        charge_energy(energy);
                        result_.migration_energy += energy;
                        ++result_.migrations;
                        ++result_.rescue_migrations;
                        RMWP_TRACE(options_.sink, now, obs::EventKind::migrate, task->uid,
                                   static_cast<std::int64_t>(task->resource), energy,
                                   static_cast<std::uint32_t>(assignment.resource));
#ifdef RMWP_OBS
                        if (options_.sink != nullptr) ins_.migrate->add();
#endif
                    }
                }
                task->resource = assignment.resource;
            }
            if (was_displaced(assignment.uid)) ++result_.rescued;
            RMWP_TRACE(options_.sink, now, obs::EventKind::rescue_keep, assignment.uid,
                       static_cast<std::int64_t>(assignment.resource), 0.0,
                       was_displaced(assignment.uid) ? 1u : 0u);
#ifdef RMWP_OBS
            if (options_.sink != nullptr) ins_.rescue_keep->add();
#endif
        }

        rebuild(now);
    }

    void apply(const Decision& decision, const ActiveTask& candidate,
               [[maybe_unused]] Time now) {
        for (const TaskAssignment& assignment : decision.assignments) {
            if (assignment.uid == candidate.uid) {
                ActiveTask admitted = candidate;
                admitted.resource = assignment.resource;
                active_.push_back(admitted);
                if (options_.execution_time_factor_min < 1.0) {
                    actual_work_[admitted.uid] =
                        execution_rng_.uniform(options_.execution_time_factor_min, 1.0);
                }
                continue;
            }
            ActiveTask* task = find_task(assignment.uid);
            RMWP_ENSURE(task != nullptr);
            if (assignment.resource == task->resource) continue;
            RMWP_ENSURE(!task->pinned); // non-preemptable tasks never move
            const bool physical_move = platform_.resource(task->resource).physical() !=
                                       platform_.resource(assignment.resource).physical();
            if (task->started) {
                const TaskType& type = catalog_.type(task->type);
                // Relocation replaces any unpaid migration time with the new
                // pair's cost — exactly what occupied_time() plans with.  A
                // level switch on the same core costs nothing and moves no
                // state, so it is not counted as a migration.
                task->pending_overhead =
                    type.migration_time(task->resource, assignment.resource);
                if (physical_move) {
                    const double energy =
                        type.migration_energy(task->resource, assignment.resource);
                    charge_energy(energy);
                    result_.migration_energy += energy;
                    ++result_.migrations;
                    RMWP_TRACE(options_.sink, now, obs::EventKind::migrate, task->uid,
                               static_cast<std::int64_t>(task->resource), energy,
                               static_cast<std::uint32_t>(assignment.resource));
#ifdef RMWP_OBS
                    if (options_.sink != nullptr) ins_.migrate->add();
#endif
                }
            }
            task->resource = assignment.resource;
        }
    }

    [[nodiscard]] WindowSchedule plan_current(Time now,
                                              std::vector<ScheduleItem>* items_out = nullptr) const {
        std::vector<ScheduleItem> items;
        items.reserve(active_.size());
        Time horizon = now;
        for (const ActiveTask& task : active_) {
            items.push_back(make_schedule_item(task, catalog_.type(task.type), task.resource,
                                               now, &health_));
            horizon = std::max(horizon, task.absolute_deadline);
        }
        if (reservations_ != nullptr && !reservations_->empty())
            reservations_->append_blocks(now, horizon, items);
        if (items_out != nullptr) *items_out = items;
        return build_window_schedule(platform_, now, items);
    }

    /// Overhead stalls can make a previously guaranteed task unable to meet
    /// its deadline; such tasks are aborted before the RM decides (firm
    /// real-time: a late result is useless, and keeping the doomed task
    /// would unfairly poison the admission check for the arriving one).
    void abort_doomed(Time now) {
        while (true) {
            std::vector<ScheduleItem> items;
            const WindowSchedule schedule = plan_current(now, &items);
            if (schedule.feasible) return;
            const std::size_t before = active_.size();
            std::vector<TaskUid> doomed;
            std::erase_if(active_, [&](const ActiveTask& task) {
                const auto completion = schedule.completion_of(task.uid);
                const bool late = completion.has_value() &&
                                  *completion > task.absolute_deadline + kTimeEps;
                if (late) doomed.push_back(task.uid);
                return late;
            });
            if (active_.size() == before) {
                // No adaptive task misses its own deadline, so the
                // infeasibility is a *reservation* made late (e.g. a pinned
                // task overrunning into a reserved window after a stall).
                // Kill one adaptive occupant of each violated resource.
                for (const ScheduleItem& item : items) {
                    if (!item.reserved) continue;
                    const auto completion = schedule.completion_of(item.uid);
                    if (!completion || *completion <= item.abs_deadline + kTimeEps) continue;
                    bool removed = false;
                    std::erase_if(active_, [&](const ActiveTask& task) {
                        if (removed || task.resource != item.resource) return false;
                        removed = true;
                        doomed.push_back(task.uid);
                        return true;
                    });
                }
                RMWP_ENSURE(active_.size() < before);
            }
            result_.aborted += before - active_.size();
#ifdef RMWP_OBS
            if (options_.sink != nullptr) {
                for (const TaskUid uid : doomed) {
                    options_.sink->emit(now, obs::EventKind::abort_overhead, uid);
                    ins_.abort_overhead->add();
                }
            }
#endif
        }
    }

    /// When the task's real work is below its WCET budget, its completion
    /// falls inside the planned segments: walk them (overhead first, then
    /// work) to the actual finish instant.
    [[nodiscard]] Time actual_completion(const ActiveTask& task, Time planned) const {
        const double actual = actual_work(task.uid);
        if (actual >= 1.0) return planned;
        const TaskType& type = catalog_.type(task.type);
        double work_left = std::max(0.0, actual - (1.0 - task.remaining_fraction)) *
                           type.wcet(task.resource) * health_.throttle(task.resource);
        double overhead_left = task.pending_overhead;
        for (const Segment& segment : schedule_.segments_of(task.uid)) {
            double duration = segment.duration();
            const double overhead = std::min(overhead_left, duration);
            overhead_left -= overhead;
            duration -= overhead;
            if (duration >= work_left - 1e-12) return segment.start + overhead + work_left;
            work_left -= duration;
        }
        return planned;
    }

    /// Rebuild the execution schedule (real tasks on their current
    /// resources) and refresh completion events under a new generation.
    void rebuild(Time now) {
        RMWP_TRACE(options_.sink, now, obs::EventKind::plan_rebuild, obs::kNoTask,
                   obs::kNoResource, static_cast<double>(active_.size()));
#ifdef RMWP_OBS
        if (options_.sink != nullptr) ins_.plan_rebuild->add();
#endif
#ifdef RMWP_AUDIT
        schedule_ = plan_current(now, &audited_items_);
        audited_now_ = now;
        if (options_.audit) run_audit(audit_schedule());
#else
        schedule_ = plan_current(now);
#endif
        if (options_.validate) RMWP_ENSURE(schedule_.feasible);

        events_.cancel_group(generation_);
        ++generation_;
        for (const ActiveTask& task : active_) {
            const auto completion = schedule_.completion_of(task.uid);
            RMWP_ENSURE(completion.has_value());
            events_.schedule(actual_completion(task, *completion), kCompletionEvent, task.uid,
                             generation_);
        }
    }

#ifdef RMWP_AUDIT
    /// Re-derive every invariant of the freshly rebuilt execution schedule:
    /// the items against the live task states, and the timelines against
    /// the items.  Valid only right after plan_current (states and items
    /// agree at that instant).
    [[nodiscard]] AuditReport audit_schedule() const {
        AuditReport report = auditor_.audit_items(platform_, catalog_, audited_now_, active_,
                                                  audited_items_, &health_);
        report.merge(auditor_.audit_window(platform_, audited_now_, audited_items_, schedule_,
                                           &health_));
        return report;
    }

    /// Count the pass; surface any violation as an exception (the run is
    /// unusable — some invariant of the paper's model was broken).
    void run_audit(AuditReport report) {
        ++result_.audit_checks;
        if (!report.ok()) throw audit_error(report);
    }
#endif

#ifdef RMWP_OBS
    /// Register every instrument up front in a fixed order so the snapshot
    /// layout is identical across runs regardless of which events occur.
    /// Only called when a sink is attached.
    void init_obs() {
        obs::MetricsRegistry& m = options_.sink->metrics();
        ins_.admit = &m.counter("admit");
        for (std::size_t r = 0; r < kRejectReasonCount; ++r)
            ins_.reject[r] =
                &m.counter(std::string("reject.") + to_string(static_cast<RejectReason>(r)));
        ins_.preempt = &m.counter("preempt");
        ins_.migrate = &m.counter("migrate");
        ins_.complete = &m.counter("complete");
        ins_.abort_overhead = &m.counter("abort_overhead");
        ins_.plan_rebuild = &m.counter("plan_rebuild");
        ins_.rescue_activation = &m.counter("rescue.activation");
        ins_.rescue_keep = &m.counter("rescue.keep");
        ins_.rescue_abort = &m.counter("rescue.abort");
        ins_.fault_onset = &m.counter("fault.onset");
        ins_.fault_recovery = &m.counter("fault.recovery");
        ins_.busy_time.resize(platform_.size());
        for (ResourceId i = 0; i < platform_.size(); ++i)
            ins_.busy_time[i] = &m.gauge("busy_time." + std::to_string(i));
        ins_.plan_size = &m.histogram("plan_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
        ins_.admission_latency_us =
            &m.histogram("admission_latency_us",
                         {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}, obs::MetricScope::host);
    }
#endif

    const Platform& platform_;
    const Catalog& catalog_;
    const Trace& trace_;
    ResourceManager& rm_;
    Predictor& predictor_;
    const ReservationTable* reservations_ = nullptr;
    SimOptions options_;

    std::vector<ActiveTask> active_;
    /// Current resource health (all nominal unless faults are injected).
    PlatformHealth health_;
    WindowSchedule schedule_;
    EventQueue events_;
    Time clock_ = 0.0;
    std::uint64_t generation_ = 1;
    TraceResult result_;
    Rng execution_rng_;
    /// Hidden actual work per task (fraction of WCET); the RM never sees it.
    std::unordered_map<TaskUid, double> actual_work_;
    /// Periodic-activation state.
    std::vector<std::size_t> pending_;
    Time last_activation_scheduled_ = -1.0;

#ifdef RMWP_OBS
    Instruments ins_;
#endif

#ifdef RMWP_AUDIT
    ScheduleAuditor auditor_;
    /// The items the current execution schedule was built from, and the
    /// build instant — kept so completions can re-audit the window.
    std::vector<ScheduleItem> audited_items_;
    Time audited_now_ = 0.0;
#endif
};

} // namespace

TraceResult simulate_trace(const Platform& platform, const Catalog& catalog, const Trace& trace,
                           ResourceManager& rm, Predictor& predictor, const SimOptions& options) {
    Simulation simulation(platform, catalog, trace, rm, predictor, nullptr, options);
    return simulation.run();
}

TraceResult simulate_trace(const Platform& platform, const Catalog& catalog, const Trace& trace,
                           ResourceManager& rm, Predictor& predictor,
                           const ReservationTable& reservations, const SimOptions& options) {
    Simulation simulation(platform, catalog, trace, rm, predictor, &reservations, options);
    return simulation.run();
}

} // namespace rmwp
