// Batch front-end: one SimEngine per trace (the engine carries all the
// execution-model logic; see sim/engine.hpp and DESIGN.md §11).
#include "sim/simulator.hpp"

#include "sim/engine.hpp"

namespace rmwp {

TraceResult simulate_trace(const Platform& platform, const Catalog& catalog, const Trace& trace,
                           ResourceManager& rm, Predictor& predictor, const SimOptions& options) {
    SimEngine engine(platform, catalog, rm, predictor, nullptr, options);
    return engine.run(trace);
}

TraceResult simulate_trace(const Platform& platform, const Catalog& catalog, const Trace& trace,
                           ResourceManager& rm, Predictor& predictor,
                           const ReservationTable& reservations, const SimOptions& options) {
    SimEngine engine(platform, catalog, rm, predictor, &reservations, options);
    return engine.run(trace);
}

} // namespace rmwp
