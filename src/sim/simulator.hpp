// The trace-driven simulation protocol of Sec 5: a discrete-event loop that
// feeds each request to the resource manager, executes the planned window
// schedules between activations, and accounts energy, migrations, and
// admission outcomes.
//
// Event flow per arrival:
//   1. execution is advanced from the previous event to the decision time
//      (arrival + prediction overhead) along the current window schedule —
//      tasks progress, complete, consume energy;
//   2. the predictor observes the arrival and produces the lookahead;
//   3. the RM decides admission + the new mapping for the whole active set;
//   4. migrations implied by the new mapping are charged (energy now, time
//      as pending overhead on the target resource);
//   5. the execution schedule (real tasks only — the predicted task is a
//      planning constraint, never an occupant) is rebuilt and stale
//      completion events are cancelled.
#pragma once

#include <memory>

#include "core/manager.hpp"
#include "core/reservation.hpp"
#include "fault/fault.hpp"
#include "metrics/trace_result.hpp"
#include "predict/predictor.hpp"
#include "sim/event_queue.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace rmwp::obs {
class TraceSink;
} // namespace rmwp::obs

namespace rmwp {

struct SimOptions {
    /// Re-verify every accepted plan and every completed task against the
    /// firm-deadline guarantee (cheap; on by default — a violation is a bug
    /// in an RM, not a property of the workload).
    bool validate = true;
    /// Independent invariant auditing (src/audit).  Only compiled in under
    /// the RMWP_AUDIT build option; with both on, every admission decision,
    /// fault rescue, rebuilt execution schedule, and completion is
    /// re-verified from first principles and a violation throws
    /// rmwp::audit_error.  The auditor never mutates audited state, so
    /// audited runs are bit-identical to unaudited ones (only the
    /// TraceResult audit counters differ).
    bool audit = true;
    /// Differential mode: additionally cross-check each admission verdict
    /// against the complete branch-and-bound search on small instances.
    /// An RM admit the exact search proves infeasible is a hard violation;
    /// the reverse (an overly conservative rejection) is only counted.
    /// Off by default — it re-solves every small instance exactly.
    bool audit_differential = false;
    /// Sec 5.5 overhead model.  When true (default), the prediction+RM
    /// overhead stalls the whole platform: the manager runs on the managed
    /// cores, so no task makes progress during the decision window — each
    /// activation costs overhead/interarrival of total capacity, which is
    /// what makes even perfect prediction lose once the overhead reaches a
    /// few percent of the mean interarrival time (Fig 5).  When false, the
    /// overhead only delays the decision (tasks keep running) and merely
    /// consumes the arriving task's deadline slack — a strictly milder
    /// model, kept for comparison.
    bool overhead_stalls_platform = true;
    /// How many upcoming requests the predictor is asked for (the paper's
    /// RM plans with 1; more is the lookahead extension).
    std::size_t lookahead = 1;
    /// Execution-time variation (extension; 1.0 reproduces the paper's
    /// WCET-exact evaluation).  Each admitted task's *actual* work is a
    /// uniformly random fraction in [execution_time_factor_min, 1] of its
    /// WCET.  The RM keeps planning with the pessimistic WCET; the
    /// simulator detects early completions and immediately re-plans, so the
    /// reclaimed slack benefits queued tasks (work-conserving).
    double execution_time_factor_min = 1.0;
    /// Seed for the per-task execution-time draws (independent of the
    /// workload generation seeds).
    std::uint64_t execution_seed = 0;
    /// Injected faults (fault-tolerance extension; null = fault-free, which
    /// is bit-identical to the pre-extension simulator).  Every fault onset
    /// and recovery becomes a discrete event: onsets (capacity loss)
    /// interrupt the tasks running on the struck resource — preemptable
    /// resources keep their progress, non-preemptable ones (GPU-like) lose
    /// it — and trigger a fault-rescue RM activation that re-plans the
    /// surviving set; recoveries only rebuild the schedule under the
    /// restored capacity.  A rescued task never misses its deadline (the
    /// rescue re-plan is verified like any admission).
    const FaultSchedule* fault_schedule = nullptr;
    /// RM activation policy (extension; 0 reproduces the paper's
    /// activation on every arrival).  With a positive period the manager
    /// wakes only at period boundaries and decides on all requests that
    /// arrived since the previous activation, in arrival order: queueing
    /// delay consumes deadline slack, but any per-activation prediction
    /// overhead (Fig 5) is paid once per batch instead of once per request.
    Time activation_period = 0.0;
    /// Coalesce simultaneous arrivals into one RM activation (the batched
    /// admission hot path, DESIGN.md §13).  Consecutive arrival events at
    /// the same instant are decided by a single rm_.decide_batch call —
    /// one event drain, one execution advance, one schedule rebuild for
    /// the group — instead of one full activation each.  Decisions are
    /// bit-identical to the sequential path (decide_batch's contract);
    /// TraceResult::activations then counts coalesced groups, not
    /// arrivals.  Off by default; incompatible with activation_period
    /// (periodic batching already coalesces).
    bool batch_arrivals = false;
    /// Observability sink (DESIGN.md §10).  When non-null (and the build
    /// has RMWP_OBS, the default) the run records structured events —
    /// arrivals, admissions/rejections with reason codes, executed slices,
    /// preemptions, migrations, fault and rescue steps, plan rebuilds —
    /// plus a metrics snapshot into TraceResult::obs_metrics.  Attaching a
    /// sink never changes the simulated outcome: every other TraceResult
    /// field is bit-identical with and without it.  The sink must outlive
    /// the run and is single-threaded (one sink per run).
    obs::TraceSink* sink = nullptr;
};

/// Run one trace against one RM + predictor.  The predictor is stateful and
/// must be freshly constructed per run.
[[nodiscard]] TraceResult simulate_trace(const Platform& platform, const Catalog& catalog,
                                         const Trace& trace, ResourceManager& rm,
                                         Predictor& predictor, const SimOptions& options = {});

/// Same, with design-time critical reservations (Sec 2): the reserved
/// windows execute with absolute priority, their energy is accounted in
/// TraceResult::critical_energy, and the adaptive RM plans around them.
[[nodiscard]] TraceResult simulate_trace(const Platform& platform, const Catalog& catalog,
                                         const Trace& trace, ResourceManager& rm,
                                         Predictor& predictor,
                                         const ReservationTable& reservations,
                                         const SimOptions& options = {});

} // namespace rmwp
