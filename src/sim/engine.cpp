#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/stage_timer.hpp"
#include "obs/trace_sink.hpp"
#include "util/check.hpp"
#include "util/hexfloat.hpp"

namespace rmwp {
namespace {

constexpr double kFractionEps = 1e-9;
constexpr double kTimeEps = 1e-6;

constexpr std::uint32_t kArrivalEvent = 0;
constexpr std::uint32_t kCompletionEvent = 1;
constexpr std::uint32_t kActivationEvent = 2;
constexpr std::uint32_t kFaultOnsetEvent = 3;
constexpr std::uint32_t kFaultRecoveryEvent = 4;

constexpr const char* kCheckpointContext = "engine checkpoint";

} // namespace

SimEngine::SimEngine(const Platform& platform, const Catalog& catalog, ResourceManager& rm,
                     Predictor& predictor, const ReservationTable* reservations,
                     const SimOptions& options)
    : platform_(platform),
      catalog_(catalog),
      rm_(rm),
      predictor_(predictor),
      reservations_(reservations),
      options_(options),
      execution_rng_(options.execution_seed) {}

TraceResult SimEngine::run(const Trace& trace) {
    RMWP_EXPECT(!streaming_ && trace_ == nullptr);
    // Periodic activation already coalesces arrivals; combining the two
    // batching policies has no defined wake-up semantics.
    RMWP_EXPECT(!(options_.batch_arrivals && options_.activation_period > 0.0));
    trace_ = &trace;
#ifdef RMWP_OBS
    if (options_.sink != nullptr) init_obs();
#endif
    result_.requests = trace.size();
    for (const Request& request : trace)
        result_.reference_energy += catalog_.type(request.type).mean_energy();

    for (std::size_t j = 0; j < trace.size(); ++j)
        events_.schedule(trace.request(j).arrival, kArrivalEvent, j);

    if (options_.fault_schedule != nullptr) {
        const auto& faults = options_.fault_schedule->events();
        for (std::size_t f = 0; f < faults.size(); ++f) {
            events_.schedule(faults[f].start, kFaultOnsetEvent, f);
            if (std::isfinite(faults[f].end))
                events_.schedule(faults[f].end, kFaultRecoveryEvent, f);
        }
    }

    return finalize();
}

void SimEngine::begin_stream() {
    RMWP_EXPECT(!streaming_ && trace_ == nullptr);
    RMWP_EXPECT(options_.activation_period == 0.0);
    streaming_ = true;
#ifdef RMWP_OBS
    if (options_.sink != nullptr) init_obs();
#endif
}

Time SimEngine::stream_arrival(const Request& request, TaskUid uid, Time wake) {
    RMWP_EXPECT(streaming_);
    RMWP_EXPECT(uid < kReservedUidBase);
    RMWP_EXPECT(wake >= request.arrival);
    drain_until(wake);

    RMWP_TRACE(options_.sink, request.arrival, obs::EventKind::arrival, uid, obs::kNoResource,
               request.absolute_deadline());
    ++result_.requests;
    result_.reference_energy += catalog_.type(request.type).mean_energy();

    const Time decision_time = wake_up(wake);
    ++result_.activations;
    predictor_.observe_arrival(request);
    decide_on(request, uid, 0, decision_time);
    rebuild(decision_time);
    return decision_time;
}

Time SimEngine::stream_arrival_batch(std::span<const StreamArrival> arrivals, Time wake) {
    RMWP_EXPECT(streaming_);
    RMWP_EXPECT(!arrivals.empty());
    for (const StreamArrival& arrival : arrivals) {
        RMWP_EXPECT(arrival.uid < kReservedUidBase);
        RMWP_EXPECT(wake >= arrival.request.arrival);
    }
    drain_until(wake);

    batch_entries_.clear();
    for (const StreamArrival& arrival : arrivals) {
        RMWP_TRACE(options_.sink, arrival.request.arrival, obs::EventKind::arrival, arrival.uid,
                   obs::kNoResource, arrival.request.absolute_deadline());
        ++result_.requests;
        result_.reference_energy += catalog_.type(arrival.request.type).mean_energy();
        BatchEntry entry;
        entry.request = arrival.request;
        entry.uid = arrival.uid;
        batch_entries_.push_back(std::move(entry));
    }

    const Time decision_time = wake_up(wake);
    ++result_.activations; // one coalesced activation for the whole group
    decide_batch_on(decision_time);
    rebuild(decision_time);
    return decision_time;
}

void SimEngine::stream_shed(const Request& request, [[maybe_unused]] TaskUid uid) {
    RMWP_EXPECT(streaming_);
    ++result_.requests;
    result_.reference_energy += catalog_.type(request.type).mean_energy();
    ++result_.rejected;
    RMWP_TRACE(options_.sink, request.arrival, obs::EventKind::reject, uid, obs::kNoResource,
               0.0, static_cast<std::uint32_t>(RejectReason::overload));
#ifdef RMWP_OBS
    if (options_.sink != nullptr)
        ins_.reject[static_cast<std::size_t>(RejectReason::overload)]->add();
#endif
}

void SimEngine::drain_until(Time t) {
    while (!events_.empty() && events_.next_time() < t) dispatch(events_.pop());
}

void SimEngine::drain_through(Time t) {
    while (!events_.empty() && events_.next_time() <= t) dispatch(events_.pop());
}

void SimEngine::set_fault_schedule(const FaultSchedule* schedule, Time from,
                                   bool include_events_at_from) {
    RMWP_EXPECT(streaming_);
    options_.fault_schedule = schedule;
    if (schedule == nullptr) return;
    const auto after = [&](Time t) { return include_events_at_from ? t >= from : t > from; };
    const auto& faults = schedule->events();
    for (std::size_t f = 0; f < faults.size(); ++f) {
        if (after(faults[f].start)) events_.schedule(faults[f].start, kFaultOnsetEvent, f);
        if (std::isfinite(faults[f].end) && after(faults[f].end))
            events_.schedule(faults[f].end, kFaultRecoveryEvent, f);
    }
}

TraceResult SimEngine::finish_stream() {
    RMWP_EXPECT(streaming_);
    return finalize();
}

TraceResult SimEngine::finalize() {
    while (!events_.empty()) dispatch(events_.pop());
    advance(std::numeric_limits<Time>::infinity());
    RMWP_ENSURE(active_.empty());
#ifdef RMWP_OBS
    if (options_.sink != nullptr) {
        ins_.sink_events_total->add(options_.sink->total_emitted());
        ins_.sink_dropped->add(options_.sink->dropped());
        ins_.sink_ring_occupancy->add(static_cast<double>(options_.sink->occupancy()));
        result_.obs_metrics = options_.sink->metrics().snapshot();
    }
#endif
    return result_;
}

void SimEngine::dispatch(const Event& event) {
    if (event.kind == kArrivalEvent) {
        RMWP_TRACE(options_.sink, event.time, obs::EventKind::arrival, event.payload,
                   obs::kNoResource,
                   trace_->request(static_cast<std::size_t>(event.payload)).absolute_deadline());
        if (options_.activation_period > 0.0) {
            enqueue_for_batch(static_cast<std::size_t>(event.payload));
        } else if (options_.batch_arrivals) {
            // Coalesce the maximal run of simultaneous arrivals.  Arrivals
            // are scheduled before any completion/fault event exists, so
            // same-time arrivals hold the lowest FIFO sequences and pop
            // consecutively: peeking until the kind or time changes
            // captures exactly the group a sequential run would decide
            // back-to-back with zero-width advances in between.
            batch_entries_.clear();
            auto push_entry = [this](std::uint64_t payload) {
                BatchEntry entry;
                entry.trace_index = static_cast<std::size_t>(payload);
                entry.uid = static_cast<TaskUid>(payload);
                entry.request = trace_->request(entry.trace_index);
                batch_entries_.push_back(std::move(entry));
            };
            push_entry(event.payload);
            while (!events_.empty()) {
                const Event& next = events_.peek();
                if (next.kind != kArrivalEvent || next.time != event.time) break;
                const Event member = events_.pop();
                RMWP_TRACE(options_.sink, member.time, obs::EventKind::arrival, member.payload,
                           obs::kNoResource,
                           trace_->request(static_cast<std::size_t>(member.payload))
                               .absolute_deadline());
                push_entry(member.payload);
            }
            handle_arrival_batch(event.time);
        } else {
            handle_arrival(static_cast<std::size_t>(event.payload));
        }
    } else if (event.kind == kActivationEvent) {
        handle_activation(event.time);
    } else if (event.kind == kFaultOnsetEvent || event.kind == kFaultRecoveryEvent) {
        handle_fault(event.time, event.kind == kFaultOnsetEvent,
                     static_cast<std::size_t>(event.payload));
    } else {
        advance(event.time);
        // The completion event is only valid for the current plan
        // generation, so the task must really be gone by now.
        if (options_.validate) RMWP_ENSURE(find_task(event.payload) == nullptr);
#ifdef RMWP_AUDIT
        // Completion audit: the executed window must still satisfy
        // every structural invariant it satisfied when planned.
        // (Window-only: task states have advanced past the items.)
        if (options_.audit)
            run_audit(auditor_.audit_window(platform_, audited_now_, audited_items_, schedule_,
                                            &health_));
#endif
        // With execution-time variation the completion was (likely)
        // earlier than the WCET plan assumed: re-plan immediately so
        // queued tasks reclaim the slack.
        if (options_.execution_time_factor_min < 1.0) rebuild(event.time);
    }
}

ActiveTask* SimEngine::find_task(TaskUid uid) {
    for (ActiveTask& task : active_)
        if (task.uid == uid) return &task;
    return nullptr;
}

double SimEngine::actual_work(TaskUid uid) const {
    const auto it = actual_work_.find(uid);
    return it == actual_work_.end() ? 1.0 : it->second;
}

void SimEngine::charge_energy(double energy) {
    result_.total_energy += energy;
    if (!health_.all_nominal()) result_.degraded_energy += energy;
}

void SimEngine::advance(Time to) {
    const Time from = clock_;
    to = std::max(to, from);
    for (ResourceId i = 0; i < platform_.size(); ++i) {
        if (schedule_.per_resource.size() <= i) break;
        const bool non_preemptable = !platform_.resource(i).preemptable();
        for (const Segment& segment : schedule_.per_resource[i].segments) {
            if (segment.start >= to) break;
            // Only the part of the segment inside (from, to] is new work;
            // earlier advances already consumed the prefix.
            const Time begin = std::max(segment.start, from);
            const Time executed_until = std::min(segment.end, to);
            const double duration = executed_until - begin;
            if (duration <= 0.0) continue;

            if (is_reserved_uid(segment.uid)) {
                // Critical reservation: accrue its energy pro rata.
                const CriticalTask& critical = reservations_->task_of(segment.uid);
                result_.critical_energy +=
                    duration / critical.duration * critical.energy_per_instance;
                continue;
            }
            ActiveTask* task = find_task(segment.uid);
            RMWP_ENSURE(task != nullptr);
            task->started = true;
            if (non_preemptable) task->pinned = true;

            // One exec slice per executed span; repeated advances over
            // one segment yield adjacent slices, never overlaps, so the
            // per-resource busy time is the plain sum of slice durations.
            RMWP_TRACE(options_.sink, begin, obs::EventKind::exec, segment.uid,
                       static_cast<std::int64_t>(i), duration);
#ifdef RMWP_OBS
            if (options_.sink != nullptr) ins_.busy_time[i]->add(duration);
#endif

            const double overhead = std::min(task->pending_overhead, duration);
            task->pending_overhead -= overhead;
            const double progress_time = duration - overhead;
            // Progress and energy rates come from the task's mapped
            // resource entry (its operating point on DVFS platforms);
            // `i` is the physical timeline the segment lives on.
            const TaskType& type = catalog_.type(task->type);
            // A throttled resource stretches the effective WCET by its
            // factor (the energy per unit of work is unchanged).
            const double wcet = type.wcet(task->resource) * health_.throttle(task->resource);
            double fraction = std::min(progress_time / wcet, task->remaining_fraction);

            // Early completion: the task's real work can be less than
            // its WCET budget; it finishes the moment the actual work is
            // done, mid-segment.
            //
            // Tolerance: planner segment endpoints are sums carried at the
            // clock's magnitude, so the fraction a segment yields can fall
            // short of the planned amount by ~ulp(clock)/wcet — which
            // outgrows any fixed fraction epsilon on long horizons (at
            // clock ~3.5e7 one ulp is already ~7.5e-9).  Accept completion
            // whenever the residual work, expressed in time, is below the
            // same kTimeEps used for deadline comparisons.
            const double done_before = 1.0 - task->remaining_fraction;
            const double actual = actual_work(task->uid);
            const double fraction_eps = std::max(kFractionEps, kTimeEps / wcet);
            Time completed_at = -1.0;
            if (done_before + fraction >= actual - fraction_eps) {
                fraction = std::max(0.0, actual - done_before);
                completed_at = begin + overhead + fraction * wcet;
            }

            charge_energy(fraction * type.energy(task->resource));
            task->remaining_fraction -= fraction;

            if (completed_at >= 0.0) {
                task->remaining_fraction = 0.0;
                ++result_.completed;
                RMWP_TRACE(options_.sink, completed_at, obs::EventKind::complete, segment.uid,
                           static_cast<std::int64_t>(i));
#ifdef RMWP_OBS
                if (options_.sink != nullptr) ins_.complete->add();
#endif
                if (completed_at > task->absolute_deadline + kTimeEps) {
                    ++result_.deadline_misses;
                    if (options_.validate) RMWP_ENSURE(false); // firm guarantee violated
                }
            } else if (executed_until >= segment.end &&
                       task->remaining_fraction > kFractionEps) {
                // The planned slice closed with work left: the task is
                // preempted here and resumes in a later slice.
                RMWP_TRACE(options_.sink, segment.end, obs::EventKind::preempt, segment.uid,
                           static_cast<std::int64_t>(i));
#ifdef RMWP_OBS
                if (options_.sink != nullptr) ins_.preempt->add();
#endif
            }
        }
    }
    std::erase_if(active_, [this](const ActiveTask& task) {
        if (!task.finished()) return false;
        // Drop the hidden-work entry with its task so the map stays
        // O(active set) over unbounded streams.
        actual_work_.erase(task.uid);
        return true;
    });
    clock_ = std::max(clock_, std::min(to, schedule_horizon()));
}

Time SimEngine::schedule_horizon() const {
    Time latest = clock_;
    for (const ResourceTimeline& timeline : schedule_.per_resource)
        if (!timeline.segments.empty())
            latest = std::max(latest, timeline.segments.back().end);
    return latest;
}

Time SimEngine::wake_up(Time wake) {
    const Time overhead = predictor_.overhead();
    Time decision_time = std::max(wake + overhead, clock_);
    if (overhead > 0.0 && options_.overhead_stalls_platform) {
        // The manager runs on the platform: execution halts during the
        // decision window.  Progress stops at the wake-up; the clock
        // jumps to the decision time with the skipped segments left
        // unexecuted (rebuild() re-plans the remaining work from there).
        advance(wake);
        decision_time = std::max(wake, clock_) + overhead;
        clock_ = decision_time;
        abort_doomed(decision_time);
    } else {
        advance(decision_time);
    }
    return decision_time;
}

void SimEngine::process_request(std::size_t index, Time decision_time) {
    predictor_.observe(*trace_, index);
    decide_on(trace_->request(index), static_cast<TaskUid>(index), index, decision_time);
}

void SimEngine::reject_doomed([[maybe_unused]] TaskUid uid, [[maybe_unused]] Time decision_time) {
    ++result_.rejected;
    RMWP_TRACE(options_.sink, decision_time, obs::EventKind::reject, uid, obs::kNoResource, 0.0,
               static_cast<std::uint32_t>(RejectReason::deadline_passed));
#ifdef RMWP_OBS
    if (options_.sink != nullptr)
        ins_.reject[static_cast<std::size_t>(RejectReason::deadline_passed)]->add();
#endif
}

void SimEngine::decide_on(const Request& request, TaskUid uid, std::size_t index,
                          Time decision_time) {
    ActiveTask candidate;
    candidate.uid = uid;
    candidate.type = request.type;
    candidate.arrival = request.arrival;
    candidate.absolute_deadline = request.absolute_deadline();

    // A request whose deadline already passed while waiting for the
    // activation boundary cannot be served.
    if (candidate.absolute_deadline <= decision_time + kTimeEps) {
        reject_doomed(candidate.uid, decision_time);
        return;
    }

    ArrivalContext context;
    context.now = decision_time;
    context.platform = &platform_;
    context.catalog = &catalog_;
    context.active = active_;
    context.candidate = candidate;
    context.predicted =
        streaming_ ? predictor_.predict_upcoming(decision_time, options_.lookahead)
                   : predictor_.predict_horizon(*trace_, index, decision_time,
                                                options_.lookahead);
    context.reservations = reservations_;
    context.health = &health_;

    // The timestamps bracket the *whole* decide call: under sharded
    // admission (DESIGN.md §15) that includes the per-bucket fork-join and
    // the cross-shard merge, so the recorded decision latency is the
    // end-to-end figure — never a single bucket's solve time.
    // RMWP_LINT_ALLOW(R1): measures RM overhead on the host (paper Fig 5); host-time
    const auto started = std::chrono::steady_clock::now();
    const Decision decision = rm_.decide(context);
    // RMWP_LINT_ALLOW(R1): measures RM overhead on the host (paper Fig 5); host-time
    const auto finished = std::chrono::steady_clock::now();
    result_.decision_seconds += std::chrono::duration<double>(finished - started).count();

#ifdef RMWP_OBS
    obs::stage_add_timed_ns(
        obs::Stage::decide,
        std::chrono::duration_cast<std::chrono::nanoseconds>(finished - started).count());
    if (options_.sink != nullptr) {
        // host scope: measures this machine, excluded from determinism.
        ins_.admission_latency_us->record(
            std::chrono::duration<double, std::micro>(finished - started).count());
    }
#endif

    commit_decision(context, decision, decision_time);
}

/// Everything downstream of the RM verdict — the audit, the observability
/// record, the admit/reject accounting, and the state mutation — shared
/// verbatim by the sequential and batched paths so they cannot drift.
void SimEngine::commit_decision(const ArrivalContext& context, const Decision& decision,
                                Time decision_time) {
    const ActiveTask& candidate = context.candidate;

#ifdef RMWP_OBS
    if (options_.sink != nullptr) {
        // sim scope: the size of the instance the RM planned over.
        ins_.plan_size->record(static_cast<double>(context.active.size() + 1));
    }
#endif

#ifdef RMWP_AUDIT
    if (options_.audit) {
        AuditReport report = auditor_.audit_decision(context, decision);
        if (options_.audit_differential) {
            auto differential = auditor_.differential_admission(context, decision);
            if (differential.checked) {
                ++result_.audit_differential_checks;
                if (differential.exact_admits && !decision.admitted)
                    ++result_.audit_differential_gaps;
                report.merge(std::move(differential.report));
            }
        }
        run_audit(std::move(report));
    }
#endif

    if (decision.admitted) {
        ++result_.accepted;
        if (decision.used_prediction) ++result_.plans_with_prediction;
#ifdef RMWP_OBS
        if (options_.sink != nullptr) {
            std::int64_t mapped = obs::kNoResource;
            for (const TaskAssignment& assignment : decision.assignments)
                if (assignment.uid == candidate.uid)
                    mapped = static_cast<std::int64_t>(assignment.resource);
            options_.sink->emit(decision_time, obs::EventKind::admit, candidate.uid, mapped,
                                0.0, decision.used_prediction ? 1u : 0u);
            ins_.admit->add();
        }
#endif
        apply(decision, candidate, decision_time);
    } else {
        ++result_.rejected;
        RMWP_TRACE(options_.sink, decision_time, obs::EventKind::reject, candidate.uid,
                   obs::kNoResource, 0.0, static_cast<std::uint32_t>(decision.reason));
#ifdef RMWP_OBS
        if (options_.sink != nullptr)
            ins_.reject[static_cast<std::size_t>(decision.reason)]->add();
#endif
    }
}

/// Decide every entry of batch_entries_ with one rm_.decide_batch call.
/// The per-entry protocol is the sequential one, re-ordered but not
/// re-defined: predictor observations and lookaheads interleave per entry
/// exactly as sequential same-instant activations would issue them, doomed
/// requests (deadline already passed) never reach the RM, and each
/// decision is committed against the active set as left by the previous
/// entry's commit — so with a zero-overhead predictor the resulting state
/// is bit-identical to deciding the entries one at a time.
void SimEngine::decide_batch_on(Time decision_time) {
    batch_items_.clear();
    for (BatchEntry& entry : batch_entries_) {
        if (streaming_) predictor_.observe_arrival(entry.request);
        else predictor_.observe(*trace_, entry.trace_index);

        entry.candidate = ActiveTask{};
        entry.candidate.uid = entry.uid;
        entry.candidate.type = entry.request.type;
        entry.candidate.arrival = entry.request.arrival;
        entry.candidate.absolute_deadline = entry.request.absolute_deadline();

        if (entry.candidate.absolute_deadline <= decision_time + kTimeEps) {
            entry.item = kNotAdmissible;
            continue;
        }
        BatchItem item;
        item.candidate = entry.candidate;
        item.predicted = streaming_
                             ? predictor_.predict_upcoming(decision_time, options_.lookahead)
                             : predictor_.predict_horizon(*trace_, entry.trace_index,
                                                          decision_time, options_.lookahead);
        entry.item = batch_items_.size();
        batch_items_.push_back(std::move(item));
    }

    BatchArrivalContext batch;
    batch.now = decision_time;
    batch.platform = &platform_;
    batch.catalog = &catalog_;
    batch.active = active_;
    batch.items = batch_items_;
    batch.reservations = reservations_;
    batch.health = &health_;

    // As on the sequential path: the bracket spans the whole decide_batch,
    // so sharded runs record latency after the cross-shard merge.
    // RMWP_LINT_ALLOW(R1): measures RM overhead on the host (paper Fig 5); host-time
    const auto started = std::chrono::steady_clock::now();
    if (!batch_items_.empty()) rm_.decide_batch(batch, batch_decisions_);
    // RMWP_LINT_ALLOW(R1): measures RM overhead on the host (paper Fig 5); host-time
    const auto finished = std::chrono::steady_clock::now();
    result_.decision_seconds += std::chrono::duration<double>(finished - started).count();
    RMWP_ENSURE(batch_items_.empty() || batch_decisions_.size() == batch_items_.size());

#ifdef RMWP_OBS
    obs::stage_add_timed_ns(
        obs::Stage::decide,
        std::chrono::duration_cast<std::chrono::nanoseconds>(finished - started).count());
    if (options_.sink != nullptr) {
        // host scope: one record per batch — the amortised cost is the
        // quantity of interest on the batched path.
        ins_.admission_latency_us->record(
            std::chrono::duration<double, std::micro>(finished - started).count());
    }
#endif

    for (const BatchEntry& entry : batch_entries_) {
        if (entry.item == kNotAdmissible) {
            reject_doomed(entry.uid, decision_time);
            continue;
        }
        // The context is rebuilt per entry against the *evolving* active
        // set — it is what the audit (and the obs plan-size metric) would
        // have seen on the sequential path.
        ArrivalContext context;
        context.now = decision_time;
        context.platform = &platform_;
        context.catalog = &catalog_;
        context.active = active_;
        context.candidate = entry.candidate;
        context.predicted = batch_items_[entry.item].predicted;
        context.reservations = reservations_;
        context.health = &health_;
        commit_decision(context, batch_decisions_[entry.item], decision_time);
    }
}

void SimEngine::handle_arrival(std::size_t index) {
    const Time decision_time = wake_up(trace_->request(index).arrival);
    ++result_.activations;
    process_request(index, decision_time);
    rebuild(decision_time);
}

void SimEngine::handle_arrival_batch(Time arrival_time) {
    RMWP_EXPECT(!batch_entries_.empty());
    const Time decision_time = wake_up(arrival_time);
    ++result_.activations; // one coalesced activation for the whole group
    decide_batch_on(decision_time);
    rebuild(decision_time);
}

void SimEngine::enqueue_for_batch(std::size_t index) {
    pending_.push_back(index);
    const Time arrival = trace_->request(index).arrival;
    const double periods = std::ceil(arrival / options_.activation_period);
    const Time boundary = std::max(periods * options_.activation_period, arrival);
    if (boundary > last_activation_scheduled_ + kTimeEps) {
        events_.schedule(boundary, kActivationEvent, 0);
        last_activation_scheduled_ = boundary;
    }
}

void SimEngine::handle_activation(Time boundary) {
    if (pending_.empty()) return;
    const Time decision_time = wake_up(boundary);
    ++result_.activations;
    for (const std::size_t index : pending_) process_request(index, decision_time);
    pending_.clear();
    rebuild(decision_time);
}

void SimEngine::handle_fault(Time event_time, bool onset, std::size_t fault_index) {
    advance(event_time);
    // A decision stall can have pushed the clock past the event; health
    // and the re-plan are then evaluated at the later instant.
    const Time now = std::max(event_time, clock_);
    const FaultEvent& fault = options_.fault_schedule->events()[fault_index];
    health_ = options_.fault_schedule->health_at(platform_, now);

    if (onset) {
        if (fault.takes_offline()) ++result_.resource_outages;
        else ++result_.throttle_events;
        RMWP_TRACE(options_.sink, now, obs::EventKind::fault_onset, obs::kNoTask,
                   static_cast<std::int64_t>(fault.resource), fault.factor,
                   static_cast<std::uint32_t>(fault.kind));
#ifdef RMWP_OBS
        if (options_.sink != nullptr) ins_.fault_onset->add();
#endif
        rescue_activation(now);
    } else {
        RMWP_TRACE(options_.sink, now, obs::EventKind::fault_recovery, obs::kNoTask,
                   static_cast<std::int64_t>(fault.resource), 1.0,
                   static_cast<std::uint32_t>(fault.kind));
#ifdef RMWP_OBS
        if (options_.sink != nullptr) ins_.fault_recovery->add();
#endif
        // Capacity restored (or a throttle relaxed): the current set is
        // still feasible, so only the schedule needs refreshing.
        rebuild(now);
    }
}

void SimEngine::rescue_activation(Time now) {
    ++result_.rescue_activations;
    RMWP_TRACE(options_.sink, now, obs::EventKind::rescue_begin, obs::kNoTask, obs::kNoResource,
               static_cast<double>(active_.size()));
#ifdef RMWP_OBS
    if (options_.sink != nullptr) ins_.rescue_activation->add();
#endif

    // Interrupt displaced tasks (their resource went offline).  On a
    // preemptable resource the saved context survives the fault and the
    // task resumes elsewhere after a real migration; non-preemptable
    // resources (GPU-like) lose the in-flight execution state, so the
    // task restarts from scratch — no longer started, pinned, or owing
    // migration time.
    std::vector<TaskUid> displaced;
    for (ActiveTask& task : active_) {
        if (health_.online(task.resource)) continue;
        displaced.push_back(task.uid);
        if (!platform_.resource(task.resource).preemptable()) {
            task.remaining_fraction = 1.0;
            task.started = false;
            task.pinned = false;
            task.pending_overhead = 0.0;
        }
    }

    RescueContext context;
    context.now = now;
    context.platform = &platform_;
    context.catalog = &catalog_;
    context.active = active_;
    context.health = &health_;
    context.reservations = reservations_;

    // RMWP_LINT_ALLOW(R1): measures rescue overhead on the host; host-time field only
    const auto started = std::chrono::steady_clock::now();
    const RescueDecision decision = rm_.rescue(context);
    // RMWP_LINT_ALLOW(R1): measures rescue overhead on the host; host-time field only
    const auto finished = std::chrono::steady_clock::now();
    result_.rescue_decision_seconds +=
        std::chrono::duration<double>(finished - started).count();

#ifdef RMWP_AUDIT
    if (options_.audit) run_audit(auditor_.audit_rescue(context, decision));
#endif

    if (options_.validate)
        RMWP_ENSURE(decision.kept.size() + decision.aborted.size() == active_.size());

    for (const TaskUid uid : decision.aborted) {
        const std::size_t before = active_.size();
        std::erase_if(active_, [uid](const ActiveTask& task) { return task.uid == uid; });
        RMWP_ENSURE(active_.size() + 1 == before);
        actual_work_.erase(uid);
        ++result_.fault_aborted;
        RMWP_TRACE(options_.sink, now, obs::EventKind::rescue_abort, uid);
#ifdef RMWP_OBS
        if (options_.sink != nullptr) ins_.rescue_abort->add();
#endif
    }

    const auto was_displaced = [&](TaskUid uid) {
        return std::find(displaced.begin(), displaced.end(), uid) != displaced.end();
    };
    for (const TaskAssignment& assignment : decision.kept) {
        ActiveTask* task = find_task(assignment.uid);
        RMWP_ENSURE(task != nullptr);
        if (options_.validate) RMWP_ENSURE(health_.online(assignment.resource));
        if (assignment.resource != task->resource) {
            RMWP_ENSURE(!task->pinned);
            const bool physical_move = platform_.resource(task->resource).physical() !=
                                       platform_.resource(assignment.resource).physical();
            if (task->started) {
                const TaskType& type = catalog_.type(task->type);
                task->pending_overhead =
                    type.migration_time(task->resource, assignment.resource);
                if (physical_move) {
                    const double energy =
                        type.migration_energy(task->resource, assignment.resource);
                    charge_energy(energy);
                    result_.migration_energy += energy;
                    ++result_.migrations;
                    ++result_.rescue_migrations;
                    RMWP_TRACE(options_.sink, now, obs::EventKind::migrate, task->uid,
                               static_cast<std::int64_t>(task->resource), energy,
                               static_cast<std::uint32_t>(assignment.resource));
#ifdef RMWP_OBS
                    if (options_.sink != nullptr) ins_.migrate->add();
#endif
                }
            }
            task->resource = assignment.resource;
        }
        if (was_displaced(assignment.uid)) ++result_.rescued;
        RMWP_TRACE(options_.sink, now, obs::EventKind::rescue_keep, assignment.uid,
                   static_cast<std::int64_t>(assignment.resource), 0.0,
                   was_displaced(assignment.uid) ? 1u : 0u);
#ifdef RMWP_OBS
        if (options_.sink != nullptr) ins_.rescue_keep->add();
#endif
    }

    rebuild(now);
}

void SimEngine::apply(const Decision& decision, const ActiveTask& candidate,
                      [[maybe_unused]] Time now) {
    for (const TaskAssignment& assignment : decision.assignments) {
        if (assignment.uid == candidate.uid) {
            ActiveTask admitted = candidate;
            admitted.resource = assignment.resource;
            active_.push_back(admitted);
            if (options_.execution_time_factor_min < 1.0) {
                // Batch mode draws sequentially (the historical contract the
                // determinism tests pin down); streaming mode derives an
                // independent stream per uid, so a checkpoint needs no RNG
                // state — replaying uid j always sees the same draw.
                actual_work_[admitted.uid] =
                    streaming_
                        ? Rng(options_.execution_seed)
                              .derive(admitted.uid)
                              .uniform(options_.execution_time_factor_min, 1.0)
                        : execution_rng_.uniform(options_.execution_time_factor_min, 1.0);
            }
            continue;
        }
        ActiveTask* task = find_task(assignment.uid);
        RMWP_ENSURE(task != nullptr);
        if (assignment.resource == task->resource) continue;
        RMWP_ENSURE(!task->pinned); // non-preemptable tasks never move
        const bool physical_move = platform_.resource(task->resource).physical() !=
                                   platform_.resource(assignment.resource).physical();
        if (task->started) {
            const TaskType& type = catalog_.type(task->type);
            // Relocation replaces any unpaid migration time with the new
            // pair's cost — exactly what occupied_time() plans with.  A
            // level switch on the same core costs nothing and moves no
            // state, so it is not counted as a migration.
            task->pending_overhead = type.migration_time(task->resource, assignment.resource);
            if (physical_move) {
                const double energy =
                    type.migration_energy(task->resource, assignment.resource);
                charge_energy(energy);
                result_.migration_energy += energy;
                ++result_.migrations;
                RMWP_TRACE(options_.sink, now, obs::EventKind::migrate, task->uid,
                           static_cast<std::int64_t>(task->resource), energy,
                           static_cast<std::uint32_t>(assignment.resource));
#ifdef RMWP_OBS
                if (options_.sink != nullptr) ins_.migrate->add();
#endif
            }
        }
        task->resource = assignment.resource;
    }
}

WindowSchedule SimEngine::plan_current(Time now, std::vector<ScheduleItem>* items_out) const {
    std::vector<ScheduleItem> items;
    items.reserve(active_.size());
    Time horizon = now;
    for (const ActiveTask& task : active_) {
        items.push_back(
            make_schedule_item(task, catalog_.type(task.type), task.resource, now, &health_));
        horizon = std::max(horizon, task.absolute_deadline);
    }
    if (reservations_ != nullptr && !reservations_->empty())
        reservations_->append_blocks(now, horizon, items);
    if (items_out != nullptr) *items_out = items;
    return build_window_schedule(platform_, now, items);
}

void SimEngine::abort_doomed(Time now) {
    while (true) {
        std::vector<ScheduleItem> items;
        const WindowSchedule schedule = plan_current(now, &items);
        if (schedule.feasible) return;
        const std::size_t before = active_.size();
        std::vector<TaskUid> doomed;
        std::erase_if(active_, [&](const ActiveTask& task) {
            const auto completion = schedule.completion_of(task.uid);
            const bool late =
                completion.has_value() && *completion > task.absolute_deadline + kTimeEps;
            if (late) doomed.push_back(task.uid);
            return late;
        });
        if (active_.size() == before) {
            // No adaptive task misses its own deadline, so the
            // infeasibility is a *reservation* made late (e.g. a pinned
            // task overrunning into a reserved window after a stall).
            // Kill one adaptive occupant of each violated resource.
            for (const ScheduleItem& item : items) {
                if (!item.reserved) continue;
                const auto completion = schedule.completion_of(item.uid);
                if (!completion || *completion <= item.abs_deadline + kTimeEps) continue;
                bool removed = false;
                std::erase_if(active_, [&](const ActiveTask& task) {
                    if (removed || task.resource != item.resource) return false;
                    removed = true;
                    doomed.push_back(task.uid);
                    return true;
                });
            }
            RMWP_ENSURE(active_.size() < before);
        }
        for (const TaskUid uid : doomed) actual_work_.erase(uid);
        result_.aborted += before - active_.size();
#ifdef RMWP_OBS
        if (options_.sink != nullptr) {
            for (const TaskUid uid : doomed) {
                options_.sink->emit(now, obs::EventKind::abort_overhead, uid);
                ins_.abort_overhead->add();
            }
        }
#endif
    }
}

Time SimEngine::actual_completion(const ActiveTask& task, Time planned) const {
    const double actual = actual_work(task.uid);
    if (actual >= 1.0) return planned;
    const TaskType& type = catalog_.type(task.type);
    double work_left = std::max(0.0, actual - (1.0 - task.remaining_fraction)) *
                       type.wcet(task.resource) * health_.throttle(task.resource);
    double overhead_left = task.pending_overhead;
    for (const Segment& segment : schedule_.segments_of(task.uid)) {
        double duration = segment.duration();
        const double overhead = std::min(overhead_left, duration);
        overhead_left -= overhead;
        duration -= overhead;
        if (duration >= work_left - 1e-12) return segment.start + overhead + work_left;
        work_left -= duration;
    }
    return planned;
}

void SimEngine::rebuild(Time now) {
    RMWP_TRACE(options_.sink, now, obs::EventKind::plan_rebuild, obs::kNoTask, obs::kNoResource,
               static_cast<double>(active_.size()));
#ifdef RMWP_OBS
    if (options_.sink != nullptr) ins_.plan_rebuild->add();
#endif
#ifdef RMWP_AUDIT
    schedule_ = plan_current(now, &audited_items_);
    audited_now_ = now;
    if (options_.audit) run_audit(audit_schedule());
#else
    schedule_ = plan_current(now);
#endif
    if (options_.validate) RMWP_ENSURE(schedule_.feasible);

    events_.cancel_group(generation_);
    ++generation_;
    for (const ActiveTask& task : active_) {
        const auto completion = schedule_.completion_of(task.uid);
        RMWP_ENSURE(completion.has_value());
        events_.schedule(actual_completion(task, *completion), kCompletionEvent, task.uid,
                         generation_);
    }
}

void SimEngine::save_stream(std::ostream& os) {
    RMWP_EXPECT(streaming_);
    // Clean cut: everything at or before the clock has happened (a fault
    // event landing exactly on the checkpoint instant is processed now, in
    // the same order an uninterrupted run would process it next), so
    // restore only re-derives strictly later events.
    drain_through(clock_);

    os << "RMWP-SIM-ENGINE 1\n";
    put_f64(os, clock_);

    os << platform_.size() << '\n';
    for (ResourceId i = 0; i < platform_.size(); ++i) {
        os << (health_.online(i) ? 1 : 0) << ' ';
        put_f64(os, health_.throttle(i));
    }

    os << active_.size() << '\n';
    for (const ActiveTask& task : active_) {
        os << task.uid << ' ' << task.type << ' ' << task.resource << ' '
           << (task.started ? 1 : 0) << ' ' << (task.pinned ? 1 : 0) << '\n';
        put_f64(os, task.arrival);
        put_f64(os, task.absolute_deadline);
        put_f64(os, task.remaining_fraction);
        put_f64(os, task.pending_overhead);
        put_f64(os, actual_work(task.uid));
    }

    // TraceResult accumulators, declared order (host-time fields included:
    // a restored run reports the total effort spent across both halves).
    os << result_.requests << ' ' << result_.accepted << ' ' << result_.rejected << ' '
       << result_.completed << ' ' << result_.deadline_misses << ' ' << result_.aborted << ' '
       << result_.fault_aborted << ' ' << result_.migrations << ' ' << result_.activations
       << ' ' << result_.plans_with_prediction << ' ' << result_.audit_checks << ' '
       << result_.audit_differential_checks << ' ' << result_.audit_differential_gaps << ' '
       << result_.resource_outages << ' ' << result_.throttle_events << ' '
       << result_.rescue_activations << ' ' << result_.rescued << ' '
       << result_.rescue_migrations << '\n';
    put_f64(os, result_.total_energy);
    put_f64(os, result_.migration_energy);
    put_f64(os, result_.critical_energy);
    put_f64(os, result_.decision_seconds);
    put_f64(os, result_.rescue_decision_seconds);
    put_f64(os, result_.degraded_energy);
    put_f64(os, result_.reference_energy);
}

void SimEngine::restore_stream(std::istream& is, const FaultSchedule* faults) {
    RMWP_EXPECT(streaming_);
    RMWP_EXPECT(active_.empty() && clock_ == 0.0);
    std::string magic, version;
    if (!(is >> magic >> version) || magic != "RMWP-SIM-ENGINE" || version != "1")
        throw std::runtime_error("engine checkpoint: bad header");
    clock_ = get_f64(is, kCheckpointContext);

    const auto resource_count = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    if (resource_count != platform_.size())
        throw std::runtime_error("engine checkpoint: platform size mismatch");
    health_ = PlatformHealth{};
    for (ResourceId i = 0; i < platform_.size(); ++i) {
        const bool online = get_u64(is, kCheckpointContext) != 0;
        const double throttle = get_f64(is, kCheckpointContext);
        // Health is per physical core; apply through the first operating
        // point that owns the core (set_* fan out to siblings).
        if (platform_.resource(i).physical() != i) continue;
        if (!online) health_.set_online(platform_, i, false);
        if (throttle != 1.0) health_.set_throttle(platform_, i, throttle);
    }

    const auto active_count = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    active_.clear();
    actual_work_.clear();
    for (std::size_t k = 0; k < active_count; ++k) {
        ActiveTask task;
        task.uid = get_u64(is, kCheckpointContext);
        task.type = static_cast<TaskTypeId>(get_u64(is, kCheckpointContext));
        task.resource = static_cast<ResourceId>(get_u64(is, kCheckpointContext));
        task.started = get_u64(is, kCheckpointContext) != 0;
        task.pinned = get_u64(is, kCheckpointContext) != 0;
        task.arrival = get_f64(is, kCheckpointContext);
        task.absolute_deadline = get_f64(is, kCheckpointContext);
        task.remaining_fraction = get_f64(is, kCheckpointContext);
        task.pending_overhead = get_f64(is, kCheckpointContext);
        const double work = get_f64(is, kCheckpointContext);
        if (work < 1.0) actual_work_[task.uid] = work;
        if (task.type >= catalog_.size() || task.resource >= platform_.size())
            throw std::runtime_error("engine checkpoint: task references unknown type/resource");
        active_.push_back(task);
    }

    result_.requests = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.accepted = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.rejected = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.completed = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.deadline_misses = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.aborted = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.fault_aborted = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.migrations = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.activations = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.plans_with_prediction = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.audit_checks = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.audit_differential_checks = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.audit_differential_gaps = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.resource_outages = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.throttle_events = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.rescue_activations = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.rescued = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.rescue_migrations = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    result_.total_energy = get_f64(is, kCheckpointContext);
    result_.migration_energy = get_f64(is, kCheckpointContext);
    result_.critical_energy = get_f64(is, kCheckpointContext);
    result_.decision_seconds = get_f64(is, kCheckpointContext);
    result_.rescue_decision_seconds = get_f64(is, kCheckpointContext);
    result_.degraded_energy = get_f64(is, kCheckpointContext);
    result_.reference_energy = get_f64(is, kCheckpointContext);

    // Re-derive everything save_stream did not carry: pending fault events
    // strictly after the cut (the restored health mask already reflects
    // events at or before it) and the completion schedule.
    set_fault_schedule(faults, clock_, /*include_events_at_from=*/false);
#ifdef RMWP_AUDIT
    // The re-derivation rebuild is not part of the simulated timeline (an
    // uninterrupted run has no event here), so its audit must not count:
    // restored runs promise bit-identical TraceResults, counters included.
    const std::size_t audit_checks_before = result_.audit_checks;
#endif
    rebuild(clock_);
#ifdef RMWP_AUDIT
    result_.audit_checks = audit_checks_before;
#endif
}

#ifdef RMWP_AUDIT
AuditReport SimEngine::audit_schedule() const {
    AuditReport report = auditor_.audit_items(platform_, catalog_, audited_now_, active_,
                                              audited_items_, &health_);
    report.merge(
        auditor_.audit_window(platform_, audited_now_, audited_items_, schedule_, &health_));
    return report;
}

void SimEngine::run_audit(AuditReport report) {
    ++result_.audit_checks;
    if (!report.ok()) throw audit_error(report);
}
#endif

#ifdef RMWP_OBS
void SimEngine::init_obs() {
    obs::MetricsRegistry& m = options_.sink->metrics();
    ins_.admit = &m.counter("admit");
    for (std::size_t r = 0; r < kRejectReasonCount; ++r)
        ins_.reject[r] =
            &m.counter(std::string("reject.") + to_string(static_cast<RejectReason>(r)));
    ins_.preempt = &m.counter("preempt");
    ins_.migrate = &m.counter("migrate");
    ins_.complete = &m.counter("complete");
    ins_.abort_overhead = &m.counter("abort_overhead");
    ins_.plan_rebuild = &m.counter("plan_rebuild");
    ins_.rescue_activation = &m.counter("rescue.activation");
    ins_.rescue_keep = &m.counter("rescue.keep");
    ins_.rescue_abort = &m.counter("rescue.abort");
    ins_.fault_onset = &m.counter("fault.onset");
    ins_.fault_recovery = &m.counter("fault.recovery");
    // Sink self-accounting: how much of the event stream survived the
    // ring.  Filled in once at the end of the run — the values are
    // functions of the (deterministic) event count and the configured
    // capacity, so they stay in the deterministic scope.
    ins_.sink_events_total = &m.counter("sink.events_total");
    ins_.sink_dropped = &m.counter("sink.dropped");
    ins_.sink_ring_occupancy = &m.gauge("sink.ring_occupancy");
    ins_.busy_time.resize(platform_.size());
    for (ResourceId i = 0; i < platform_.size(); ++i)
        ins_.busy_time[i] = &m.gauge("busy_time." + std::to_string(i));
    ins_.plan_size = &m.histogram("plan_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    ins_.admission_latency_us =
        &m.histogram("admission_latency_us", {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0},
                     obs::MetricScope::host);
}
#endif

} // namespace rmwp
