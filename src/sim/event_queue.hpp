// A small discrete-event simulation kernel: a time-ordered event queue with
// stable FIFO ordering for simultaneous events and O(1) lazy cancellation.
//
// Cancellation is by generation counter: cancel_group(g) invalidates every
// event scheduled under generation g.  The resource-management simulator
// uses this to drop stale completion events whenever the RM re-plans.
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <unordered_set>

#include "workload/trace.hpp"

namespace rmwp {

/// Event payload: a small POD the simulation interprets.
struct Event {
    Time time = 0.0;
    std::uint32_t kind = 0;     ///< simulation-defined discriminator
    std::uint64_t payload = 0;  ///< simulation-defined data (e.g. a task uid)
    std::uint64_t group = 0;    ///< cancellation group
};

class EventQueue {
public:
    /// Schedule an event; events at equal times pop in insertion order —
    /// the tie-break that makes runs deterministic when, e.g., a fault
    /// onset coincides with an arrival (arrivals are scheduled first, so
    /// the arrival is decided under the pre-fault health).  `time` must be
    /// a number and must not lie before the last popped event.
    void schedule(Time time, std::uint32_t kind, std::uint64_t payload, std::uint64_t group = 0);

    /// Invalidate every event scheduled under `group` (lazy: they are
    /// discarded on pop).
    void cancel_group(std::uint64_t group);

    /// True when no valid events remain.
    [[nodiscard]] bool empty();

    /// Pop the earliest valid event.  Requires !empty().
    [[nodiscard]] Event pop();

    /// Time of the earliest valid event.  Requires !empty().
    [[nodiscard]] Time next_time();

    /// The earliest valid event without popping it.  Requires !empty().
    /// The reference is invalidated by the next schedule/pop.  Lets the
    /// dispatcher coalesce runs of simultaneous same-kind events.
    [[nodiscard]] const Event& peek();

    [[nodiscard]] std::size_t scheduled_count() const noexcept { return total_scheduled_; }

private:
    struct Entry {
        Event event;
        std::uint64_t sequence = 0;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.event.time != b.event.time) return a.event.time > b.event.time;
            return a.sequence > b.sequence;
        }
    };

    void drop_cancelled();

    std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
    std::unordered_set<std::uint64_t> cancelled_groups_;
    std::uint64_t next_sequence_ = 0;
    std::size_t total_scheduled_ = 0;
    /// Dispatch horizon: no event may be scheduled before it, and pops are
    /// monotone in time (the tie-break keeps equal times in FIFO order).
    Time last_popped_time_ = -std::numeric_limits<Time>::infinity();
};

} // namespace rmwp
