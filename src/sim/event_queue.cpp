#include "sim/event_queue.hpp"

#include <cmath>

#include "util/check.hpp"

namespace rmwp {

void EventQueue::schedule(Time time, std::uint32_t kind, std::uint64_t payload,
                          std::uint64_t group) {
    RMWP_EXPECT(!cancelled_groups_.contains(group));
    RMWP_EXPECT(!std::isnan(time));
    // Scheduling into the dispatched past would silently reorder the
    // simulation (the event would fire "now" regardless of its timestamp).
    RMWP_EXPECT(time >= last_popped_time_);
    queue_.push(Entry{Event{time, kind, payload, group}, next_sequence_++});
    ++total_scheduled_;
}

void EventQueue::cancel_group(std::uint64_t group) { cancelled_groups_.insert(group); }

void EventQueue::drop_cancelled() {
    while (!queue_.empty() && cancelled_groups_.contains(queue_.top().event.group)) queue_.pop();
}

bool EventQueue::empty() {
    drop_cancelled();
    return queue_.empty();
}

Event EventQueue::pop() {
    drop_cancelled();
    RMWP_EXPECT(!queue_.empty());
    const Event event = queue_.top().event;
    queue_.pop();
    // Dispatch is monotone in time; simultaneous events keep their
    // insertion order (deterministic fault-onset vs. arrival interleaving).
    RMWP_ENSURE(event.time >= last_popped_time_);
    last_popped_time_ = event.time;
    return event;
}

Time EventQueue::next_time() {
    drop_cancelled();
    RMWP_EXPECT(!queue_.empty());
    return queue_.top().event.time;
}

const Event& EventQueue::peek() {
    drop_cancelled();
    RMWP_EXPECT(!queue_.empty());
    return queue_.top().event;
}

} // namespace rmwp
