// The reusable simulation engine behind both execution front-ends
// (DESIGN.md §11):
//
//   * batch  — simulate_trace() (sim/simulator.hpp) wraps run(): the whole
//     trace is known up front, arrivals are pre-scheduled as events, and
//     the predictor uses its trace-based interface;
//   * stream — the long-running serve mode (src/serve) feeds arrivals one
//     at a time via stream_arrival(): nothing about the future is known,
//     the predictor uses its streaming interface, and the engine state can
//     be checkpointed (save_stream) and resumed (restore_stream)
//     bit-identically.
//
// Both front-ends share every line of the execution model — advance(),
// admission, migration charging, fault rescue, schedule rebuild — so serve
// cannot drift from the simulator it is tested against.  The batch path is
// unchanged by the extraction: with the same inputs, run() performs the
// same operations in the same order as the pre-refactor simulator.
//
// This header is an internal engine API (consumed by sim/simulator.cpp and
// src/serve); experiment code should keep calling simulate_trace().
#pragma once

#include <array>
#include <iosfwd>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/manager.hpp"
#include "core/reservation.hpp"
#include "fault/fault.hpp"
#include "metrics/trace_result.hpp"
#include "predict/predictor.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

#ifdef RMWP_AUDIT
#include "audit/audit.hpp"
#endif

namespace rmwp::obs {
class Counter;
class Gauge;
class Histogram;
} // namespace rmwp::obs

namespace rmwp {

/// One member of a coalesced streaming batch (stream_arrival_batch).
struct StreamArrival {
    Request request;
    TaskUid uid = 0;
};

class SimEngine {
public:
    SimEngine(const Platform& platform, const Catalog& catalog, ResourceManager& rm,
              Predictor& predictor, const ReservationTable* reservations,
              const SimOptions& options);

    SimEngine(const SimEngine&) = delete;
    SimEngine& operator=(const SimEngine&) = delete;

    /// Batch mode: run one whole trace to completion (the simulate_trace
    /// protocol).  One engine runs exactly one trace OR one stream.
    [[nodiscard]] TraceResult run(const Trace& trace);

    // --- streaming interface (serve mode) ---

    /// Enter streaming mode.  Periodic-activation batching is a batch-only
    /// feature (options.activation_period must be 0).
    void begin_stream();

    /// Feed one arrival.  `wake` is the instant the manager picks the
    /// request up (== request.arrival unless an admission queue delayed
    /// it); internal events before `wake` are processed first, execution is
    /// advanced, the RM decides, and the schedule is rebuilt — the same
    /// wake-up protocol as a batch arrival.  Task uids must be unique and
    /// strictly increasing, below kReservedUidBase.  Returns the decision
    /// instant.
    Time stream_arrival(const Request& request, TaskUid uid, Time wake);

    /// Feed a coalesced group of arrivals deciding at one shared wake-up:
    /// one event drain, one advance, one rm_.decide_batch, one schedule
    /// rebuild for the whole group.  Per-request accounting (requests,
    /// reference energy, predictor observations, decisions) is identical to
    /// feeding the members through stream_arrival one by one at this wake;
    /// with a zero-overhead predictor the resulting simulation state is
    /// bit-identical too (the amortisation only shows once decision costs
    /// or predictor overheads are charged).  Returns the decision instant.
    Time stream_arrival_batch(std::span<const StreamArrival> arrivals, Time wake);

    /// Account one request shed by serve-side overload protection: counted
    /// as rejected with RejectReason::overload.  The manager never sees it.
    void stream_shed(const Request& request, TaskUid uid);

    /// Process internal events (completions, faults) strictly before /
    /// up to and including `t`.  stream_arrival drains up to its wake
    /// itself; these are for fault-chunk boundaries and quiescing.
    void drain_until(Time t);
    void drain_through(Time t);

    /// Replace the injected-fault schedule (serve generates faults in
    /// bounded chunks).  Events with onset/recovery after `from` are
    /// scheduled; `include_events_at_from` selects whether events exactly
    /// at `from` are included (true when entering a fresh chunk whose
    /// window starts at `from`, false when resuming from a checkpoint
    /// taken at `from`, where the health mask already reflects them).
    /// The previous schedule's events must have been drained
    /// (drain_through the old chunk's end) before switching.
    void set_fault_schedule(const FaultSchedule* schedule, Time from,
                            bool include_events_at_from);

    /// Drain every remaining event, execute the schedule to quiescence and
    /// return the final result (the batch postamble).
    [[nodiscard]] TraceResult finish_stream();

    /// Checkpoint the streaming state (clock, active set, health mask,
    /// accumulated results) as versioned text with bit-exact doubles.
    /// Drains events at exactly the current clock first, so the checkpoint
    /// is a clean cut: everything <= clock happened, everything later is
    /// re-derived on restore.  Predictor and arrival-source state are
    /// checkpointed by their owners (src/serve).
    void save_stream(std::ostream& os);

    /// Inverse of save_stream on a freshly constructed engine (after
    /// begin_stream).  `faults` is the regenerated fault chunk covering the
    /// checkpoint clock (null when serve runs fault-free); pending fault
    /// events and the completion schedule are re-derived.  Throws
    /// std::runtime_error on a malformed or mismatched checkpoint.
    void restore_stream(std::istream& is, const FaultSchedule* faults);

    [[nodiscard]] Time clock() const noexcept { return clock_; }
    [[nodiscard]] std::size_t active_count() const noexcept { return active_.size(); }
    /// Accumulated result so far (final only after run()/finish_stream()).
    [[nodiscard]] const TraceResult& result() const noexcept { return result_; }

private:
#ifdef RMWP_OBS
    /// Cached instrument handles (DESIGN.md §10).  Registered once per run,
    /// in a fixed order, so hot-path sites update through pointers instead
    /// of name lookups and the snapshot layout never depends on which
    /// events the run happens to hit.
    struct Instruments {
        obs::Counter* admit = nullptr;
        std::array<obs::Counter*, kRejectReasonCount> reject{};
        obs::Counter* preempt = nullptr;
        obs::Counter* migrate = nullptr;
        obs::Counter* complete = nullptr;
        obs::Counter* abort_overhead = nullptr;
        obs::Counter* plan_rebuild = nullptr;
        obs::Counter* rescue_activation = nullptr;
        obs::Counter* rescue_keep = nullptr;
        obs::Counter* rescue_abort = nullptr;
        obs::Counter* fault_onset = nullptr;
        obs::Counter* fault_recovery = nullptr;
        obs::Counter* sink_events_total = nullptr;
        obs::Counter* sink_dropped = nullptr;
        obs::Gauge* sink_ring_occupancy = nullptr;
        std::vector<obs::Gauge*> busy_time; ///< indexed by ResourceId
        obs::Histogram* plan_size = nullptr;
        obs::Histogram* admission_latency_us = nullptr;
    };
#endif

    [[nodiscard]] ActiveTask* find_task(TaskUid uid);
    [[nodiscard]] double actual_work(TaskUid uid) const;
    void charge_energy(double energy);
    void advance(Time to);
    [[nodiscard]] Time schedule_horizon() const;
    [[nodiscard]] Time wake_up(Time wake);
    void dispatch(const Event& event);
    void process_request(std::size_t index, Time decision_time);
    void decide_on(const Request& request, TaskUid uid, std::size_t index, Time decision_time);
    void reject_doomed(TaskUid uid, Time decision_time);
    void commit_decision(const ArrivalContext& context, const Decision& decision,
                         Time decision_time);
    void decide_batch_on(Time decision_time);
    void handle_arrival(std::size_t index);
    void handle_arrival_batch(Time arrival_time);
    void enqueue_for_batch(std::size_t index);
    void handle_activation(Time boundary);
    void handle_fault(Time event_time, bool onset, std::size_t fault_index);
    void rescue_activation(Time now);
    void apply(const Decision& decision, const ActiveTask& candidate, Time now);
    [[nodiscard]] WindowSchedule plan_current(Time now,
                                              std::vector<ScheduleItem>* items_out = nullptr) const;
    void abort_doomed(Time now);
    [[nodiscard]] Time actual_completion(const ActiveTask& task, Time planned) const;
    void rebuild(Time now);
    [[nodiscard]] TraceResult finalize();

#ifdef RMWP_AUDIT
    [[nodiscard]] AuditReport audit_schedule() const;
    void run_audit(AuditReport report);
#endif

#ifdef RMWP_OBS
    void init_obs();
#endif

    const Platform& platform_;
    const Catalog& catalog_;
    ResourceManager& rm_;
    Predictor& predictor_;
    const ReservationTable* reservations_ = nullptr;
    SimOptions options_;
    /// Batch-mode trace (null in streaming mode).
    const Trace* trace_ = nullptr;
    /// Streaming mode: arrivals are fed by the caller and the predictor's
    /// streaming interface is used.
    bool streaming_ = false;

    std::vector<ActiveTask> active_;
    /// Current resource health (all nominal unless faults are injected).
    PlatformHealth health_;
    WindowSchedule schedule_;
    EventQueue events_;
    Time clock_ = 0.0;
    std::uint64_t generation_ = 1;
    TraceResult result_;
    Rng execution_rng_;
    /// Hidden actual work per task (fraction of WCET); the RM never sees
    /// it.  Entries are dropped when their task retires, so the map is
    /// O(active set) — a requirement for the bounded-memory serve mode.
    std::unordered_map<TaskUid, double> actual_work_;
    /// Periodic-activation state (batch mode only).
    std::vector<std::size_t> pending_;
    Time last_activation_scheduled_ = -1.0;

    /// Coalesced-arrival state (options.batch_arrivals / the streaming
    /// batch entry point).  Member buffers: batches run on the hot path and
    /// must not reallocate per group.
    struct BatchEntry {
        Request request;
        TaskUid uid = 0;
        std::size_t trace_index = 0; ///< batch mode only (predictor interface)
        ActiveTask candidate;
        /// Index into batch_items_, or kNotAdmissible when the deadline
        /// already passed at decision time (the RM never sees those).
        std::size_t item = kNotAdmissible;
    };
    static constexpr std::size_t kNotAdmissible = static_cast<std::size_t>(-1);
    std::vector<BatchEntry> batch_entries_;
    std::vector<BatchItem> batch_items_;
    std::vector<Decision> batch_decisions_;

#ifdef RMWP_OBS
    Instruments ins_;
#endif

#ifdef RMWP_AUDIT
    ScheduleAuditor auditor_;
    /// The items the current execution schedule was built from, and the
    /// build instant — kept so completions can re-audit the window.
    std::vector<ScheduleItem> audited_items_;
    Time audited_now_ = 0.0;
#endif
};

} // namespace rmwp
