#include "predict/oracle.hpp"

#include <algorithm>

namespace rmwp {

std::optional<PredictedTask> OraclePredictor::predict_next(const Trace& trace, std::size_t index,
                                                           Time now) {
    if (index + 1 >= trace.size()) return std::nullopt;
    const Request& next = trace.request(index + 1);
    PredictedTask predicted;
    predicted.type = next.type;
    // A prediction made at `now` cannot claim an arrival in the past.
    predicted.arrival = std::max(next.arrival, now);
    predicted.relative_deadline = next.relative_deadline;
    return predicted;
}

std::vector<PredictedTask> OraclePredictor::predict_horizon(const Trace& trace, std::size_t index,
                                                            Time now, std::size_t depth) {
    std::vector<PredictedTask> horizon;
    horizon.reserve(depth);
    for (std::size_t k = 1; k <= depth && index + k < trace.size(); ++k) {
        const Request& next = trace.request(index + k);
        horizon.push_back(
            PredictedTask{next.type, std::max(next.arrival, now), next.relative_deadline});
    }
    return horizon;
}

} // namespace rmwp
