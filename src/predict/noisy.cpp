#include "predict/noisy.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/table.hpp"

namespace rmwp {

NoisyPredictor::NoisyPredictor(const Catalog& catalog, double type_accuracy, double time_nrmse,
                               Rng rng, Time overhead)
    : catalog_(&catalog),
      type_accuracy_(type_accuracy),
      time_nrmse_(time_nrmse),
      rng_(rng),
      overhead_(overhead) {
    RMWP_EXPECT(type_accuracy_ >= 0.0 && type_accuracy_ <= 1.0);
    RMWP_EXPECT(time_nrmse_ >= 0.0);
    RMWP_EXPECT(overhead_ >= 0.0);
}

std::string NoisyPredictor::name() const {
    return "noisy(type=" + format_fixed(type_accuracy_, 2) +
           ",nrmse=" + format_fixed(time_nrmse_, 2) + ")";
}

std::optional<PredictedTask> NoisyPredictor::predict_next(const Trace& trace, std::size_t index,
                                                          Time now) {
    if (index + 1 >= trace.size()) return std::nullopt;
    mean_interarrival_ = trace.size() >= 2 ? trace.mean_interarrival() : 0.0;
    return perturb(trace.request(index + 1), now);
}

std::vector<PredictedTask> NoisyPredictor::predict_horizon(const Trace& trace, std::size_t index,
                                                           Time now, std::size_t depth) {
    std::vector<PredictedTask> horizon;
    horizon.reserve(depth);
    mean_interarrival_ = trace.size() >= 2 ? trace.mean_interarrival() : 0.0;
    for (std::size_t k = 1; k <= depth && index + k < trace.size(); ++k)
        horizon.push_back(perturb(trace.request(index + k), now));
    return horizon;
}

PredictedTask NoisyPredictor::perturb(const Request& truth, Time now) {
    PredictedTask predicted;
    predicted.type = truth.type;
    if (catalog_->size() > 1 && !rng_.bernoulli(type_accuracy_))
        predicted.type = rng_.index_excluding(catalog_->size(), truth.type);

    Time arrival = truth.arrival;
    if (time_nrmse_ > 0.0 && mean_interarrival_ > 0.0)
        arrival += rng_.gaussian(0.0, time_nrmse_ * mean_interarrival_);
    predicted.arrival = std::max(arrival, now);
    predicted.relative_deadline = truth.relative_deadline;
    return predicted;
}

} // namespace rmwp
