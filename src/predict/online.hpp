// An actual runtime predictor, in the spirit of the authors' prior work on
// workload prediction [12, 13]: low inference overhead, learned online.
//
//  * Task type: a first-order Markov chain over type ids with add-one
//    smoothing; the predicted identity is the most frequent successor of
//    the type that just arrived (falls back to the global mode while cold).
//  * Arrival time: a two-phase interarrival estimator.  Observed gaps are
//    softly clustered into two regimes ("fast" bursts vs "slow" lulls) by an
//    online 2-means; the next gap is predicted as the EWMA of the regime the
//    most recent gap belonged to.  With the paper's unimodal Gaussian gaps
//    the two regimes converge and the estimator degrades gracefully to a
//    plain EWMA; on bimodal streams it tracks phase switches.
//  * Deadline: per-type EWMA of the observed relative deadline, with a
//    global EWMA fallback while a type is cold.
#pragma once

#include <iosfwd>
#include <vector>

#include "predict/predictor.hpp"

namespace rmwp {

/// Online 2-means over interarrival gaps with per-regime EWMA prediction.
class TwoPhaseInterarrivalEstimator {
public:
    explicit TwoPhaseInterarrivalEstimator(double ewma_alpha = 0.2);

    void observe(double gap);
    /// Predicted next gap; meaningful after >= 1 observation.
    [[nodiscard]] double predict() const noexcept;
    [[nodiscard]] std::size_t observations() const noexcept { return count_; }

    /// Bit-exact state serialization for checkpointing (DESIGN.md §11).
    void save(std::ostream& os) const;
    void load(std::istream& is);

private:
    double alpha_;
    double centers_[2] = {0.0, 0.0};
    double ewma_[2] = {0.0, 0.0};
    double global_ewma_ = 0.0;
    std::size_t center_count_[2] = {0, 0};
    int last_phase_ = 0;
    std::size_t count_ = 0;
};

/// First-order Markov chain over task-type ids.
class MarkovTypeChain {
public:
    explicit MarkovTypeChain(std::size_t type_count);

    void observe(TaskTypeId from, TaskTypeId to);
    void observe_first(TaskTypeId first);
    /// Most likely successor of `from`; global mode when `from` is cold.
    [[nodiscard]] TaskTypeId predict(TaskTypeId from) const;

    /// Bit-exact state serialization for checkpointing (DESIGN.md §11).
    void save(std::ostream& os) const;
    void load(std::istream& is);

private:
    std::size_t type_count_;
    std::vector<std::vector<std::uint32_t>> transition_; ///< [from][to] counts
    std::vector<std::uint32_t> marginal_;                ///< overall type counts
};

class OnlinePredictor final : public Predictor {
public:
    OnlinePredictor(const Catalog& catalog, Time overhead = 0.0, double ewma_alpha = 0.2);

    [[nodiscard]] std::string name() const override { return "online"; }
    void observe(const Trace& trace, std::size_t index) override;
    [[nodiscard]] std::optional<PredictedTask> predict_next(const Trace& trace, std::size_t index,
                                                            Time now) override;
    /// Markov-chain rollout: step k's type is the most likely successor of
    /// step k-1's, arrivals accumulate the current gap estimate.
    [[nodiscard]] std::vector<PredictedTask> predict_horizon(const Trace& trace,
                                                             std::size_t index, Time now,
                                                             std::size_t depth) override;
    [[nodiscard]] Time overhead() const noexcept override { return overhead_; }

    // Streaming interface (serve mode): the trace-based overrides above are
    // thin adapters over these, so batch and streaming use stay bit-identical
    // given the same arrival sequence.
    void observe_arrival(const Request& request) override;
    [[nodiscard]] std::vector<PredictedTask> predict_upcoming(Time now,
                                                              std::size_t depth) override;

    /// Fraction of type predictions that turned out correct so far.
    [[nodiscard]] double realized_type_accuracy() const noexcept;

    /// Self-scoring counters behind realized_type_accuracy(): identity
    /// predictions issued, and the subset the next arrival proved correct.
    /// Monotone over a run — serve's rolling-window stats difference them.
    [[nodiscard]] std::size_t type_predictions() const noexcept { return type_predictions_; }
    [[nodiscard]] std::size_t type_hits() const noexcept { return type_hits_; }

    /// Bit-exact model-state serialization for crash-safe checkpointing
    /// (DESIGN.md §11).  restore() throws std::runtime_error on a malformed
    /// stream or a type-count mismatch with this predictor's catalog.
    void save(std::ostream& os) const;
    void restore(std::istream& is);

private:
    /// Shared rollout core: the batch path anchors at trace.request(index),
    /// the streaming path at the most recent observed request.
    [[nodiscard]] std::vector<PredictedTask> rollout(const Request& anchor, Time now,
                                                     std::size_t depth);

    MarkovTypeChain chain_;
    TwoPhaseInterarrivalEstimator interarrival_;
    std::vector<double> type_deadline_ewma_;
    std::vector<bool> type_deadline_seen_;
    double global_deadline_ewma_ = 0.0;
    bool global_deadline_seen_ = false;
    double ewma_alpha_;
    Time overhead_;

    // Self-scoring of the identity predictions.
    std::size_t type_predictions_ = 0;
    std::size_t type_hits_ = 0;
    TaskTypeId last_predicted_type_ = 0;
    bool have_last_prediction_ = false;

    // Streaming state: the most recent observed request (the batch path
    // reads the previous request from the trace; the streaming path cannot).
    Request last_request_{};
    bool have_last_request_ = false;
};

} // namespace rmwp
