// Controlled-accuracy prediction for the Sec 5.4 sweeps.
//
// Starting from the ground truth, two independent error processes are
// applied, matching the paper's definitions exactly:
//  * task type: with probability (1 - type_accuracy) the predicted identity
//    is replaced by a uniformly random *other* type ("the task identity is
//    predicted incorrectly with a probability of 25% at each prediction
//    step", Fig 4a);
//  * arrival time: zero-mean Gaussian noise whose standard deviation is
//    time_nrmse * mean interarrival, so the realised normalised RMSE over a
//    trace converges to the dialled value ("0.75 accuracy value means that
//    the normalised root mean square error ... is 0.25", Fig 4b).
// The predicted deadline stays truthful: the paper treats deadline purely as
// a request attribute and sweeps only identity and timing errors.
#pragma once

#include "predict/predictor.hpp"
#include "util/rng.hpp"

namespace rmwp {

class NoisyPredictor final : public Predictor {
public:
    NoisyPredictor(const Catalog& catalog, double type_accuracy, double time_nrmse, Rng rng,
                   Time overhead = 0.0);

    [[nodiscard]] std::string name() const override;
    void observe(const Trace&, std::size_t) override {}
    [[nodiscard]] std::optional<PredictedTask> predict_next(const Trace& trace, std::size_t index,
                                                            Time now) override;
    [[nodiscard]] std::vector<PredictedTask> predict_horizon(const Trace& trace,
                                                             std::size_t index, Time now,
                                                             std::size_t depth) override;
    [[nodiscard]] Time overhead() const noexcept override { return overhead_; }

private:
    [[nodiscard]] PredictedTask perturb(const Request& truth, Time now);

    const Catalog* catalog_;
    double type_accuracy_;
    double time_nrmse_;
    Rng rng_;
    Time overhead_;
    double mean_interarrival_ = 0.0;
};

} // namespace rmwp
