// Perfectly accurate prediction: the next request's type, arrival time, and
// deadline are read straight from the trace.  This is the "predictor on"
// configuration of Sec 5.3 (accurate prediction, zero error).
#pragma once

#include "predict/predictor.hpp"

namespace rmwp {

class OraclePredictor final : public Predictor {
public:
    explicit OraclePredictor(Time overhead = 0.0) : overhead_(overhead) {}

    [[nodiscard]] std::string name() const override { return "oracle"; }
    void observe(const Trace&, std::size_t) override {}
    [[nodiscard]] std::optional<PredictedTask> predict_next(const Trace& trace, std::size_t index,
                                                            Time now) override;
    [[nodiscard]] std::vector<PredictedTask> predict_horizon(const Trace& trace,
                                                             std::size_t index, Time now,
                                                             std::size_t depth) override;
    [[nodiscard]] Time overhead() const noexcept override { return overhead_; }

private:
    Time overhead_;
};

} // namespace rmwp
