#include "predict/online.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace rmwp {

TwoPhaseInterarrivalEstimator::TwoPhaseInterarrivalEstimator(double ewma_alpha)
    : alpha_(ewma_alpha) {
    RMWP_EXPECT(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
}

void TwoPhaseInterarrivalEstimator::observe(double gap) {
    RMWP_EXPECT(gap >= 0.0);
    if (count_ == 0) {
        // Seed both regimes around the first observation, slightly apart so
        // the assignment step can separate a bimodal stream.
        centers_[0] = gap * 0.5;
        centers_[1] = gap * 1.5;
        ewma_[0] = gap;
        ewma_[1] = gap;
        global_ewma_ = gap;
    }
    ++count_;

    const int phase = std::abs(gap - centers_[0]) <= std::abs(gap - centers_[1]) ? 0 : 1;
    ++center_count_[phase];
    const double step = 1.0 / static_cast<double>(center_count_[phase]);
    centers_[phase] += step * (gap - centers_[phase]);
    ewma_[phase] += alpha_ * (gap - ewma_[phase]);
    global_ewma_ += alpha_ * (gap - global_ewma_);
    last_phase_ = phase;
}

double TwoPhaseInterarrivalEstimator::predict() const noexcept {
    // On a unimodal stream the two "regimes" are just the two halves of one
    // distribution; following the last draw's half would bias the estimate.
    // Only trust the phase model when the regimes are genuinely separated.
    const double spread = std::abs(centers_[1] - centers_[0]);
    const double scale = 0.5 * (centers_[0] + centers_[1]);
    if (scale <= 0.0 || spread < scale) return global_ewma_;
    return ewma_[last_phase_];
}

MarkovTypeChain::MarkovTypeChain(std::size_t type_count)
    : type_count_(type_count),
      transition_(type_count, std::vector<std::uint32_t>(type_count, 0)),
      marginal_(type_count, 0) {
    RMWP_EXPECT(type_count > 0);
}

void MarkovTypeChain::observe(TaskTypeId from, TaskTypeId to) {
    RMWP_EXPECT(from < type_count_ && to < type_count_);
    ++transition_[from][to];
    ++marginal_[to];
}

void MarkovTypeChain::observe_first(TaskTypeId first) {
    RMWP_EXPECT(first < type_count_);
    ++marginal_[first];
}

TaskTypeId MarkovTypeChain::predict(TaskTypeId from) const {
    RMWP_EXPECT(from < type_count_);
    const auto& row = transition_[from];
    const auto row_best = std::max_element(row.begin(), row.end());
    if (*row_best > 0) return static_cast<TaskTypeId>(row_best - row.begin());
    // Cold row: fall back to the global mode.
    const auto global_best = std::max_element(marginal_.begin(), marginal_.end());
    return static_cast<TaskTypeId>(global_best - marginal_.begin());
}

OnlinePredictor::OnlinePredictor(const Catalog& catalog, Time overhead, double ewma_alpha)
    : chain_(catalog.size()),
      interarrival_(ewma_alpha),
      type_deadline_ewma_(catalog.size(), 0.0),
      type_deadline_seen_(catalog.size(), false),
      ewma_alpha_(ewma_alpha),
      overhead_(overhead) {
    RMWP_EXPECT(overhead >= 0.0);
}

void OnlinePredictor::observe(const Trace& trace, std::size_t index) {
    const Request& request = trace.request(index);

    if (have_last_prediction_) {
        ++type_predictions_;
        if (last_predicted_type_ == request.type) ++type_hits_;
        have_last_prediction_ = false;
    }

    if (index == 0) {
        chain_.observe_first(request.type);
    } else {
        const Request& previous = trace.request(index - 1);
        chain_.observe(previous.type, request.type);
        interarrival_.observe(request.arrival - previous.arrival);
    }

    if (!type_deadline_seen_[request.type]) {
        type_deadline_ewma_[request.type] = request.relative_deadline;
        type_deadline_seen_[request.type] = true;
    } else {
        type_deadline_ewma_[request.type] +=
            ewma_alpha_ * (request.relative_deadline - type_deadline_ewma_[request.type]);
    }
    if (!global_deadline_seen_) {
        global_deadline_ewma_ = request.relative_deadline;
        global_deadline_seen_ = true;
    } else {
        global_deadline_ewma_ += ewma_alpha_ * (request.relative_deadline - global_deadline_ewma_);
    }
}

std::optional<PredictedTask> OnlinePredictor::predict_next(const Trace& trace, std::size_t index,
                                                           Time now) {
    if (index + 1 >= trace.size()) return std::nullopt;
    // Cold start: without at least one observed gap there is no timing model.
    if (interarrival_.observations() == 0) return std::nullopt;

    const Request& current = trace.request(index);

    PredictedTask predicted;
    predicted.type = chain_.predict(current.type);
    predicted.arrival = std::max(current.arrival + interarrival_.predict(), now);
    predicted.relative_deadline = type_deadline_seen_[predicted.type]
                                      ? type_deadline_ewma_[predicted.type]
                                      : global_deadline_ewma_;
    if (predicted.relative_deadline <= 0.0) return std::nullopt;

    last_predicted_type_ = predicted.type;
    have_last_prediction_ = true;
    return predicted;
}

std::vector<PredictedTask> OnlinePredictor::predict_horizon(const Trace& trace,
                                                            std::size_t index, Time now,
                                                            std::size_t depth) {
    std::vector<PredictedTask> horizon;
    if (depth == 0 || index + 1 >= trace.size()) return horizon;
    if (interarrival_.observations() == 0) return horizon;

    TaskTypeId type = trace.request(index).type;
    Time arrival = trace.request(index).arrival;
    const double gap = interarrival_.predict();
    for (std::size_t k = 1; k <= depth && index + k < trace.size(); ++k) {
        type = chain_.predict(type);
        arrival += gap;
        const double deadline = type_deadline_seen_[type] ? type_deadline_ewma_[type]
                                                          : global_deadline_ewma_;
        if (deadline <= 0.0) break;
        horizon.push_back(PredictedTask{type, std::max(arrival, now), deadline});
        if (k == 1) {
            last_predicted_type_ = type;
            have_last_prediction_ = true;
        }
    }
    return horizon;
}

double OnlinePredictor::realized_type_accuracy() const noexcept {
    if (type_predictions_ == 0) return 0.0;
    return static_cast<double>(type_hits_) / static_cast<double>(type_predictions_);
}

} // namespace rmwp
