#include "predict/online.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "util/check.hpp"
#include "util/hexfloat.hpp"

namespace rmwp {
namespace {

constexpr const char* kCheckpointContext = "predictor checkpoint";

} // namespace

TwoPhaseInterarrivalEstimator::TwoPhaseInterarrivalEstimator(double ewma_alpha)
    : alpha_(ewma_alpha) {
    RMWP_EXPECT(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
}

void TwoPhaseInterarrivalEstimator::observe(double gap) {
    RMWP_EXPECT(gap >= 0.0);
    if (count_ == 0) {
        // Seed both regimes around the first observation, slightly apart so
        // the assignment step can separate a bimodal stream.
        centers_[0] = gap * 0.5;
        centers_[1] = gap * 1.5;
        ewma_[0] = gap;
        ewma_[1] = gap;
        global_ewma_ = gap;
    }
    ++count_;

    const int phase = std::abs(gap - centers_[0]) <= std::abs(gap - centers_[1]) ? 0 : 1;
    ++center_count_[phase];
    const double step = 1.0 / static_cast<double>(center_count_[phase]);
    centers_[phase] += step * (gap - centers_[phase]);
    ewma_[phase] += alpha_ * (gap - ewma_[phase]);
    global_ewma_ += alpha_ * (gap - global_ewma_);
    last_phase_ = phase;
}

void TwoPhaseInterarrivalEstimator::save(std::ostream& os) const {
    put_f64(os, alpha_);
    for (double center : centers_) put_f64(os, center);
    for (double e : ewma_) put_f64(os, e);
    put_f64(os, global_ewma_);
    os << center_count_[0] << ' ' << center_count_[1] << ' ' << last_phase_ << ' ' << count_
       << '\n';
}

void TwoPhaseInterarrivalEstimator::load(std::istream& is) {
    alpha_ = get_f64(is, kCheckpointContext);
    for (double& center : centers_) center = get_f64(is, kCheckpointContext);
    for (double& e : ewma_) e = get_f64(is, kCheckpointContext);
    global_ewma_ = get_f64(is, kCheckpointContext);
    center_count_[0] = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    center_count_[1] = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    last_phase_ = static_cast<int>(get_u64(is, kCheckpointContext));
    count_ = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    if (last_phase_ != 0 && last_phase_ != 1)
        throw std::runtime_error("predictor checkpoint: bad interarrival phase");
}

double TwoPhaseInterarrivalEstimator::predict() const noexcept {
    // On a unimodal stream the two "regimes" are just the two halves of one
    // distribution; following the last draw's half would bias the estimate.
    // Only trust the phase model when the regimes are genuinely separated.
    const double spread = std::abs(centers_[1] - centers_[0]);
    const double scale = 0.5 * (centers_[0] + centers_[1]);
    if (scale <= 0.0 || spread < scale) return global_ewma_;
    return ewma_[last_phase_];
}

MarkovTypeChain::MarkovTypeChain(std::size_t type_count)
    : type_count_(type_count),
      transition_(type_count, std::vector<std::uint32_t>(type_count, 0)),
      marginal_(type_count, 0) {
    RMWP_EXPECT(type_count > 0);
}

void MarkovTypeChain::observe(TaskTypeId from, TaskTypeId to) {
    RMWP_EXPECT(from < type_count_ && to < type_count_);
    ++transition_[from][to];
    ++marginal_[to];
}

void MarkovTypeChain::observe_first(TaskTypeId first) {
    RMWP_EXPECT(first < type_count_);
    ++marginal_[first];
}

void MarkovTypeChain::save(std::ostream& os) const {
    os << type_count_ << '\n';
    for (const auto& row : transition_) {
        for (std::size_t to = 0; to < type_count_; ++to)
            os << row[to] << (to + 1 < type_count_ ? ' ' : '\n');
    }
    for (std::size_t to = 0; to < type_count_; ++to)
        os << marginal_[to] << (to + 1 < type_count_ ? ' ' : '\n');
}

void MarkovTypeChain::load(std::istream& is) {
    const auto count = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    if (count != type_count_)
        throw std::runtime_error("predictor checkpoint: type count mismatch (checkpoint has " +
                                 std::to_string(count) + ", catalog has " +
                                 std::to_string(type_count_) + ")");
    for (auto& row : transition_)
        for (auto& cell : row) cell = static_cast<std::uint32_t>(get_u64(is, kCheckpointContext));
    for (auto& cell : marginal_) cell = static_cast<std::uint32_t>(get_u64(is, kCheckpointContext));
}

TaskTypeId MarkovTypeChain::predict(TaskTypeId from) const {
    RMWP_EXPECT(from < type_count_);
    const auto& row = transition_[from];
    const auto row_best = std::max_element(row.begin(), row.end());
    if (*row_best > 0) return static_cast<TaskTypeId>(row_best - row.begin());
    // Cold row: fall back to the global mode.
    const auto global_best = std::max_element(marginal_.begin(), marginal_.end());
    return static_cast<TaskTypeId>(global_best - marginal_.begin());
}

OnlinePredictor::OnlinePredictor(const Catalog& catalog, Time overhead, double ewma_alpha)
    : chain_(catalog.size()),
      interarrival_(ewma_alpha),
      type_deadline_ewma_(catalog.size(), 0.0),
      type_deadline_seen_(catalog.size(), false),
      ewma_alpha_(ewma_alpha),
      overhead_(overhead) {
    RMWP_EXPECT(overhead >= 0.0);
}

void OnlinePredictor::observe(const Trace& trace, std::size_t index) {
    observe_arrival(trace.request(index));
}

void OnlinePredictor::observe_arrival(const Request& request) {
    if (have_last_prediction_) {
        ++type_predictions_;
        if (last_predicted_type_ == request.type) ++type_hits_;
        have_last_prediction_ = false;
    }

    if (!have_last_request_) {
        chain_.observe_first(request.type);
    } else {
        chain_.observe(last_request_.type, request.type);
        interarrival_.observe(request.arrival - last_request_.arrival);
    }
    last_request_ = request;
    have_last_request_ = true;

    if (!type_deadline_seen_[request.type]) {
        type_deadline_ewma_[request.type] = request.relative_deadline;
        type_deadline_seen_[request.type] = true;
    } else {
        type_deadline_ewma_[request.type] +=
            ewma_alpha_ * (request.relative_deadline - type_deadline_ewma_[request.type]);
    }
    if (!global_deadline_seen_) {
        global_deadline_ewma_ = request.relative_deadline;
        global_deadline_seen_ = true;
    } else {
        global_deadline_ewma_ += ewma_alpha_ * (request.relative_deadline - global_deadline_ewma_);
    }
}

std::optional<PredictedTask> OnlinePredictor::predict_next(const Trace& trace, std::size_t index,
                                                           Time now) {
    // Trace-bound adapter: the batch caller knows the trace ends, so no
    // prediction is offered past the last request.
    if (index + 1 >= trace.size()) return std::nullopt;
    auto horizon = rollout(trace.request(index), now, 1);
    if (horizon.empty()) return std::nullopt;
    return horizon.front();
}

std::vector<PredictedTask> OnlinePredictor::predict_horizon(const Trace& trace,
                                                            std::size_t index, Time now,
                                                            std::size_t depth) {
    if (index + 1 >= trace.size()) return {};
    return rollout(trace.request(index), now, std::min(depth, trace.size() - index - 1));
}

std::vector<PredictedTask> OnlinePredictor::predict_upcoming(Time now, std::size_t depth) {
    if (!have_last_request_) return {};
    return rollout(last_request_, now, depth);
}

std::vector<PredictedTask> OnlinePredictor::rollout(const Request& anchor, Time now,
                                                    std::size_t depth) {
    std::vector<PredictedTask> horizon;
    if (depth == 0) return horizon;
    // Cold start: without at least one observed gap there is no timing model.
    if (interarrival_.observations() == 0) return horizon;

    // Markov-chain rollout anchored at `anchor`.
    TaskTypeId type = anchor.type;
    Time arrival = anchor.arrival;
    const double gap = interarrival_.predict();
    for (std::size_t k = 1; k <= depth; ++k) {
        type = chain_.predict(type);
        arrival += gap;
        const double deadline = type_deadline_seen_[type] ? type_deadline_ewma_[type]
                                                          : global_deadline_ewma_;
        if (deadline <= 0.0) break;
        horizon.push_back(PredictedTask{type, std::max(arrival, now), deadline});
        if (k == 1) {
            last_predicted_type_ = type;
            have_last_prediction_ = true;
        }
    }
    return horizon;
}

void OnlinePredictor::save(std::ostream& os) const {
    os << "RMWP-ONLINE-PREDICTOR 1\n";
    chain_.save(os);
    interarrival_.save(os);
    os << type_deadline_ewma_.size() << '\n';
    for (std::size_t t = 0; t < type_deadline_ewma_.size(); ++t) {
        os << (type_deadline_seen_[t] ? 1 : 0) << ' ';
        put_f64(os, type_deadline_ewma_[t]);
    }
    os << (global_deadline_seen_ ? 1 : 0) << ' ';
    put_f64(os, global_deadline_ewma_);
    put_f64(os, ewma_alpha_);
    put_f64(os, overhead_);
    os << type_predictions_ << ' ' << type_hits_ << ' ' << last_predicted_type_ << ' '
       << (have_last_prediction_ ? 1 : 0) << '\n';
    os << (have_last_request_ ? 1 : 0) << ' ' << last_request_.type << ' ';
    put_f64(os, last_request_.arrival);
    put_f64(os, last_request_.relative_deadline);
}

void OnlinePredictor::restore(std::istream& is) {
    std::string magic, version;
    if (!(is >> magic >> version) || magic != "RMWP-ONLINE-PREDICTOR" || version != "1")
        throw std::runtime_error("predictor checkpoint: bad header");
    chain_.load(is);
    interarrival_.load(is);
    const auto type_count = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    if (type_count != type_deadline_ewma_.size())
        throw std::runtime_error("predictor checkpoint: deadline table size mismatch");
    for (std::size_t t = 0; t < type_count; ++t) {
        type_deadline_seen_[t] = get_u64(is, kCheckpointContext) != 0;
        type_deadline_ewma_[t] = get_f64(is, kCheckpointContext);
    }
    global_deadline_seen_ = get_u64(is, kCheckpointContext) != 0;
    global_deadline_ewma_ = get_f64(is, kCheckpointContext);
    ewma_alpha_ = get_f64(is, kCheckpointContext);
    overhead_ = get_f64(is, kCheckpointContext);
    type_predictions_ = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    type_hits_ = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
    last_predicted_type_ = static_cast<TaskTypeId>(get_u64(is, kCheckpointContext));
    have_last_prediction_ = get_u64(is, kCheckpointContext) != 0;
    have_last_request_ = get_u64(is, kCheckpointContext) != 0;
    last_request_.type = static_cast<TaskTypeId>(get_u64(is, kCheckpointContext));
    last_request_.arrival = get_f64(is, kCheckpointContext);
    last_request_.relative_deadline = get_f64(is, kCheckpointContext);
}

double OnlinePredictor::realized_type_accuracy() const noexcept {
    if (type_predictions_ == 0) return 0.0;
    return static_cast<double>(type_hits_) / static_cast<double>(type_predictions_);
}

} // namespace rmwp
