// The prediction substrate.
//
// The paper does not propose a predictor; it abstracts prediction into two
// accuracy knobs (task-type accuracy and arrival-time NRMSE, Sec 5.4) plus a
// runtime-overhead knob (Sec 5.5), citing the authors' earlier work [12, 13]
// for concrete methods.  We implement:
//   * OraclePredictor — perfectly accurate (the "predictor on" rows);
//   * NoisyPredictor  — dialable type accuracy and arrival-time NRMSE;
//   * OnlinePredictor — an actual runtime predictor (first-order Markov
//     chain over task types + phase-aware interarrival estimation), in the
//     spirit of [12, 13], exercising the same interface end to end;
//   * NullPredictor   — prediction disabled.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/manager.hpp"
#include "util/rng.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace rmwp {

/// One prediction source bound to one trace run.  The simulator calls
/// observe() as each request arrives (ground truth becomes visible once the
/// request is real) and predict_next() when the RM wants the lookahead.
class Predictor {
public:
    virtual ~Predictor() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Request `index` of the trace has just arrived.
    virtual void observe(const Trace& trace, std::size_t index) = 0;

    /// Predict the request after `index` (the one that just arrived).
    /// Returns nullopt when no prediction is available (end of trace, cold
    /// start, or prediction disabled).
    [[nodiscard]] virtual std::optional<PredictedTask> predict_next(const Trace& trace,
                                                                    std::size_t index,
                                                                    Time now) = 0;

    /// Predict up to `depth` upcoming requests, nearest first.  The paper's
    /// predictor is the depth-1 case; the default implementation wraps
    /// predict_next().  Predictors with a real sequence model override this
    /// (lookahead extension, see bench_lookahead).
    [[nodiscard]] virtual std::vector<PredictedTask> predict_horizon(const Trace& trace,
                                                                     std::size_t index, Time now,
                                                                     std::size_t depth) {
        std::vector<PredictedTask> horizon;
        if (depth == 0) return horizon;
        if (auto predicted = predict_next(trace, index, now)) horizon.push_back(*predicted);
        return horizon;
    }

    /// Runtime cost of producing one prediction; the simulator delays the
    /// RM's decision by this much (Sec 5.5).
    [[nodiscard]] virtual Time overhead() const noexcept { return 0.0; }

    // Streaming variants for long-running serve mode (DESIGN.md §11), where
    // no trace vector exists and requests are observed one at a time.  The
    // defaults mean "prediction unavailable": trace-bound predictors
    // (oracle, noisy) need the future and cannot stream, so serve restricts
    // --predictor to the kinds that override these (off, online).

    /// A request has just arrived.  Streaming counterpart of observe().
    virtual void observe_arrival(const Request& request) { (void)request; }

    /// Predict up to `depth` upcoming requests, nearest first, from state
    /// accumulated via observe_arrival().  Streaming counterpart of
    /// predict_horizon().
    [[nodiscard]] virtual std::vector<PredictedTask> predict_upcoming(Time now,
                                                                      std::size_t depth) {
        (void)now;
        (void)depth;
        return {};
    }
};

/// Prediction disabled: predict_next is always empty and has no overhead.
class NullPredictor final : public Predictor {
public:
    [[nodiscard]] std::string name() const override { return "off"; }
    void observe(const Trace&, std::size_t) override {}
    [[nodiscard]] std::optional<PredictedTask> predict_next(const Trace&, std::size_t,
                                                            Time) override {
        return std::nullopt;
    }
};

/// Declarative predictor configuration used by the experiment harness.
struct PredictorSpec {
    enum class Kind { none, oracle, noisy, online };
    Kind kind = Kind::none;
    /// P(task type predicted correctly) — Fig 4a's axis.
    double type_accuracy = 1.0;
    /// Normalised RMSE of the arrival-time prediction — 1 minus Fig 4b's axis.
    double time_nrmse = 0.0;
    /// Decision delay per activation — Fig 5's axis (absolute time).
    Time overhead = 0.0;
    /// Additional decision delay expressed as a fraction of the trace's mean
    /// interarrival time (Fig 5 sweeps this coefficient); resolved to an
    /// absolute overhead per trace by the experiment runner.
    double overhead_interarrival_coeff = 0.0;
    /// How many upcoming requests the RM plans with (1 = the paper's
    /// single-step tau_p; larger values are the lookahead extension).
    std::size_t lookahead = 1;

    [[nodiscard]] static PredictorSpec off() { return {}; }
    [[nodiscard]] static PredictorSpec perfect(Time overhead = 0.0) {
        PredictorSpec spec;
        spec.kind = Kind::oracle;
        spec.overhead = overhead;
        return spec;
    }

    [[nodiscard]] std::string label() const;
};

/// Instantiate the predictor described by `spec` for one trace run.
[[nodiscard]] std::unique_ptr<Predictor> make_predictor(const PredictorSpec& spec,
                                                        const Catalog& catalog, Rng rng);

} // namespace rmwp
