#include "predict/predictor.hpp"

#include "predict/noisy.hpp"
#include "predict/online.hpp"
#include "predict/oracle.hpp"
#include "util/check.hpp"
#include "util/table.hpp"

namespace rmwp {

std::string PredictorSpec::label() const {
    switch (kind) {
    case Kind::none: return "off";
    case Kind::oracle: return overhead > 0.0 ? "on(oh=" + format_fixed(overhead, 2) + ")" : "on";
    case Kind::noisy:
        return "noisy(type=" + format_fixed(type_accuracy, 2) +
               ",nrmse=" + format_fixed(time_nrmse, 2) + ")";
    case Kind::online: return "online";
    }
    return "unknown";
}

std::unique_ptr<Predictor> make_predictor(const PredictorSpec& spec, const Catalog& catalog,
                                          Rng rng) {
    switch (spec.kind) {
    case PredictorSpec::Kind::none: return std::make_unique<NullPredictor>();
    case PredictorSpec::Kind::oracle: return std::make_unique<OraclePredictor>(spec.overhead);
    case PredictorSpec::Kind::noisy:
        return std::make_unique<NoisyPredictor>(catalog, spec.type_accuracy, spec.time_nrmse, rng,
                                                spec.overhead);
    case PredictorSpec::Kind::online:
        return std::make_unique<OnlinePredictor>(catalog, spec.overhead);
    }
    RMWP_ENSURE(false);
}

} // namespace rmwp
