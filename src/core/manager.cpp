#include "core/manager.hpp"

#include <algorithm>

#include "core/reservation.hpp"
#include "util/check.hpp"

namespace rmwp {

ScheduleItem make_schedule_item(const ActiveTask& task, const TaskType& type, ResourceId to,
                                Time now) {
    RMWP_EXPECT(type.executable_on(to));
    RMWP_EXPECT(!task.pinned || to == task.resource);
    ScheduleItem item;
    item.uid = task.uid;
    item.resource = to;
    item.release = now;
    item.abs_deadline = task.absolute_deadline;
    item.duration = occupied_time(task, type, to);
    item.pinned_first = task.pinned;
    return item;
}

ScheduleItem make_predicted_item(const PredictedTask& predicted, const TaskType& type,
                                 ResourceId to, Time now) {
    RMWP_EXPECT(type.executable_on(to));
    ScheduleItem item;
    item.uid = kPredictedUid;
    item.resource = to;
    item.release = std::max(predicted.arrival, now);
    item.abs_deadline = predicted.absolute_deadline();
    item.duration = type.wcet(to);
    item.pinned_first = false;
    return item;
}

Time planning_window(const ArrivalContext& context, std::size_t predicted_count) {
    Time latest = context.candidate.absolute_deadline;
    for (const ActiveTask& task : context.active) latest = std::max(latest, task.absolute_deadline);
    const std::size_t count = std::min(predicted_count, context.predicted.size());
    for (std::size_t k = 0; k < count; ++k)
        latest = std::max(latest, context.predicted[k].absolute_deadline());
    RMWP_ENSURE(latest >= context.now);
    return latest - context.now;
}

WindowSchedule realize_decision(const ArrivalContext& context, const Decision& decision) {
    std::vector<ScheduleItem> items;
    items.reserve(decision.assignments.size());

    auto find_task = [&](TaskUid uid) -> const ActiveTask* {
        if (uid == context.candidate.uid) return &context.candidate;
        for (const ActiveTask& task : context.active)
            if (task.uid == uid) return &task;
        return nullptr;
    };

    std::size_t candidate_seen = 0;
    for (const TaskAssignment& assignment : decision.assignments) {
        const ActiveTask* task = find_task(assignment.uid);
        RMWP_EXPECT(task != nullptr);
        if (task == &context.candidate) ++candidate_seen;
        items.push_back(
            make_schedule_item(*task, context.type_of(*task), assignment.resource, context.now));
    }
    if (decision.admitted) {
        RMWP_EXPECT(candidate_seen == 1);
        RMWP_EXPECT(decision.assignments.size() == context.active.size() + 1);
    } else {
        RMWP_EXPECT(decision.assignments.empty());
        for (const ActiveTask& task : context.active)
            items.push_back(
                make_schedule_item(task, context.type_of(task), task.resource, context.now));
    }

    if (context.reservations != nullptr && !context.reservations->empty()) {
        Time horizon = context.now;
        for (const ScheduleItem& item : items)
            horizon = std::max(horizon, item.abs_deadline);
        context.reservations->append_blocks(context.now, horizon, items);
    }

    return build_window_schedule(*context.platform, context.now, items);
}

} // namespace rmwp
