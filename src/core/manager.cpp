#include "core/manager.hpp"

#include <algorithm>

#include "core/reservation.hpp"
#include "util/check.hpp"

namespace rmwp {

const char* to_string(RejectReason reason) noexcept {
    switch (reason) {
    case RejectReason::none: return "none";
    case RejectReason::deadline_passed: return "deadline_passed";
    case RejectReason::heuristic_exhausted: return "heuristic_exhausted";
    case RejectReason::proved_infeasible: return "proved_infeasible";
    case RejectReason::solver_infeasible: return "solver_infeasible";
    case RejectReason::baseline_no_fit: return "baseline_no_fit";
    case RejectReason::overload: return "overload";
    }
    return "unknown";
}

ScheduleItem make_schedule_item(const ActiveTask& task, const TaskType& type, ResourceId to,
                                Time now, const PlatformHealth* health) {
    RMWP_EXPECT(type.executable_on(to));
    RMWP_EXPECT(!task.pinned || to == task.resource);
    ScheduleItem item;
    item.uid = task.uid;
    item.resource = to;
    item.release = now;
    item.abs_deadline = task.absolute_deadline;
    item.duration = occupied_time(task, type, to);
    if (health != nullptr) {
        RMWP_EXPECT(health->online(to));
        // Throttling stretches the remaining work, not the migration
        // overhead (the data move is memory-bound, not compute-bound).
        item.duration += (health->throttle(to) - 1.0) * remaining_time(task, type, to);
    }
    item.pinned_first = task.pinned;
    return item;
}

ScheduleItem make_predicted_item(const PredictedTask& predicted, const TaskType& type,
                                 ResourceId to, Time now) {
    RMWP_EXPECT(type.executable_on(to));
    ScheduleItem item;
    item.uid = kPredictedUid;
    item.resource = to;
    item.release = std::max(predicted.arrival, now);
    item.abs_deadline = predicted.absolute_deadline();
    item.duration = type.wcet(to);
    item.pinned_first = false;
    return item;
}

void ResourceManager::decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) {
    RMWP_EXPECT(batch.platform != nullptr);
    RMWP_EXPECT(batch.catalog != nullptr);
    out.clear();
    out.reserve(batch.items.size());

    // Sequential emulation: decide each item against the state the previous
    // admissions left behind, exactly as per-arrival admission would.
    std::vector<ActiveTask> working(batch.active.begin(), batch.active.end());
    for (const BatchItem& item : batch.items) {
        ArrivalContext context;
        context.now = batch.now;
        context.platform = batch.platform;
        context.catalog = batch.catalog;
        context.active = working;
        context.candidate = item.candidate;
        context.predicted = item.predicted;
        context.reservations = batch.reservations;
        context.health = batch.health;
        Decision decision = decide(context);
        if (decision.admitted)
            apply_decision_to_active(*batch.catalog, decision, item.candidate, working);
        out.push_back(std::move(decision));
    }
    RMWP_ENSURE(out.size() == batch.items.size());
}

void apply_decision_to_active(const Catalog& catalog, const Decision& decision,
                              const ActiveTask& candidate, std::vector<ActiveTask>& active) {
    RMWP_EXPECT(decision.admitted);
    for (const TaskAssignment& assignment : decision.assignments) {
        if (assignment.uid == candidate.uid) {
            ActiveTask admitted = candidate;
            admitted.resource = assignment.resource;
            active.push_back(admitted);
            continue;
        }
        ActiveTask* task = nullptr;
        for (ActiveTask& entry : active)
            if (entry.uid == assignment.uid) {
                task = &entry;
                break;
            }
        RMWP_ENSURE(task != nullptr);
        if (assignment.resource == task->resource) continue;
        RMWP_ENSURE(!task->pinned); // non-preemptable tasks never move
        // Relocation replaces any unpaid migration time with the new pair's
        // cost — exactly what occupied_time() plans with (the simulator
        // additionally charges migration energy; that is not RM-visible).
        if (task->started)
            task->pending_overhead =
                catalog.type(task->type).migration_time(task->resource, assignment.resource);
        task->resource = assignment.resource;
    }
}

RescueDecision ResourceManager::rescue(const RescueContext& context) {
    RMWP_EXPECT(context.platform != nullptr);
    RMWP_EXPECT(context.catalog != nullptr);
    const Platform& platform = *context.platform;
    RescueDecision decision;

    // Non-replanning fallback: every surviving task stays where it is.
    // Tasks on an offline resource have nowhere to run without a migration,
    // which this policy never performs — they are aborted outright.
    Time horizon = context.now;
    std::vector<std::vector<ScheduleItem>> per_physical(platform.size());
    for (const ActiveTask& task : context.active) {
        if (context.health != nullptr && !context.health->online(task.resource)) {
            decision.aborted.push_back(task.uid);
            continue;
        }
        horizon = std::max(horizon, task.absolute_deadline);
        const ResourceId anchor = platform.resource(task.resource).physical();
        per_physical[anchor].push_back(make_schedule_item(task, context.type_of(task),
                                                          task.resource, context.now,
                                                          context.health));
    }
    if (context.reservations != nullptr && !context.reservations->empty()) {
        for (const Resource& resource : platform) {
            auto blocks = context.reservations->blocks_for(resource.id(), context.now, horizon);
            auto& bucket = per_physical[resource.physical()];
            bucket.insert(bucket.end(), blocks.begin(), blocks.end());
        }
    }

    // Degraded capacity (throttle-inflated durations) can make the in-place
    // set unschedulable: shed the latest-deadline adaptive occupant of each
    // violated core until its EDF check passes again.
    for (const Resource& resource : platform) {
        if (resource.physical() != resource.id()) continue; // one pass per core
        auto& items = per_physical[resource.id()];
        while (!resource_feasible(resource, context.now, items)) {
            std::size_t victim = items.size();
            for (std::size_t k = 0; k < items.size(); ++k) {
                if (items[k].reserved) continue;
                if (victim == items.size() ||
                    items[k].abs_deadline > items[victim].abs_deadline)
                    victim = k;
            }
            RMWP_ENSURE(victim < items.size()); // reservations alone always fit
            decision.aborted.push_back(items[victim].uid);
            items.erase(items.begin() + static_cast<std::ptrdiff_t>(victim));
        }
        for (const ScheduleItem& item : items)
            if (!item.reserved) decision.kept.push_back(TaskAssignment{item.uid, item.resource});
    }
    return decision;
}

Time planning_window(const ArrivalContext& context, std::size_t predicted_count) {
    Time latest = context.candidate.absolute_deadline;
    for (const ActiveTask& task : context.active) latest = std::max(latest, task.absolute_deadline);
    const std::size_t count = std::min(predicted_count, context.predicted.size());
    for (std::size_t k = 0; k < count; ++k)
        latest = std::max(latest, context.predicted[k].absolute_deadline());
    RMWP_ENSURE(latest >= context.now);
    return latest - context.now;
}

WindowSchedule realize_decision(const ArrivalContext& context, const Decision& decision) {
    std::vector<ScheduleItem> items;
    items.reserve(decision.assignments.size());

    auto find_task = [&](TaskUid uid) -> const ActiveTask* {
        if (uid == context.candidate.uid) return &context.candidate;
        for (const ActiveTask& task : context.active)
            if (task.uid == uid) return &task;
        return nullptr;
    };

    std::size_t candidate_seen = 0;
    for (const TaskAssignment& assignment : decision.assignments) {
        const ActiveTask* task = find_task(assignment.uid);
        RMWP_EXPECT(task != nullptr);
        if (task == &context.candidate) ++candidate_seen;
        items.push_back(
            make_schedule_item(*task, context.type_of(*task), assignment.resource, context.now));
    }
    if (decision.admitted) {
        RMWP_EXPECT(candidate_seen == 1);
        RMWP_EXPECT(decision.assignments.size() == context.active.size() + 1);
    } else {
        RMWP_EXPECT(decision.assignments.empty());
        for (const ActiveTask& task : context.active)
            items.push_back(
                make_schedule_item(task, context.type_of(task), task.resource, context.now));
    }

    if (context.reservations != nullptr && !context.reservations->empty()) {
        Time horizon = context.now;
        for (const ScheduleItem& item : items)
            horizon = std::max(horizon, item.abs_deadline);
        context.reservations->append_blocks(context.now, horizon, items);
    }

    return build_window_schedule(*context.platform, context.now, items);
}

} // namespace rmwp
