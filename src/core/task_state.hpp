// Runtime state of an admitted task instance, and the remaining-cost
// algebra of Sec 4.1:
//   cp_{j,i} = c_{j,i} * remaining_fraction        (work not yet executed)
//   ep_{j,i} = e_{j,i} * remaining_fraction        (energy not yet consumed)
//   cpm_{j,i} = cp_{j,i} + cm_{j,k,i}  if relocating a started task k -> i
//   epm_{j,i} = ep_{j,i} + em_{j,k,i}  likewise for energy
//
// Progress is tracked as a resource-independent fraction of work done, so
// the paper's proportional rescaling on migration falls out directly.
// Migration overhead is modelled as resource time that must elapse before
// real progress resumes (`pending_overhead`), with the energy overhead
// charged once at the moment of the migration decision.
#pragma once

#include <cstdint>

#include "platform/platform.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"

namespace rmwp {

/// Unique id of an admitted task instance within one simulation.
using TaskUid = std::uint64_t;

/// State of one admitted, unfinished task.
struct ActiveTask {
    TaskUid uid = 0;
    TaskTypeId type = 0;
    Time arrival = 0.0;
    Time absolute_deadline = 0.0;
    ResourceId resource = 0;          ///< current mapping
    bool started = false;             ///< has made progress (or begun migrating)
    bool pinned = false;              ///< began executing on a non-preemptable resource
    double remaining_fraction = 1.0;  ///< fraction of the work not yet executed, in [0, 1]
    Time pending_overhead = 0.0;      ///< migration time still to be paid on `resource`

    /// Slack until the absolute deadline, t_left_j = s_j + d_j - t.
    [[nodiscard]] Time time_left(Time now) const noexcept { return absolute_deadline - now; }

    [[nodiscard]] bool finished() const noexcept { return remaining_fraction <= 0.0; }
};

/// cp_{j,i}: worst-case execution time not yet consumed, on resource i.
[[nodiscard]] double remaining_time(const ActiveTask& task, const TaskType& type, ResourceId i);

/// ep_{j,i}: average energy not yet consumed, on resource i.
[[nodiscard]] double remaining_energy(const ActiveTask& task, const TaskType& type, ResourceId i);

/// Whether assigning `task` to `to` constitutes a migration (it has started
/// somewhere else).  Unstarted tasks can be re-mapped freely: there is no
/// execution state to move yet.
[[nodiscard]] bool is_migration(const ActiveTask& task, ResourceId to) noexcept;

/// cpm_{j,i}: occupied resource time if `task` ends up on `to` during the
/// current window — remaining work plus migration time (or the unpaid part
/// of a previously started migration when staying put).
[[nodiscard]] double occupied_time(const ActiveTask& task, const TaskType& type, ResourceId to);

/// epm contribution: remaining energy plus migration-energy overhead if the
/// assignment relocates a started task.
[[nodiscard]] double assignment_energy(const ActiveTask& task, const TaskType& type,
                                       ResourceId to);

/// Migration energy overhead of the assignment (0 when not a migration).
[[nodiscard]] double migration_energy_cost(const ActiveTask& task, const TaskType& type,
                                           ResourceId to);

} // namespace rmwp
