#include "core/baseline_rm.hpp"

#include <algorithm>
#include <optional>

#include "core/edf.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

/// Greedy frozen placement over a prediction-free instance: existing tasks
/// stay on their current resources (fill_real_task records them as
/// pinned_resource), and only the trailing candidate is probed, cheapest
/// resource first.  Returns the full per-task mapping (frozen homes +
/// candidate's slot) or nullopt when the candidate fits nowhere.  Shared by
/// decide() and decide_batch() so the two stay bit-identical by
/// construction.
std::optional<std::vector<ResourceId>> place_frozen(const PlanInstance& instance) {
    RMWP_EXPECT(instance.platform != nullptr && !instance.has_predicted());
    const Platform& platform = *instance.platform;
    const std::size_t n = instance.resource_count();
    const std::size_t candidate_index = instance.tasks.size() - 1;
    RMWP_EXPECT(instance.tasks[candidate_index].is_candidate);

    // Pooled per-anchor schedules: reservation blocks plus the frozen
    // actives, demand-sorted once so candidate probes are insert/erase.
    static thread_local std::vector<std::vector<ScheduleItem>> occupied;
    static thread_local std::vector<ResourceId> order;
    static thread_local std::vector<ResourceId> mapping;
    if (occupied.size() < n) occupied.resize(n);
    for (ResourceId i = 0; i < n; ++i) {
        occupied[i].clear();
        occupied[i].insert(occupied[i].end(), instance.blocks[i].begin(),
                           instance.blocks[i].end());
    }
    mapping.assign(instance.tasks.size(), 0);
    for (std::size_t j = 0; j < candidate_index; ++j) {
        const ResourceId home = instance.tasks[j].pinned_resource;
        occupied[platform.resource(home).physical()].push_back(instance.item_for(j, home));
        mapping[j] = home;
    }
    for (ResourceId i = 0; i < n; ++i)
        std::sort(occupied[i].begin(), occupied[i].end(), demand_order);

    // Cheapest-first placement of the candidate only.
    const PlanTask& candidate = instance.tasks[candidate_index];
    order.assign(candidate.executable.begin(), candidate.executable.end());
    std::sort(order.begin(), order.end(),
              [&](ResourceId a, ResourceId b) { return candidate.epm[a] < candidate.epm[b]; });

    for (const ResourceId i : order) {
        const ResourceId anchor = platform.resource(i).physical();
        const std::size_t pos =
            insert_demand_ordered(occupied[anchor], instance.item_for(candidate_index, i));
        if (resource_feasible_sorted(platform.resource(anchor), instance.now,
                                     occupied[anchor])) {
            mapping[candidate_index] = i;
            return std::vector<ResourceId>(mapping.begin(), mapping.end());
        }
        occupied[anchor].erase(occupied[anchor].begin() + static_cast<std::ptrdiff_t>(pos));
    }
    return std::nullopt;
}

} // namespace

Decision BaselineRM::decide(const ArrivalContext& context) {
    RMWP_EXPECT(context.platform != nullptr && context.catalog != nullptr);
    // Prediction is ignored by design; build the instance without it.
    const PlanInstance& instance = PlanInstance::build_into(PlanPool::local(), context, 0);

    Decision decision;
    if (const auto mapping = place_frozen(instance)) {
        decision.admitted = true;
        decision.assignments = instance.real_assignments(*mapping);
        return decision;
    }
    decision.reason = RejectReason::baseline_no_fit;
    RMWP_ENSURE(!decision.admitted && decision.assignments.empty());
    return decision; // reject
}

void BaselineRM::decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) {
    RMWP_EXPECT(batch.platform != nullptr && batch.catalog != nullptr);
    BatchPlanner planner(batch);
    out.clear();
    out.reserve(batch.items.size());
    for (std::size_t m = 0; m < planner.item_count(); ++m) {
        // Prediction-free rung only: the baseline never climbs the ladder.
        const PlanInstance& instance = planner.assemble(m, 0);
        Decision decision;
        if (const auto mapping = place_frozen(instance)) {
            decision = planner.admit(m, *mapping);
        } else {
            decision.reason = RejectReason::baseline_no_fit;
        }
        out.push_back(std::move(decision));
    }
    RMWP_ENSURE(out.size() == batch.items.size());
}

} // namespace rmwp
