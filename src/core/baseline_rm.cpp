#include "core/baseline_rm.hpp"

#include <algorithm>

#include "core/edf.hpp"
#include "util/check.hpp"

namespace rmwp {

Decision BaselineRM::decide(const ArrivalContext& context) {
    // Prediction is ignored by design; build the instance without it.
    const PlanInstance instance = PlanInstance::build(context, 0);
    const Platform& platform = *instance.platform;

    // Existing tasks are frozen on their current resources.
    std::vector<std::vector<ScheduleItem>> occupied = instance.blocks;
    const std::size_t candidate_index = instance.tasks.size() - 1;
    RMWP_ENSURE(instance.tasks[candidate_index].is_candidate);
    for (std::size_t j = 0; j + 1 < instance.tasks.size(); ++j) {
        const ResourceId home = context.active[j].resource;
        occupied[platform.resource(home).physical()].push_back(instance.item_for(j, home));
    }

    // Cheapest-first placement of the candidate only.
    const PlanTask& candidate = instance.tasks[candidate_index];
    std::vector<ResourceId> order = candidate.executable;
    std::sort(order.begin(), order.end(),
              [&](ResourceId a, ResourceId b) { return candidate.epm[a] < candidate.epm[b]; });

    Decision decision;
    for (const ResourceId i : order) {
        const ResourceId anchor = platform.resource(i).physical();
        occupied[anchor].push_back(instance.item_for(candidate_index, i));
        if (resource_feasible(platform.resource(anchor), instance.now, occupied[anchor])) {
            decision.admitted = true;
            for (std::size_t j = 0; j + 1 < instance.tasks.size(); ++j)
                decision.assignments.push_back(
                    TaskAssignment{instance.tasks[j].uid, context.active[j].resource});
            decision.assignments.push_back(TaskAssignment{candidate.uid, i});
            return decision;
        }
        occupied[anchor].pop_back();
    }
    decision.reason = RejectReason::baseline_no_fit;
    return decision; // reject
}

} // namespace rmwp
