// The literal MILP formulation of Sec 4.2, encoded with the big-M method
// onto the in-repo solver (src/milp).
//
// Mapping variables x_{j,i} with the objective
//     minimize sum_j sum_i x_{j,i} * (ep_{j,i} + em_{j,k,i})
// and constraints (1)-(14):
//   (1)  each task on exactly one resource;
//   (2)  encoded structurally — (j,i) pairs with cpm_{j,i} > t_left_j get no
//        variable;
//   (3)  EDF prefix-sum schedulability per resource, relaxed by M*x_{p,i}
//        on the resource that hosts the predicted task;
//   (6)  unconditional prefix sums over SL1 (deadline <= d_p);
//   (4/5,7-14)  the predicted-task cases via q_i, chunk start/end variables
//        for SL2 tasks, chunk-before/after-tau_p binaries, and pairwise
//        SL2 ordering binaries.
// On non-preemptable resources the second chunk is forced empty (no
// preemption, Sec 4.1), which leaves the solver free to order tau_p and SL2
// tasks — a slight superset of the boundary-EDF executed by the engine, so
// the MILP mapping's optimum can only be <= the branch-and-bound optimum
// (asserted in tests).  The per-activation cost makes this RM suitable for
// validation and microbenchmarks, matching the paper's own observation that
// the MILP "is not applicable in practice".
#pragma once

#include <optional>

#include "core/manager.hpp"
#include "core/plan_instance.hpp"
#include "milp/milp.hpp"

namespace rmwp {

class MilpRM final : public ResourceManager {
public:
    MilpRM() = default;
    explicit MilpRM(milp::MilpOptions options) : options_(std::move(options)) {}

    [[nodiscard]] Decision decide(const ArrivalContext& context) override;
    [[nodiscard]] RescueDecision rescue(const RescueContext& context) override;
    [[nodiscard]] std::string name() const override { return "milp"; }

    struct Result {
        std::vector<ResourceId> mapping;
        double energy = 0.0;
        bool proven_optimal = true;
        std::uint64_t nodes = 0;
    };

    /// Encode and solve one instance; nullopt when the MILP is infeasible.
    [[nodiscard]] static std::optional<Result> optimize(const PlanInstance& instance,
                                                        const milp::MilpOptions& options = {});

    /// Expose the encoding itself (for tests that inspect the model).
    [[nodiscard]] static milp::LinearProgram encode(const PlanInstance& instance);

private:
    milp::MilpOptions options_;
};

} // namespace rmwp
