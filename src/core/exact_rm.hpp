// Exact energy-optimal mapping via branch-and-bound (the role the MILP of
// Sec 4.2 plays in the paper's experiments).
//
// Per activation the decision space is exactly the set of task->resource
// mappings: once the mapping is fixed, per-resource EDF (with the predicted
// task's release-time semantics) determines schedulability, and the energy
// objective sum_j epm_{j, map(j)} depends only on the mapping.  The search
// enumerates mappings depth-first with
//   * incremental per-resource EDF feasibility pruning (adding a task to a
//     resource never improves that resource's feasibility), and
//   * an admissible lower bound (assigned cost + sum of per-task minima).
// It therefore returns the same optimum as the paper's MILP at a fraction
// of the cost; src/milp provides the literal big-M MILP encoding, and the
// test suite cross-checks the two on random instances.
#pragma once

#include <cstdint>
#include <optional>

#include "core/manager.hpp"
#include "core/plan_instance.hpp"

namespace rmwp {

class ExactRM final : public ResourceManager {
public:
    struct Options {
        /// Safety valve on pathological instances; the search falls back to
        /// the best feasible mapping found so far once exhausted.  The
        /// default is far above what the paper's workloads ever need.
        std::uint64_t node_limit = 20'000'000;
        /// Node budget per solve during fault rescue.  Rescue instances are
        /// frequently infeasible (that is why the rescue ran), and proving
        /// infeasibility exhausts the whole tree — under the admission
        /// budget one degraded activation could stall the platform for
        /// seconds.  A tight budget keeps recovery latency bounded; when it
        /// runs out without an incumbent the ladder simply sheds the next
        /// victim, which is safe (never unschedulable, at worst one abort
        /// more than the true optimum).
        std::uint64_t rescue_node_limit = 200'000;
    };

    ExactRM() = default;
    explicit ExactRM(Options options) : options_(options) {}

    [[nodiscard]] Decision decide(const ArrivalContext& context) override;
    /// Batched admission over the shared BatchPlanner base: one plan
    /// rebuild per batch, bit-identical decisions to sequential decide()s.
    void decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) override;
    [[nodiscard]] RescueDecision rescue(const RescueContext& context) override;
    [[nodiscard]] std::string name() const override { return "exact"; }

    struct Result {
        std::vector<ResourceId> mapping; ///< indexed like instance.tasks
        double energy = 0.0;             ///< sum of epm over the mapping
        bool proven_optimal = true;      ///< false iff the node limit was hit
        std::uint64_t nodes = 0;
    };

    /// Find the minimum-energy feasible mapping; nullopt when infeasible.
    /// With `proven_out`, reports whether a nullopt is a *proof* of
    /// infeasibility (search tree exhausted) or only the node budget
    /// running out with no incumbent — the distinction behind the
    /// proved_infeasible vs solver_infeasible rejection reasons.
    [[nodiscard]] static std::optional<Result> optimize(const PlanInstance& instance,
                                                        const Options& options,
                                                        bool* proven_out = nullptr);
    [[nodiscard]] static std::optional<Result> optimize(const PlanInstance& instance) {
        return optimize(instance, Options{});
    }

private:
    void decide_batch_sharded(const BatchArrivalContext& batch, std::vector<Decision>& out);

    Options options_;
};

} // namespace rmwp
