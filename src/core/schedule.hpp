// Window schedules: the per-resource timelines the RM plans at each
// activation (Sec 4.1).  A schedule covers the window from the activation
// time to the latest deadline of the planned task set; each resource holds a
// sequence of non-overlapping segments.  Planned preemptions (by the
// predicted task) appear as a task's work split across multiple segments.
#pragma once

#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/task_state.hpp"
#include "platform/platform.hpp"
#include "workload/trace.hpp"

namespace rmwp {

// The uid space is partitioned so that virtual planning entities never
// collide with real task uids:
//   [0, 2^62)           real (adaptive) tasks
//   [2^63, 2^63 + 2^62) design-time critical reservations
//   [2^63 + 2^62, max]  predicted (virtual) tasks, one uid per lookahead step

/// Base uid of design-time critical reservations (Sec 2: safety-critical
/// hard real-time tasks whose allocation is fixed offline).  They are not
/// mappable tasks; they block their resource with the highest priority.
inline constexpr TaskUid kReservedUidBase = TaskUid{1} << 63;

/// Base uid of predicted (virtual) tasks; step k of the lookahead carries
/// uid kPredictedUidBase + k.  Being the largest uids, predicted tasks lose
/// EDF deadline ties to real tasks ("SL1 = deadline earlier or equal").
inline constexpr TaskUid kPredictedUidBase = kReservedUidBase | (TaskUid{1} << 62);

/// Uid of the first predicted task (the paper's single-step tau_p).
inline constexpr TaskUid kPredictedUid = kPredictedUidBase;

[[nodiscard]] constexpr bool is_predicted_uid(TaskUid uid) noexcept {
    return uid >= kPredictedUidBase;
}

[[nodiscard]] constexpr bool is_reserved_uid(TaskUid uid) noexcept {
    return uid >= kReservedUidBase && uid < kPredictedUidBase;
}

/// A contiguous stretch of one task's execution on one resource.
struct Segment {
    TaskUid uid = 0;
    Time start = 0.0;
    Time end = 0.0;

    [[nodiscard]] Time duration() const noexcept { return end - start; }
};

/// Time-ordered, non-overlapping segments on one resource.
struct ResourceTimeline {
    std::vector<Segment> segments;
};

/// One task's scheduling input to the EDF engine.
struct ScheduleItem {
    TaskUid uid = 0;
    ResourceId resource = 0;
    Time release = 0.0;       ///< activation time for real tasks, s_p for the predicted one
    Time abs_deadline = 0.0;
    double duration = 0.0;    ///< cpm on `resource` (remaining work + migration overhead)
    bool pinned_first = false; ///< currently executing on a non-preemptable resource
    /// Design-time critical reservation: runs exactly at [release,
    /// release + duration) with absolute priority over every adaptive task.
    bool reserved = false;
};

/// Result of planning one window.
struct WindowSchedule {
    Time start = 0.0;
    bool feasible = false;
    std::vector<ResourceTimeline> per_resource;
    std::unordered_map<TaskUid, Time> completion; ///< final finish time per task

    /// Completion time of a task; empty if the task was not scheduled.
    [[nodiscard]] std::optional<Time> completion_of(TaskUid uid) const;

    /// All segments of one task across resources, in time order.
    [[nodiscard]] std::vector<Segment> segments_of(TaskUid uid) const;
};

} // namespace rmwp
