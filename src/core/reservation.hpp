// Design-time critical-task reservations (Sec 2).
//
// The paper integrates safety-critical hard real-time applications by
// deciding their resource allocation offline and letting the runtime
// manager "allocate with the highest priority the required resources to the
// critical applications and continue to apply the adaptive resource
// allocation technique over the remaining set of resources".
//
// A CriticalTask is a periodic reservation: every `period` time units,
// starting at `offset`, its resource is blocked for `duration`.  The
// ReservationTable expands these into ScheduleItems (uid space >=
// kReservedUidBase) that the EDF engine treats as highest-priority,
// immovable work; both resource managers subtract the blocked time from
// their knapsack capacities and include the blocks in every schedulability
// check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "platform/platform.hpp"

namespace rmwp {

/// One design-time-allocated periodic critical task.
struct CriticalTask {
    std::string name;
    ResourceId resource = 0;
    Time period = 0.0;
    Time offset = 0.0;   ///< first window start
    Time duration = 0.0; ///< reserved time per instance
    double energy_per_instance = 0.0;

    [[nodiscard]] double utilization() const noexcept { return duration / period; }
};

/// The static reservation schedule the adaptive RM must respect.
class ReservationTable {
public:
    ReservationTable() = default;
    explicit ReservationTable(std::vector<CriticalTask> tasks);

    [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
    [[nodiscard]] const std::vector<CriticalTask>& tasks() const noexcept { return tasks_; }

    /// Total reserved utilisation of one resource.
    [[nodiscard]] double utilization_of(ResourceId resource) const noexcept;

    /// Blocked ScheduleItems for `resource` whose windows intersect
    /// [from, until).  A window already in progress at `from` is clipped to
    /// its remaining part.  Uids encode (task index, instance number) and
    /// are stable across calls.
    [[nodiscard]] std::vector<ScheduleItem> blocks_for(ResourceId resource, Time from,
                                                       Time until) const;

    /// Blocks for every resource, appended to `out`.
    void append_blocks(Time from, Time until, std::vector<ScheduleItem>& out) const;

    /// The critical task behind a reserved uid.
    [[nodiscard]] const CriticalTask& task_of(TaskUid reserved_uid) const;

    /// Process-unique identity of this table's (immutable) contents, used
    /// as a memoisation key by the planning layer.  Copies share the
    /// revision: a ReservationTable is never mutated after construction, so
    /// equal revisions imply equal block expansions.
    [[nodiscard]] std::uint64_t revision() const noexcept { return revision_; }

private:
    static std::uint64_t next_revision() noexcept;

    std::vector<CriticalTask> tasks_;
    std::uint64_t revision_ = next_revision();
};

} // namespace rmwp
