// The EDF scheduling engine behind both resource managers (Sec 4.1/4.2).
//
// On every resource, tasks are ordered earliest-deadline-first.  All real
// tasks are released at the activation time (between two activations there
// is no preemption among real tasks), while the predicted task is released
// at its predicted arrival s_p — so a single "EDF with release times"
// simulation reproduces all the cases of the MILP formulation:
//   * s_p <= q_i  -> the predicted task simply queues after SL1 (constr. 4/7);
//   * s_p  > q_i  -> it preempts the running SL2 task, splitting it into two
//                    chunks (constraints 8-14);
//   * non-preemptable resources dispatch at task boundaries only, so the
//     predicted task waits for the running task to finish (no preemption on
//     GPUs, Sec 4.1).
// A task currently executing on a non-preemptable resource is pinned and
// always occupies the head of that resource's timeline.
#pragma once

#include <span>

#include "core/schedule.hpp"
#include "platform/platform.hpp"

namespace rmwp {

/// Plan one resource's timeline.  `items` are the tasks assigned to
/// `resource` (any order).  Returns the timeline and whether every item
/// finishes by its deadline; completion times are appended to `completion`.
/// At most one item may be pinned_first, and only on a non-preemptable
/// resource.
struct ResourceScheduleResult {
    ResourceTimeline timeline;
    bool feasible = true;
};

[[nodiscard]] ResourceScheduleResult schedule_resource(
    const Resource& resource, Time now, std::span<const ScheduleItem> items,
    std::unordered_map<TaskUid, Time>* completion = nullptr);

/// Verdict of the O(k log k) demand-bound prefilter that guards the full
/// EDF simulation on the admission hot path.
enum class EdfPrefilter {
    infeasible, ///< demand provably exceeds supply — certainly infeasible
    feasible,   ///< exact fast path applied — certainly feasible
    unknown,    ///< neither certificate holds; run the full simulation
};

/// The demand-bound scan order: (abs_deadline, release, uid).  A total order
/// over the distinct items of one resource, so a list kept sorted under it
/// is exactly what sorting an arbitrary permutation would produce — the
/// foundation of the incremental (insert-one, scan-prefix) schedulability
/// state the solvers maintain across probes.
[[nodiscard]] inline bool demand_order(const ScheduleItem& a, const ScheduleItem& b) noexcept {
    if (a.abs_deadline != b.abs_deadline) return a.abs_deadline < b.abs_deadline;
    if (a.release != b.release) return a.release < b.release;
    return a.uid < b.uid;
}

/// Insert `item` into a demand_order-sorted list, keeping it sorted
/// (upper_bound, so an equal key lands after existing ones — irrelevant for
/// the total order, cheap for repeated probe/erase cycles).  Returns the
/// insertion index so a failed probe can erase in O(1) lookup.
std::size_t insert_demand_ordered(std::vector<ScheduleItem>& items, const ScheduleItem& item);

/// Cheap schedulability screen, exact in its decisive verdicts:
///   * infeasible — for some deadline d, the total work that must finish by
///     d exceeds the capacity of [now, d].  Valid for any resource
///     (preemptable or not), any releases, reservations, and pinning: no
///     schedule can create capacity.
///   * feasible — when every item is an already-released (release <= now),
///     unreserved, unpinned task on a preemptable resource, EDF completes
///     the k-th item (in deadline order) at exactly now + the prefix work,
///     so the per-deadline check is the full simulation's verdict.
/// Verdicts carry a safety margin against floating-point ordering noise;
/// borderline instances return `unknown` instead of guessing
/// (tests/test_edf.cpp pins agreement with simulate_edf on random
/// instances).
[[nodiscard]] EdfPrefilter edf_demand_prefilter(const Resource& resource, Time now,
                                                std::span<const ScheduleItem> items);

/// edf_demand_prefilter for a list already sorted by demand_order: skips
/// the per-probe sort and scans the items in place.  Bit-identical verdicts
/// to the unsorted variant (the duration sum runs in the same order), which
/// tests/test_edf.cpp pins on random instances.
[[nodiscard]] EdfPrefilter edf_demand_prefilter_sorted(const Resource& resource, Time now,
                                                       std::span<const ScheduleItem> items);

/// Fast feasibility-only variant of schedule_resource (no timeline built).
/// Answers from the demand-bound prefilter when it is decisive; falls back
/// to the full EDF simulation otherwise.
[[nodiscard]] bool resource_feasible(const Resource& resource, Time now,
                                     std::span<const ScheduleItem> items);

/// resource_feasible for a demand_order-sorted list (the solvers'
/// incremental probe path).  Same verdicts as resource_feasible on any
/// permutation of `items`: the simulation is input-order independent and
/// the sorted prefilter scans the exact order the unsorted one sorts into.
[[nodiscard]] bool resource_feasible_sorted(const Resource& resource, Time now,
                                            std::span<const ScheduleItem> items);

/// Plan the whole window: groups `items` by their `resource` field and runs
/// schedule_resource on each.  Items mapped to a resource index >= platform
/// size are a precondition violation.
[[nodiscard]] WindowSchedule build_window_schedule(const Platform& platform, Time now,
                                                   std::span<const ScheduleItem> items);

} // namespace rmwp
