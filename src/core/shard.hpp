// Sharded concurrent admission (DESIGN.md §15).
//
// The platform's resources fall into *resource groups*: connected
// components of the relation "some catalog task type can execute on both".
// Tasks from different groups share no feasible resource, so their
// placements, EDF probes, and energy costs never interact — a plan over the
// whole platform decomposes exactly into independent per-group sub-plans.
// ShardPartition computes that decomposition (union-find over the catalog's
// executability sets, group ids assigned in smallest-resource-id order so
// the partition is a pure function of platform + catalog), and
// ShardedSolver solves the per-group sub-instances — optionally in parallel
// on the persistent exec::probe_pool — then merges the per-bucket mappings
// back into instance order.
//
// Determinism contract (DESIGN.md §9): the merged decision is bit-identical
// to the sequential solve at any shard count and any probe-job count.
// Parallel workers write only their own bucket's slot (mapping + verdict);
// the merge reads the slots in bucket order on the calling thread, so the
// schedule of the workers can never reorder results.  An RMWP_AUDIT build
// re-solves every instance sequentially and asserts bit-equality.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/manager.hpp"
#include "core/plan_instance.hpp"

namespace rmwp {

/// Resource-group partition of one (platform, catalog) pair.  Pooled:
/// rebuild() reuses all scratch capacity, so recomputing it per decision
/// (O(resources + catalog executability entries), far below one solve)
/// costs no steady-state allocation and needs no cross-decision cache keys.
class ShardPartition {
public:
    /// Recompute groups: operating points join their physical core, and
    /// every task type joins all resources it can execute on.  Group ids
    /// are dense [0, group_count()) in order of each group's smallest
    /// resource id — deterministic in the inputs alone.
    void rebuild(const Platform& platform, const Catalog& catalog);

    [[nodiscard]] std::size_t group_count() const noexcept { return group_count_; }
    [[nodiscard]] std::size_t group_of(ResourceId i) const {
        RMWP_EXPECT(i < group_of_.size());
        return group_of_[i];
    }

    /// Number of distinct solve buckets under a `shards` cap.
    [[nodiscard]] std::size_t bucket_count(std::size_t shards) const noexcept {
        return std::min(group_count_, std::max<std::size_t>(shards, 1));
    }

    /// Solve bucket of a resource: its group, folded modulo the shard cap.
    [[nodiscard]] std::size_t bucket_of_resource(ResourceId i, std::size_t shards) const {
        return group_of(i) % std::max<std::size_t>(shards, 1);
    }

    /// Solve bucket of a plan task.  All of a task's executable resources
    /// lie in one group by construction; a task with an empty executable
    /// set (all its resources offline under faults) deterministically lands
    /// in bucket 0, where it fails feasibility exactly as it would in the
    /// sequential solve.
    [[nodiscard]] std::size_t bucket_of(const PlanTask& task, std::size_t shards) const {
        return task.executable.empty() ? 0 : bucket_of_resource(task.executable.front(), shards);
    }

    /// Solve bucket of every task of a catalog type.
    [[nodiscard]] std::size_t bucket_of(const TaskType& type, std::size_t shards) const {
        const auto& resources = type.executable_resources();
        return resources.empty() ? 0 : bucket_of_resource(resources.front(), shards);
    }

    /// The calling thread's pooled partition.
    [[nodiscard]] static ShardPartition& local();

private:
    [[nodiscard]] std::size_t find(std::size_t i);
    void join(std::size_t a, std::size_t b);

    std::vector<std::size_t> group_of_; ///< resource id -> dense group id
    std::vector<std::size_t> parent_;   ///< union-find scratch
    std::size_t group_count_ = 0;
};

/// Generic sharded solve driver, layered over BatchPlanner / the admission
/// ladder: both the heuristic and the exact RM plug their solver in as a
/// stateless callback over a sub-instance.  Holds all per-bucket state
/// (pooled sub-instances, result slots, the cross-item solve cache) in
/// thread-local storage — one RM object stays shareable across the
/// experiment engine's threads.
class ShardedSolver {
public:
    /// Solve `sub` into `mapping` (one resource per sub task, sub order).
    /// Returns feasibility; on failure `proven` reports whether the
    /// failure is a proof of infeasibility (exact) or a heuristic give-up.
    /// Runs on pool workers: must only touch its own arguments and
    /// thread-local scratch.
    using SolveFn = bool (*)(const PlanInstance& sub, std::vector<ResourceId>& mapping,
                             bool& proven, void* ctx);

    struct RunStats {
        bool proven = true;      ///< AND over the failed buckets' proofs
        std::size_t buckets = 0; ///< non-empty buckets in this instance
        std::size_t solved = 0;  ///< buckets solved fresh (not cache hits)
    };

    ShardedSolver();

    /// Start a coalesced batch: resets bucket versions and the solve cache,
    /// and snapshots the working set's uid -> (resource, bucket) map so
    /// note_admission can tell which buckets an admission touched.
    void begin_batch(const BatchArrivalContext& batch, const ShardPartition& partition,
                     std::size_t shards);

    /// Record an admitted decision: the candidate's bucket and the bucket
    /// of every moved task get a new version, invalidating their cached
    /// solves; untouched buckets keep serving cache hits.
    void note_admission(const Decision& decision, const ActiveTask& candidate,
                        const ShardPartition& partition, const Catalog& catalog,
                        std::size_t shards);

    /// Solve `instance` as independent per-bucket sub-solves and merge.
    /// With `use_cache` (batch loop only, between begin_batch and the next
    /// begin_batch), buckets not containing the item's candidate/predicted
    /// tail reuse their cached verdict when (version, window) match.
    /// Returns the merged mapping (valid until the next run on this
    /// thread's solver), or nullopt when any bucket is infeasible.
    std::optional<std::span<const ResourceId>> run(const PlanInstance& instance,
                                                   const ShardPartition& partition,
                                                   const ShardConfig& config, SolveFn solve,
                                                   void* ctx, bool use_cache,
                                                   RunStats* stats = nullptr);

    /// The calling thread's pooled solver.
    [[nodiscard]] static ShardedSolver& local();

private:
    static constexpr std::size_t kCacheWays = 4;

    struct CacheEntry {
        bool valid = false;
        bool ok = false;
        bool proven = true;
        std::uint64_t version = 0;
        double window = -1.0;
        std::vector<ResourceId> mapping;
    };

    struct Bucket {
        std::vector<std::size_t> task_index; ///< instance task indices, ascending
        bool item_local = false;             ///< holds the candidate/predicted tail
        PlanInstance sub;                    ///< pooled sub-instance
        std::vector<PlanTask> spare;         ///< shell pool for sub.tasks
        std::vector<ResourceId> mapping;     ///< solve result, sub task order
        bool ok = false;
        bool proven = true;
        std::uint64_t version = 1; ///< bumped on any admission touching the bucket
        std::array<CacheEntry, kCacheWays> cache;
        std::size_t cache_cursor = 0;
    };

    struct Tracked {
        TaskUid uid = 0;
        ResourceId resource = 0;
        std::size_t bucket = 0;
    };

    void ensure_buckets(std::size_t count);
    void build_sub(Bucket& bucket, const PlanInstance& instance);
    void solve_pending(std::size_t p, SolveFn solve, void* ctx);

    std::vector<Bucket> buckets_; ///< never shrinks; first bucket_count used
    std::vector<Tracked> tracked_;
    std::vector<std::size_t> pending_; ///< bucket ids needing a fresh solve
    std::vector<ResourceId> merged_;
    std::function<void(std::size_t)> pool_fn_; ///< persistent, SBO-sized capture
    SolveFn active_solve_ = nullptr;
    void* active_ctx_ = nullptr;
};

} // namespace rmwp
