#include "core/plan_instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/reservation.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

PlanTask make_plan_task(const ArrivalContext& context, const ActiveTask& task, bool is_candidate) {
    const TaskType& type = context.type_of(task);
    const std::size_t n = context.platform->size();

    PlanTask plan;
    plan.uid = task.uid;
    plan.release = context.now;
    plan.abs_deadline = task.absolute_deadline;
    plan.pinned = task.pinned;
    plan.pinned_resource = task.resource;
    plan.is_candidate = is_candidate;
    plan.cpm.assign(n, std::numeric_limits<double>::infinity());
    plan.epm.assign(n, std::numeric_limits<double>::infinity());
    for (ResourceId i = 0; i < n; ++i) {
        if (!type.executable_on(i)) continue;
        if (task.pinned && i != task.resource) continue;
        plan.cpm[i] = occupied_time(task, type, i);
        plan.epm[i] = assignment_energy(task, type, i);
        plan.executable.push_back(i);
    }
    RMWP_ENSURE(!plan.executable.empty());
    return plan;
}

PlanTask make_plan_task(const ArrivalContext& context, const PredictedTask& predicted,
                        std::size_t step) {
    const TaskType& type = context.catalog->type(predicted.type);
    const std::size_t n = context.platform->size();

    PlanTask plan;
    plan.uid = kPredictedUidBase + step;
    plan.release = std::max(predicted.arrival, context.now);
    plan.abs_deadline = predicted.absolute_deadline();
    plan.is_predicted = true;
    plan.cpm.assign(n, std::numeric_limits<double>::infinity());
    plan.epm.assign(n, std::numeric_limits<double>::infinity());
    for (ResourceId i = 0; i < n; ++i) {
        if (!type.executable_on(i)) continue;
        plan.cpm[i] = type.wcet(i);
        plan.epm[i] = type.energy(i);
        plan.executable.push_back(i);
    }
    RMWP_ENSURE(!plan.executable.empty());
    return plan;
}

} // namespace

PlanInstance PlanInstance::build(const ArrivalContext& context, std::size_t predicted_count) {
    RMWP_EXPECT(context.platform != nullptr);
    RMWP_EXPECT(context.catalog != nullptr);

    PlanInstance instance;
    instance.platform = context.platform;
    instance.now = context.now;
    instance.predicted_count = std::min(predicted_count, context.predicted.size());
    instance.window = planning_window(context, instance.predicted_count);

    instance.tasks.reserve(context.active.size() + 1 + instance.predicted_count);
    for (const ActiveTask& task : context.active)
        instance.tasks.push_back(make_plan_task(context, task, /*is_candidate=*/false));
    instance.tasks.push_back(make_plan_task(context, context.candidate, /*is_candidate=*/true));
    for (std::size_t k = 0; k < instance.predicted_count; ++k)
        instance.tasks.push_back(make_plan_task(context, context.predicted[k], k));

    // Blocks and blocked time are tracked per *physical* core: reservations
    // occupy the core whatever operating point other work uses.
    const std::size_t n = context.platform->size();
    instance.blocks.resize(n);
    instance.blocked_time.assign(n, 0.0);
    if (context.reservations != nullptr && !context.reservations->empty()) {
        for (ResourceId i = 0; i < n; ++i) {
            const ResourceId anchor = context.platform->resource(i).physical();
            auto blocks =
                context.reservations->blocks_for(i, context.now, context.now + instance.window);
            for (const ScheduleItem& block : blocks) instance.blocked_time[anchor] += block.duration;
            instance.blocks[anchor].insert(instance.blocks[anchor].end(), blocks.begin(),
                                           blocks.end());
        }
    }
    return instance;
}

ScheduleItem PlanInstance::item_for(std::size_t index, ResourceId i) const {
    RMWP_EXPECT(index < tasks.size());
    const PlanTask& task = tasks[index];
    RMWP_EXPECT(i < task.cpm.size());
    RMWP_EXPECT(std::isfinite(task.cpm[i]));
    ScheduleItem item;
    item.uid = task.uid;
    item.resource = i;
    item.release = task.release;
    item.abs_deadline = task.abs_deadline;
    item.duration = task.cpm[i];
    item.pinned_first = task.pinned && i == task.pinned_resource;
    return item;
}

std::vector<TaskAssignment> PlanInstance::real_assignments(
    const std::vector<ResourceId>& mapping) const {
    RMWP_EXPECT(mapping.size() == tasks.size());
    std::vector<TaskAssignment> assignments;
    assignments.reserve(tasks.size());
    for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (tasks[j].is_predicted) continue;
        assignments.push_back(TaskAssignment{tasks[j].uid, mapping[j]});
    }
    return assignments;
}

} // namespace rmwp
