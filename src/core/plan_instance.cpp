#include "core/plan_instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/reservation.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

PlanTask make_plan_task(const Platform& platform, const TaskType& type, Time now,
                        const ActiveTask& task, bool is_candidate,
                        const PlatformHealth* health) {
    const std::size_t n = platform.size();

    PlanTask plan;
    plan.uid = task.uid;
    plan.release = now;
    plan.abs_deadline = task.absolute_deadline;
    plan.pinned = task.pinned;
    plan.pinned_resource = task.resource;
    plan.is_candidate = is_candidate;
    plan.cpm.assign(n, std::numeric_limits<double>::infinity());
    plan.epm.assign(n, std::numeric_limits<double>::infinity());
    for (ResourceId i = 0; i < n; ++i) {
        if (!type.executable_on(i)) continue;
        if (task.pinned && i != task.resource) continue;
        if (health != nullptr && !health->online(i)) continue; // offline = infeasible
        plan.cpm[i] = occupied_time(task, type, i);
        if (health != nullptr)
            plan.cpm[i] += (health->throttle(i) - 1.0) * remaining_time(task, type, i);
        plan.epm[i] = assignment_energy(task, type, i);
        plan.executable.push_back(i);
    }
    // Under a degraded platform a task can have no feasible resource left
    // (e.g. an accelerator-only candidate while the accelerator is offline);
    // solvers treat it as immediately unsatisfiable and the ladder rejects
    // (admission) or aborts it (rescue).  On a healthy platform every task
    // has at least one executable resource by construction.
    RMWP_ENSURE(health != nullptr || !plan.executable.empty());
    return plan;
}

PlanTask make_plan_task(const ArrivalContext& context, const PredictedTask& predicted,
                        std::size_t step) {
    const TaskType& type = context.catalog->type(predicted.type);
    const std::size_t n = context.platform->size();
    const PlatformHealth* health = context.health;

    PlanTask plan;
    plan.uid = kPredictedUidBase + step;
    plan.release = std::max(predicted.arrival, context.now);
    plan.abs_deadline = predicted.absolute_deadline();
    plan.is_predicted = true;
    plan.cpm.assign(n, std::numeric_limits<double>::infinity());
    plan.epm.assign(n, std::numeric_limits<double>::infinity());
    for (ResourceId i = 0; i < n; ++i) {
        if (!type.executable_on(i)) continue;
        if (health != nullptr && !health->online(i)) continue;
        plan.cpm[i] = type.wcet(i);
        if (health != nullptr) plan.cpm[i] *= health->throttle(i);
        plan.epm[i] = type.energy(i);
        plan.executable.push_back(i);
    }
    RMWP_ENSURE(health != nullptr || !plan.executable.empty());
    return plan;
}

/// Reservation blocks intersecting [now, now + window), grouped per
/// physical core (reservations occupy the core whatever operating point
/// other work uses), plus the per-core blocked-time capacity reduction.
///
/// Memoised: the admission ladder rebuilds the instance once per rung, and
/// the rungs almost always share the same (table, now, window) key — the
/// active set usually dominates the window max — so the periodic expansion
/// is computed once per activation and the later rungs copy the cached,
/// dispatch-ordered blocks instead of re-querying the ReservationTable per
/// resource.  The key uses the table's revision (process-unique, contents
/// immutable), never its address, so recycled allocations cannot alias.
void fill_blocks(PlanInstance& instance, const ReservationTable* reservations) {
    const std::size_t n = instance.platform->size();
    instance.blocks.resize(n);
    instance.blocked_time.assign(n, 0.0);
    if (reservations == nullptr || reservations->empty()) return;

    struct BlockCache {
        std::uint64_t revision = 0;
        Time now = -1.0;
        Time window = -1.0;
        std::size_t resources = 0;
        std::vector<std::vector<ScheduleItem>> blocks;
        std::vector<double> blocked_time;
    };
    thread_local BlockCache cache;
    if (cache.revision != reservations->revision() || cache.now != instance.now ||
        cache.window != instance.window || cache.resources != n) {
        cache.revision = reservations->revision();
        cache.now = instance.now;
        cache.window = instance.window;
        cache.resources = n;
        cache.blocks.assign(n, {});
        cache.blocked_time.assign(n, 0.0);
        for (ResourceId i = 0; i < n; ++i) {
            const ResourceId anchor = instance.platform->resource(i).physical();
            auto blocks =
                reservations->blocks_for(i, instance.now, instance.now + instance.window);
            for (const ScheduleItem& block : blocks)
                cache.blocked_time[anchor] += block.duration;
            cache.blocks[anchor].insert(cache.blocks[anchor].end(), blocks.begin(),
                                        blocks.end());
        }
        // Dispatch order (release time): keeps every consumer — solver
        // probes, the demand prefilter's deadline scan — from re-ordering
        // the same immovable windows on every probe.
        for (auto& anchor_blocks : cache.blocks)
            std::sort(anchor_blocks.begin(), anchor_blocks.end(),
                      [](const ScheduleItem& a, const ScheduleItem& b) {
                          return a.release != b.release ? a.release < b.release
                                                        : a.uid < b.uid;
                      });
    }
    instance.blocks = cache.blocks;
    instance.blocked_time = cache.blocked_time;
}

} // namespace

PlanInstance PlanInstance::build(const ArrivalContext& context, std::size_t predicted_count) {
    RMWP_EXPECT(context.platform != nullptr);
    RMWP_EXPECT(context.catalog != nullptr);

    PlanInstance instance;
    instance.platform = context.platform;
    instance.now = context.now;
    instance.predicted_count = std::min(predicted_count, context.predicted.size());
    instance.window = planning_window(context, instance.predicted_count);

    instance.tasks.reserve(context.active.size() + 1 + instance.predicted_count);
    for (const ActiveTask& task : context.active)
        instance.tasks.push_back(make_plan_task(*context.platform, context.type_of(task),
                                                context.now, task, /*is_candidate=*/false,
                                                context.health));
    instance.tasks.push_back(make_plan_task(*context.platform, context.type_of(context.candidate),
                                            context.now, context.candidate,
                                            /*is_candidate=*/true, context.health));
    for (std::size_t k = 0; k < instance.predicted_count; ++k)
        instance.tasks.push_back(make_plan_task(context, context.predicted[k], k));

    fill_blocks(instance, context.reservations);
    // Instance-shape invariant every solver relies on: active tasks first,
    // then the candidate, then the predicted tail; window covers all of it.
    RMWP_ENSURE(instance.tasks.size() ==
                context.active.size() + 1 + instance.predicted_count);
    RMWP_ENSURE(instance.window >= 0.0);
    return instance;
}

PlanInstance PlanInstance::build_rescue(const RescueContext& context,
                                        std::span<const ActiveTask> tasks) {
    RMWP_EXPECT(context.platform != nullptr);
    RMWP_EXPECT(context.catalog != nullptr);

    PlanInstance instance;
    instance.platform = context.platform;
    instance.now = context.now;
    instance.window = 0.0;
    for (const ActiveTask& task : tasks)
        instance.window = std::max(instance.window, task.absolute_deadline - context.now);

    instance.tasks.reserve(tasks.size());
    for (const ActiveTask& task : tasks)
        instance.tasks.push_back(make_plan_task(*context.platform, context.type_of(task),
                                                context.now, task, /*is_candidate=*/false,
                                                context.health));

    fill_blocks(instance, context.reservations);
    return instance;
}

ScheduleItem PlanInstance::item_for(std::size_t index, ResourceId i) const {
    RMWP_EXPECT(index < tasks.size());
    const PlanTask& task = tasks[index];
    RMWP_EXPECT(i < task.cpm.size());
    RMWP_EXPECT(std::isfinite(task.cpm[i]));
    ScheduleItem item;
    item.uid = task.uid;
    item.resource = i;
    item.release = task.release;
    item.abs_deadline = task.abs_deadline;
    item.duration = task.cpm[i];
    item.pinned_first = task.pinned && i == task.pinned_resource;
    return item;
}

void PlanScratch::reset(const PlanInstance& instance) {
    const std::size_t n = instance.resource_count();
    const std::size_t count = instance.tasks.size();
    RMWP_EXPECT(instance.blocks.size() == n);
    constexpr double kInfinity = std::numeric_limits<double>::infinity();

    capacity.assign(n, 0.0);
    f.assign(count * n, kInfinity);
    excluded.assign(count * n, 0);
    mapped.assign(count, 0);
    mapping.assign(count, 0);
    best_f.assign(count, kInfinity);
    second_f.assign(count, kInfinity);
    feasible_count.assign(count, 0);
    dirty.assign(count, 1);
    anchor_mask.assign(count, 0);

    if (assigned.size() < n) assigned.resize(n);
    for (ResourceId i = 0; i < n; ++i) {
        assigned[i].clear();
        assigned[i].insert(assigned[i].end(), instance.blocks[i].begin(),
                           instance.blocks[i].end());
    }
}

PlanScratch& PlanScratch::local() {
    static thread_local PlanScratch scratch;
    return scratch;
}

std::vector<TaskAssignment> PlanInstance::real_assignments(
    const std::vector<ResourceId>& mapping) const {
    RMWP_EXPECT(mapping.size() == tasks.size());
    std::vector<TaskAssignment> assignments;
    assignments.reserve(tasks.size());
    for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (tasks[j].is_predicted) continue;
        assignments.push_back(TaskAssignment{tasks[j].uid, mapping[j]});
    }
    return assignments;
}

} // namespace rmwp
