#include "core/plan_instance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/edf.hpp"
#include "core/reservation.hpp"
#include "obs/stage_timer.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

/// Fill one real task's row in place, reusing the PlanTask's vector
/// capacities.  Every field is (re)assigned — the shell may hold a stale
/// row from a previous activation.
void fill_real_task(PlanTask& plan, const Platform& platform, const TaskType& type, Time now,
                    const ActiveTask& task, bool is_candidate, const PlatformHealth* health) {
    const std::size_t n = platform.size();

    plan.uid = task.uid;
    plan.release = now;
    plan.abs_deadline = task.absolute_deadline;
    plan.pinned = task.pinned;
    plan.pinned_resource = task.resource;
    plan.is_predicted = false;
    plan.is_candidate = is_candidate;
    plan.cpm.assign(n, std::numeric_limits<double>::infinity());
    plan.epm.assign(n, std::numeric_limits<double>::infinity());
    plan.executable.clear();
    for (ResourceId i = 0; i < n; ++i) {
        if (!type.executable_on(i)) continue;
        if (task.pinned && i != task.resource) continue;
        if (health != nullptr && !health->online(i)) continue; // offline = infeasible
        plan.cpm[i] = occupied_time(task, type, i);
        if (health != nullptr)
            plan.cpm[i] += (health->throttle(i) - 1.0) * remaining_time(task, type, i);
        plan.epm[i] = assignment_energy(task, type, i);
        plan.executable.push_back(i);
    }
    // Under a degraded platform a task can have no feasible resource left
    // (e.g. an accelerator-only candidate while the accelerator is offline);
    // solvers treat it as immediately unsatisfiable and the ladder rejects
    // (admission) or aborts it (rescue).  On a healthy platform every task
    // has at least one executable resource by construction.
    RMWP_ENSURE(health != nullptr || !plan.executable.empty());
}

/// Fill one predicted (virtual) task's row in place.
void fill_predicted_task(PlanTask& plan, const Platform& platform, const Catalog& catalog,
                         const PlatformHealth* health, Time now, const PredictedTask& predicted,
                         std::size_t step) {
    const TaskType& type = catalog.type(predicted.type);
    const std::size_t n = platform.size();

    plan.uid = kPredictedUidBase + step;
    plan.release = std::max(predicted.arrival, now);
    plan.abs_deadline = predicted.absolute_deadline();
    plan.pinned = false;
    plan.pinned_resource = 0;
    plan.is_predicted = true;
    plan.is_candidate = false;
    plan.cpm.assign(n, std::numeric_limits<double>::infinity());
    plan.epm.assign(n, std::numeric_limits<double>::infinity());
    plan.executable.clear();
    for (ResourceId i = 0; i < n; ++i) {
        if (!type.executable_on(i)) continue;
        if (health != nullptr && !health->online(i)) continue;
        plan.cpm[i] = type.wcet(i);
        if (health != nullptr) plan.cpm[i] *= health->throttle(i);
        plan.epm[i] = type.energy(i);
        plan.executable.push_back(i);
    }
    RMWP_ENSURE(health != nullptr || !plan.executable.empty());
}

/// Reservation blocks intersecting [now, now + window), grouped per
/// physical core (reservations occupy the core whatever operating point
/// other work uses), plus the per-core blocked-time capacity reduction.
///
/// Memoised at two levels.  The raw expansion is computed once per
/// (table, now) at the largest window seen — blocks_for never clips a
/// block's duration at the far end, so any narrower window's block set is
/// the exact generation-order subsequence with release < now + window, and
/// the blocked-time float sums (accumulated in generation order) come out
/// bit-identical to a direct query.  The derived per-window set is then
/// cached for the admission ladder's rungs, which almost always share one
/// window.  The key uses the table's revision (process-unique, contents
/// immutable), never its address, so recycled allocations cannot alias.
void fill_blocks(PlanInstance& instance, const ReservationTable* reservations) {
    const std::size_t n = instance.platform->size();
    instance.blocks.resize(n);
    instance.blocked_time.assign(n, 0.0);
    if (reservations == nullptr || reservations->empty()) {
        // The instance may be pooled: drop any stale blocks of a previous
        // activation that did have reservations.
        for (auto& anchor_blocks : instance.blocks) anchor_blocks.clear();
        return;
    }

    struct BlockCache {
        std::uint64_t revision = 0;
        Time now = -1.0;
        std::size_t resources = 0;
        // Raw expansion at `horizon`, per anchor, in generation order.
        Time horizon = -1.0;
        std::vector<std::vector<ScheduleItem>> raw;
        // Derived (filtered + dispatch-sorted) set for `window`.
        Time window = -1.0;
        std::vector<std::vector<ScheduleItem>> blocks;
        std::vector<double> blocked_time;
    };
    thread_local BlockCache cache;

    const bool base_hit = cache.revision == reservations->revision() &&
                          cache.now == instance.now && cache.resources == n;
    if (!base_hit || instance.window > cache.horizon) {
        RMWP_STAGE_SCOPE(obs::Stage::sorted_refresh);
        cache.revision = reservations->revision();
        cache.now = instance.now;
        cache.resources = n;
        cache.horizon = instance.window;
        cache.raw.assign(n, {});
        for (ResourceId i = 0; i < n; ++i) {
            const ResourceId anchor = instance.platform->resource(i).physical();
            auto blocks =
                reservations->blocks_for(i, instance.now, instance.now + instance.window);
            cache.raw[anchor].insert(cache.raw[anchor].end(), blocks.begin(), blocks.end());
        }
        cache.window = -2.0; // invalidate the derived level
    }

    if (cache.window != instance.window) {
        RMWP_STAGE_SCOPE(obs::Stage::sorted_refresh);
        cache.window = instance.window;
        cache.blocks.assign(n, {});
        cache.blocked_time.assign(n, 0.0);
        if (instance.window <= 0.0) {
            // Degenerate window: `release` collapses start==now with
            // start<now, which decide inclusion at width zero differently —
            // fall back to a direct query (cold: real admissions always
            // have a positive window).
            for (ResourceId i = 0; i < n; ++i) {
                const ResourceId anchor = instance.platform->resource(i).physical();
                auto blocks =
                    reservations->blocks_for(i, instance.now, instance.now + instance.window);
                for (const ScheduleItem& block : blocks)
                    cache.blocked_time[anchor] += block.duration;
                cache.blocks[anchor].insert(cache.blocks[anchor].end(), blocks.begin(),
                                            blocks.end());
            }
        } else {
            // A block intersects [now, now + window) iff it starts before
            // the window end; for positive windows that is exactly
            // release < now + window (an in-progress block has
            // release == now < end).
            const Time until = instance.now + instance.window;
            for (ResourceId anchor = 0; anchor < n; ++anchor) {
                for (const ScheduleItem& block : cache.raw[anchor]) {
                    if (block.release >= until) continue;
                    cache.blocked_time[anchor] += block.duration;
                    cache.blocks[anchor].push_back(block);
                }
            }
        }
#ifdef RMWP_AUDIT
        // Drift gate for the superset-filter shortcut: a direct expansion
        // at this exact window must agree block-for-block and bit-for-bit
        // on the accumulated blocked time.
        {
            std::vector<std::vector<ScheduleItem>> direct(n);
            std::vector<double> direct_time(n, 0.0);
            for (ResourceId i = 0; i < n; ++i) {
                const ResourceId anchor = instance.platform->resource(i).physical();
                auto blocks =
                    reservations->blocks_for(i, instance.now, instance.now + instance.window);
                for (const ScheduleItem& block : blocks)
                    direct_time[anchor] += block.duration;
                direct[anchor].insert(direct[anchor].end(), blocks.begin(), blocks.end());
            }
            for (ResourceId anchor = 0; anchor < n; ++anchor) {
                RMWP_ENSURE(direct_time[anchor] == cache.blocked_time[anchor]);
                RMWP_ENSURE(direct[anchor].size() == cache.blocks[anchor].size());
                for (std::size_t b = 0; b < direct[anchor].size(); ++b) {
                    RMWP_ENSURE(direct[anchor][b].uid == cache.blocks[anchor][b].uid);
                    RMWP_ENSURE(direct[anchor][b].release == cache.blocks[anchor][b].release);
                    RMWP_ENSURE(direct[anchor][b].duration == cache.blocks[anchor][b].duration);
                }
            }
        }
#endif
        // Dispatch order (release time): keeps every consumer — solver
        // probes, the demand prefilter's deadline scan — from re-ordering
        // the same immovable windows on every probe.
        for (auto& anchor_blocks : cache.blocks)
            std::sort(anchor_blocks.begin(), anchor_blocks.end(),
                      [](const ScheduleItem& a, const ScheduleItem& b) {
                          return a.release != b.release ? a.release < b.release
                                                        : a.uid < b.uid;
                      });
    }
    instance.blocks = cache.blocks;
    instance.blocked_time = cache.blocked_time;
}

} // namespace

namespace plan_detail {

void set_task_count(std::vector<PlanTask>& tasks, std::vector<PlanTask>& spare,
                    std::size_t count) {
    while (tasks.size() > count) {
        spare.push_back(std::move(tasks.back()));
        tasks.pop_back();
    }
    while (tasks.size() < count) {
        if (spare.empty()) {
            tasks.emplace_back();
        } else {
            tasks.push_back(std::move(spare.back()));
            spare.pop_back();
        }
    }
}

} // namespace plan_detail

using plan_detail::set_task_count;

PlanInstance PlanInstance::build(const ArrivalContext& context, std::size_t predicted_count) {
    PlanPool pool;
    (void)build_into(pool, context, predicted_count);
    return std::move(pool.instance);
}

const PlanInstance& PlanInstance::build_into(PlanPool& pool, const ArrivalContext& context,
                                             std::size_t predicted_count) {
    RMWP_EXPECT(context.platform != nullptr);
    RMWP_EXPECT(context.catalog != nullptr);

    PlanInstance& instance = pool.instance;
    instance.platform = context.platform;
    instance.now = context.now;
    instance.predicted_count = std::min(predicted_count, context.predicted.size());
    instance.window = planning_window(context, instance.predicted_count);

    const std::size_t count = context.active.size() + 1 + instance.predicted_count;
    set_task_count(instance.tasks, pool.spare, count);
    std::size_t j = 0;
    for (const ActiveTask& task : context.active)
        fill_real_task(instance.tasks[j++], *context.platform, context.type_of(task), context.now,
                       task, /*is_candidate=*/false, context.health);
    fill_real_task(instance.tasks[j++], *context.platform, context.type_of(context.candidate),
                   context.now, context.candidate, /*is_candidate=*/true, context.health);
    for (std::size_t k = 0; k < instance.predicted_count; ++k)
        fill_predicted_task(instance.tasks[j++], *context.platform, *context.catalog,
                            context.health, context.now, context.predicted[k], k);

    fill_blocks(instance, context.reservations);
    // Instance-shape invariant every solver relies on: active tasks first,
    // then the candidate, then the predicted tail; window covers all of it.
    RMWP_ENSURE(instance.tasks.size() == count);
    RMWP_ENSURE(instance.window >= 0.0);
    return instance;
}

PlanInstance PlanInstance::build_rescue(const RescueContext& context,
                                        std::span<const ActiveTask> tasks) {
    RMWP_EXPECT(context.platform != nullptr);
    RMWP_EXPECT(context.catalog != nullptr);

    PlanInstance instance;
    instance.platform = context.platform;
    instance.now = context.now;
    instance.window = 0.0;
    for (const ActiveTask& task : tasks)
        instance.window = std::max(instance.window, task.absolute_deadline - context.now);

    instance.tasks.resize(tasks.size());
    for (std::size_t j = 0; j < tasks.size(); ++j)
        fill_real_task(instance.tasks[j], *context.platform, context.type_of(tasks[j]),
                       context.now, tasks[j], /*is_candidate=*/false, context.health);

    fill_blocks(instance, context.reservations);
    return instance;
}

PlanPool& PlanPool::local() {
    static thread_local PlanPool pool;
    return pool;
}

namespace {

/// Thread-local backing store for BatchPlanner (see the class comment):
/// the working active set, the pooled instance, and the parked PlanTask
/// shells all survive across batches, so their capacities are reused.
struct BatchArena {
    std::vector<ActiveTask> working;
    PlanInstance instance;
    std::vector<PlanTask> spare;

    static BatchArena& local() {
        static thread_local BatchArena arena;
        return arena;
    }
};

} // namespace

BatchPlanner::BatchPlanner(const BatchArrivalContext& batch)
    : batch_(&batch), working_(BatchArena::local().working),
      instance_(BatchArena::local().instance), spare_(BatchArena::local().spare) {
    RMWP_EXPECT(batch.platform != nullptr);
    RMWP_EXPECT(batch.catalog != nullptr);
    working_.assign(batch.active.begin(), batch.active.end());
    base_count_ = working_.size();
    instance_.platform = batch.platform;
    instance_.now = batch.now;
    set_task_count(instance_.tasks, spare_, base_count_);
    for (std::size_t j = 0; j < base_count_; ++j)
        fill_real_task(instance_.tasks[j], *batch.platform, batch.type_of(working_[j]), batch.now,
                       working_[j], /*is_candidate=*/false, batch.health);
}

const PlanInstance& BatchPlanner::assemble(std::size_t m, std::size_t k) {
    RMWP_STAGE_SCOPE(obs::Stage::batch_assemble);
    RMWP_EXPECT(m < batch_->items.size());
    const BatchItem& item = batch_->items[m];
    RMWP_EXPECT(k <= item.predicted.size());

    const std::size_t count = base_count_ + 1 + k;
    set_task_count(instance_.tasks, spare_, count);
    if (candidate_for_ != m) {
        fill_real_task(instance_.tasks[base_count_], *batch_->platform,
                       batch_->type_of(item.candidate), batch_->now, item.candidate,
                       /*is_candidate=*/true, batch_->health);
        candidate_for_ = m;
    }
    for (std::size_t p = 0; p < k; ++p)
        fill_predicted_task(instance_.tasks[base_count_ + 1 + p], *batch_->platform,
                            *batch_->catalog, batch_->health, batch_->now, item.predicted[p], p);
    instance_.predicted_count = k;

    // K-bar over exactly the included tasks — the same max planning_window
    // computes on the equivalent sequential context (max is exact, so the
    // accumulation order cannot matter).
    Time latest = item.candidate.absolute_deadline;
    for (const ActiveTask& task : working_) latest = std::max(latest, task.absolute_deadline);
    for (std::size_t p = 0; p < k; ++p)
        latest = std::max(latest, item.predicted[p].absolute_deadline());
    RMWP_ENSURE(latest >= batch_->now);
    instance_.window = latest - batch_->now;

    fill_blocks(instance_, batch_->reservations);
    RMWP_ENSURE(instance_.tasks.size() == count);

#ifdef RMWP_AUDIT
    // The incremental-base drift gate: a from-scratch build of the
    // equivalent sequential context must agree on every field.
    {
        ArrivalContext reference;
        reference.now = batch_->now;
        reference.platform = batch_->platform;
        reference.catalog = batch_->catalog;
        reference.active = working_;
        reference.candidate = item.candidate;
        reference.predicted.assign(item.predicted.begin(), item.predicted.end());
        reference.reservations = batch_->reservations;
        reference.health = batch_->health;
        const PlanInstance rebuilt = PlanInstance::build(reference, k);
        RMWP_ENSURE(rebuilt.window == instance_.window);
        RMWP_ENSURE(rebuilt.predicted_count == instance_.predicted_count);
        RMWP_ENSURE(rebuilt.tasks.size() == instance_.tasks.size());
        for (std::size_t j = 0; j < rebuilt.tasks.size(); ++j) {
            const PlanTask& a = rebuilt.tasks[j];
            const PlanTask& b = instance_.tasks[j];
            RMWP_ENSURE(a.uid == b.uid);
            RMWP_ENSURE(a.release == b.release && a.abs_deadline == b.abs_deadline);
            RMWP_ENSURE(a.pinned == b.pinned && a.pinned_resource == b.pinned_resource);
            RMWP_ENSURE(a.is_predicted == b.is_predicted && a.is_candidate == b.is_candidate);
            RMWP_ENSURE(a.cpm == b.cpm && a.epm == b.epm);
            RMWP_ENSURE(a.executable == b.executable);
        }
        RMWP_ENSURE(rebuilt.blocked_time == instance_.blocked_time);
    }
#endif
    return instance_;
}

Decision BatchPlanner::admit(std::size_t m, std::span<const ResourceId> mapping) {
    // admit() must follow an assemble() of the same item: the pooled
    // instance still holds that item's rung.
    RMWP_EXPECT(candidate_for_ == m);
    const ActiveTask& candidate = batch_->items[m].candidate;

    Decision decision;
    decision.admitted = true;
    decision.assignments = instance_.real_assignments(mapping);

    // Fold the admission into the shared working set, mirroring the
    // simulator's RM-visible apply() (see apply_decision_to_active), and
    // refresh exactly the base rows whose task moved.
    const Catalog& catalog = *batch_->catalog;
    for (const TaskAssignment& assignment : decision.assignments) {
        if (assignment.uid == candidate.uid) {
            ActiveTask admitted = candidate;
            admitted.resource = assignment.resource;
            working_.push_back(admitted);
            continue;
        }
        std::size_t j = 0;
        while (j < base_count_ && working_[j].uid != assignment.uid) ++j;
        RMWP_ENSURE(j < base_count_);
        ActiveTask& task = working_[j];
        if (assignment.resource == task.resource) continue;
        RMWP_ENSURE(!task.pinned); // non-preemptable tasks never move
        if (task.started)
            task.pending_overhead =
                catalog.type(task.type).migration_time(task.resource, assignment.resource);
        task.resource = assignment.resource;
        fill_real_task(instance_.tasks[j], *batch_->platform, batch_->type_of(task), batch_->now,
                       task, /*is_candidate=*/false, batch_->health);
    }
    RMWP_ENSURE(working_.size() == base_count_ + 1);

    // The admitted candidate joins the base: its row is recomputed as a
    // plain active task (resource now set, is_candidate cleared).
    fill_real_task(instance_.tasks[base_count_], *batch_->platform,
                   batch_->type_of(working_.back()), batch_->now, working_.back(),
                   /*is_candidate=*/false, batch_->health);
    ++base_count_;
    candidate_for_ = kNoItem;
    return decision;
}

ScheduleItem PlanInstance::item_for(std::size_t index, ResourceId i) const {
    RMWP_EXPECT(index < tasks.size());
    const PlanTask& task = tasks[index];
    RMWP_EXPECT(i < task.cpm.size());
    RMWP_EXPECT(std::isfinite(task.cpm[i]));
    ScheduleItem item;
    item.uid = task.uid;
    item.resource = i;
    item.release = task.release;
    item.abs_deadline = task.abs_deadline;
    item.duration = task.cpm[i];
    item.pinned_first = task.pinned && i == task.pinned_resource;
    return item;
}

void PlanScratch::reset(const PlanInstance& instance) {
    const std::size_t n = instance.resource_count();
    const std::size_t count = instance.tasks.size();
    RMWP_EXPECT(instance.blocks.size() == n);
    constexpr double kInfinity = std::numeric_limits<double>::infinity();

    capacity.assign(n, 0.0);
    f.assign(count * n, kInfinity);
    excluded.assign(count * n, 0);
    mapped.assign(count, 0);
    mapping.assign(count, 0);
    best_f.assign(count, kInfinity);
    second_f.assign(count, kInfinity);
    feasible_count.assign(count, 0);
    dirty.assign(count, 1);
    anchor_mask.assign(count, 0);

    // The physical anchor of each resource is immutable platform data, but
    // the solver reads it in its innermost loops — resolve the indirection
    // once per reset.
    phys.resize(n);
    for (ResourceId i = 0; i < n; ++i) phys[i] = instance.platform->resource(i).physical();

    if (assigned.size() < n) assigned.resize(n);
    for (ResourceId i = 0; i < n; ++i) {
        assigned[i].clear();
        assigned[i].insert(assigned[i].end(), instance.blocks[i].begin(),
                           instance.blocks[i].end());
        // Demand order once per reset, so the solver's probe loop can keep
        // the list incrementally sorted (insert_demand_ordered) and skip
        // the prefilter's per-probe sort.
        std::sort(assigned[i].begin(), assigned[i].end(), demand_order);
    }

    RMWP_STAGE_ARENA_BYTES(footprint_bytes());
}

std::uint64_t PlanScratch::footprint_bytes() const noexcept {
    std::uint64_t bytes = capacity.capacity() * sizeof(double) +
                          f.capacity() * sizeof(double) + excluded.capacity() +
                          mapped.capacity() + mapping.capacity() * sizeof(ResourceId) +
                          phys.capacity() * sizeof(ResourceId) +
                          best_f.capacity() * sizeof(double) +
                          second_f.capacity() * sizeof(double) +
                          feasible_count.capacity() * sizeof(std::size_t) + dirty.capacity() +
                          anchor_mask.capacity() * sizeof(std::uint64_t) +
                          assigned.capacity() * sizeof(std::vector<ScheduleItem>);
    for (const auto& schedule : assigned) bytes += schedule.capacity() * sizeof(ScheduleItem);
    return bytes;
}

PlanScratch& PlanScratch::local() {
    static thread_local PlanScratch scratch;
    return scratch;
}

std::vector<TaskAssignment> PlanInstance::real_assignments(
    std::span<const ResourceId> mapping) const {
    RMWP_EXPECT(mapping.size() == tasks.size());
    std::vector<TaskAssignment> assignments;
    assignments.reserve(tasks.size());
    for (std::size_t j = 0; j < tasks.size(); ++j) {
        if (tasks[j].is_predicted) continue;
        assignments.push_back(TaskAssignment{tasks[j].uid, mapping[j]});
    }
    return assignments;
}

} // namespace rmwp
