#include "core/exact_rm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/edf.hpp"
#include "core/shard.hpp"
#include "obs/stage_timer.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Error-free cost accumulator for the branch-and-bound (DESIGN.md §15).
///
/// A plain `double` running sum resolves real-valued cost ties by
/// rounding noise, and that noise depends on accumulation order: the
/// monolithic solve interleaves every resource group's terms while a
/// per-shard sub-solve sums only its own bucket's, so two same-type
/// tasks whose swapped placements cost exactly the same could come out
/// swapped between the two paths.  Admission costs are sums of at most
/// a few dozen task energies of similar magnitude, so the exact sum
/// fits comfortably in the 106 significand bits of a renormalised
/// double-double pair — and exact sums are order-independent, which
/// restores bit-identity between the whole-instance and per-bucket
/// searches.  The pair is kept canonical (hi carries the rounded
/// value, |lo| <= ulp(hi)/2), so equal reals compare equal and the
/// lexicographic comparison below is a true real comparison.
struct ExactSum {
    double hi = 0.0;
    double lo = 0.0;

    [[nodiscard]] ExactSum plus(double x) const {
        // Knuth two-sum of (hi, x), fold in lo, renormalise.  Exact as
        // long as the true sum's significand fits the pair, which holds
        // for any realistic cost scale (terms within ~15 binades).
        const double s = hi + x;
        const double b = s - hi;
        const double err = ((hi - (s - b)) + (x - b)) + lo;
        const double h = s + err;
        return ExactSum{h, err - (h - s)};
    }

    [[nodiscard]] bool less_than(const ExactSum& other) const {
        if (hi != other.hi) return hi < other.hi;
        return lo < other.lo;
    }
};

/// ShardedSolver callback: branch-and-bound over one bucket's sub-instance.
/// Costs and feasibility separate across buckets, so the per-bucket optima
/// compose into the global optimum; `proven` reports whether a failure
/// exhausted the search tree (node budgets are per sub-solve — see the
/// DESIGN.md §15 caveat).
bool sharded_optimize(const PlanInstance& sub, std::vector<ResourceId>& mapping, bool& proven,
                      void* ctx) {
    const auto* options = static_cast<const ExactRM::Options*>(ctx);
    bool step_proven = true;
    auto result = ExactRM::optimize(sub, *options, &step_proven);
    proven = step_proven;
    if (!result) return false;
    // Assign (not move): the slot's buffer capacity is part of the
    // allocation-free steady state.
    mapping.assign(result->mapping.begin(), result->mapping.end());
    return true;
}

/// Depth-first search state.  Pooled thread-locally (search_scratch):
/// admission runs the search thousands of times per trace, and the
/// per-call vector churn (order, suffix bounds, per-resource partial
/// schedules, per-depth candidate lists) was pure allocator traffic.
struct Search {
    const PlanInstance* instance = nullptr;
    const ExactRM::Options* options = nullptr;

    std::vector<std::size_t> order;           ///< task indices, most-constrained first
    std::vector<ExactSum> min_cost_suffix;    ///< optimistic cost of order[d..]
    std::vector<std::vector<ScheduleItem>> assigned; ///< per-resource partial schedule
    std::vector<std::vector<ResourceId>> candidates_by_depth; ///< per-depth scratch

    std::vector<ResourceId> current;          ///< current[j] = resource of tasks[j]
    std::vector<ResourceId> best;
    ExactSum best_cost{kInfinity, 0.0};
    bool proven = true;
    std::uint64_t nodes = 0;

    void reset(const PlanInstance& inst, const ExactRM::Options& opts) {
        instance = &inst;
        options = &opts;
        const std::size_t count = inst.tasks.size();
        const std::size_t n = inst.resource_count();

        // Critical-reservation blocks are fixed occupants of every partial
        // schedule the search explores; demand order lets the probe loop
        // keep the lists incrementally sorted.
        if (assigned.size() < n) assigned.resize(n);
        for (ResourceId i = 0; i < n; ++i) {
            assigned[i].clear();
            assigned[i].insert(assigned[i].end(), inst.blocks[i].begin(), inst.blocks[i].end());
            std::sort(assigned[i].begin(), assigned[i].end(), demand_order);
        }
        if (candidates_by_depth.size() < count) candidates_by_depth.resize(count);
        current.assign(count, 0);
        best.clear();
        best_cost = ExactSum{kInfinity, 0.0};
        proven = true;
        nodes = 0;

        // Most-constrained-first ordering: fewest executable resources,
        // then earliest deadline, then instance position.  Pinned tasks
        // have a single option, so they land at the front and act as fixed
        // context for everything after them.  The final tie-break totalises
        // the order (std::sort is unstable): the search's exploration order
        // — and with it the returned optimum under cost ties — is then a
        // pure function of the instance, which is what lets a sharded
        // sub-solve reproduce the sequential result bit for bit
        // (DESIGN.md §15; a sub-instance preserves instance position).
        order.resize(count);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            const PlanTask& ta = inst.tasks[a];
            const PlanTask& tb = inst.tasks[b];
            if (ta.executable.size() != tb.executable.size())
                return ta.executable.size() < tb.executable.size();
            if (ta.abs_deadline != tb.abs_deadline) return ta.abs_deadline < tb.abs_deadline;
            return a < b;
        });

        min_cost_suffix.assign(count + 1, ExactSum{});
        for (std::size_t d = count; d-- > 0;) {
            const PlanTask& task = inst.tasks[order[d]];
            double cheapest = kInfinity;
            for (const ResourceId i : task.executable) cheapest = std::min(cheapest, task.epm[i]);
            min_cost_suffix[d] = std::isfinite(cheapest) && std::isfinite(min_cost_suffix[d + 1].hi)
                                     ? min_cost_suffix[d + 1].plus(cheapest)
                                     : ExactSum{kInfinity, 0.0};
        }
    }

    /// True when `cost` plus the optimistic suffix can still strictly
    /// improve on the incumbent.  Every operand is an exact sum, so this
    /// is a real comparison: ties prune (keeping the lex-first optimum)
    /// and the verdict is the same whether the instance is solved whole
    /// or as per-shard sub-instances.
    [[nodiscard]] bool can_improve(const ExactSum& cost, const ExactSum& suffix) const {
        if (!std::isfinite(suffix.hi)) return false;
        return cost.plus(suffix.hi).plus(suffix.lo).less_than(best_cost);
    }

    void dfs(std::size_t depth, ExactSum cost) {
        if (nodes >= options->node_limit) {
            proven = false;
            return;
        }
        ++nodes;

        if (depth == order.size()) {
            if (cost.less_than(best_cost)) {
                best_cost = cost;
                best = current;
            }
            return;
        }
        if (!can_improve(cost, min_cost_suffix[depth])) return; // bound

        const std::size_t j = order[depth];
        const PlanTask& task = instance->tasks[j];

        // Cheapest-first exploration finds a good incumbent early.  Each
        // recursion depth owns one pooled candidate buffer.  Resource id
        // breaks energy ties so the exploration order is total — under
        // equal-cost optima the incumbent that survives the strict `<`
        // improvement test is then the same whether the task set arrived
        // whole or as a per-shard sub-instance.
        std::vector<ResourceId>& candidates = candidates_by_depth[depth];
        candidates.assign(task.executable.begin(), task.executable.end());
        std::sort(candidates.begin(), candidates.end(), [&](ResourceId a, ResourceId b) {
            if (task.epm[a] != task.epm[b]) return task.epm[a] < task.epm[b];
            return a < b;
        });

        for (const ResourceId i : candidates) {
            const ExactSum next_cost = cost.plus(task.epm[i]);
            if (!can_improve(next_cost, min_cost_suffix[depth + 1])) continue;

            // Operating points of a DVFS core share the core's timeline, so
            // partial schedules are kept per physical anchor.
            const ResourceId anchor = instance->platform->resource(i).physical();
            const std::size_t pos =
                insert_demand_ordered(assigned[anchor], instance->item_for(j, i));
            // Adding a task to a core can only hurt that core's EDF
            // feasibility, so checking the touched core alone is exact.
            if (resource_feasible_sorted(instance->platform->resource(anchor), instance->now,
                                         assigned[anchor])) {
                current[j] = i;
                dfs(depth + 1, next_cost);
            }
            assigned[anchor].erase(assigned[anchor].begin() + static_cast<std::ptrdiff_t>(pos));
            if (!proven && best.empty()) return; // out of budget with no incumbent
        }
    }
};

Search& search_scratch() {
    static thread_local Search search;
    return search;
}

} // namespace

std::optional<ExactRM::Result> ExactRM::optimize(const PlanInstance& instance,
                                                 const Options& options, bool* proven_out) {
    RMWP_STAGE_SCOPE(obs::Stage::solve);
    const std::size_t count = instance.tasks.size();
    RMWP_EXPECT(instance.platform != nullptr);
    RMWP_EXPECT(instance.blocks.size() == instance.platform->size());

    Search& search = search_scratch();
    search.reset(instance, options);
    search.dfs(0, ExactSum{});

    if (proven_out != nullptr) *proven_out = search.proven;
    if (search.best.empty()) return std::nullopt;
    RMWP_ENSURE(search.best.size() == count);
    Result result;
    result.mapping = search.best; // copy: the incumbent buffer stays pooled
    result.energy = search.best_cost.hi;
    result.proven_optimal = search.proven;
    result.nodes = search.nodes;
    return result;
}

Decision ExactRM::decide(const ArrivalContext& context) {
    // Track whether every failed ladder step exhausted its search tree: if
    // so the rejection is a proof of infeasibility, otherwise (node limit
    // hit with no incumbent) it is only the budget speaking.
    bool proven = true;
    const ShardConfig& shard = shard_config();
    Decision decision =
        shard.shards > 1
            ? [&] {
                  ShardPartition& partition = ShardPartition::local();
                  partition.rebuild(*context.platform, *context.catalog);
                  ShardedSolver& solver = ShardedSolver::local();
                  return run_admission_ladder(context, [&](const PlanInstance& instance) {
                      ShardedSolver::RunStats stats;
                      auto mapping = solver.run(instance, partition, shard, &sharded_optimize,
                                                &options_, /*use_cache=*/false, &stats);
                      if (!mapping.has_value()) proven = proven && stats.proven;
                      return mapping;
                  });
              }()
            : run_admission_ladder(
                  context,
                  [this, &proven](
                      const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
                      bool step_proven = true;
                      if (auto result = optimize(instance, options_, &step_proven))
                          return std::move(result->mapping);
                      proven = proven && step_proven;
                      return std::nullopt;
                  });
    if (!decision.admitted)
        decision.reason = proven ? RejectReason::proved_infeasible : RejectReason::solver_infeasible;
    RMWP_ENSURE(decision.admitted || decision.reason == RejectReason::proved_infeasible ||
                decision.reason == RejectReason::solver_infeasible);
    return decision;
}

void ExactRM::decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) {
    RMWP_EXPECT(batch.platform != nullptr && batch.catalog != nullptr);
    if (shard_config().shards > 1) {
        decide_batch_sharded(batch, out);
        return;
    }
    BatchPlanner planner(batch);
    out.clear();
    out.reserve(batch.items.size());
    for (std::size_t m = 0; m < planner.item_count(); ++m) {
        bool proven = true;
        Decision decision = run_admission_ladder_batch(
            planner, m,
            [this,
             &proven](const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
                bool step_proven = true;
                if (auto result = optimize(instance, options_, &step_proven))
                    return std::move(result->mapping);
                proven = proven && step_proven;
                return std::nullopt;
            });
        if (!decision.admitted)
            decision.reason =
                proven ? RejectReason::proved_infeasible : RejectReason::solver_infeasible;
        out.push_back(std::move(decision));
    }
    RMWP_ENSURE(out.size() == batch.items.size());
}

void ExactRM::decide_batch_sharded(const BatchArrivalContext& batch, std::vector<Decision>& out) {
    RMWP_EXPECT(shard_config().shards > 1);
    const ShardConfig& shard = shard_config();
    BatchPlanner planner(batch);
    ShardPartition& partition = ShardPartition::local();
    partition.rebuild(*batch.platform, *batch.catalog);
    ShardedSolver& solver = ShardedSolver::local();
    solver.begin_batch(batch, partition, shard.shards);
    out.clear();
    out.reserve(batch.items.size());
    for (std::size_t m = 0; m < planner.item_count(); ++m) {
        bool proven = true;
        Decision decision =
            run_admission_ladder_batch(planner, m, [&](const PlanInstance& instance) {
                ShardedSolver::RunStats stats;
                auto mapping = solver.run(instance, partition, shard, &sharded_optimize, &options_,
                                          /*use_cache=*/true, &stats);
                if (!mapping.has_value()) proven = proven && stats.proven;
                return mapping;
            });
        if (!decision.admitted)
            decision.reason =
                proven ? RejectReason::proved_infeasible : RejectReason::solver_infeasible;
        if (decision.admitted)
            solver.note_admission(decision, batch.items[m].candidate, partition, *batch.catalog,
                                  shard.shards);
        out.push_back(std::move(decision));
    }
    RMWP_ENSURE(out.size() == batch.items.size());
}

RescueDecision ExactRM::rescue(const RescueContext& context) {
    RMWP_EXPECT(context.platform != nullptr && context.health != nullptr);
    Options rescue_options = options_;
    rescue_options.node_limit = std::min(options_.node_limit, options_.rescue_node_limit);
    return run_rescue_ladder(
        context,
        [&rescue_options](const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
            if (auto result = optimize(instance, rescue_options)) return std::move(result->mapping);
            return std::nullopt;
        });
}

} // namespace rmwp
