#include "core/exact_rm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/edf.hpp"
#include "obs/stage_timer.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Depth-first search state.  Pooled thread-locally (search_scratch):
/// admission runs the search thousands of times per trace, and the
/// per-call vector churn (order, suffix bounds, per-resource partial
/// schedules, per-depth candidate lists) was pure allocator traffic.
struct Search {
    const PlanInstance* instance = nullptr;
    const ExactRM::Options* options = nullptr;

    std::vector<std::size_t> order;           ///< task indices, most-constrained first
    std::vector<double> min_cost_suffix;      ///< optimistic cost of order[d..]
    std::vector<std::vector<ScheduleItem>> assigned; ///< per-resource partial schedule
    std::vector<std::vector<ResourceId>> candidates_by_depth; ///< per-depth scratch

    std::vector<ResourceId> current;          ///< current[j] = resource of tasks[j]
    std::vector<ResourceId> best;
    double best_cost = kInfinity;
    bool proven = true;
    std::uint64_t nodes = 0;

    void reset(const PlanInstance& inst, const ExactRM::Options& opts) {
        instance = &inst;
        options = &opts;
        const std::size_t count = inst.tasks.size();
        const std::size_t n = inst.resource_count();

        // Critical-reservation blocks are fixed occupants of every partial
        // schedule the search explores; demand order lets the probe loop
        // keep the lists incrementally sorted.
        if (assigned.size() < n) assigned.resize(n);
        for (ResourceId i = 0; i < n; ++i) {
            assigned[i].clear();
            assigned[i].insert(assigned[i].end(), inst.blocks[i].begin(), inst.blocks[i].end());
            std::sort(assigned[i].begin(), assigned[i].end(), demand_order);
        }
        if (candidates_by_depth.size() < count) candidates_by_depth.resize(count);
        current.assign(count, 0);
        best.clear();
        best_cost = kInfinity;
        proven = true;
        nodes = 0;

        // Most-constrained-first ordering: fewest executable resources,
        // then earliest deadline.  Pinned tasks have a single option, so
        // they land at the front and act as fixed context for everything
        // after them.
        order.resize(count);
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
            const PlanTask& ta = inst.tasks[a];
            const PlanTask& tb = inst.tasks[b];
            if (ta.executable.size() != tb.executable.size())
                return ta.executable.size() < tb.executable.size();
            return ta.abs_deadline < tb.abs_deadline;
        });

        min_cost_suffix.assign(count + 1, 0.0);
        for (std::size_t d = count; d-- > 0;) {
            const PlanTask& task = inst.tasks[order[d]];
            double cheapest = kInfinity;
            for (const ResourceId i : task.executable) cheapest = std::min(cheapest, task.epm[i]);
            min_cost_suffix[d] = min_cost_suffix[d + 1] + cheapest;
        }
    }

    void dfs(std::size_t depth, double cost) {
        if (nodes >= options->node_limit) {
            proven = false;
            return;
        }
        ++nodes;

        if (depth == order.size()) {
            if (cost < best_cost) {
                best_cost = cost;
                best = current;
            }
            return;
        }
        if (cost + min_cost_suffix[depth] >= best_cost) return; // bound

        const std::size_t j = order[depth];
        const PlanTask& task = instance->tasks[j];

        // Cheapest-first exploration finds a good incumbent early.  Each
        // recursion depth owns one pooled candidate buffer.
        std::vector<ResourceId>& candidates = candidates_by_depth[depth];
        candidates.assign(task.executable.begin(), task.executable.end());
        std::sort(candidates.begin(), candidates.end(),
                  [&](ResourceId a, ResourceId b) { return task.epm[a] < task.epm[b]; });

        for (const ResourceId i : candidates) {
            const double next_cost = cost + task.epm[i];
            if (next_cost + min_cost_suffix[depth + 1] >= best_cost) continue;

            // Operating points of a DVFS core share the core's timeline, so
            // partial schedules are kept per physical anchor.
            const ResourceId anchor = instance->platform->resource(i).physical();
            const std::size_t pos =
                insert_demand_ordered(assigned[anchor], instance->item_for(j, i));
            // Adding a task to a core can only hurt that core's EDF
            // feasibility, so checking the touched core alone is exact.
            if (resource_feasible_sorted(instance->platform->resource(anchor), instance->now,
                                         assigned[anchor])) {
                current[j] = i;
                dfs(depth + 1, next_cost);
            }
            assigned[anchor].erase(assigned[anchor].begin() + static_cast<std::ptrdiff_t>(pos));
            if (!proven && best.empty()) return; // out of budget with no incumbent
        }
    }
};

Search& search_scratch() {
    static thread_local Search search;
    return search;
}

} // namespace

std::optional<ExactRM::Result> ExactRM::optimize(const PlanInstance& instance,
                                                 const Options& options, bool* proven_out) {
    RMWP_STAGE_SCOPE(obs::Stage::solve);
    const std::size_t count = instance.tasks.size();
    RMWP_EXPECT(instance.platform != nullptr);
    RMWP_EXPECT(instance.blocks.size() == instance.platform->size());

    Search& search = search_scratch();
    search.reset(instance, options);
    search.dfs(0, 0.0);

    if (proven_out != nullptr) *proven_out = search.proven;
    if (search.best.empty()) return std::nullopt;
    RMWP_ENSURE(search.best.size() == count);
    Result result;
    result.mapping = search.best; // copy: the incumbent buffer stays pooled
    result.energy = search.best_cost;
    result.proven_optimal = search.proven;
    result.nodes = search.nodes;
    return result;
}

Decision ExactRM::decide(const ArrivalContext& context) {
    // Track whether every failed ladder step exhausted its search tree: if
    // so the rejection is a proof of infeasibility, otherwise (node limit
    // hit with no incumbent) it is only the budget speaking.
    bool proven = true;
    Decision decision = run_admission_ladder(
        context,
        [this, &proven](const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
            bool step_proven = true;
            if (auto result = optimize(instance, options_, &step_proven))
                return std::move(result->mapping);
            proven = proven && step_proven;
            return std::nullopt;
        });
    if (!decision.admitted)
        decision.reason = proven ? RejectReason::proved_infeasible : RejectReason::solver_infeasible;
    RMWP_ENSURE(decision.admitted || decision.reason == RejectReason::proved_infeasible ||
                decision.reason == RejectReason::solver_infeasible);
    return decision;
}

void ExactRM::decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) {
    RMWP_EXPECT(batch.platform != nullptr && batch.catalog != nullptr);
    BatchPlanner planner(batch);
    out.clear();
    out.reserve(batch.items.size());
    for (std::size_t m = 0; m < planner.item_count(); ++m) {
        bool proven = true;
        Decision decision = run_admission_ladder_batch(
            planner, m,
            [this,
             &proven](const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
                bool step_proven = true;
                if (auto result = optimize(instance, options_, &step_proven))
                    return std::move(result->mapping);
                proven = proven && step_proven;
                return std::nullopt;
            });
        if (!decision.admitted)
            decision.reason =
                proven ? RejectReason::proved_infeasible : RejectReason::solver_infeasible;
        out.push_back(std::move(decision));
    }
    RMWP_ENSURE(out.size() == batch.items.size());
}

RescueDecision ExactRM::rescue(const RescueContext& context) {
    RMWP_EXPECT(context.platform != nullptr && context.health != nullptr);
    Options rescue_options = options_;
    rescue_options.node_limit = std::min(options_.node_limit, options_.rescue_node_limit);
    return run_rescue_ladder(
        context,
        [&rescue_options](const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
            if (auto result = optimize(instance, rescue_options)) return std::move(result->mapping);
            return std::nullopt;
        });
}

} // namespace rmwp
