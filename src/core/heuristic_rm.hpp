// The paper's fast heuristic (Algorithm 1): a max-regret knapsack mapper.
//
// Resources are knapsacks of capacity K-bar (the planning-window length);
// task weights are the occupied times cpm_{j,i}; desirability
// f_{j,i} = epm_{j,i} + M * [cpm_{j,i} > t_left_j].  Tasks are mapped in
// decreasing order of regret (gap between the best and second-best
// desirability); each mapping must pass the EDF IsSchedulable check, falling
// back to the next-best resource until the candidate list is exhausted.
// Worst-case complexity O(N * L * log L).
#pragma once

#include "core/manager.hpp"
#include "core/plan_instance.hpp"

#include <optional>
#include <span>

namespace rmwp {

class HeuristicRM final : public ResourceManager {
public:
    /// Ablation knobs (the defaults are the paper's Algorithm 1; the
    /// alternatives quantify how much each design choice contributes — see
    /// bench_ablations).
    struct Options {
        /// Order in which tasks are mapped.
        enum class Order {
            max_regret, ///< largest best-vs-second-best desirability gap (paper)
            edf,        ///< earliest deadline first
            arrival,    ///< instance order (active tasks, then candidate)
        };
        /// Desirability measure f_{j,i}.
        enum class Desirability {
            energy,         ///< epm_{j,i} (paper)
            energy_density, ///< epm_{j,i} / cpm_{j,i} (energy per occupied ms)
        };
        Order order = Order::max_regret;
        Desirability desirability = Desirability::energy;
    };

    HeuristicRM() = default;
    explicit HeuristicRM(Options options) : options_(options) {}

    [[nodiscard]] Decision decide(const ArrivalContext& context) override;
    /// Batched admission over the shared BatchPlanner base: one plan
    /// rebuild per batch, bit-identical decisions to sequential decide()s.
    /// With shard_config().shards > 1 both entry points solve per resource
    /// group on the ShardedSolver (DESIGN.md §15) — still bit-identical at
    /// any shard/probe-job count, pinned by tests/test_shard_admission.cpp.
    void decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) override;
    [[nodiscard]] RescueDecision rescue(const RescueContext& context) override;
    [[nodiscard]] std::string name() const override { return "heuristic"; }

    /// Run Algorithm 1 on a prepared instance.  Returns the per-task mapping
    /// (indexed like instance.tasks) or nullopt when no feasible mapping of
    /// the complete task set was found.  The span views this thread's
    /// PlanScratch arena — valid until the next map_tasks call on the same
    /// thread; copy it to keep it (keeps the admission hot path free of
    /// per-decision heap allocations, pinned by tests/test_alloc_count.cpp).
    [[nodiscard]] static std::optional<std::span<const ResourceId>> map_tasks(
        const PlanInstance& instance, const Options& options);
    [[nodiscard]] static std::optional<std::span<const ResourceId>> map_tasks(
        const PlanInstance& instance) {
        return map_tasks(instance, Options{});
    }

private:
    void decide_batch_sharded(const BatchArrivalContext& batch, std::vector<Decision>& out);

    Options options_;
};

} // namespace rmwp
