#include "core/schedule.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace rmwp {

std::optional<Time> WindowSchedule::completion_of(TaskUid uid) const {
    const auto it = completion.find(uid);
    if (it == completion.end()) return std::nullopt;
    return it->second;
}

std::vector<Segment> WindowSchedule::segments_of(TaskUid uid) const {
    std::vector<Segment> result;
    for (const auto& timeline : per_resource)
        for (const Segment& s : timeline.segments)
            if (s.uid == uid) result.push_back(s);
    std::sort(result.begin(), result.end(),
              [](const Segment& a, const Segment& b) { return a.start < b.start; });
    // One task never executes in two places at once: its segments, merged
    // across all timelines, must still be non-overlapping in time.
    for (std::size_t s = 1; s < result.size(); ++s)
        RMWP_ENSURE(result[s].start >= result[s - 1].end - 1e-9);
    return result;
}

} // namespace rmwp
