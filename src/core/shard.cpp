#include "core/shard.hpp"

#include <algorithm>

#include "exec/task_pool.hpp"
#include "obs/stage_timer.hpp"
#include "util/check.hpp"
#include "workload/catalog.hpp"

namespace rmwp {
namespace {

constexpr std::size_t kNoGroup = static_cast<std::size_t>(-1);

} // namespace

std::size_t ShardPartition::find(std::size_t i) {
    RMWP_EXPECT(i < parent_.size());
    // Path halving: every probed node re-points to its grandparent.
    while (parent_[i] != i) {
        parent_[i] = parent_[parent_[i]];
        i = parent_[i];
    }
    return i;
}

void ShardPartition::join(std::size_t a, std::size_t b) {
    RMWP_EXPECT(a < parent_.size() && b < parent_.size());
    a = find(a);
    b = find(b);
    if (a == b) return;
    // The smaller root wins, so every component's representative is its
    // smallest resource id — the dense numbering below leans on that to be
    // a pure function of the inputs.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
}

void ShardPartition::rebuild(const Platform& platform, const Catalog& catalog) {
    RMWP_EXPECT(platform.size() > 0);
    const std::size_t n = platform.size();
    parent_.resize(n);
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
    // Operating points contend with their physical core whatever the
    // catalog says; types join every resource they can execute on.
    for (const Resource& resource : platform.resources()) join(resource.id(), resource.physical());
    for (TaskTypeId t = 0; t < catalog.size(); ++t) {
        const auto& resources = catalog.type(t).executable_resources();
        for (std::size_t k = 1; k < resources.size(); ++k) join(resources[0], resources[k]);
    }
    group_of_.assign(n, kNoGroup);
    group_count_ = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t root = find(i);
        if (group_of_[root] == kNoGroup) group_of_[root] = group_count_++;
        group_of_[i] = group_of_[root];
    }
    RMWP_ENSURE(group_count_ >= 1 && group_count_ <= n);
}

ShardPartition& ShardPartition::local() {
    static thread_local ShardPartition partition;
    return partition;
}

ShardedSolver::ShardedSolver() {
    // Persistent dispatch thunk: capturing only `this` keeps it inside
    // std::function's small-buffer storage, so a parallel fork-join
    // allocates nothing per decision.  The solve/ctx members are written
    // before for_each and published to the workers by the pool's mutex
    // handshake.
    pool_fn_ = [this](std::size_t p) { solve_pending(p, active_solve_, active_ctx_); };
}

void ShardedSolver::ensure_buckets(std::size_t count) {
    // Never shrink: bucket slots own pooled sub-instances whose capacity
    // must survive alternating platform sizes on one thread.
    if (buckets_.size() < count) buckets_.resize(count);
}

void ShardedSolver::begin_batch(const BatchArrivalContext& batch, const ShardPartition& partition,
                                std::size_t shards) {
    RMWP_EXPECT(batch.catalog != nullptr);
    const std::size_t count = partition.bucket_count(shards);
    ensure_buckets(count);
    for (std::size_t b = 0; b < count; ++b) {
        Bucket& bucket = buckets_[b];
        bucket.version = 1;
        bucket.cache_cursor = 0;
        for (CacheEntry& entry : bucket.cache) entry.valid = false;
    }
    tracked_.clear();
    for (const ActiveTask& task : batch.active)
        tracked_.push_back({task.uid, task.resource,
                            partition.bucket_of(batch.catalog->type(task.type), shards)});
    RMWP_ENSURE(tracked_.size() == batch.active.size());
}

void ShardedSolver::note_admission(const Decision& decision, const ActiveTask& candidate,
                                   const ShardPartition& partition, const Catalog& catalog,
                                   std::size_t shards) {
    RMWP_EXPECT(decision.admitted);
    for (const TaskAssignment& assignment : decision.assignments) {
        Tracked* found = nullptr;
        for (Tracked& tracked : tracked_) {
            if (tracked.uid == assignment.uid) {
                found = &tracked;
                break;
            }
        }
        if (found == nullptr) {
            // First sighting: this is the admitted candidate joining the
            // working set — its bucket gains a task.
            RMWP_ENSURE(assignment.uid == candidate.uid);
            const std::size_t b = partition.bucket_of(catalog.type(candidate.type), shards);
            tracked_.push_back({assignment.uid, assignment.resource, b});
            if (b < buckets_.size()) ++buckets_[b].version;
        } else if (found->resource != assignment.resource) {
            // Moved by this admission (and, when started, charged a
            // migration overhead): its bucket's cached solves are stale.
            found->resource = assignment.resource;
            if (found->bucket < buckets_.size()) ++buckets_[found->bucket].version;
        }
    }
}

void ShardedSolver::build_sub(Bucket& bucket, const PlanInstance& instance) {
    RMWP_EXPECT(!bucket.task_index.empty());
    PlanInstance& sub = bucket.sub;
    sub.platform = instance.platform;
    sub.now = instance.now;
    // The *global* planning window: per-resource capacities
    // (window - blocked_time) and every demand-bound test must see the
    // horizon the sequential solve saw.  Other buckets' tasks are absent,
    // but they have no finite WCET on this bucket's resources, so their
    // absence cannot change any probe here.
    sub.window = instance.window;
    plan_detail::set_task_count(sub.tasks, bucket.spare, bucket.task_index.size());
    std::size_t predicted = 0;
    for (std::size_t s = 0; s < bucket.task_index.size(); ++s) {
        sub.tasks[s] = instance.tasks[bucket.task_index[s]];
        if (sub.tasks[s].is_predicted) ++predicted;
    }
    sub.predicted_count = predicted;
    sub.blocks = instance.blocks;
    sub.blocked_time = instance.blocked_time;
    RMWP_ENSURE(sub.tasks.size() == bucket.task_index.size());
}

void ShardedSolver::solve_pending(std::size_t p, SolveFn solve, void* ctx) {
    Bucket& bucket = buckets_[pending_[p]];
    bucket.proven = true;
    bucket.ok = solve(bucket.sub, bucket.mapping, bucket.proven, ctx);
}

std::optional<std::span<const ResourceId>> ShardedSolver::run(const PlanInstance& instance,
                                                              const ShardPartition& partition,
                                                              const ShardConfig& config,
                                                              SolveFn solve, void* ctx,
                                                              bool use_cache, RunStats* stats) {
    RMWP_EXPECT(instance.platform != nullptr);
    RMWP_EXPECT(!instance.tasks.empty());
    RMWP_EXPECT(instance.tasks.size() >= 1 + instance.predicted_count);
    const std::size_t shards = config.shards;
    const std::size_t bucket_count = partition.bucket_count(shards);
    ensure_buckets(bucket_count);

    // 1. Partition the instance's tasks into buckets, marking those holding
    // this item's candidate / predicted tail (their state is item-specific,
    // so they are never served from or stored to the cross-item cache).
    const std::size_t count = instance.tasks.size();
    const std::size_t item_local_from = count - 1 - instance.predicted_count;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        buckets_[b].task_index.clear();
        buckets_[b].item_local = false;
    }
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t b = partition.bucket_of(instance.tasks[i], shards);
        RMWP_EXPECT(b < bucket_count);
        buckets_[b].task_index.push_back(i);
        if (i >= item_local_from) buckets_[b].item_local = true;
    }

    // 2. Serve what the cache can; queue the rest for a fresh solve.
    pending_.clear();
    std::size_t populated = 0;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        Bucket& bucket = buckets_[b];
        if (bucket.task_index.empty()) {
            bucket.ok = true;
            bucket.proven = true;
            bucket.mapping.clear();
            continue;
        }
        ++populated;
        if (use_cache && !bucket.item_local) {
            bool hit = false;
            for (CacheEntry& entry : bucket.cache) {
                if (entry.valid && entry.version == bucket.version &&
                    entry.window == instance.window) {
                    bucket.ok = entry.ok;
                    bucket.proven = entry.proven;
                    bucket.mapping.assign(entry.mapping.begin(), entry.mapping.end());
                    hit = true;
                    break;
                }
            }
            if (hit) continue;
        }
        pending_.push_back(b);
    }

    // 3. Build the pending sub-instances (caller thread, pooled), then
    // fork-join the solves.  Each worker touches only its own bucket slot;
    // the pool's completion handshake publishes the writes back here, and
    // the caller participates, so jobs == 1 never leaves this thread.
    for (const std::size_t b : pending_) build_sub(buckets_[b], instance);
    {
        RMWP_STAGE_SCOPE(obs::Stage::shard_solve);
        const std::size_t jobs = std::min(config.probe_jobs, pending_.size());
        if (jobs <= 1) {
            for (std::size_t p = 0; p < pending_.size(); ++p) solve_pending(p, solve, ctx);
        } else {
            active_solve_ = solve;
            active_ctx_ = ctx;
            probe_pool(jobs - 1).for_each(pending_.size(), pool_fn_);
        }
    }
    for (const std::size_t b : pending_) {
        Bucket& bucket = buckets_[b];
        if (!use_cache || bucket.item_local) continue;
        CacheEntry& entry = bucket.cache[bucket.cache_cursor];
        bucket.cache_cursor = (bucket.cache_cursor + 1) % kCacheWays;
        entry.valid = true;
        entry.ok = bucket.ok;
        entry.proven = bucket.proven;
        entry.version = bucket.version;
        entry.window = instance.window;
        entry.mapping.assign(bucket.mapping.begin(), bucket.mapping.end());
    }

    // 4. Verdict: the instance is feasible iff every bucket is; a failed
    // rung is *proven* infeasible when every failing bucket proved it.
    bool all_ok = true;
    bool proven = true;
    for (std::size_t b = 0; b < bucket_count; ++b) {
        const Bucket& bucket = buckets_[b];
        if (!bucket.ok) {
            all_ok = false;
            proven = proven && bucket.proven;
        }
    }
    if (stats != nullptr) {
        stats->proven = all_ok || proven;
        stats->buckets = populated;
        stats->solved = pending_.size();
    }

#ifdef RMWP_AUDIT
    {
        // Drift gate (DESIGN.md §9): the sequential solve of the very same
        // instance must agree with the sharded merge bit for bit.
        std::vector<ResourceId> direct;
        bool direct_proven = true;
        const bool direct_ok = solve(instance, direct, direct_proven, ctx);
        RMWP_ENSURE(direct_ok == all_ok);
        if (all_ok) {
            RMWP_ENSURE(direct.size() == count);
            for (std::size_t b = 0; b < bucket_count; ++b) {
                const Bucket& bucket = buckets_[b];
                for (std::size_t s = 0; s < bucket.task_index.size(); ++s)
                    RMWP_ENSURE(bucket.mapping[s] == direct[bucket.task_index[s]]);
            }
        }
    }
#endif

    if (!all_ok) return std::nullopt;

    RMWP_STAGE_SCOPE(obs::Stage::shard_merge);
    merged_.assign(count, ResourceId{0});
    for (std::size_t b = 0; b < bucket_count; ++b) {
        const Bucket& bucket = buckets_[b];
        RMWP_ENSURE(bucket.mapping.size() == bucket.task_index.size());
        for (std::size_t s = 0; s < bucket.task_index.size(); ++s)
            merged_[bucket.task_index[s]] = bucket.mapping[s];
    }
    return std::span<const ResourceId>(merged_);
}

ShardedSolver& ShardedSolver::local() {
    static thread_local ShardedSolver solver;
    return solver;
}

} // namespace rmwp
