// The resource-manager interface (Sec 2, Sec 4).
//
// An RM is activated once per arriving request.  It sees the platform, the
// admitted-but-unfinished tasks (state already advanced to the activation
// time), the newly arrived task, and — when prediction is enabled — the
// predicted next request.  It returns an admission verdict plus a full
// mapping for the task set; the simulator turns that mapping into the
// executed schedule.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/edf.hpp"
#include "core/schedule.hpp"
#include "core/task_state.hpp"
#include "platform/health.hpp"
#include "platform/platform.hpp"
#include "workload/catalog.hpp"

namespace rmwp {

/// The predicted next request req_p (type + timing), as delivered by a
/// predictor.  Used by the RM purely as a planning constraint (Sec 4.1).
struct PredictedTask {
    TaskTypeId type = 0;
    Time arrival = 0.0;            ///< predicted s_p
    Time relative_deadline = 0.0;  ///< d_p

    [[nodiscard]] Time absolute_deadline() const noexcept { return arrival + relative_deadline; }
};

class ReservationTable;

/// Everything an RM activation can look at.
struct ArrivalContext {
    Time now = 0.0;                       ///< decision time (arrival + prediction overhead)
    const Platform* platform = nullptr;
    const Catalog* catalog = nullptr;
    std::span<const ActiveTask> active;   ///< admitted, unfinished, advanced to `now`
    ActiveTask candidate;                 ///< the newly arrived task (mapping ignored)
    /// Predicted upcoming requests, nearest first.  The paper's predictor
    /// looks one request ahead (size <= 1); deeper lookahead is an
    /// extension (see bench_lookahead).  Empty when prediction is off.
    std::vector<PredictedTask> predicted;
    /// Design-time critical reservations the plan must respect (optional).
    const ReservationTable* reservations = nullptr;
    /// Runtime resource health (fault-tolerance extension; null = nominal).
    /// Offline resources are infeasible mapping targets; throttled ones are
    /// planned with WCETs inflated by the throttle factor.
    const PlatformHealth* health = nullptr;

    [[nodiscard]] const TaskType& type_of(const ActiveTask& task) const {
        return catalog->type(task.type);
    }
};

/// One task's new mapping.
struct TaskAssignment {
    TaskUid uid = 0;
    ResourceId resource = 0;
};

/// Why a candidate was turned away (observability layer, DESIGN.md §10).
/// The code distinguishes *proven* infeasibility from allowed heuristic
/// incompleteness (Sec 5.2), so per-reason rejection counters explain a
/// Fig. 2 cell instead of just sizing it.  Carried in reject TraceEvents
/// (aux field) and the per-reason `reject.<reason>` counters.
enum class RejectReason : std::uint8_t {
    none = 0,            ///< admitted — no rejection happened
    deadline_passed,     ///< deadline expired before the decision instant (simulator pre-check)
    heuristic_exhausted, ///< Algorithm 1 found no placement (may be incomplete)
    proved_infeasible,   ///< complete branch-and-bound proved no mapping exists
    solver_infeasible,   ///< MILP relaxation/search reported infeasible or hit its budget
    baseline_no_fit,     ///< greedy non-replanning placement found no slot
    overload,            ///< shed by serve-mode admission-queue backpressure (src/serve)
};

inline constexpr std::size_t kRejectReasonCount = 7;

[[nodiscard]] const char* to_string(RejectReason reason) noexcept;

/// The RM's verdict for one activation.
struct Decision {
    bool admitted = false;
    /// True when the accepted plan includes the predicted task as a
    /// constraint; false when the plan came from the no-prediction fallback.
    bool used_prediction = false;
    /// Why the candidate was rejected (none when admitted).  Every RM sets
    /// its own code so rejection counters separate proven infeasibility
    /// from heuristic incompleteness.
    RejectReason reason = RejectReason::none;
    /// New mapping for every real task in the window (active tasks always;
    /// the candidate too iff admitted).  Empty on rejection: the previous
    /// mapping stays in force.
    std::vector<TaskAssignment> assignments;
};

/// A fault-triggered re-planning request (fault-tolerance extension).
/// There is no new candidate: capacity was lost (outage or throttle onset)
/// and the surviving task set must be re-planned on the remaining healthy
/// resources.  Displaced tasks — those whose current resource is offline in
/// `health` — must be re-mapped or aborted; tasks interrupted on a
/// non-preemptable resource have already had their progress reset by the
/// simulator.
struct RescueContext {
    Time now = 0.0;
    const Platform* platform = nullptr;
    const Catalog* catalog = nullptr;
    std::span<const ActiveTask> active; ///< surviving tasks, advanced to `now`
    const PlatformHealth* health = nullptr;
    const ReservationTable* reservations = nullptr;

    [[nodiscard]] const TaskType& type_of(const ActiveTask& task) const {
        return catalog->type(task.type);
    }
};

/// Outcome of a rescue activation.  Every task of the context appears in
/// exactly one of the two lists; every kept mapping must be schedulable
/// (the simulator re-verifies — a rescued task never misses its deadline).
struct RescueDecision {
    std::vector<TaskAssignment> kept;
    std::vector<TaskUid> aborted;
};

/// One arrival of a coalesced batch: the candidate plus the predictions
/// that were current when it was observed (predictors are fed in arrival
/// order before the batch decision, so item m's predictions already reflect
/// items 0..m-1 — exactly the sequential interleaving).
struct BatchItem {
    ActiveTask candidate;
    std::vector<PredictedTask> predicted;
};

/// A coalesced activation: several arrivals sharing one decision instant.
/// `active` is the admitted set as of `now`; decisions are taken item by
/// item in order, each against the state left by the previous admissions —
/// the batch entry point exists so RMs can share the per-activation setup
/// (plan rebuild, block refresh, demand-bound state) across the items, not
/// to change semantics.
struct BatchArrivalContext {
    Time now = 0.0;
    const Platform* platform = nullptr;
    const Catalog* catalog = nullptr;
    std::span<const ActiveTask> active;
    std::span<const BatchItem> items;
    const ReservationTable* reservations = nullptr;
    const PlatformHealth* health = nullptr;

    [[nodiscard]] const TaskType& type_of(const ActiveTask& task) const {
        return catalog->type(task.type);
    }
};

/// Sharded concurrent admission configuration (DESIGN.md §15).  The plan is
/// partitioned by resource group (connected components of the "some type can
/// execute on both resources" relation) and folded into at most `shards`
/// solve buckets; up to `probe_jobs` buckets are probed concurrently per
/// decision on the persistent exec::TaskPool.  Decisions are bit-identical
/// to the sequential path at any shard and job count — sharding trades
/// nothing but latency.  `shards <= 1` selects the unsharded code path
/// exactly.  BaselineRM and MilpRM ignore the config (their solvers do not
/// decompose provably bit-identically; see DESIGN.md §15).
struct ShardConfig {
    std::size_t shards = 1;     ///< max solve buckets (1 = sequential solve)
    std::size_t probe_jobs = 1; ///< concurrent bucket probes per decision
};

/// Abstract resource manager.
class ResourceManager {
public:
    virtual ~ResourceManager() = default;
    [[nodiscard]] virtual Decision decide(const ArrivalContext& context) = 0;
    /// Decide a batch of same-instant arrivals, appending one Decision per
    /// item (in item order) to `out`.  Contract: `decide_batch({t})` is
    /// bit-identical to `decide(t)`, and a multi-item batch is bit-identical
    /// to deciding the items sequentially at the same instant (the engine's
    /// differential tests pin both).  The default implementation is exactly
    /// that sequential emulation over a working copy of the active set;
    /// solver RMs override it to amortise per-activation setup.
    virtual void decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out);
    /// Fault-rescue re-planning.  The default implementation is the
    /// non-replanning fallback (used by BaselineRM): tasks stay on their
    /// current resource; anything displaced, or no longer schedulable in
    /// place under the degraded capacity, is aborted.  Re-planning RMs
    /// override this to migrate tasks off the lost capacity.
    [[nodiscard]] virtual RescueDecision rescue(const RescueContext& context);
    [[nodiscard]] virtual std::string name() const = 0;

    /// Sharded-admission configuration.  Set once, at construction/setup
    /// time, before the RM is shared across engine threads: the config is
    /// read unsynchronised on every decide.  RMs whose solvers do not
    /// decompose bit-identically (baseline, milp) ignore it.
    void set_shard_config(const ShardConfig& config) noexcept { shard_config_ = config; }
    [[nodiscard]] const ShardConfig& shard_config() const noexcept { return shard_config_; }

private:
    ShardConfig shard_config_;
};

/// Apply the RM-visible effects of an admitted decision to a working active
/// set: push the candidate on its assigned resource, and for every moved
/// task update `resource` (plus `pending_overhead` when it already started,
/// mirroring the simulator's migration accounting).  This is the exact
/// state a sequential decision sequence would expose to the next decision,
/// so batch emulation paths stay bit-identical to per-arrival admission.
void apply_decision_to_active(const Catalog& catalog, const Decision& decision,
                              const ActiveTask& candidate, std::vector<ActiveTask>& active);

/// Build the ScheduleItem for a real task under a candidate assignment.
/// With a health mask, the duration is inflated by the target resource's
/// throttle factor (remaining work only; migration overhead is unscaled).
[[nodiscard]] ScheduleItem make_schedule_item(const ActiveTask& task, const TaskType& type,
                                              ResourceId to, Time now,
                                              const PlatformHealth* health = nullptr);

/// Build the ScheduleItem for the predicted (virtual) task on a resource.
[[nodiscard]] ScheduleItem make_predicted_item(const PredictedTask& predicted,
                                               const TaskType& type, ResourceId to, Time now);

/// Planning window length K = max_j t_left_j over the given tasks and the
/// first `predicted_count` predicted tasks.  Requires a non-empty task set.
[[nodiscard]] Time planning_window(const ArrivalContext& context, std::size_t predicted_count);

/// Rebuild the window schedule implied by a decision (real tasks only) and
/// verify feasibility.  Used by the simulator and by tests as the
/// ground-truth check that an RM never admits an unschedulable set.
[[nodiscard]] WindowSchedule realize_decision(const ArrivalContext& context,
                                              const Decision& decision);

} // namespace rmwp
