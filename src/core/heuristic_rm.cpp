#include "core/heuristic_rm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/edf.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// The big-M of line 6: large enough to dominate any energy difference yet
/// finite so a desirability order still exists among infeasible choices.
constexpr double kBigM = 1e9;

} // namespace

std::optional<std::vector<ResourceId>> HeuristicRM::map_tasks(const PlanInstance& instance,
                                                              const Options& options) {
    const std::size_t n = instance.resource_count();
    const std::size_t count = instance.tasks.size();

    // Lines 1-6: capacities and desirabilities.  Capacities live on
    // *physical* cores (operating points of a DVFS core share one
    // timeline), and critical reservations are carved out up front (Sec 2:
    // the adaptive policy runs "over the remaining set of resources").
    const Platform& platform = *instance.platform;
    auto phys = [&](ResourceId i) { return platform.resource(i).physical(); };
    std::vector<double> capacity(n, instance.window);
    for (ResourceId i = 0; i < n; ++i) capacity[i] -= instance.blocked_time[i];
    std::vector<std::vector<double>> f(count, std::vector<double>(n, kInfinity));
    for (std::size_t j = 0; j < count; ++j) {
        const PlanTask& task = instance.tasks[j];
        for (const ResourceId i : task.executable) {
            const double penalty = task.cpm[i] > task.time_left(instance.now) ? kBigM : 0.0;
            const double base = options.desirability == Options::Desirability::energy
                                    ? task.epm[i]
                                    : task.epm[i] / task.cpm[i];
            f[j][i] = base + penalty;
        }
    }

    std::vector<ResourceId> mapping(count, 0);
    std::vector<bool> mapped(count, false);
    std::vector<std::vector<ScheduleItem>> assigned = instance.blocks;
    // Per-task exclusion set: resources already tried and found unschedulable
    // for that task in the inner loop (lines 29-34).
    std::vector<std::vector<bool>> excluded(count, std::vector<bool>(n, false));

    std::size_t unmapped = count;
    while (unmapped > 0) {
        // Lines 8-23: pick the task with the maximum regret d* (or, under an
        // ablation ordering, the next unmapped task by deadline / arrival —
        // the feasibility bookkeeping stays identical).
        double best_regret = -kInfinity;
        std::size_t best_task = count;
        for (std::size_t j = 0; j < count; ++j) {
            if (mapped[j]) continue;
            const PlanTask& task = instance.tasks[j];

            double best_f = kInfinity;
            double second_f = kInfinity;
            std::size_t feasible = 0;
            for (const ResourceId i : task.executable) {
                if (excluded[j][i] || task.cpm[i] > capacity[phys(i)]) continue;
                ++feasible;
                if (f[j][i] < best_f) {
                    second_f = best_f;
                    best_f = f[j][i];
                } else if (f[j][i] < second_f) {
                    second_f = f[j][i];
                }
            }
            if (feasible == 0) return std::nullopt; // line 22: no solution

            switch (options.order) {
            case Options::Order::max_regret: {
                const double regret = feasible == 1 ? kInfinity : second_f - best_f;
                if (regret > best_regret) {
                    best_regret = regret;
                    best_task = j;
                }
                break;
            }
            case Options::Order::edf:
                if (best_task == count ||
                    task.abs_deadline < instance.tasks[best_task].abs_deadline)
                    best_task = j;
                break;
            case Options::Order::arrival:
                if (best_task == count) best_task = j;
                break;
            }
        }
        RMWP_ENSURE(best_task < count);

        // Lines 24-34: map the chosen task to its most desirable resource
        // that passes the schedulability check.
        const PlanTask& task = instance.tasks[best_task];
        bool placed = false;
        while (!placed) {
            double best_f = kInfinity;
            ResourceId target = n;
            for (const ResourceId i : task.executable) {
                if (excluded[best_task][i] || task.cpm[i] > capacity[phys(i)]) continue;
                if (f[best_task][i] < best_f) {
                    best_f = f[best_task][i];
                    target = i;
                }
            }
            if (target == n) return std::nullopt; // lines 31-32: no more resources

            const ResourceId anchor = phys(target);
            assigned[anchor].push_back(instance.item_for(best_task, target));
            if (resource_feasible(platform.resource(anchor), instance.now, assigned[anchor])) {
                mapping[best_task] = target;
                mapped[best_task] = true;
                capacity[anchor] -= task.cpm[target];
                placed = true;
                --unmapped;
            } else {
                assigned[anchor].pop_back();
                excluded[best_task][target] = true;
            }
        }
    }

    return mapping;
}

Decision HeuristicRM::decide(const ArrivalContext& context) {
    return run_admission_ladder(
        context, [this](const PlanInstance& instance) { return map_tasks(instance, options_); });
}

RescueDecision HeuristicRM::rescue(const RescueContext& context) {
    return run_rescue_ladder(
        context, [this](const PlanInstance& instance) { return map_tasks(instance, options_); });
}

} // namespace rmwp
