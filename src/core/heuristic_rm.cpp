#include "core/heuristic_rm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/edf.hpp"
#include "core/shard.hpp"
#include "obs/stage_timer.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// The big-M of line 6: large enough to dominate any energy difference yet
/// finite so a desirability order still exists among infeasible choices.
constexpr double kBigM = 1e9;

/// ShardedSolver callback: Algorithm 1 over one bucket's sub-instance.
/// A heuristic rejection is never a proof of infeasibility.
bool sharded_map_tasks(const PlanInstance& sub, std::vector<ResourceId>& mapping, bool& proven,
                       void* ctx) {
    proven = true;
    const auto* options = static_cast<const HeuristicRM::Options*>(ctx);
    const auto result = HeuristicRM::map_tasks(sub, *options);
    if (!result.has_value()) return false;
    // The span views the worker thread's scratch — copy out before the next
    // solve on this thread reuses it.
    mapping.assign(result->begin(), result->end());
    return true;
}

} // namespace

std::optional<std::span<const ResourceId>> HeuristicRM::map_tasks(const PlanInstance& instance,
                                                              const Options& options) {
    RMWP_STAGE_SCOPE(obs::Stage::solve);
    const std::size_t n = instance.resource_count();
    const std::size_t count = instance.tasks.size();

    const Platform& platform = *instance.platform;

    PlanScratch& s = PlanScratch::local();
    s.reset(instance);
    // Physical anchors resolved once by reset(); the refresh and placement
    // loops below read this table millions of times per serve run.
    auto phys = [&](ResourceId i) { return s.phys[i]; };

    // Lines 1-6: capacities and desirabilities.  Capacities live on
    // *physical* cores (operating points of a DVFS core share one
    // timeline), and critical reservations are carved out up front (Sec 2:
    // the adaptive policy runs "over the remaining set of resources").
    for (ResourceId i = 0; i < n; ++i)
        s.capacity[i] = instance.window - instance.blocked_time[i];

    // Per-task anchor masks drive the dirty-flag invalidation below; beyond
    // 64 physical anchors (never hit by the paper's platforms) fall back to
    // invalidating every task.
    const bool use_masks = n <= 64;
    for (std::size_t j = 0; j < count; ++j) {
        const PlanTask& task = instance.tasks[j];
        double* row = s.f.data() + j * n;
        for (const ResourceId i : task.executable) {
            const double penalty = task.cpm[i] > task.time_left(instance.now) ? kBigM : 0.0;
            const double base = options.desirability == Options::Desirability::energy
                                    ? task.epm[i]
                                    : task.epm[i] / task.cpm[i];
            row[i] = base + penalty;
            if (use_masks) s.anchor_mask[j] |= std::uint64_t{1} << phys(i);
        }
    }

    // A task's (best, second-best, feasible-count) triple only changes when
    // the capacity of an anchor it can use shrinks or one of its resources
    // gets excluded; between those events the cached triple is reused, so
    // the outer loop's rescan is O(dirty tasks), not O(all tasks).
    auto refresh = [&](std::size_t j) {
        const PlanTask& task = instance.tasks[j];
        const double* row = s.f.data() + j * n;
        const std::uint8_t* row_excluded = s.excluded.data() + j * n;
        double best = kInfinity;
        double second = kInfinity;
        std::size_t feasible = 0;
        for (const ResourceId i : task.executable) {
            if (row_excluded[i] || task.cpm[i] > s.capacity[phys(i)]) continue;
            ++feasible;
            if (row[i] < best) {
                second = best;
                best = row[i];
            } else if (row[i] < second) {
                second = row[i];
            }
        }
        s.best_f[j] = best;
        s.second_f[j] = second;
        s.feasible_count[j] = feasible;
        s.dirty[j] = 0;
    };

    std::size_t unmapped = count;
    while (unmapped > 0) {
        // Lines 8-23: pick the task with the maximum regret d* (or, under an
        // ablation ordering, the next unmapped task by deadline / arrival —
        // the feasibility bookkeeping stays identical).
        double best_regret = -kInfinity;
        std::size_t best_task = count;
        for (std::size_t j = 0; j < count; ++j) {
            if (s.mapped[j]) continue;
            if (s.dirty[j]) refresh(j);
            if (s.feasible_count[j] == 0) return std::nullopt; // line 22: no solution

            switch (options.order) {
            case Options::Order::max_regret: {
                const double regret =
                    s.feasible_count[j] == 1 ? kInfinity : s.second_f[j] - s.best_f[j];
                if (regret > best_regret) {
                    best_regret = regret;
                    best_task = j;
                }
                break;
            }
            case Options::Order::edf:
                if (best_task == count ||
                    instance.tasks[j].abs_deadline < instance.tasks[best_task].abs_deadline)
                    best_task = j;
                break;
            case Options::Order::arrival:
                if (best_task == count) best_task = j;
                break;
            }
        }
        RMWP_ENSURE(best_task < count);

        // Lines 24-34: map the chosen task to its most desirable resource
        // that passes the schedulability check.
        const PlanTask& task = instance.tasks[best_task];
        const double* row = s.f.data() + best_task * n;
        std::uint8_t* row_excluded = s.excluded.data() + best_task * n;
        bool placed = false;
        while (!placed) {
            double best_f = kInfinity;
            ResourceId target = n;
            for (const ResourceId i : task.executable) {
                if (row_excluded[i] || task.cpm[i] > s.capacity[phys(i)]) continue;
                if (row[i] < best_f) {
                    best_f = row[i];
                    target = i;
                }
            }
            if (target == n) return std::nullopt; // lines 31-32: no more resources

            // The per-anchor lists stay demand-ordered across probes
            // (insert / erase-at-index), so the schedulability check scans
            // them in place instead of re-sorting per probe.
            const ResourceId anchor = phys(target);
            const std::size_t pos =
                insert_demand_ordered(s.assigned[anchor], instance.item_for(best_task, target));
            if (resource_feasible_sorted(platform.resource(anchor), instance.now,
                                         s.assigned[anchor])) {
                s.mapping[best_task] = target;
                s.mapped[best_task] = 1;
                s.capacity[anchor] -= task.cpm[target];
                placed = true;
                --unmapped;
                // This anchor's capacity shrank: only tasks that can use it
                // need their desirability triple recomputed.
                for (std::size_t j = 0; j < count; ++j) {
                    if (s.mapped[j]) continue;
                    if (!use_masks || ((s.anchor_mask[j] >> anchor) & 1u)) s.dirty[j] = 1;
                }
            } else {
                s.assigned[anchor].erase(s.assigned[anchor].begin() +
                                         static_cast<std::ptrdiff_t>(pos));
                row_excluded[target] = 1;
                s.dirty[best_task] = 1;
            }
        }
    }

    return std::span<const ResourceId>(s.mapping);
}

Decision HeuristicRM::decide(const ArrivalContext& context) {
    const ShardConfig& shard = shard_config();
    Decision decision =
        shard.shards > 1
            ? [&] {
                  ShardPartition& partition = ShardPartition::local();
                  partition.rebuild(*context.platform, *context.catalog);
                  ShardedSolver& solver = ShardedSolver::local();
                  return run_admission_ladder(context, [&](const PlanInstance& instance) {
                      return solver.run(instance, partition, shard, &sharded_map_tasks,
                                        &options_, /*use_cache=*/false);
                  });
              }()
            : run_admission_ladder(context, [this](const PlanInstance& instance) {
                  return map_tasks(instance, options_);
              });
    // Algorithm 1 is incomplete: a rejection means the regret-driven search
    // was exhausted, not that no schedulable mapping exists (Sec 5.2).
    if (!decision.admitted) decision.reason = RejectReason::heuristic_exhausted;
    RMWP_ENSURE(decision.admitted || decision.reason == RejectReason::heuristic_exhausted);
    return decision;
}

void HeuristicRM::decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) {
    RMWP_EXPECT(batch.platform != nullptr && batch.catalog != nullptr);
    const ShardConfig& shard = shard_config();
    if (shard.shards > 1) {
        decide_batch_sharded(batch, out);
        return;
    }
    BatchPlanner planner(batch);
    out.clear();
    out.reserve(batch.items.size());
    for (std::size_t m = 0; m < planner.item_count(); ++m) {
        Decision decision = run_admission_ladder_batch(planner, m, [this](const PlanInstance& instance) {
            return map_tasks(instance, options_);
        });
        if (!decision.admitted) decision.reason = RejectReason::heuristic_exhausted;
        out.push_back(std::move(decision));
    }
    RMWP_ENSURE(out.size() == batch.items.size());
}

void HeuristicRM::decide_batch_sharded(const BatchArrivalContext& batch,
                                       std::vector<Decision>& out) {
    RMWP_EXPECT(shard_config().shards > 1);
    const ShardConfig& shard = shard_config();
    BatchPlanner planner(batch);
    ShardPartition& partition = ShardPartition::local();
    partition.rebuild(*batch.platform, *batch.catalog);
    ShardedSolver& solver = ShardedSolver::local();
    // The cross-item cache keys on bucket versions begun here: buckets no
    // admission touches keep their solved verdict across the whole batch.
    solver.begin_batch(batch, partition, shard.shards);
    out.clear();
    out.reserve(batch.items.size());
    for (std::size_t m = 0; m < planner.item_count(); ++m) {
        Decision decision =
            run_admission_ladder_batch(planner, m, [&](const PlanInstance& instance) {
                return solver.run(instance, partition, shard, &sharded_map_tasks,
                                  &options_, /*use_cache=*/true);
            });
        if (!decision.admitted) decision.reason = RejectReason::heuristic_exhausted;
        if (decision.admitted)
            solver.note_admission(decision, batch.items[m].candidate, partition, *batch.catalog,
                                  shard.shards);
        out.push_back(std::move(decision));
    }
    RMWP_ENSURE(out.size() == batch.items.size());
}

RescueDecision HeuristicRM::rescue(const RescueContext& context) {
    return run_rescue_ladder(
        context, [this](const PlanInstance& instance) { return map_tasks(instance, options_); });
}

} // namespace rmwp
