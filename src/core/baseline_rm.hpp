// A deliberately weak baseline manager: greedy, non-replanning admission.
//
// The paper's RM re-maps and re-schedules the whole active set at every
// arrival (Sec 2).  This baseline does what a naive runtime would do
// instead: existing tasks stay exactly where they are, and only the
// arriving task is placed — on the cheapest resource where it fits under
// EDF, else rejected.  No migration, no reshuffling, no prediction.
//
// Comparing {baseline, heuristic} x {pred off, on} separates the two
// mechanisms the paper bundles: how much acceptance comes from full
// replanning, and how much from lookahead (bench_baseline).
#pragma once

#include "core/manager.hpp"
#include "core/plan_instance.hpp"

namespace rmwp {

class BaselineRM final : public ResourceManager {
public:
    BaselineRM() = default;

    [[nodiscard]] Decision decide(const ArrivalContext& context) override;
    /// Batched admission over the shared BatchPlanner base: one plan
    /// rebuild per batch, bit-identical decisions to sequential decide()s.
    void decide_batch(const BatchArrivalContext& batch, std::vector<Decision>& out) override;
    [[nodiscard]] std::string name() const override { return "baseline"; }
};

} // namespace rmwp
