// Materialisation of one RM activation's optimisation instance: the task
// set S-bar (active tasks + new candidate + optionally the predicted task)
// with per-resource cpm/epm tables, the planning window K-bar, and
// convenience conversion to ScheduleItems.  Shared by the heuristic, the
// branch-and-bound exact optimiser, and the MILP encoder so that all three
// agree on the instance by construction.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/manager.hpp"

namespace rmwp {

/// One task of the optimisation instance.
struct PlanTask {
    TaskUid uid = 0;
    Time release = 0.0;
    Time abs_deadline = 0.0;
    bool pinned = false;
    ResourceId pinned_resource = 0;
    bool is_predicted = false;
    bool is_candidate = false;
    /// cpm_{j,i} / epm_{j,i} indexed by resource; +inf when not executable.
    std::vector<double> cpm;
    std::vector<double> epm;
    /// Resources the task can execute on (respecting pinning).
    std::vector<ResourceId> executable;

    [[nodiscard]] Time time_left(Time now) const noexcept { return abs_deadline - now; }
};

struct PlanPool;

/// The full instance for one activation.
struct PlanInstance {
    const Platform* platform = nullptr;
    Time now = 0.0;
    Time window = 0.0; ///< K-bar = max_j t_left_j
    std::vector<PlanTask> tasks; ///< candidate and (if any) predicted are last
    std::size_t predicted_count = 0; ///< predicted tasks included (at the tail)
    /// Critical-reservation blocks intersecting the window, per resource.
    std::vector<std::vector<ScheduleItem>> blocks;
    /// Reserved time per resource within the window (capacity reduction).
    std::vector<double> blocked_time;

    [[nodiscard]] bool has_predicted() const noexcept { return predicted_count > 0; }

    /// Build from an activation context.  `predicted_count` selects how
    /// many of the context's predicted tasks (nearest first) join the
    /// instance as planning constraints — the Sec 4.1 fallback re-plans
    /// with 0; bool converts naturally (true = 1 predicted, false = none).
    [[nodiscard]] static PlanInstance build(const ArrivalContext& context,
                                            std::size_t predicted_count);

    /// build() into a caller-owned arena: fills `pool.instance` in place,
    /// reusing every per-task vector capacity, and returns a reference to
    /// it.  Field-identical to build() on the same context (an RMWP_AUDIT
    /// drift check in the batch planner compares the two), but free of
    /// steady-state heap allocations — this is what the admission ladder
    /// runs on.  The reference is valid until the next build_into on the
    /// same pool.
    static const PlanInstance& build_into(PlanPool& pool, const ArrivalContext& context,
                                          std::size_t predicted_count);

    /// Build a fault-rescue instance over `tasks` (a subset of the rescue
    /// context's survivors): no candidate, no predicted task, resource
    /// health applied (offline resources excluded from `executable`,
    /// throttled cpm inflated).  A task can legitimately end up with an
    /// empty executable set here — it cannot be rescued.
    [[nodiscard]] static PlanInstance build_rescue(const RescueContext& context,
                                                   std::span<const ActiveTask> tasks);

    [[nodiscard]] std::size_t resource_count() const noexcept { return platform->size(); }

    /// ScheduleItem for assigning tasks[index] to resource i.
    [[nodiscard]] ScheduleItem item_for(std::size_t index, ResourceId i) const;

    /// Convert a per-task resource assignment into Decision assignments for
    /// the real tasks (predicted excluded).
    [[nodiscard]] std::vector<TaskAssignment> real_assignments(
        std::span<const ResourceId> mapping) const;
};

/// Arena for pooled PlanInstance construction (build_into).  `spare` parks
/// surplus PlanTask shells — shrinking the task list must not destroy their
/// heap buffers, or the next deeper ladder rung would reallocate them.
/// Obtain via local(): thread-local for the same reason as PlanScratch (one
/// RM object is shared across the parallel experiment engine's threads).
struct PlanPool {
    PlanInstance instance;
    std::vector<PlanTask> spare;

    /// The calling thread's pool.
    [[nodiscard]] static PlanPool& local();
};

namespace plan_detail {
/// Resize a pooled task list without destroying PlanTask heap buffers:
/// surplus shells park in `spare` and return on the next growth, so
/// rung-to-rung (and per-shard sub-instance) resizes do no steady-state
/// allocation.  Shared by the ladder, BatchPlanner, and ShardedSolver.
void set_task_count(std::vector<PlanTask>& tasks, std::vector<PlanTask>& spare,
                    std::size_t count);
} // namespace plan_detail

/// Shared planning state for one coalesced batch of same-instant arrivals:
/// the working active set (base) is materialised as plan tasks once, and
/// each item's ladder rungs only rewrite the candidate + predicted tail of
/// the pooled instance.  On admission the candidate folds into the base and
/// only rows whose task actually moved are recomputed — one plan rebuild
/// per batch instead of one per (item × rung).  Under RMWP_AUDIT every
/// assembled instance is compared field-by-field against a from-scratch
/// PlanInstance::build of the equivalent sequential context, proving the
/// incremental base never drifts.
class BatchPlanner {
public:
    /// Buffers (working set, pooled instance, spare task shells) live on a
    /// thread-local arena, so a steady stream of batches does no heap work
    /// beyond the Decision outputs (pinned by tests/test_alloc_count.cpp).
    /// Consequently at most one BatchPlanner may be live per thread — the
    /// one-per-decide_batch usage of the solver RMs.
    explicit BatchPlanner(const BatchArrivalContext& batch);

    [[nodiscard]] std::size_t item_count() const noexcept { return batch_->items.size(); }
    [[nodiscard]] std::size_t predicted_count(std::size_t m) const {
        return batch_->items[m].predicted.size();
    }

    /// Assemble the instance for item `m` at ladder rung `k` (that many
    /// predicted tasks included).  The reference is valid until the next
    /// assemble/admit call.
    [[nodiscard]] const PlanInstance& assemble(std::size_t m, std::size_t k);

    /// Fold item `m`, admitted with `mapping` over the last assembled
    /// instance, into the shared working set (mirroring the simulator's
    /// RM-visible apply) and return its Decision (used_prediction unset —
    /// the ladder fills it).
    [[nodiscard]] Decision admit(std::size_t m, std::span<const ResourceId> mapping);

private:
    static constexpr std::size_t kNoItem = static_cast<std::size_t>(-1);

    const BatchArrivalContext* batch_;
    std::vector<ActiveTask>& working_;  ///< active set incl. prior admissions
    std::size_t base_count_ = 0;        ///< prefix of instance_.tasks mirroring working_
    std::size_t candidate_for_ = kNoItem; ///< item whose candidate row is cached
    PlanInstance& instance_;
    std::vector<PlanTask>& spare_;
};

/// Reusable scratch arena for admission solvers: the desirability matrix,
/// exclusion bitmap, per-resource schedule buffers, and the cached
/// best/second-best desirability state of the heuristic's outer loop.
/// Admission runs thousands of times per trace, and before this arena every
/// run allocated (and freed) count x n matrices plus one schedule vector
/// per resource; reset() reuses the buffers, so steady-state admission does
/// no heap work at all.  Obtain via local(): the arena is thread-local by
/// design — the parallel experiment engine shares one RM object across
/// threads, so solver scratch must never live on the RM itself.
struct PlanScratch {
    // Knapsack state (task-major matrices: element (j, i) at [j * n + i]).
    std::vector<double> capacity;        ///< per physical resource
    std::vector<double> f;               ///< desirability f_{j,i}
    std::vector<std::uint8_t> excluded;  ///< tried-and-unschedulable pairs
    std::vector<std::uint8_t> mapped;
    std::vector<ResourceId> mapping;
    std::vector<std::vector<ScheduleItem>> assigned; ///< per physical resource
    std::vector<ResourceId> phys; ///< resource id -> physical anchor id

    // Per-task desirability cache for the dirty-flag incremental
    // recomputation: a task's best/second-best/feasible-count triple stays
    // valid until a capacity it can use shrinks or one of its resources is
    // excluded.
    std::vector<double> best_f;
    std::vector<double> second_f;
    std::vector<std::size_t> feasible_count;
    std::vector<std::uint8_t> dirty;
    std::vector<std::uint64_t> anchor_mask; ///< physical anchors usable per task

    /// Size every buffer for the instance and seed the per-resource
    /// schedule buffers from its reservation blocks.
    void reset(const PlanInstance& instance);

    /// Total heap footprint of the arena's buffers (capacities, not
    /// sizes).  Reported as the obs stage profile's high-water mark.
    [[nodiscard]] std::uint64_t footprint_bytes() const noexcept;

    /// The calling thread's arena.
    [[nodiscard]] static PlanScratch& local();
};

/// The Sec 4.1 admission ladder, generalised to multi-step lookahead:
/// try planning with all predicted tasks, trimming the furthest prediction
/// on failure (nearest predictions are the most reliable), down to the
/// prediction-free plan; reject only when even that fails.  `solve` maps a
/// PlanInstance to an optional per-task mapping.
template <typename Solver>
[[nodiscard]] Decision run_admission_ladder(const ArrivalContext& context, Solver&& solve) {
    Decision decision;
    PlanPool& pool = PlanPool::local();
    for (std::size_t k = context.predicted.size() + 1; k-- > 0;) {
        const PlanInstance& instance = PlanInstance::build_into(pool, context, k);
        if (const auto mapping = solve(instance)) {
            decision.admitted = true;
            decision.used_prediction = k > 0;
            decision.assignments = instance.real_assignments(*mapping);
            return decision;
        }
    }
    return decision; // reject; the previous mapping stays in force
}

/// The admission ladder over a BatchPlanner-assembled instance: identical
/// rung order and semantics to run_admission_ladder, but the instance comes
/// from the batch's shared base and an admission folds back into it.
template <typename Solver>
[[nodiscard]] Decision run_admission_ladder_batch(BatchPlanner& planner, std::size_t m,
                                                  Solver&& solve) {
    for (std::size_t k = planner.predicted_count(m) + 1; k-- > 0;) {
        const PlanInstance& instance = planner.assemble(m, k);
        if (const auto mapping = solve(instance)) {
            Decision decision = planner.admit(m, *mapping);
            decision.used_prediction = k > 0;
            return decision;
        }
    }
    return Decision{}; // reject; the previous mapping stays in force
}

/// The fault-rescue counterpart of the admission ladder: try to re-plan the
/// complete surviving set on the healthy capacity; while that fails, shed
/// the most constraining task (largest best-case load relative to its
/// remaining slack) and retry.  Tasks with no feasible resource at all are
/// shed first.  Terminates because every retry plans one task fewer, and
/// the empty set is trivially feasible.  `solve` maps a PlanInstance to an
/// optional per-task mapping, exactly as in run_admission_ladder.
template <typename Solver>
[[nodiscard]] RescueDecision run_rescue_ladder(const RescueContext& context, Solver&& solve) {
    RescueDecision decision;
    std::vector<ActiveTask> keep(context.active.begin(), context.active.end());
    while (!keep.empty()) {
        const PlanInstance instance = PlanInstance::build_rescue(context, keep);

        bool shed_unsavable = false;
        for (std::size_t j = keep.size(); j-- > 0;) {
            if (!instance.tasks[j].executable.empty()) continue;
            decision.aborted.push_back(keep[j].uid);
            keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(j));
            shed_unsavable = true;
        }
        if (shed_unsavable) continue;

        if (const auto mapping = solve(instance)) {
            decision.kept = instance.real_assignments(*mapping);
            return decision;
        }

        std::size_t victim = 0;
        double worst = -1.0;
        for (std::size_t j = 0; j < keep.size(); ++j) {
            const PlanTask& task = instance.tasks[j];
            double cheapest = task.cpm[task.executable.front()];
            for (const ResourceId i : task.executable)
                cheapest = std::min(cheapest, task.cpm[i]);
            const double slack = std::max(task.time_left(context.now), 1e-9);
            const double ratio = cheapest / slack;
            const bool better =
                ratio > worst ||
                (ratio == worst && task.abs_deadline > instance.tasks[victim].abs_deadline) ||
                (ratio == worst && task.abs_deadline == instance.tasks[victim].abs_deadline &&
                 task.uid > instance.tasks[victim].uid);
            if (better) {
                worst = ratio;
                victim = j;
            }
        }
        decision.aborted.push_back(keep[victim].uid);
        keep.erase(keep.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    return decision;
}

} // namespace rmwp
