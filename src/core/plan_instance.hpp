// Materialisation of one RM activation's optimisation instance: the task
// set S-bar (active tasks + new candidate + optionally the predicted task)
// with per-resource cpm/epm tables, the planning window K-bar, and
// convenience conversion to ScheduleItems.  Shared by the heuristic, the
// branch-and-bound exact optimiser, and the MILP encoder so that all three
// agree on the instance by construction.
#pragma once

#include <cstddef>
#include <vector>

#include "core/manager.hpp"

namespace rmwp {

/// One task of the optimisation instance.
struct PlanTask {
    TaskUid uid = 0;
    Time release = 0.0;
    Time abs_deadline = 0.0;
    bool pinned = false;
    ResourceId pinned_resource = 0;
    bool is_predicted = false;
    bool is_candidate = false;
    /// cpm_{j,i} / epm_{j,i} indexed by resource; +inf when not executable.
    std::vector<double> cpm;
    std::vector<double> epm;
    /// Resources the task can execute on (respecting pinning).
    std::vector<ResourceId> executable;

    [[nodiscard]] Time time_left(Time now) const noexcept { return abs_deadline - now; }
};

/// The full instance for one activation.
struct PlanInstance {
    const Platform* platform = nullptr;
    Time now = 0.0;
    Time window = 0.0; ///< K-bar = max_j t_left_j
    std::vector<PlanTask> tasks; ///< candidate and (if any) predicted are last
    std::size_t predicted_count = 0; ///< predicted tasks included (at the tail)
    /// Critical-reservation blocks intersecting the window, per resource.
    std::vector<std::vector<ScheduleItem>> blocks;
    /// Reserved time per resource within the window (capacity reduction).
    std::vector<double> blocked_time;

    [[nodiscard]] bool has_predicted() const noexcept { return predicted_count > 0; }

    /// Build from an activation context.  `predicted_count` selects how
    /// many of the context's predicted tasks (nearest first) join the
    /// instance as planning constraints — the Sec 4.1 fallback re-plans
    /// with 0; bool converts naturally (true = 1 predicted, false = none).
    [[nodiscard]] static PlanInstance build(const ArrivalContext& context,
                                            std::size_t predicted_count);

    [[nodiscard]] std::size_t resource_count() const noexcept { return platform->size(); }

    /// ScheduleItem for assigning tasks[index] to resource i.
    [[nodiscard]] ScheduleItem item_for(std::size_t index, ResourceId i) const;

    /// Convert a per-task resource assignment into Decision assignments for
    /// the real tasks (predicted excluded).
    [[nodiscard]] std::vector<TaskAssignment> real_assignments(
        const std::vector<ResourceId>& mapping) const;
};

/// The Sec 4.1 admission ladder, generalised to multi-step lookahead:
/// try planning with all predicted tasks, trimming the furthest prediction
/// on failure (nearest predictions are the most reliable), down to the
/// prediction-free plan; reject only when even that fails.  `solve` maps a
/// PlanInstance to an optional per-task mapping.
template <typename Solver>
[[nodiscard]] Decision run_admission_ladder(const ArrivalContext& context, Solver&& solve) {
    Decision decision;
    for (std::size_t k = context.predicted.size() + 1; k-- > 0;) {
        const PlanInstance instance = PlanInstance::build(context, k);
        if (const auto mapping = solve(instance)) {
            decision.admitted = true;
            decision.used_prediction = k > 0;
            decision.assignments = instance.real_assignments(*mapping);
            return decision;
        }
    }
    return decision; // reject; the previous mapping stays in force
}

} // namespace rmwp
