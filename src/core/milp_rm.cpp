#include "core/milp_rm.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/check.hpp"

namespace rmwp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string tag(const char* prefix, std::size_t a, std::size_t b = SIZE_MAX,
                std::size_t c = SIZE_MAX) {
    std::string out = prefix;
    out += '_' + std::to_string(a);
    if (b != SIZE_MAX) out += '_' + std::to_string(b);
    if (c != SIZE_MAX) out += '_' + std::to_string(c);
    return out;
}

/// Encoding workspace for one instance.
struct Encoder {
    const PlanInstance& instance;
    milp::LinearProgram lp;

    std::size_t task_count;
    std::size_t resource_count;
    std::size_t predicted_index = SIZE_MAX; ///< index into instance.tasks
    double big_m = 0.0;

    /// x[j][i]; -1 when the pair is excluded (constraint (2) or pinning).
    std::vector<std::vector<int>> x;

    explicit Encoder(const PlanInstance& inst)
        : instance(inst),
          task_count(inst.tasks.size()),
          resource_count(inst.resource_count()) {
        for (std::size_t j = 0; j < task_count; ++j)
            if (instance.tasks[j].is_predicted) predicted_index = j;
        compute_big_m();
        make_mapping_variables();
    }

    [[nodiscard]] double tleft(std::size_t j) const {
        return instance.tasks[j].time_left(instance.now);
    }

    [[nodiscard]] double release_rel(std::size_t j) const {
        return instance.tasks[j].release - instance.now;
    }

    void compute_big_m() {
        // Larger than any feasible completion time in the window: total
        // work plus the latest release plus the window itself.
        double total = instance.window + 1.0;
        for (const PlanTask& task : instance.tasks) {
            double worst = 0.0;
            for (const ResourceId i : task.executable) worst = std::max(worst, task.cpm[i]);
            total += worst;
            total += std::max(0.0, task.release - instance.now);
        }
        big_m = 4.0 * total;
    }

    void make_mapping_variables() {
        x.assign(task_count, std::vector<int>(resource_count, -1));
        for (std::size_t j = 0; j < task_count; ++j) {
            const PlanTask& task = instance.tasks[j];
            for (const ResourceId i : task.executable) {
                // Constraint (2): a mapping that cannot meet the deadline is
                // excluded structurally.  Pinned tasks keep their (single)
                // variable regardless; their admission was already granted.
                if (!task.pinned && task.cpm[i] > tleft(j)) continue;
                x[j][i] = lp.add_binary_variable(tag("x", j, i));
                lp.set_objective(x[j][i], task.epm[i]);
            }
        }
        lp.set_sense(milp::Sense::minimize);
    }

    /// True when every task has at least one admissible mapping variable.
    [[nodiscard]] bool structurally_feasible() const {
        for (std::size_t j = 0; j < task_count; ++j) {
            bool any = false;
            for (std::size_t i = 0; i < resource_count; ++i) any = any || x[j][i] >= 0;
            if (!any) return false;
        }
        return true;
    }

    void add_assignment_constraints() {
        for (std::size_t j = 0; j < task_count; ++j) {
            std::vector<milp::LinearTerm> terms;
            for (std::size_t i = 0; i < resource_count; ++i)
                if (x[j][i] >= 0) terms.push_back({x[j][i], 1.0});
            lp.add_constraint(std::move(terms), milp::Relation::equal, 1.0, tag("assign", j));
        }
    }

    /// Real tasks with a variable on resource i, EDF order with the pinned
    /// task (if on i) first.
    [[nodiscard]] std::vector<std::size_t> sorted_real_tasks(std::size_t i) const {
        std::vector<std::size_t> list;
        for (std::size_t j = 0; j < task_count; ++j) {
            if (j == predicted_index || x[j][i] < 0) continue;
            list.push_back(j);
        }
        std::sort(list.begin(), list.end(), [&](std::size_t a, std::size_t b) {
            const PlanTask& ta = instance.tasks[a];
            const PlanTask& tb = instance.tasks[b];
            const bool pa = ta.pinned && ta.pinned_resource == i;
            const bool pb = tb.pinned && tb.pinned_resource == i;
            if (pa != pb) return pa;
            if (ta.abs_deadline != tb.abs_deadline) return ta.abs_deadline < tb.abs_deadline;
            return ta.uid < tb.uid;
        });
        return list;
    }

    void add_resource_constraints(std::size_t i) {
        const std::vector<std::size_t> order = sorted_real_tasks(i);
        const bool hosts_predicted =
            predicted_index != SIZE_MAX && x[predicted_index][i] >= 0;
        const int xp = hosts_predicted ? x[predicted_index][i] : -1;
        const double dp =
            hosts_predicted ? instance.tasks[predicted_index].abs_deadline : kInf;

        // Split into SL1 / SL2 relative to the predicted deadline.  The
        // pinned task sits in SL1 by construction (it runs first).
        std::vector<std::size_t> sl1;
        std::vector<std::size_t> sl2;
        for (const std::size_t j : order) {
            const PlanTask& task = instance.tasks[j];
            const bool pinned_here = task.pinned && task.pinned_resource == i;
            if (pinned_here || task.abs_deadline <= dp) sl1.push_back(j);
            else sl2.push_back(j);
        }

        // (3)/(6): EDF prefix sums.  SL1 prefixes hold unconditionally; SL2
        // prefixes are relaxed when the predicted task is hosted here.
        std::vector<milp::LinearTerm> prefix;
        std::size_t position = 0;
        for (const std::size_t j : order) {
            prefix.push_back({x[j][i], instance.tasks[j].cpm[i]});
            ++position;
            std::vector<milp::LinearTerm> terms = prefix;
            double rhs = tleft(j);
            const bool in_sl2 = position > sl1.size();
            if (in_sl2 && hosts_predicted) {
                terms.push_back({xp, -big_m});
                // relax: sum <= tleft_j + M * x_p  ->  sum - M x_p <= tleft_j
            }
            lp.add_constraint(std::move(terms), milp::Relation::less_equal, rhs,
                              tag("edf", i, j));
        }

        if (!hosts_predicted) return;

        const PlanTask& predicted = instance.tasks[predicted_index];
        const double cp_p = predicted.cpm[i];
        const double sp = release_rel(predicted_index);
        const double tleft_p = tleft(predicted_index);
        const bool preemptable = instance.platform->resource(i).preemptable();

        // q_i (relative to t): completion of SL1 work on this resource.
        const int q = lp.add_variable(tag("q", i), 0.0, kInf);
        {
            std::vector<milp::LinearTerm> terms{{q, -1.0}};
            for (const std::size_t j : sl1) terms.push_back({x[j][i], instance.tasks[j].cpm[i]});
            lp.add_constraint(std::move(terms), milp::Relation::equal, 0.0, tag("qdef", i));
        }

        // The predicted task's (single) chunk.
        const int scp = lp.add_variable(tag("scp", i), 0.0, kInf);
        const int ecp = lp.add_variable(tag("ecp", i), 0.0, kInf);
        lp.add_constraint({{ecp, 1.0}, {scp, -1.0}, {xp, -cp_p}}, milp::Relation::equal, 0.0,
                          tag("pdur", i));
        // (8): scp >= sp - M(1-xp), i.e. active when hosted here.
        lp.add_constraint({{scp, 1.0}, {xp, -big_m}}, milp::Relation::greater_equal, sp - big_m,
                          tag("prel", i));
        // The predicted task queues behind SL1: scp >= q - M(1-xp).
        lp.add_constraint({{scp, 1.0}, {q, -1.0}, {xp, -big_m}}, milp::Relation::greater_equal,
                          -big_m, tag("pq", i));
        // Deadline of the predicted task.
        lp.add_constraint({{ecp, 1.0}, {xp, big_m}}, milp::Relation::less_equal,
                          tleft_p + big_m, tag("pdl", i));

        // Chunk variables for SL2 tasks: sc/ec for chunks 1 and 2.
        std::vector<std::array<int, 4>> chunk(task_count, {-1, -1, -1, -1});
        for (const std::size_t j : sl2) {
            const int sc1 = lp.add_variable(tag("sc", j, i, 1), 0.0, kInf);
            const int ec1 = lp.add_variable(tag("ec", j, i, 1), 0.0, kInf);
            const int sc2 = lp.add_variable(tag("sc", j, i, 2), 0.0, kInf);
            const int ec2 = lp.add_variable(tag("ec", j, i, 2), 0.0, kInf);
            chunk[j] = {sc1, ec1, sc2, ec2};

            // (9): chunks have non-negative length.
            lp.add_constraint({{sc1, 1.0}, {ec1, -1.0}}, milp::Relation::less_equal, 0.0,
                              tag("c9a", j, i));
            lp.add_constraint({{sc2, 1.0}, {ec2, -1.0}}, milp::Relation::less_equal, 0.0,
                              tag("c9b", j, i));
            // (10): chunk 1 precedes chunk 2.
            lp.add_constraint({{ec1, 1.0}, {sc2, -1.0}}, milp::Relation::less_equal, 0.0,
                              tag("c10", j, i));
            // (11): the chunks cover exactly the remaining work when mapped.
            lp.add_constraint(
                {{ec1, 1.0}, {sc1, -1.0}, {ec2, 1.0}, {sc2, -1.0}, {x[j][i], -instance.tasks[j].cpm[i]}},
                milp::Relation::equal, 0.0, tag("c11", j, i));
            // No preemption on GPUs (Sec 4.1): the second chunk is empty.
            if (!preemptable)
                lp.add_constraint({{ec2, 1.0}, {sc2, -1.0}}, milp::Relation::equal, 0.0,
                                  tag("nopreempt", j, i));

            // SL2 work happens after SL1 completes (active when both x=1):
            // sc1 >= q - M(2 - xj - xp).
            lp.add_constraint({{sc1, 1.0}, {q, -1.0}, {x[j][i], -big_m}, {xp, -big_m}},
                              milp::Relation::greater_equal, -2.0 * big_m, tag("aftq", j, i));
            // (14): deadline on the final chunk.
            lp.add_constraint({{ec2, 1.0}, {x[j][i], big_m}, {xp, big_m}},
                              milp::Relation::less_equal, tleft(j) + 2.0 * big_m,
                              tag("c14", j, i));

            // Each chunk lies entirely before or after the predicted task.
            for (int k = 0; k < 2; ++k) {
                const int sck = k == 0 ? sc1 : sc2;
                const int eck = k == 0 ? ec1 : ec2;
                const int before = lp.add_binary_variable(tag("w", j, i, static_cast<std::size_t>(k)));
                // eck <= scp + M(1-before) + M(2 - xj - xp)
                lp.add_constraint({{eck, 1.0}, {scp, -1.0}, {before, big_m}, {x[j][i], big_m}, {xp, big_m}},
                                  milp::Relation::less_equal, 3.0 * big_m, tag("wb", j, i, static_cast<std::size_t>(k)));
                // sck >= ecp - M*before - M(2 - xj - xp)
                lp.add_constraint({{sck, 1.0}, {ecp, -1.0}, {before, big_m}, {x[j][i], -big_m}, {xp, -big_m}},
                                  milp::Relation::greater_equal, -2.0 * big_m,
                                  tag("wa", j, i, static_cast<std::size_t>(k)));
            }
        }

        // (12)/(13): SL2 tasks do not interleave with each other.
        for (std::size_t a = 0; a < sl2.size(); ++a) {
            for (std::size_t b = a + 1; b < sl2.size(); ++b) {
                const std::size_t j1 = sl2[a];
                const std::size_t j2 = sl2[b];
                const int z = lp.add_binary_variable(tag("z", j1, j2, i));
                for (int k1 = 0; k1 < 2; ++k1) {
                    for (int k2 = 0; k2 < 2; ++k2) {
                        const int ec_a = chunk[j1][2 * k1 + 1];
                        const int sc_b = chunk[j2][2 * k2];
                        const int ec_b = chunk[j2][2 * k2 + 1];
                        const int sc_a = chunk[j1][2 * k1];
                        // j1 before j2 when z = 1:
                        // ec_a <= sc_b + M(1-z) + M(2 - xj1 - xj2)
                        lp.add_constraint({{ec_a, 1.0}, {sc_b, -1.0}, {z, big_m},
                                           {x[j1][i], big_m}, {x[j2][i], big_m}},
                                          milp::Relation::less_equal, 3.0 * big_m,
                                          tag("ord12", j1, j2, i));
                        // j2 before j1 when z = 0:
                        // ec_b <= sc_a + M z + M(2 - xj1 - xj2)
                        lp.add_constraint({{ec_b, 1.0}, {sc_a, -1.0}, {z, -big_m},
                                           {x[j1][i], big_m}, {x[j2][i], big_m}},
                                          milp::Relation::less_equal, 2.0 * big_m,
                                          tag("ord13", j1, j2, i));
                    }
                }
            }
        }
    }

    milp::LinearProgram build() {
        add_assignment_constraints();
        for (std::size_t i = 0; i < resource_count; ++i) add_resource_constraints(i);
        return std::move(lp);
    }
};

} // namespace

milp::LinearProgram MilpRM::encode(const PlanInstance& instance) {
    Encoder encoder(instance);
    RMWP_EXPECT(encoder.structurally_feasible());
    return encoder.build();
}

std::optional<MilpRM::Result> MilpRM::optimize(const PlanInstance& instance,
                                               const milp::MilpOptions& options) {
    // The literal Sec 4.2 formulation has no notion of reserved windows or
    // DVFS operating points; use ExactRM for those extensions.
    for (const double blocked : instance.blocked_time) RMWP_EXPECT(blocked == 0.0);
    RMWP_EXPECT(!instance.platform->has_dvfs());
    Encoder encoder(instance);
    if (!encoder.structurally_feasible()) return std::nullopt;

    // Keep the x-variable handles before the encoder gives up its program.
    const std::vector<std::vector<int>> x = encoder.x;
    const milp::LinearProgram lp = encoder.build();

    const milp::MilpSolution solved = milp::solve_milp(lp, options);
    if (solved.status != milp::SolveStatus::optimal) return std::nullopt;

    Result result;
    result.energy = solved.objective;
    result.proven_optimal = solved.proven_optimal;
    result.nodes = solved.nodes;
    result.mapping.assign(instance.tasks.size(), 0);
    for (std::size_t j = 0; j < instance.tasks.size(); ++j) {
        bool found = false;
        for (std::size_t i = 0; i < instance.resource_count(); ++i) {
            if (x[j][i] >= 0 && solved.values[static_cast<std::size_t>(x[j][i])] > 0.5) {
                result.mapping[j] = i;
                found = true;
                break;
            }
        }
        RMWP_ENSURE(found);
    }
    return result;
}

RescueDecision MilpRM::rescue(const RescueContext& context) {
    RMWP_EXPECT(context.platform != nullptr && context.health != nullptr);
    // Same applicability limits as decide(): the literal Sec 4.2 encoding
    // has no reserved windows or DVFS operating points.
    return run_rescue_ladder(
        context, [this](const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
            if (auto result = optimize(instance, options_)) return std::move(result->mapping);
            return std::nullopt;
        });
}

Decision MilpRM::decide(const ArrivalContext& context) {
    // The Sec 4.2 formulation models a single predicted request; deeper
    // lookahead is only supported by the heuristic / branch-and-bound RMs.
    RMWP_EXPECT(context.predicted.size() <= 1);
    Decision decision = run_admission_ladder(
        context, [this](const PlanInstance& instance) -> std::optional<std::vector<ResourceId>> {
            if (auto result = optimize(instance, options_)) return std::move(result->mapping);
            return std::nullopt;
        });
    // The in-repo branch-and-bound over the LP relaxation does not separate
    // "proved infeasible" from "budget exhausted"; both report the solver.
    if (!decision.admitted) decision.reason = RejectReason::solver_infeasible;
    return decision;
}

} // namespace rmwp
