#include "core/reservation.hpp"

#include <atomic>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace rmwp {
namespace {

/// Uid layout: [63] reserved flag, [62:32] task index, [31:0] instance.
constexpr TaskUid kInstanceBits = 32;

TaskUid reserved_uid(std::size_t task_index, std::uint64_t instance) {
    RMWP_EXPECT(instance < (TaskUid{1} << kInstanceBits));
    return kReservedUidBase | (static_cast<TaskUid>(task_index) << kInstanceBits) | instance;
}

std::size_t task_index_of(TaskUid uid) {
    RMWP_EXPECT(is_reserved_uid(uid));
    return static_cast<std::size_t>((uid & ~kReservedUidBase) >> kInstanceBits);
}

} // namespace

std::uint64_t ReservationTable::next_revision() noexcept {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

ReservationTable::ReservationTable(std::vector<CriticalTask> tasks) : tasks_(std::move(tasks)) {
    for (const CriticalTask& task : tasks_) {
        RMWP_EXPECT(!task.name.empty());
        RMWP_EXPECT(task.period > 0.0);
        RMWP_EXPECT(task.duration > 0.0);
        RMWP_EXPECT(task.duration <= task.period);
        RMWP_EXPECT(task.offset >= 0.0);
        RMWP_EXPECT(task.energy_per_instance >= 0.0);
    }
    // Same-resource reservations must never overlap: with arbitrary periods
    // the exact check is a lifetime simulation, so we enforce the simple
    // sufficient condition used by static allocators — the summed
    // utilisation per resource stays below 1 and windows are validated
    // lazily when expanded (an overlap surfaces as an infeasible schedule).
    for (std::size_t a = 0; a < tasks_.size(); ++a) {
        double utilization = tasks_[a].utilization();
        for (std::size_t b = 0; b < tasks_.size(); ++b) {
            if (a == b || tasks_[a].resource != tasks_[b].resource) continue;
            if (b > a) utilization += tasks_[b].utilization();
        }
        RMWP_EXPECT(utilization <= 1.0 + 1e-9);
    }
}

double ReservationTable::utilization_of(ResourceId resource) const noexcept {
    double total = 0.0;
    for (const CriticalTask& task : tasks_)
        if (task.resource == resource) total += task.utilization();
    return total;
}

std::vector<ScheduleItem> ReservationTable::blocks_for(ResourceId resource, Time from,
                                                       Time until) const {
    RMWP_EXPECT(from <= until);
    std::vector<ScheduleItem> blocks;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
        const CriticalTask& task = tasks_[t];
        if (task.resource != resource) continue;

        // First instance whose window end is after `from`.
        std::uint64_t instance = 0;
        if (from > task.offset + task.duration) {
            instance = static_cast<std::uint64_t>(
                std::ceil((from - task.offset - task.duration) / task.period));
        }
        Time previous_end = -std::numeric_limits<Time>::infinity();
        for (;; ++instance) {
            const Time start = task.offset + static_cast<double>(instance) * task.period;
            const Time end = start + task.duration;
            if (end <= from) continue;
            if (start >= until) break;

            ScheduleItem block;
            block.uid = reserved_uid(t, instance);
            block.resource = resource;
            // Clip an in-progress window to its remaining part.
            block.release = std::max(start, from);
            block.duration = end - block.release;
            block.abs_deadline = end;
            block.reserved = true;
            // Expanded blocks intersect the query window, carry positive
            // reserved time, and successive instances of one task never
            // overlap (duration <= period is a constructor precondition).
            RMWP_ENSURE(block.release >= from && block.release <= until);
            RMWP_ENSURE(block.duration > 0.0);
            RMWP_ENSURE(block.release >= previous_end - 1e-9);
            previous_end = end;
            blocks.push_back(block);
        }
    }
    return blocks;
}

void ReservationTable::append_blocks(Time from, Time until,
                                     std::vector<ScheduleItem>& out) const {
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
        // blocks_for iterates per resource; reuse it per distinct resource
        // without duplicating work for multi-task resources.
        const ResourceId resource = tasks_[t].resource;
        bool seen = false;
        for (std::size_t s = 0; s < t; ++s) seen = seen || tasks_[s].resource == resource;
        if (seen) continue;
        auto blocks = blocks_for(resource, from, until);
        out.insert(out.end(), blocks.begin(), blocks.end());
    }
}

const CriticalTask& ReservationTable::task_of(TaskUid uid) const {
    const std::size_t index = task_index_of(uid);
    RMWP_EXPECT(index < tasks_.size());
    return tasks_[index];
}

} // namespace rmwp
