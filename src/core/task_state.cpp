#include "core/task_state.hpp"

#include "util/check.hpp"

namespace rmwp {

double remaining_time(const ActiveTask& task, const TaskType& type, ResourceId i) {
    RMWP_EXPECT(task.type == type.id());
    return type.wcet(i) * task.remaining_fraction;
}

double remaining_energy(const ActiveTask& task, const TaskType& type, ResourceId i) {
    RMWP_EXPECT(task.type == type.id());
    return type.energy(i) * task.remaining_fraction;
}

bool is_migration(const ActiveTask& task, ResourceId to) noexcept {
    return task.started && to != task.resource;
}

double occupied_time(const ActiveTask& task, const TaskType& type, ResourceId to) {
    const double work = remaining_time(task, type, to);
    if (is_migration(task, to)) return work + type.migration_time(task.resource, to);
    if (to == task.resource) return work + task.pending_overhead;
    return work;
}

double assignment_energy(const ActiveTask& task, const TaskType& type, ResourceId to) {
    return remaining_energy(task, type, to) + migration_energy_cost(task, type, to);
}

double migration_energy_cost(const ActiveTask& task, const TaskType& type, ResourceId to) {
    if (!is_migration(task, to)) return 0.0;
    return type.migration_energy(task.resource, to);
}

} // namespace rmwp
