#include "core/edf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/stage_timer.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

/// Absolute tolerance for time comparisons; times are O(1e4) ms and
/// durations O(10) ms, so 1e-6 is far below any meaningful quantity while
/// absorbing accumulated floating-point noise.
constexpr double kEps = 1e-6;

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Margin against floating-point ordering noise: the prefilter sums
/// durations in deadline order while the simulation accumulates along its
/// dispatch path, so the two totals can disagree in the last few ulps
/// (~1e-8 at the time magnitudes used here).  Verdicts within kSafety of a
/// threshold degrade to `unknown` and fall back to the simulation.
constexpr double kSafety = 1e-7;

/// Struct-of-arrays task records for the EDF inner loop.  The dispatch scans
/// (pick, next-reservation, preemption horizon) touch one or two fields of
/// every open task per step; parallel arrays keep those scans cache-dense
/// instead of striding over 56-byte records.  Thread-local: admission probes
/// run this thousands of times per trace and must not pay a heap round-trip
/// each time.
struct EdfArrays {
    std::vector<Time> release;
    std::vector<Time> deadline;
    std::vector<double> remaining;
    std::vector<TaskUid> uid;
    std::vector<std::uint8_t> reserved;
    std::vector<std::uint8_t> done;

    void clear() noexcept {
        release.clear();
        deadline.clear();
        remaining.clear();
        uid.clear();
        reserved.clear();
        done.clear();
    }

    void push(const ScheduleItem& item) {
        release.push_back(item.release);
        deadline.push_back(item.abs_deadline);
        remaining.push_back(item.duration);
        uid.push_back(item.uid);
        reserved.push_back(item.reserved ? 1 : 0);
        done.push_back(item.duration <= 0.0 ? 1 : 0);
    }

    [[nodiscard]] std::size_t size() const noexcept { return release.size(); }
};

/// Shared preemptive/non-preemptive EDF simulation.  When `record` is null
/// only feasibility is computed.  The task records live in struct-of-arrays
/// layout; every comparison happens in the same order as the historical
/// array-of-structs loop, so timelines and verdicts are bit-identical
/// (tests/test_edf.cpp pins them).
bool simulate_edf(const Resource& resource, Time now, std::span<const ScheduleItem> items,
                  ResourceTimeline* record, std::unordered_map<TaskUid, Time>* completion) {
    RMWP_STAGE_SCOPE(obs::Stage::edf_simulate);
    bool feasible = true;
    Time cur = now;

    auto emit = [&](TaskUid uid, Time start, Time end) {
        if (record == nullptr || end <= start) return;
        // The timeline invariant: segments are emitted in time order and
        // never overlap (the resource executes one task at a time).
        RMWP_ENSURE(record->segments.empty() || start >= record->segments.back().end - kEps);
        // Coalesce with the previous segment when the same task continues.
        if (!record->segments.empty() && record->segments.back().uid == uid &&
            std::abs(record->segments.back().end - start) <= kEps) {
            record->segments.back().end = end;
            return;
        }
        record->segments.push_back(Segment{uid, start, end});
    };

    auto finish = [&](TaskUid uid, Time abs_deadline, Time end) {
        if (completion != nullptr) (*completion)[uid] = end;
        if (end > abs_deadline + kEps) feasible = false;
    };

    thread_local EdfArrays soa_buffer;
    EdfArrays& soa = soa_buffer;
    soa.clear();

    // Strict-weak EDF ordering with deterministic tie-breaks.  Design-time
    // reservations outrank every adaptive task; the predicted task carries
    // the maximum uid, so on deadline ties real tasks win — exactly the
    // paper's "SL1 = deadline earlier than or equal to tau_p".
    auto edf_before = [&](std::size_t a, std::size_t b) noexcept {
        if (soa.reserved[a] != soa.reserved[b]) return soa.reserved[a] != 0;
        if (soa.deadline[a] != soa.deadline[b]) return soa.deadline[a] < soa.deadline[b];
        if (soa.release[a] != soa.release[b]) return soa.release[a] < soa.release[b];
        return soa.uid[a] < soa.uid[b];
    };

    // Whether a not-yet-released task `u` preempts the currently running
    // `pick` on a preemptable resource at u's release.  Reservations preempt
    // any adaptive task; adaptive tasks preempt by strictly earlier
    // deadline; nothing preempts a reservation (overlapping reservations
    // are a design-time error and simply surface as infeasibility).
    auto preempts = [&](std::size_t u, std::size_t pick) noexcept {
        if (soa.reserved[pick] != 0) return false;
        if (soa.reserved[u] != 0) return true;
        return edf_before(u, pick);
    };

    // Bring the items into the mutable arrays; run the pinned task (the one
    // currently executing on a non-preemptable resource) first.
    for (const ScheduleItem& item : items) {
        RMWP_EXPECT(item.duration >= 0.0);
        RMWP_EXPECT(item.release >= now - kEps);
        if (item.pinned_first) {
            RMWP_EXPECT(!resource.preemptable());
            const Time end = cur + item.duration;
            emit(item.uid, cur, end);
            finish(item.uid, item.abs_deadline, end);
            cur = end;
            continue;
        }
        soa.push(item);
        if (soa.done.back() != 0) finish(item.uid, item.abs_deadline, std::max(cur, item.release));
    }

    const std::size_t count = soa.size();
    std::size_t open = 0;
    for (std::size_t j = 0; j < count; ++j)
        if (soa.done[j] == 0) ++open;

    while (open > 0) {
        // Highest-priority ready item (reservations first, then EDF).
        std::size_t pick = kNone;
        for (std::size_t j = 0; j < count; ++j) {
            if (soa.done[j] != 0 || soa.release[j] > cur + kEps) continue;
            if (pick == kNone || edf_before(j, pick)) pick = j;
        }

        // Non-preemptable resources dispatch at boundaries only, so an
        // adaptive task may start only if it completes before the next
        // reservation begins — otherwise it would overrun a window that is
        // guaranteed at design time.  Fall back to the longest-fitting EDF
        // choice, or idle until the reservation.
        Time next_reservation = std::numeric_limits<Time>::infinity();
        for (std::size_t j = 0; j < count; ++j)
            if (soa.done[j] == 0 && soa.reserved[j] != 0 && soa.release[j] > cur + kEps)
                next_reservation = std::min(next_reservation, soa.release[j]);
        if (!resource.preemptable() && pick != kNone && soa.reserved[pick] == 0 &&
            cur + soa.remaining[pick] > next_reservation + kEps) {
            pick = kNone;
            for (std::size_t j = 0; j < count; ++j) {
                if (soa.done[j] != 0 || soa.release[j] > cur + kEps || soa.reserved[j] != 0)
                    continue;
                if (cur + soa.remaining[j] > next_reservation + kEps) continue;
                if (pick == kNone || edf_before(j, pick)) pick = j;
            }
        }

        if (pick == kNone) {
            // Nothing dispatchable: idle to the next release (a future
            // arrival or the next reserved window).
            Time next = next_reservation;
            for (std::size_t j = 0; j < count; ++j)
                if (soa.done[j] == 0 && soa.release[j] > cur + kEps)
                    next = std::min(next, soa.release[j]);
            RMWP_ENSURE(std::isfinite(next));
            cur = std::max(cur, next);
            continue;
        }

        Time end = cur + soa.remaining[pick];
        if (resource.preemptable()) {
            // A future release preempts the running task if it outranks it
            // (a reservation always; an adaptive task by earlier deadline).
            Time preempt_at = std::numeric_limits<Time>::infinity();
            for (std::size_t j = 0; j < count; ++j) {
                if (soa.done[j] != 0 || j == pick) continue;
                if (soa.release[j] > cur + kEps && soa.release[j] < end - kEps &&
                    preempts(j, pick)) {
                    preempt_at = std::min(preempt_at, soa.release[j]);
                }
            }
            if (preempt_at < end) {
                emit(soa.uid[pick], cur, preempt_at);
                soa.remaining[pick] -= preempt_at - cur;
                cur = preempt_at;
                continue;
            }
        }
        emit(soa.uid[pick], cur, end);
        soa.remaining[pick] = 0.0;
        soa.done[pick] = 1;
        --open;
        finish(soa.uid[pick], soa.deadline[pick], end);
        cur = end;
    }

    return feasible;
}

/// The demand-bound scan shared by the sorted and unsorted prefilters.
/// `range` yields the items in demand order; `proj` dereferences an entry.
/// `exact` arrives true iff the exact fast path applies (see the header
/// contract) and is further degraded inside the borderline band.
template <typename Range, typename Proj>
EdfPrefilter demand_scan(Time now, const Range& range, Proj&& proj, bool exact) {
    double work = 0.0;
    for (const auto& entry : range) {
        const ScheduleItem& item = proj(entry);
        work += item.duration;
        const double slack = item.abs_deadline - now;
        // Everything with deadline <= this one must execute inside
        // [now, deadline]; no schedule can create capacity.
        if (work > slack + kEps + kSafety) return EdfPrefilter::infeasible;
        if (work > slack + kEps - kSafety) exact = false;
    }
    return exact ? EdfPrefilter::feasible : EdfPrefilter::unknown;
}

/// Dispatch-mirror scan for a non-preemptable resource with nothing
/// reserved, everything released, and at most one pinned head: the EDF
/// dispatcher runs the pinned item first and everything else back-to-back
/// in demand order, so the prefix sums below reproduce the simulation's
/// completion times — modulo float-accumulation ulps, which the kSafety
/// band degrades to `unknown`.  Unlike the demand bound this is a full
/// verdict, not just a necessary condition.
template <typename Range, typename Proj>
EdfPrefilter dispatch_mirror_scan(Time now, const Range& range, Proj&& proj) {
    bool exact = true;
    double work = 0.0;
    auto step = [&](const ScheduleItem& item) {
        work += item.duration;
        const double slack = item.abs_deadline - now;
        if (work > slack + kEps + kSafety) return false;
        if (work > slack + kEps - kSafety) exact = false;
        return true;
    };
    for (const auto& entry : range) {
        const ScheduleItem& item = proj(entry);
        if (item.pinned_first && !step(item)) return EdfPrefilter::infeasible;
    }
    for (const auto& entry : range) {
        const ScheduleItem& item = proj(entry);
        if (!item.pinned_first && !step(item)) return EdfPrefilter::infeasible;
    }
    return exact ? EdfPrefilter::feasible : EdfPrefilter::unknown;
}

/// The shared prefilter body behind the sorted and unsorted entry points.
/// `range` yields the items in demand order; `proj` dereferences an entry.
///
/// On a preemptable resource with nothing reserved and nothing pinned,
/// dispatch is plain preemptive EDF, where the processor-demand criterion
/// is exact even with not-yet-released items: the set is schedulable iff
/// for every release point t1 (here: `now` plus each distinct future
/// release) and every deadline t2, the work of items confined to [t1, t2]
/// fits in t2 - t1.  The `now`-anchored scan is demand_scan above; the
/// future-release scans run below, so plans carrying a predicted task (the
/// common admission probe) resolve analytically instead of falling back to
/// the EDF simulation.  Soundness against the simulation's kEps dispatch
/// slop: an item may start up to kEps before its release and finish up to
/// kEps past its deadline, so a future-release window really offers
/// slack + 2*kEps — only demand beyond that (plus kSafety) is declared
/// infeasible; the feasible verdict claims no eps credit at all.
/// Reservations and pinned items outrank EDF, so those still degrade to
/// the simulation (`unknown`).
///
/// On a non-preemptable resource (the GPU — the majority of admission
/// probes) the common all-released case routes to dispatch_mirror_scan
/// above for a full analytic verdict; anything with a future release, a
/// reservation, or multiple pinned heads keeps the necessary-condition
/// demand scan and lets the simulation decide.
template <typename Range, typename Proj>
EdfPrefilter prefilter_verdict(const Resource& resource, Time now, const Range& range,
                               Proj&& proj) {
    bool reserved = false;
    std::size_t pinned = 0;
    thread_local std::vector<Time> releases_buffer;
    std::vector<Time>& future = releases_buffer;
    future.clear();
    for (const auto& entry : range) {
        const ScheduleItem& item = proj(entry);
        if (item.reserved) reserved = true;
        if (item.pinned_first) ++pinned;
        else if (item.release > now) future.push_back(item.release);
    }

    if (!resource.preemptable()) {
        // Run-to-completion dispatch: with everything released, at most one
        // pinned head, and no reservation, the mirror scan reproduces the
        // simulation's completion times exactly (two-plus pinned heads run
        // in input order, not demand order, so they stay with demand_scan).
        if (!reserved && pinned <= 1 && future.empty())
            return dispatch_mirror_scan(now, range, proj);
        return demand_scan(now, range, proj, /*exact=*/false);
    }

    const bool plain = !reserved && pinned == 0;
    const EdfPrefilter anchored = demand_scan(now, range, proj, plain);
    if (anchored == EdfPrefilter::infeasible) return anchored;
    if (!plain) return EdfPrefilter::unknown;
    if (future.empty() || anchored == EdfPrefilter::unknown) return anchored;

    std::sort(future.begin(), future.end());
    future.erase(std::unique(future.begin(), future.end()), future.end());
    for (const Time release : future) {
        double work = 0.0;
        for (const auto& entry : range) {
            const ScheduleItem& item = proj(entry);
            if (item.release < release) continue;
            work += item.duration;
            const double slack = item.abs_deadline - release;
            if (work > slack + 2.0 * kEps + kSafety) return EdfPrefilter::infeasible;
            if (work > slack - kSafety) return EdfPrefilter::unknown;
        }
    }
    return EdfPrefilter::feasible;
}

/// Attribute a prefilter verdict to the installed stage profile (obs hook;
/// identity on the verdict either way).
EdfPrefilter note_verdict(EdfPrefilter verdict) noexcept {
    switch (verdict) {
    case EdfPrefilter::infeasible: RMWP_STAGE_VERDICT(prefilter_infeasible); break;
    case EdfPrefilter::feasible: RMWP_STAGE_VERDICT(prefilter_feasible); break;
    case EdfPrefilter::unknown: RMWP_STAGE_VERDICT(prefilter_unknown); break;
    }
    return verdict;
}

} // namespace

std::size_t insert_demand_ordered(std::vector<ScheduleItem>& items, const ScheduleItem& item) {
    RMWP_EXPECT(item.duration >= 0.0);
    const auto pos = std::upper_bound(items.begin(), items.end(), item, demand_order);
    const auto index = static_cast<std::size_t>(pos - items.begin());
    items.insert(pos, item);
    RMWP_ENSURE(index < items.size());
    RMWP_ENSURE(items[index].uid == item.uid);
    return index;
}

ResourceScheduleResult schedule_resource(const Resource& resource, Time now,
                                         std::span<const ScheduleItem> items,
                                         std::unordered_map<TaskUid, Time>* completion) {
    ResourceScheduleResult result;
    result.feasible = simulate_edf(resource, now, items, &result.timeline, completion);
    return result;
}

EdfPrefilter edf_demand_prefilter(const Resource& resource, Time now,
                                  std::span<const ScheduleItem> items) {
    RMWP_STAGE_SCOPE(obs::Stage::prefilter);
    if (items.empty()) return note_verdict(EdfPrefilter::feasible);

    thread_local std::vector<const ScheduleItem*> order_buffer;
    std::vector<const ScheduleItem*>& order = order_buffer;
    order.clear();
    order.reserve(items.size());
    for (const ScheduleItem& item : items) order.push_back(&item);
    std::sort(order.begin(), order.end(), [](const ScheduleItem* a, const ScheduleItem* b) {
        return demand_order(*a, *b);
    });

    return note_verdict(prefilter_verdict(resource, now, order,
                                          [](const ScheduleItem* item) -> const ScheduleItem& {
                                              return *item;
                                          }));
}

EdfPrefilter edf_demand_prefilter_sorted(const Resource& resource, Time now,
                                         std::span<const ScheduleItem> items) {
    RMWP_STAGE_SCOPE(obs::Stage::prefilter);
    if (items.empty()) return note_verdict(EdfPrefilter::feasible);
#ifdef RMWP_AUDIT
    // The incremental-state drift gate: callers promise demand order.
    RMWP_EXPECT(std::is_sorted(items.begin(), items.end(), demand_order));
#endif
    return note_verdict(prefilter_verdict(resource, now, items,
                                          [](const ScheduleItem& item) -> const ScheduleItem& {
                                              return item;
                                          }));
}

bool resource_feasible(const Resource& resource, Time now, std::span<const ScheduleItem> items) {
    switch (edf_demand_prefilter(resource, now, items)) {
    case EdfPrefilter::infeasible: return false;
    case EdfPrefilter::feasible: return true;
    case EdfPrefilter::unknown: break;
    }
    return simulate_edf(resource, now, items, nullptr, nullptr);
}

bool resource_feasible_sorted(const Resource& resource, Time now,
                              std::span<const ScheduleItem> items) {
    switch (edf_demand_prefilter_sorted(resource, now, items)) {
    case EdfPrefilter::infeasible: return false;
    case EdfPrefilter::feasible: return true;
    case EdfPrefilter::unknown: break;
    }
    return simulate_edf(resource, now, items, nullptr, nullptr);
}

WindowSchedule build_window_schedule(const Platform& platform, Time now,
                                     std::span<const ScheduleItem> items) {
    WindowSchedule schedule;
    schedule.start = now;
    schedule.feasible = true;
    schedule.per_resource.resize(platform.size());

    // Operating points of one DVFS core share the core's timeline: group by
    // the physical anchor, so two tasks on different frequency levels of
    // the same core serialise like any other same-resource pair.  The
    // grouping buffers are thread-local: the simulator rebuilds the window
    // after every activation, and per-rebuild vector-of-vectors churn was a
    // visible slice of the serve-loop profile.
    thread_local std::vector<std::vector<ScheduleItem>> grouped_buffer;
    std::vector<std::vector<ScheduleItem>>& grouped = grouped_buffer;
    if (grouped.size() < platform.size()) grouped.resize(platform.size());
    for (ResourceId i = 0; i < platform.size(); ++i) grouped[i].clear();
    for (const ScheduleItem& item : items) {
        RMWP_EXPECT(item.resource < platform.size());
        grouped[platform.resource(item.resource).physical()].push_back(item);
    }
    for (ResourceId i = 0; i < platform.size(); ++i) {
        if (platform.resource(i).physical() != i) {
            RMWP_EXPECT(grouped[i].empty());
            continue;
        }
        auto result =
            schedule_resource(platform.resource(i), now, grouped[i], &schedule.completion);
        schedule.per_resource[i] = std::move(result.timeline);
        schedule.feasible = schedule.feasible && result.feasible;
    }
    return schedule;
}

} // namespace rmwp
