#include "core/edf.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace rmwp {
namespace {

/// Absolute tolerance for time comparisons; times are O(1e4) ms and
/// durations O(10) ms, so 1e-6 is far below any meaningful quantity while
/// absorbing accumulated floating-point noise.
constexpr double kEps = 1e-6;

struct Work {
    const ScheduleItem* item = nullptr;
    double remaining = 0.0;
    bool done = false;
};

/// Strict-weak EDF ordering with deterministic tie-breaks.  Design-time
/// reservations outrank every adaptive task; the predicted task carries the
/// maximum uid, so on deadline ties real tasks win — exactly the paper's
/// "SL1 = deadline earlier than or equal to tau_p".
bool edf_before(const ScheduleItem& a, const ScheduleItem& b) noexcept {
    if (a.reserved != b.reserved) return a.reserved;
    if (a.abs_deadline != b.abs_deadline) return a.abs_deadline < b.abs_deadline;
    if (a.release != b.release) return a.release < b.release;
    return a.uid < b.uid;
}

/// Whether a not-yet-released item `u` preempts the currently running
/// `pick` on a preemptable resource at u's release.  Reservations preempt
/// any adaptive task; adaptive tasks preempt by strictly earlier deadline;
/// nothing preempts a reservation (overlapping reservations are a
/// design-time error and simply surface as infeasibility).
bool preempts(const ScheduleItem& u, const ScheduleItem& pick) noexcept {
    if (pick.reserved) return false;
    if (u.reserved) return true;
    return edf_before(u, pick);
}

/// Shared preemptive/non-preemptive EDF simulation.  When `record` is null
/// only feasibility is computed.
bool simulate_edf(const Resource& resource, Time now, std::span<const ScheduleItem> items,
                  ResourceTimeline* record, std::unordered_map<TaskUid, Time>* completion) {
    bool feasible = true;
    Time cur = now;

    auto emit = [&](TaskUid uid, Time start, Time end) {
        if (record == nullptr || end <= start) return;
        // The timeline invariant: segments are emitted in time order and
        // never overlap (the resource executes one task at a time).
        RMWP_ENSURE(record->segments.empty() || start >= record->segments.back().end - kEps);
        // Coalesce with the previous segment when the same task continues.
        if (!record->segments.empty() && record->segments.back().uid == uid &&
            std::abs(record->segments.back().end - start) <= kEps) {
            record->segments.back().end = end;
            return;
        }
        record->segments.push_back(Segment{uid, start, end});
    };

    auto finish = [&](const ScheduleItem& item, Time end) {
        if (completion != nullptr) (*completion)[item.uid] = end;
        if (end > item.abs_deadline + kEps) feasible = false;
    };

    // Bring the items into mutable Work records; run the pinned task (the
    // one currently executing on a non-preemptable resource) first.  The
    // buffer is thread-local: admission probes call this thousands of times
    // per trace and must not pay a heap round-trip each time.
    thread_local std::vector<Work> works_buffer;
    std::vector<Work>& works = works_buffer;
    works.clear();
    works.reserve(items.size());
    for (const ScheduleItem& item : items) {
        RMWP_EXPECT(item.duration >= 0.0);
        RMWP_EXPECT(item.release >= now - kEps);
        if (item.pinned_first) {
            RMWP_EXPECT(!resource.preemptable());
            const Time end = cur + item.duration;
            emit(item.uid, cur, end);
            finish(item, end);
            cur = end;
            continue;
        }
        works.push_back(Work{&item, item.duration, item.duration <= 0.0});
        if (works.back().done) finish(item, std::max(cur, item.release));
    }

    std::size_t open = 0;
    for (const Work& w : works)
        if (!w.done) ++open;

    while (open > 0) {
        // Highest-priority ready item (reservations first, then EDF).
        Work* pick = nullptr;
        for (Work& w : works) {
            if (w.done || w.item->release > cur + kEps) continue;
            if (pick == nullptr || edf_before(*w.item, *pick->item)) pick = &w;
        }

        // Non-preemptable resources dispatch at boundaries only, so an
        // adaptive task may start only if it completes before the next
        // reservation begins — otherwise it would overrun a window that is
        // guaranteed at design time.  Fall back to the longest-fitting EDF
        // choice, or idle until the reservation.
        Time next_reservation = std::numeric_limits<Time>::infinity();
        for (const Work& w : works)
            if (!w.done && w.item->reserved && w.item->release > cur + kEps)
                next_reservation = std::min(next_reservation, w.item->release);
        if (!resource.preemptable() && pick != nullptr && !pick->item->reserved &&
            cur + pick->remaining > next_reservation + kEps) {
            pick = nullptr;
            for (Work& w : works) {
                if (w.done || w.item->release > cur + kEps || w.item->reserved) continue;
                if (cur + w.remaining > next_reservation + kEps) continue;
                if (pick == nullptr || edf_before(*w.item, *pick->item)) pick = &w;
            }
        }

        if (pick == nullptr) {
            // Nothing dispatchable: idle to the next release (a future
            // arrival or the next reserved window).
            Time next = next_reservation;
            for (const Work& w : works)
                if (!w.done && w.item->release > cur + kEps)
                    next = std::min(next, w.item->release);
            RMWP_ENSURE(std::isfinite(next));
            cur = std::max(cur, next);
            continue;
        }

        Time end = cur + pick->remaining;
        if (resource.preemptable()) {
            // A future release preempts the running task if it outranks it
            // (a reservation always; an adaptive task by earlier deadline).
            Time preempt_at = std::numeric_limits<Time>::infinity();
            for (const Work& w : works) {
                if (w.done || &w == pick) continue;
                if (w.item->release > cur + kEps && w.item->release < end - kEps &&
                    preempts(*w.item, *pick->item)) {
                    preempt_at = std::min(preempt_at, w.item->release);
                }
            }
            if (preempt_at < end) {
                emit(pick->item->uid, cur, preempt_at);
                pick->remaining -= preempt_at - cur;
                cur = preempt_at;
                continue;
            }
        }
        emit(pick->item->uid, cur, end);
        pick->remaining = 0.0;
        pick->done = true;
        --open;
        finish(*pick->item, end);
        cur = end;
    }

    return feasible;
}

} // namespace

ResourceScheduleResult schedule_resource(const Resource& resource, Time now,
                                         std::span<const ScheduleItem> items,
                                         std::unordered_map<TaskUid, Time>* completion) {
    ResourceScheduleResult result;
    result.feasible = simulate_edf(resource, now, items, &result.timeline, completion);
    return result;
}

EdfPrefilter edf_demand_prefilter(const Resource& resource, Time now,
                                  std::span<const ScheduleItem> items) {
    if (items.empty()) return EdfPrefilter::feasible;

    // Margin against floating-point ordering noise: the prefilter sums
    // durations in deadline order while the simulation accumulates along its
    // dispatch path, so the two totals can disagree in the last few ulps
    // (~1e-8 at the time magnitudes used here).  Verdicts inside the
    // [kEps - kSafety, kEps + kSafety] band degrade to `unknown`.
    constexpr double kSafety = 1e-7;

    thread_local std::vector<const ScheduleItem*> order_buffer;
    std::vector<const ScheduleItem*>& order = order_buffer;
    order.clear();
    order.reserve(items.size());

    // The exact fast path mirrors the simulation only when dispatch order is
    // pure EDF from `now`: preemptable resource, nothing reserved (blocks
    // outrank EDF), nothing pinned, everything already released.
    bool exact = resource.preemptable();
    for (const ScheduleItem& item : items) {
        order.push_back(&item);
        if (item.reserved || item.pinned_first || item.release > now) exact = false;
    }
    std::sort(order.begin(), order.end(), [](const ScheduleItem* a, const ScheduleItem* b) {
        if (a->abs_deadline != b->abs_deadline) return a->abs_deadline < b->abs_deadline;
        if (a->release != b->release) return a->release < b->release;
        return a->uid < b->uid;
    });

    double work = 0.0;
    for (const ScheduleItem* item : order) {
        work += item->duration;
        const double slack = item->abs_deadline - now;
        // Everything with deadline <= this one must execute inside
        // [now, deadline]; no schedule can create capacity.
        if (work > slack + kEps + kSafety) return EdfPrefilter::infeasible;
        if (work > slack + kEps - kSafety) exact = false;
    }
    return exact ? EdfPrefilter::feasible : EdfPrefilter::unknown;
}

bool resource_feasible(const Resource& resource, Time now, std::span<const ScheduleItem> items) {
    switch (edf_demand_prefilter(resource, now, items)) {
    case EdfPrefilter::infeasible: return false;
    case EdfPrefilter::feasible: return true;
    case EdfPrefilter::unknown: break;
    }
    return simulate_edf(resource, now, items, nullptr, nullptr);
}

WindowSchedule build_window_schedule(const Platform& platform, Time now,
                                     std::span<const ScheduleItem> items) {
    WindowSchedule schedule;
    schedule.start = now;
    schedule.feasible = true;
    schedule.per_resource.resize(platform.size());

    // Operating points of one DVFS core share the core's timeline: group by
    // the physical anchor, so two tasks on different frequency levels of
    // the same core serialise like any other same-resource pair.
    std::vector<std::vector<ScheduleItem>> grouped(platform.size());
    for (const ScheduleItem& item : items) {
        RMWP_EXPECT(item.resource < platform.size());
        grouped[platform.resource(item.resource).physical()].push_back(item);
    }
    for (ResourceId i = 0; i < platform.size(); ++i) {
        if (platform.resource(i).physical() != i) {
            RMWP_EXPECT(grouped[i].empty());
            continue;
        }
        auto result =
            schedule_resource(platform.resource(i), now, grouped[i], &schedule.completion);
        schedule.per_resource[i] = std::move(result.timeline);
        schedule.feasible = schedule.feasible && result.feasible;
    }
    return schedule;
}

} // namespace rmwp
