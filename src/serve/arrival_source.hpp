// Arrival sources for the long-running serve mode (DESIGN.md §11).
//
// A source decouples where requests come from — a trace CSV file, a pipe on
// stdin, or an endless synthetic generator — from the serve loop that admits
// them.  Sources deliver one request at a time (O(1) memory in the stream
// length, unlike the batch Trace which holds every request) and expose a
// *cursor* so a crash-safe checkpoint can record "how far the service got"
// and a restore can seek straight back to that position:
//
//   * SyntheticArrivalSource derives an independent RNG stream per request
//     index, so the cursor is just (index, accumulated arrival time) and
//     seek() is O(1) — no replay, no RNG state serialization;
//   * CsvFileSource's cursor is the count of delivered requests; seek()
//     reopens the file and re-walks that many well-formed lines (malformed
//     lines are skipped silently during the replay — they were already
//     warned about the first time);
//   * CsvPipeSource (stdin or any non-seekable stream) has no cursor;
//     checkpointing a serve run fed from a pipe is refused up front.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <istream>
#include <optional>
#include <string>

#include "util/rng.hpp"
#include "workload/catalog.hpp"
#include "workload/trace.hpp"
#include "workload/trace_generator.hpp"
#include "workload/trace_io.hpp"

namespace rmwp {

/// Position of a source after the last delivered request.  `seq` counts
/// delivered requests; `aux` is source-specific (the synthetic generator's
/// accumulated arrival time; unused for CSV files).
struct SourceCursor {
    std::uint64_t seq = 0;
    double aux = 0.0;
};

class ArrivalSource {
public:
    virtual ~ArrivalSource() = default;

    /// The next request, or nullopt when the stream is exhausted.  Arrivals
    /// are non-decreasing across delivered requests.
    [[nodiscard]] virtual std::optional<Request> next() = 0;

    /// Malformed input skipped so far (0 for sources that cannot fail).
    [[nodiscard]] virtual std::uint64_t parse_errors() const noexcept { return 0; }

    /// Whether seek() works (required for checkpoint/restore).
    [[nodiscard]] virtual bool seekable() const noexcept = 0;

    /// Position after the most recent next(); meaningful only when
    /// seekable().
    [[nodiscard]] virtual SourceCursor cursor() const noexcept = 0;

    /// Reposition so the following next() returns request `cursor.seq`
    /// (0-based).  Throws std::runtime_error when not seekable() or the
    /// cursor is invalid for this source.
    virtual void seek(const SourceCursor& cursor) = 0;
};

/// Endless (or length-bounded) synthetic generator mirroring the batch
/// trace generator's Sec 5.1 sampling: Gaussian interarrival gaps (truncated
/// above 1% of the mean), uniform task type, deadline = RWCET x U[Cmin,Cmax].
///
/// Unlike generate_trace — which draws from one sequential stream — each
/// request index derives its own child stream of the seed, so the stream is
/// random-access: position k is fully determined by (k, arrival up to k).
/// The draws therefore differ from generate_trace for the same seed; the
/// distributions are identical.
struct SyntheticSourceParams {
    std::uint64_t seed = 1;
    double interarrival_mean = 6.0; ///< calibrated default (EXPERIMENTS.md)
    double interarrival_stddev = 2.0;
    DeadlineGroup group = DeadlineGroup::very_tight;
    std::uint64_t count = 0; ///< stop after this many requests; 0 = endless
};

class SyntheticArrivalSource final : public ArrivalSource {
public:
    SyntheticArrivalSource(const Catalog& catalog, const SyntheticSourceParams& params);

    [[nodiscard]] std::optional<Request> next() override;
    [[nodiscard]] bool seekable() const noexcept override { return true; }
    [[nodiscard]] SourceCursor cursor() const noexcept override { return {index_, arrival_}; }
    void seek(const SourceCursor& cursor) override;

private:
    const Catalog& catalog_;
    SyntheticSourceParams params_;
    Rng root_;
    std::uint64_t index_ = 0; ///< next request to generate
    Time arrival_ = 0.0;      ///< arrival of the most recent request
};

/// Streaming CSV over a caller-owned istream (stdin / pipes).  Malformed
/// mid-stream lines are skipped with a warning (TraceCsvStream semantics).
/// Not seekable: serve refuses to checkpoint when fed from a pipe.
class CsvPipeSource final : public ArrivalSource {
public:
    explicit CsvPipeSource(std::istream& is,
                           std::function<void(const std::string&)> warn = {});

    [[nodiscard]] std::optional<Request> next() override;
    [[nodiscard]] std::uint64_t parse_errors() const noexcept override;
    [[nodiscard]] bool seekable() const noexcept override { return false; }
    [[nodiscard]] SourceCursor cursor() const noexcept override { return {}; }
    void seek(const SourceCursor&) override;

private:
    TraceCsvStream stream_;
};

/// Streaming CSV over a file it owns; seekable by replaying the prefix.
class CsvFileSource final : public ArrivalSource {
public:
    /// Throws std::runtime_error when the file cannot be opened.
    explicit CsvFileSource(std::string path,
                           std::function<void(const std::string&)> warn = {});

    [[nodiscard]] std::optional<Request> next() override;
    [[nodiscard]] std::uint64_t parse_errors() const noexcept override;
    [[nodiscard]] bool seekable() const noexcept override { return true; }
    [[nodiscard]] SourceCursor cursor() const noexcept override;
    void seek(const SourceCursor& cursor) override;

private:
    void reopen();

    std::string path_;
    std::function<void(const std::string&)> warn_;
    std::ifstream file_;
    std::optional<TraceCsvStream> stream_;
    /// Warnings are muted while seek() replays the already-seen prefix.
    bool replaying_ = false;
};

} // namespace rmwp
