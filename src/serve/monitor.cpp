#include "serve/monitor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace rmwp {

void LatencyHdr::record(double microseconds) noexcept {
    // NaN and negatives clamp to zero; the *1000 ns conversion keeps
    // sub-microsecond latencies distinguishable in the HDR linear range.
    // Clamp to the trackable ceiling BEFORE llround: llround on a value
    // outside long long's range is UB, and +inf must land in the top
    // bucket rather than poison sum_ with an arbitrary cast result.
    const double us = microseconds > 0.0 ? microseconds : 0.0;
    constexpr double kCapNs = static_cast<double>(obs::hdr_detail::kMaxTrackable);
    const double ns = us * 1000.0; // NaN already excluded by the clamp above
    hdr_.record(ns >= kCapNs ? obs::hdr_detail::kMaxTrackable
                             : static_cast<std::uint64_t>(std::llround(ns)));
}

double LatencyHdr::quantile_us(double q) const noexcept {
    if (hdr_.count() == 0) return 0.0;
    return static_cast<double>(hdr_.quantile(q)) / 1000.0;
}

std::uint64_t LatencyHdr::count() const noexcept { return hdr_.count(); }

double LatencyHdr::sum_us() const noexcept { return static_cast<double>(hdr_.sum()) / 1000.0; }

std::uint64_t read_rss_kb() {
    std::ifstream status("/proc/self/status");
    if (!status) return 0;
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind("VmRSS:", 0) != 0) continue;
        std::istringstream fields(line.substr(6));
        std::uint64_t kb = 0;
        fields >> kb;
        return kb;
    }
    return 0;
}

BoardSample sample_board(const HealthBoard& board) {
    BoardSample sample;
    sample.arrivals = board.arrivals.load(std::memory_order_relaxed);
    sample.decided = board.decided.load(std::memory_order_relaxed);
    sample.shed = board.shed.load(std::memory_order_relaxed);
    sample.queued = board.queued.load(std::memory_order_relaxed);
    sample.completed = board.completed.load(std::memory_order_relaxed);
    sample.deadline_misses = board.deadline_misses.load(std::memory_order_relaxed);
    sample.parse_errors = board.parse_errors.load(std::memory_order_relaxed);
    sample.audit_checks = board.audit_checks.load(std::memory_order_relaxed);
    sample.active = board.active.load(std::memory_order_relaxed);
    sample.ring_occupancy = board.ring_occupancy.load(std::memory_order_relaxed);
    sample.sim_clock = board.sim_clock.load(std::memory_order_relaxed);
    sample.latency_p99_us = board.latency.quantile_us(0.99);
    sample.latency_count = board.latency.count();
    sample.rss_kb = read_rss_kb();
    return sample;
}

namespace {

std::string with_numbers(const char* what, std::uint64_t lhs, std::uint64_t rhs) {
    char buffer[160];
    std::snprintf(buffer, sizeof buffer, "%s (%llu vs %llu)", what,
                  static_cast<unsigned long long>(lhs), static_cast<unsigned long long>(rhs));
    return buffer;
}

} // namespace

std::optional<HealthReport> check_invariants(const BoardSample& previous,
                                             const BoardSample& current,
                                             const MonitorLimits& limits) {
    const auto violation = [&current](std::string invariant,
                                      std::string detail) -> HealthReport {
        return HealthReport{std::move(invariant), std::move(detail), current};
    };

    // Monotone counters.  The board is written by one thread with relaxed
    // stores, so any regression means corruption, not reordering.
    struct Pair {
        const char* name;
        std::uint64_t prev, cur;
    };
    const Pair counters[] = {
        {"arrivals", previous.arrivals, current.arrivals},
        {"decided", previous.decided, current.decided},
        {"shed", previous.shed, current.shed},
        {"completed", previous.completed, current.completed},
        {"deadline_misses", previous.deadline_misses, current.deadline_misses},
        {"parse_errors", previous.parse_errors, current.parse_errors},
        {"audit_checks", previous.audit_checks, current.audit_checks},
    };
    for (const Pair& counter : counters) {
        if (counter.cur < counter.prev)
            return violation("monotone_counter",
                             with_numbers((std::string(counter.name) + " moved backwards").c_str(),
                                          counter.cur, counter.prev));
    }
    if (current.sim_clock < previous.sim_clock)
        return violation("monotone_clock", "simulation clock moved backwards");

    // Accounting closes: every consumed arrival is decided, shed, or still
    // queued.  (decided/shed/queued are sampled after arrivals, so the skew
    // only makes the right side larger — the inequality is skew-safe.)
    if (current.decided + current.shed > current.arrivals + current.queued)
        return violation("accounting",
                         with_numbers("decided+shed exceeds arrivals+queued",
                                      current.decided + current.shed,
                                      current.arrivals + current.queued));
    if (current.completed > current.decided)
        return violation("accounting",
                         with_numbers("completed exceeds decided", current.completed,
                                      current.decided));

    if (limits.expect_no_misses && current.deadline_misses > 0)
        return violation("deadline_guarantee",
                         with_numbers("admitted-task deadline misses with faults disabled",
                                      current.deadline_misses, 0));

    if (limits.rss_budget_kb != 0 && current.rss_kb > limits.rss_budget_kb)
        return violation("rss_budget", with_numbers("RSS (kB) over budget", current.rss_kb,
                                                    limits.rss_budget_kb));
    if (limits.active_budget != 0 && current.active > limits.active_budget)
        return violation("active_budget", with_numbers("active set over budget", current.active,
                                                       limits.active_budget));
    if (limits.ring_capacity != 0 && current.ring_occupancy > limits.ring_capacity)
        return violation("ring_capacity",
                         with_numbers("observability ring over capacity",
                                      current.ring_occupancy, limits.ring_capacity));
    if (limits.latency_p99_budget_us > 0.0 && current.latency_count > 0 &&
        current.latency_p99_us > limits.latency_p99_budget_us) {
        char buffer[160];
        std::snprintf(buffer, sizeof buffer,
                      "decision latency p99 over budget (%.0fus vs %.0fus)",
                      current.latency_p99_us, limits.latency_p99_budget_us);
        return violation("latency_budget", buffer);
    }

    return std::nullopt;
}

std::string HealthReport::to_string() const {
    char buffer[512];
    std::snprintf(buffer, sizeof buffer,
                  "invariant=%s detail=\"%s\" arrivals=%llu decided=%llu shed=%llu "
                  "completed=%llu misses=%llu active=%llu rss_kb=%llu p99_us=%.0f "
                  "sim_clock=%.3f",
                  invariant.c_str(), detail.c_str(),
                  static_cast<unsigned long long>(sample.arrivals),
                  static_cast<unsigned long long>(sample.decided),
                  static_cast<unsigned long long>(sample.shed),
                  static_cast<unsigned long long>(sample.completed),
                  static_cast<unsigned long long>(sample.deadline_misses),
                  static_cast<unsigned long long>(sample.active),
                  static_cast<unsigned long long>(sample.rss_kb), sample.latency_p99_us,
                  sample.sim_clock);
    return buffer;
}

RuntimeMonitor::RuntimeMonitor(const HealthBoard& board, const MonitorLimits& limits,
                               double period_seconds, Callback on_violation)
    : board_(board),
      limits_(limits),
      period_seconds_(period_seconds),
      on_violation_(std::move(on_violation)) {}

RuntimeMonitor::~RuntimeMonitor() { stop(); }

void RuntimeMonitor::start() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) return;
    started_ = true;
    stop_requested_ = false;
    thread_ = std::thread([this] { run(); });
}

void RuntimeMonitor::stop() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!started_) return;
        stop_requested_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = false;
}

void RuntimeMonitor::check_now() {
    std::optional<HealthReport> fresh;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const bool had = violation_.has_value();
        check_locked();
        if (!had && violation_.has_value()) fresh = violation_;
    }
    if (fresh && on_violation_) on_violation_(*fresh);
}

void RuntimeMonitor::check_locked() {
    const BoardSample current = sample_board(board_);
    checks_.fetch_add(1, std::memory_order_relaxed);
    if (!violation_.has_value()) {
        const BoardSample& baseline = have_previous_ ? previous_ : current;
        violation_ = check_invariants(baseline, current, limits_);
    }
    previous_ = current;
    have_previous_ = true;
}

void RuntimeMonitor::run() {
    const auto period = std::chrono::duration<double>(period_seconds_);
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_requested_) {
        if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) break;
        const bool had = violation_.has_value();
        check_locked();
        if (!had && violation_.has_value() && on_violation_) {
            const HealthReport report = *violation_;
            lock.unlock();
            on_violation_(report);
            lock.lock();
        }
    }
}

std::optional<HealthReport> RuntimeMonitor::violation() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return violation_;
}

} // namespace rmwp
