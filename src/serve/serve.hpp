// Long-running serve mode (DESIGN.md §11): an online admission service
// built on the shared SimEngine.
//
// Where simulate_trace() is a batch oracle — whole trace in memory, run to
// completion — run_serve() consumes arrivals one at a time from an
// ArrivalSource and keeps every data structure O(active set):
//
//   * overload protection: arrivals pass through a bounded admission
//     backlog modelled in *simulation time* (a deterministic decider that
//     spends `decision_cost` per request); when the backlog is full the
//     request is shed with RejectReason::overload instead of growing the
//     queue.  With decision_cost = 0, an unbounded backlog, and
//     deterministic execution times (execution_time_factor_min = 1) the
//     serve outcome is identical to simulate_trace on the same arrivals —
//     the differential test in tests/test_serve.cpp pins this down.  (With
//     execution variation enabled the two paths draw actual work
//     differently: batch from one sequential stream, serve per-uid so a
//     checkpoint needs no RNG state;)
//   * injected faults are generated in bounded chunks (one seeded schedule
//     per `fault_chunk` of simulation time) so an endless run never
//     materialises an unbounded schedule;
//   * a RuntimeMonitor thread (serve/monitor.hpp) re-checks liveness and
//     soundness invariants; a violation drains the service and returns
//     exit status 3;
//   * crash safety: every `checkpoint_every` consumed arrivals the full
//     service state — engine, admission backlog, online-predictor model,
//     source cursor — is written atomically (tmp + rename) as a versioned
//     text snapshot; --restore resumes from it and the continuation is
//     bit-identical (modulo host-time fields) to the uninterrupted run;
//   * SIGTERM/SIGINT request a graceful drain: the backlog is flushed, the
//     engine runs to quiescence, and the final result is reported with
//     exit status 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/manager.hpp"
#include "core/reservation.hpp"
#include "fault/fault.hpp"
#include "metrics/trace_result.hpp"
#include "obs/stage_timer.hpp"
#include "predict/predictor.hpp"
#include "serve/arrival_source.hpp"
#include "serve/monitor.hpp"
#include "sim/simulator.hpp"

namespace rmwp {

struct ServeConfig {
    /// Engine knobs.  fault_schedule must stay null (serve manages fault
    /// chunks itself) and activation_period must be 0 (batching is a
    /// batch-mode feature).
    SimOptions sim;

    // --- overload protection ---
    /// Simulation-time cost the admission decider spends per request; the
    /// k-th queued request wakes at max(decider_free, arrival) + cost.
    double decision_cost = 0.0;
    /// Backlog bound; an arrival finding this many queued is shed.  0 =
    /// unbounded (never sheds).
    std::size_t max_pending = 0;
    /// Batched admission (DESIGN.md §13): when >= 0, each backlog flush
    /// coalesces the maximal run of queued requests whose wakes fall within
    /// `batch_window` of the first one (and before the flush limit and the
    /// current fault chunk's end) into a single decide_batch activation at
    /// the last member's wake.  0 coalesces only identical wakes — with
    /// decision_cost = 0 that is bit-identical to the unbatched loop
    /// (decide_batch's contract); > 0 trades per-request decision latency
    /// for amortised activation cost.  Negative (default) = off: requests
    /// are decided one at a time exactly as before.
    Time batch_window = -1.0;

    // --- run bounds ---
    std::uint64_t max_arrivals = 0; ///< stop after this many consumed; 0 = source-driven
    Time max_sim_time = 0.0;        ///< stop at the first arrival past this; 0 = unbounded

    // --- injected faults (chunked) ---
    FaultParams faults;         ///< all-zero = fault-free; permanent_prob must be 0
    std::uint64_t fault_seed = 0;
    Time fault_chunk = 10000.0; ///< chunk length in simulation time

    // --- checkpointing ---
    std::string checkpoint_path;        ///< empty = disabled
    std::uint64_t checkpoint_every = 0; ///< consumed arrivals between snapshots; 0 = disabled
    std::string restore_path;           ///< resume from this snapshot first

    // --- monitor ---
    bool monitor = true;
    double monitor_period_seconds = 0.5;
    MonitorLimits limits;

    // --- rolling window stats ---
    Time window = 0.0;    ///< emit one stats line per window of sim time; 0 = off
    std::ostream* window_out = nullptr; ///< default std::cerr

    // --- live telemetry (DESIGN.md §14) ---
    /// HTTP telemetry endpoint (GET /metrics, GET /healthz) bound to
    /// 127.0.0.1:<port>.  0 picks an ephemeral port; -1 (default) disables
    /// the server.  Enabling telemetry also enables per-stage profiling.
    int telemetry_port = -1;
    /// When non-null, receives the bound port once the server is listening
    /// (tests use port 0 and read the real port from here).
    std::atomic<int>* telemetry_port_out = nullptr;
    /// When non-null, receives the run's final per-stage profile and
    /// enables stage profiling even with the telemetry server disabled
    /// (bit-identity tests compare decisions with this on vs off).
    obs::StageStats* stage_stats_out = nullptr;

    /// Test hook (chaos): after this many consumed arrivals, fake a
    /// deadline-miss on the health board (the engine result is untouched)
    /// to prove the monitor catches violations end to end.  0 = off.
    std::uint64_t chaos_fake_miss_at = 0;

    /// Extra caller context folded into the checkpoint's config digest
    /// (e.g. the CLI's rm/predictor/seed flags), so a restore with a
    /// different setup is rejected instead of silently diverging.
    std::string config_digest;
};

struct ServeResult {
    TraceResult result;  ///< the engine's final accumulators
    std::uint64_t arrivals = 0;     ///< consumed from the source (incl. shed)
    std::uint64_t shed = 0;         ///< dropped by overload protection
    std::uint64_t parse_errors = 0; ///< malformed source lines skipped
    std::uint64_t checkpoints_written = 0;
    std::uint64_t monitor_checks = 0;
    std::uint64_t windows_emitted = 0;
    bool stopped_by_signal = false;
    /// 0 = clean (including signal-drain), 3 = invariant violation.
    int exit_code = 0;
    std::string violation; ///< HealthReport::to_string() when exit_code == 3
    double wall_seconds = 0.0;
    /// Wall-clock service latency per backlog flush (per arrival when
    /// batching is off; per coalesced group under batch_window >= 0).
    /// HDR-backed: quantiles are exact to ~3 % bucket resolution.
    double latency_p50_us = 0.0;
    double latency_p90_us = 0.0;
    double latency_p99_us = 0.0;
    double latency_p999_us = 0.0;
    /// Observability-ring state at exit (both 0 without a sink): events
    /// retained, and events lost to ring wraparound over the whole run.
    std::uint64_t ring_occupancy = 0;
    std::uint64_t ring_dropped = 0;
    /// HTTP requests the telemetry endpoint answered (0 when disabled).
    std::uint64_t telemetry_requests = 0;
    /// Online-predictor self-scoring (both 0 when the predictor is not the
    /// online one): identity predictions issued, and the subset the next
    /// arrival proved correct.  The rolling-window stats line reports the
    /// per-window hit rate as `phit`.
    std::uint64_t predictor_predictions = 0;
    std::uint64_t predictor_hits = 0;
};

/// Install SIGTERM/SIGINT handlers that request a graceful drain of the
/// running serve loop (safe to call once per process; the handlers only set
/// a flag).  run_serve() also honours serve_request_stop() without any
/// handler installed — tests drive the drain path in-process with it.
void install_serve_signal_handlers();
void serve_request_stop() noexcept;
/// Clear a pending stop request (between consecutive runs in one process).
void serve_clear_stop() noexcept;

/// Run the service until the source is exhausted, a bound is hit, a stop is
/// requested, or the monitor trips.  Throws std::runtime_error for
/// configuration errors (bad restore file, checkpointing a non-seekable
/// source, permanent faults).
[[nodiscard]] ServeResult run_serve(const Platform& platform, const Catalog& catalog,
                                    ResourceManager& rm, Predictor& predictor,
                                    const ReservationTable* reservations, ArrivalSource& source,
                                    const ServeConfig& config);

} // namespace rmwp
