#include "serve/arrival_source.hpp"

#include <iostream>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"

namespace rmwp {

SyntheticArrivalSource::SyntheticArrivalSource(const Catalog& catalog,
                                              const SyntheticSourceParams& params)
    : catalog_(catalog), params_(params), root_(params.seed) {
    RMWP_EXPECT(catalog.size() > 0);
    RMWP_EXPECT(params.interarrival_mean > 0.0);
    RMWP_EXPECT(params.interarrival_stddev >= 0.0);
}

std::optional<Request> SyntheticArrivalSource::next() {
    if (params_.count != 0 && index_ >= params_.count) return std::nullopt;

    // One independent child stream per request index: the draw sequence of
    // request k never depends on how many requests came before it, which is
    // what makes the cursor (k, arrival) a complete position.
    Rng rng = root_.derive(index_);
    if (index_ > 0) {
        const double mean = params_.interarrival_mean;
        const double stddev = params_.interarrival_stddev;
        arrival_ += rng.gaussian_above(mean, stddev, mean * 0.01);
    }

    const auto type_id = static_cast<TaskTypeId>(rng.index(catalog_.size()));
    const TaskType& type = catalog_.type(type_id);
    const auto& executable = type.executable_resources();
    const ResourceId picked = executable[rng.index(executable.size())];
    const double rwcet = type.wcet(picked);
    TraceGenParams groups;
    groups.group = params_.group;
    const double coefficient =
        rng.uniform(groups.deadline_coefficient_min(), groups.deadline_coefficient_max());

    ++index_;
    return Request{arrival_, type_id, rwcet * coefficient};
}

void SyntheticArrivalSource::seek(const SourceCursor& cursor) {
    if (params_.count != 0 && cursor.seq > params_.count)
        throw std::runtime_error("synthetic source: cursor past the configured count");
    if (cursor.seq == 0 && cursor.aux != 0.0)
        throw std::runtime_error("synthetic source: cursor at 0 must carry arrival 0");
    index_ = cursor.seq;
    arrival_ = cursor.aux;
}

CsvPipeSource::CsvPipeSource(std::istream& is, std::function<void(const std::string&)> warn)
    : stream_(is, std::move(warn)) {}

std::optional<Request> CsvPipeSource::next() { return stream_.next(); }

std::uint64_t CsvPipeSource::parse_errors() const noexcept { return stream_.parse_errors(); }

void CsvPipeSource::seek(const SourceCursor&) {
    throw std::runtime_error("cannot seek a pipe-fed trace stream");
}

CsvFileSource::CsvFileSource(std::string path, std::function<void(const std::string&)> warn)
    : path_(std::move(path)), warn_(std::move(warn)) {
    if (!warn_)
        warn_ = [](const std::string& message) { std::cerr << message << '\n'; };
    reopen();
}

void CsvFileSource::reopen() {
    stream_.reset();
    file_ = std::ifstream(path_);
    if (!file_) throw std::runtime_error("cannot open trace CSV: " + path_);
    // The callback outlives no seek: it checks the replay flag at call time,
    // so one stream serves both the silent replay prefix and live tailing.
    stream_.emplace(file_, [this](const std::string& message) {
        if (!replaying_) warn_(message);
    });
}

std::optional<Request> CsvFileSource::next() { return stream_->next(); }

std::uint64_t CsvFileSource::parse_errors() const noexcept { return stream_->parse_errors(); }

SourceCursor CsvFileSource::cursor() const noexcept { return {stream_->delivered(), 0.0}; }

void CsvFileSource::seek(const SourceCursor& cursor) {
    // Replay from the top, skipping cursor.seq well-formed lines.  Malformed
    // lines inside the prefix were warned about on the first pass, so the
    // replay drops them silently; they still count in parse_errors() (the
    // fresh stream re-discovers the same defects exactly once).
    reopen();
    replaying_ = true;
    for (std::uint64_t k = 0; k < cursor.seq; ++k) {
        if (!stream_->next().has_value()) {
            replaying_ = false;
            throw std::runtime_error("trace CSV shrank under the checkpoint: " + path_ +
                                     " has fewer than " + std::to_string(cursor.seq) +
                                     " well-formed requests");
        }
    }
    replaying_ = false;
}

} // namespace rmwp
