// Runtime invariant monitor for the long-running serve mode (DESIGN.md §11).
//
// The serve loop publishes its health to a lock-free HealthBoard (plain
// atomics — the hot path never takes a lock); a RuntimeMonitor thread
// periodically samples the board plus the process RSS and re-checks a set
// of liveness/soundness invariants:
//
//   * counters only move forward (a regression means memory corruption or
//     a torn update);
//   * accounting closes: decided + queued requests never exceed arrivals;
//   * no admitted task misses its deadline while faults are disabled (the
//     simulator's core guarantee, re-checked end to end);
//   * memory stays bounded: RSS under budget, active set under budget, the
//     observability ring within its capacity;
//   * decision latency p99 stays under budget.
//
// A violation produces a structured HealthReport; the serve loop drains
// gracefully and exits with a distinct status (3) so soak harnesses can
// tell "invariant broken" from "crashed" from "clean".
//
// check_invariants() is a pure function of two board samples and the
// limits, so every invariant is unit-testable without threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "obs/hdr.hpp"

namespace rmwp {

/// Lock-free HDR latency histogram (microseconds in, nanosecond ticks
/// stored).  record() is three relaxed fetch_adds; quantiles are exact to
/// the HDR bucket resolution (~3% relative error), a large upgrade over the
/// previous within-2x log2 buckets and good enough to expose p50/p90/p99/
/// p99.9 on /metrics directly.
class LatencyHdr {
public:
    void record(double microseconds) noexcept;
    /// Upper bound of the HDR bucket holding quantile `q` in [0, 1]; 0 when
    /// empty.
    [[nodiscard]] double quantile_us(double q) const noexcept;
    [[nodiscard]] std::uint64_t count() const noexcept;
    /// Total recorded latency in microseconds (for summary _sum lines).
    [[nodiscard]] double sum_us() const noexcept;
    /// Consistent-enough copy for rendering (nanosecond ticks).
    [[nodiscard]] obs::HdrHistogram snapshot() const { return hdr_.snapshot(); }

private:
    obs::AtomicHdrHistogram hdr_;
};

/// Shared between the serve loop (writer) and the monitor thread (reader).
struct HealthBoard {
    std::atomic<std::uint64_t> arrivals{0};   ///< consumed from the source
    std::atomic<std::uint64_t> decided{0};    ///< went through the RM
    std::atomic<std::uint64_t> shed{0};       ///< dropped by overload protection
    std::atomic<std::uint64_t> queued{0};     ///< waiting in the admission backlog
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> deadline_misses{0};
    std::atomic<std::uint64_t> parse_errors{0};
    std::atomic<std::uint64_t> audit_checks{0};
    std::atomic<std::uint64_t> active{0};          ///< engine active set size
    std::atomic<std::uint64_t> ring_occupancy{0};  ///< observability ring
    std::atomic<std::uint64_t> ring_dropped{0};    ///< events lost to ring overflow
    std::atomic<std::uint64_t> predictor_predictions{0}; ///< resolved predictions
    std::atomic<std::uint64_t> predictor_hits{0};        ///< ... that were correct
    std::atomic<double> sim_clock{0.0};
    LatencyHdr latency; ///< wall-clock per-arrival service latency
};

/// One consistent-enough read of the board (fields are sampled
/// independently; the invariants are chosen to tolerate the skew).
struct BoardSample {
    std::uint64_t arrivals = 0;
    std::uint64_t decided = 0;
    std::uint64_t shed = 0;
    std::uint64_t queued = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t audit_checks = 0;
    std::uint64_t active = 0;
    std::uint64_t ring_occupancy = 0;
    double sim_clock = 0.0;
    double latency_p99_us = 0.0;
    std::uint64_t latency_count = 0;
    std::uint64_t rss_kb = 0; ///< 0 when /proc is unavailable
};

/// All limits are "0 disables the check".
struct MonitorLimits {
    std::uint64_t rss_budget_kb = 0;
    std::uint64_t active_budget = 0;
    std::uint64_t ring_capacity = 0;
    double latency_p99_budget_us = 0.0;
    /// Faults disabled: any admitted-task deadline miss is an invariant
    /// violation (the simulator's firm-guarantee contract).
    bool expect_no_misses = false;
};

struct HealthReport {
    std::string invariant; ///< short machine-readable name, e.g. "rss_budget"
    std::string detail;    ///< human-readable explanation with the numbers
    BoardSample sample;    ///< the board state that tripped the check

    [[nodiscard]] std::string to_string() const;
};

/// Read the board (and /proc/self/status VmRSS) into one sample.
[[nodiscard]] BoardSample sample_board(const HealthBoard& board);

/// Current VmRSS in kB; 0 when unavailable (non-Linux).
[[nodiscard]] std::uint64_t read_rss_kb();

/// Re-check every invariant between two consecutive samples; nullopt when
/// all hold.  Pure — no clocks, no globals.
[[nodiscard]] std::optional<HealthReport> check_invariants(const BoardSample& previous,
                                                           const BoardSample& current,
                                                           const MonitorLimits& limits);

/// Background thread sampling the board every `period_seconds`.  The first
/// violation is latched (later ones are ignored) and reported through the
/// callback exactly once; the serve loop polls violation() and drains.
class RuntimeMonitor {
public:
    using Callback = std::function<void(const HealthReport&)>;

    RuntimeMonitor(const HealthBoard& board, const MonitorLimits& limits, double period_seconds,
                   Callback on_violation = {});
    ~RuntimeMonitor();

    RuntimeMonitor(const RuntimeMonitor&) = delete;
    RuntimeMonitor& operator=(const RuntimeMonitor&) = delete;

    void start();
    void stop();

    /// Run one check synchronously (also used for the final check after the
    /// stream drains, so a violation near the end is never missed).
    void check_now();

    [[nodiscard]] std::optional<HealthReport> violation() const;
    [[nodiscard]] std::uint64_t checks() const noexcept { return checks_.load(std::memory_order_relaxed); }

private:
    void run();
    void check_locked();

    const HealthBoard& board_;
    MonitorLimits limits_;
    double period_seconds_;
    Callback on_violation_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_requested_ = false;
    bool started_ = false;
    std::thread thread_;
    BoardSample previous_{};
    bool have_previous_ = false;
    std::optional<HealthReport> violation_;
    std::atomic<std::uint64_t> checks_{0};
};

} // namespace rmwp
