#include "serve/serve.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <deque>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/stage_timer.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/trace_sink.hpp"
#include "predict/online.hpp"
#include "sim/engine.hpp"
#include "util/check.hpp"
#include "util/hexfloat.hpp"

namespace rmwp {
namespace {

constexpr const char* kCheckpointContext = "serve checkpoint";

// Signal-to-drain flag.  The handlers only set it; the serve loop polls it
// between arrivals.  volatile sig_atomic_t semantics via std::atomic<int>
// (lock-free on every platform this builds on).
std::atomic<int> g_stop_requested{0};

void handle_stop_signal(int) { g_stop_requested.store(1, std::memory_order_relaxed); }

struct PendingArrival {
    Request request;
    TaskUid uid = 0;
    Time wake = 0.0;
};

std::string hexf(double value) {
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%a", value);
    return buffer;
}

/// Canonical space-free digest of everything a restore must agree on.  A
/// checkpoint taken under one configuration refuses to resume under
/// another instead of silently diverging.
std::string make_digest(const Platform& platform, const Catalog& catalog,
                        const ResourceManager& rm, const Predictor& predictor,
                        const ServeConfig& config) {
    std::ostringstream os;
    os << "v1|platform=" << platform.size() << "|catalog=" << catalog.size()
       << "|rm=" << rm.name() << "|predictor=" << predictor.name()
       << "|decision_cost=" << hexf(config.decision_cost)
       << "|max_pending=" << config.max_pending
       << "|batch_window=" << hexf(config.batch_window)
       << "|lookahead=" << config.sim.lookahead
       << "|exec_min=" << hexf(config.sim.execution_time_factor_min)
       << "|exec_seed=" << config.sim.execution_seed
       << "|fault_seed=" << config.fault_seed << "|fault_chunk=" << hexf(config.fault_chunk)
       << "|outage=" << hexf(config.faults.outage_rate)
       << "|outage_mean=" << hexf(config.faults.outage_duration_mean)
       << "|throttle=" << hexf(config.faults.throttle_rate)
       << "|throttle_mean=" << hexf(config.faults.throttle_duration_mean)
       << "|min_online=" << config.faults.min_online;
    if (!config.config_digest.empty()) os << '|' << config.config_digest;
    std::string digest = os.str();
    // Digest must stay one whitespace-free token for the checkpoint parser.
    for (char& c : digest)
        if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
    return digest;
}

/// Fault chunk k: a seeded schedule over [k*chunk, (k+1)*chunk).  Each chunk
/// derives its own child stream of the fault seed, so chunk k is computable
/// without generating its predecessors (required for O(1) restore), and
/// events overrunning the chunk end are clipped to it — every chunk is
/// self-contained and the health mask returns to nominal at each boundary.
FaultSchedule make_fault_chunk(const Platform& platform, const ServeConfig& config,
                               std::uint64_t chunk_index) {
    Rng rng = Rng(config.fault_seed).derive(chunk_index);
    const FaultSchedule base =
        generate_fault_schedule(platform, config.faults, config.fault_chunk, rng);
    const Time offset = static_cast<Time>(chunk_index) * config.fault_chunk;
    const Time chunk_end = offset + config.fault_chunk;
    std::vector<FaultEvent> shifted;
    shifted.reserve(base.size());
    for (FaultEvent event : base.events()) {
        event.start += offset;
        event.end = std::isfinite(event.end) ? std::min(event.end + offset, chunk_end)
                                             : chunk_end;
        if (event.end <= event.start) continue;
        shifted.push_back(event);
    }
    return FaultSchedule(std::move(shifted));
}

} // namespace

void install_serve_signal_handlers() {
    struct sigaction action {};
    action.sa_handler = &handle_stop_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGTERM, &action, nullptr);
    sigaction(SIGINT, &action, nullptr);
}

void serve_request_stop() noexcept { g_stop_requested.store(1, std::memory_order_relaxed); }

void serve_clear_stop() noexcept { g_stop_requested.store(0, std::memory_order_relaxed); }

ServeResult run_serve(const Platform& platform, const Catalog& catalog, ResourceManager& rm,
                      Predictor& predictor, const ReservationTable* reservations,
                      ArrivalSource& source, const ServeConfig& config) {
    RMWP_EXPECT(config.sim.fault_schedule == nullptr);
    RMWP_EXPECT(config.sim.activation_period == 0.0);
    RMWP_EXPECT(config.decision_cost >= 0.0);
    if (config.faults.any()) {
        if (config.faults.permanent_prob != 0.0)
            throw std::runtime_error(
                "serve: permanent faults are not supported (unbounded horizon)");
        RMWP_EXPECT(config.fault_chunk > 0.0);
    }
    const bool checkpointing = !config.checkpoint_path.empty() && config.checkpoint_every > 0;
    if ((checkpointing || !config.restore_path.empty()) && !source.seekable())
        throw std::runtime_error("serve: checkpoint/restore requires a seekable source "
                                 "(a trace file or the synthetic generator, not a pipe)");

    const std::string digest = make_digest(platform, catalog, rm, predictor, config);
    auto* online = dynamic_cast<OnlinePredictor*>(&predictor);

    SimEngine engine(platform, catalog, rm, predictor, reservations, config.sim);
    engine.begin_stream();

    const bool faults_on = config.faults.any();
    std::uint64_t chunk_index = 0;
    std::optional<FaultSchedule> chunk;

    std::deque<PendingArrival> backlog;
    Time decider_free = 0.0;
    std::uint64_t consumed = 0;
    std::uint64_t shed = 0;

    // --- restore ---
    if (!config.restore_path.empty()) {
        std::ifstream is(config.restore_path);
        if (!is)
            throw std::runtime_error("serve: cannot open checkpoint: " + config.restore_path);
        std::string magic, version;
        if (!(is >> magic >> version) || magic != "RMWP-SERVE-CHECKPOINT" || version != "1")
            throw std::runtime_error("serve checkpoint: bad header");
        std::string label, stored_digest;
        if (!(is >> label >> stored_digest) || label != "digest")
            throw std::runtime_error("serve checkpoint: missing digest");
        if (stored_digest != digest)
            throw std::runtime_error(
                "serve checkpoint: configuration mismatch\n  checkpoint: " + stored_digest +
                "\n  current:    " + digest);

        consumed = get_u64(is, kCheckpointContext);
        shed = get_u64(is, kCheckpointContext);
        chunk_index = get_u64(is, kCheckpointContext);
        decider_free = get_f64(is, kCheckpointContext);
        SourceCursor cursor;
        cursor.seq = get_u64(is, kCheckpointContext);
        cursor.aux = get_f64(is, kCheckpointContext);

        const auto backlog_size = static_cast<std::size_t>(get_u64(is, kCheckpointContext));
        for (std::size_t k = 0; k < backlog_size; ++k) {
            PendingArrival pending;
            pending.uid = get_u64(is, kCheckpointContext);
            pending.request.type =
                static_cast<TaskTypeId>(get_u64(is, kCheckpointContext));
            pending.request.arrival = get_f64(is, kCheckpointContext);
            pending.request.relative_deadline = get_f64(is, kCheckpointContext);
            pending.wake = get_f64(is, kCheckpointContext);
            if (pending.request.type >= catalog.size())
                throw std::runtime_error("serve checkpoint: backlog references unknown type");
            backlog.push_back(pending);
        }

        if (faults_on) chunk = make_fault_chunk(platform, config, chunk_index);
        engine.restore_stream(is, faults_on ? &*chunk : nullptr);

        std::string predictor_tag;
        if (!(is >> predictor_tag) || predictor_tag != "predictor")
            throw std::runtime_error("serve checkpoint: missing predictor section");
        std::string predictor_kind;
        is >> predictor_kind;
        if (predictor_kind == "online") {
            if (online == nullptr)
                throw std::runtime_error(
                    "serve checkpoint: was taken with the online predictor");
            online->restore(is);
        } else if (predictor_kind != "none") {
            throw std::runtime_error("serve checkpoint: unknown predictor kind \"" +
                                     predictor_kind + "\"");
        }

        source.seek(cursor);
    } else if (faults_on) {
        chunk = make_fault_chunk(platform, config, 0);
        engine.set_fault_schedule(&*chunk, 0.0, /*include_events_at_from=*/true);
    }

    // --- monitor ---
    HealthBoard board;
    board.arrivals.store(consumed, std::memory_order_relaxed);
    board.shed.store(shed, std::memory_order_relaxed);
    board.decided.store(consumed - shed - backlog.size(), std::memory_order_relaxed);
    board.queued.store(backlog.size(), std::memory_order_relaxed);
    std::uint64_t chaos_extra_misses = 0;

    std::atomic<bool> violation_flagged{false};
    RuntimeMonitor monitor(board, config.limits, config.monitor_period_seconds,
                           [&violation_flagged](const HealthReport& report) {
                               std::cerr << "[serve] INVARIANT VIOLATION: "
                                         << report.to_string() << '\n';
                               violation_flagged.store(true, std::memory_order_relaxed);
                           });
    if (config.monitor) monitor.start();

    // --- rolling window stats ---
    std::ostream& window_out = config.window_out != nullptr ? *config.window_out : std::cerr;
    struct Cumulative {
        std::size_t accepted = 0, rejected = 0, completed = 0, misses = 0;
        std::uint64_t shed = 0;
        double energy = 0.0;
        std::size_t predictions = 0, hits = 0;
    };
    Cumulative window_base{engine.result().accepted, engine.result().rejected,
                           engine.result().completed, engine.result().deadline_misses,
                           shed, engine.result().total_energy,
                           online != nullptr ? online->type_predictions() : 0,
                           online != nullptr ? online->type_hits() : 0};
    Time next_window = config.window > 0.0
                           ? (std::floor(engine.clock() / config.window) + 1.0) * config.window
                           : std::numeric_limits<Time>::infinity();
    std::uint64_t windows_emitted = 0;

    const auto publish_engine_state = [&] {
        const TraceResult& r = engine.result();
        // Engine `requests` counts both flushed and shed arrivals; `decided`
        // on the board is the flushed-only share.
        board.decided.store(r.requests - shed, std::memory_order_relaxed);
        board.completed.store(r.completed, std::memory_order_relaxed);
        board.deadline_misses.store(r.deadline_misses + chaos_extra_misses,
                                    std::memory_order_relaxed);
        board.audit_checks.store(r.audit_checks, std::memory_order_relaxed);
        board.active.store(engine.active_count(), std::memory_order_relaxed);
        board.queued.store(backlog.size(), std::memory_order_relaxed);
        board.sim_clock.store(engine.clock(), std::memory_order_relaxed);
        if (config.sim.sink != nullptr) {
            board.ring_occupancy.store(config.sim.sink->occupancy(),
                                       std::memory_order_relaxed);
            board.ring_dropped.store(config.sim.sink->dropped(), std::memory_order_relaxed);
        }
        if (online != nullptr) {
            board.predictor_predictions.store(online->type_predictions(),
                                              std::memory_order_relaxed);
            board.predictor_hits.store(online->type_hits(), std::memory_order_relaxed);
        }
    };

    // --- per-stage profile + live telemetry (DESIGN.md §14) ---
    // The profile block is serve-thread-owned; the telemetry thread only
    // ever reads the mutex-protected Published copy, the board's atomics,
    // and the monitor's latched violation — the admission loop never blocks
    // on a socket and TSan sees no unsynchronised sharing.
    obs::StageStats stage_stats;
    const bool profile_stages =
        config.telemetry_port >= 0 || config.stage_stats_out != nullptr;
#ifdef RMWP_OBS
    std::optional<obs::StageStatsScope> stage_scope;
    if (profile_stages) stage_scope.emplace(&stage_stats);
#endif

    struct Published {
        std::mutex mutex;
        obs::MetricsSnapshot metrics;
        obs::StageStats stages;
        bool have = false;
    };
    Published published;

    std::optional<obs::TelemetryServer> telemetry;
    const auto publish_telemetry = [&] {
        if (!telemetry.has_value()) return;
        std::lock_guard<std::mutex> lock(published.mutex);
        if (config.sim.sink != nullptr)
            published.metrics = config.sim.sink->metrics().snapshot();
        published.stages = stage_stats;
        published.have = true;
    };

    if (config.telemetry_port >= 0) {
        obs::TelemetryHandlers handlers;
        handlers.metrics = [&board, &published, &monitor, &rm, profile_stages] {
            obs::PrometheusText text;
            {
                std::lock_guard<std::mutex> lock(published.mutex);
                if (published.have) {
                    obs::render_metrics(text, published.metrics, "rmwp_engine_");
                    if (profile_stages) obs::render_stage_stats(text, published.stages, "rmwp_");
                }
            }
            const BoardSample sample = sample_board(board);
            const auto gauge = [&text](const char* name, const char* help,
                                       std::uint64_t value) {
                text.family(name, help, "gauge");
                text.sample(name, "", value);
            };
            text.family("rmwp_serve_arrivals_total", "arrivals consumed from the source",
                        "counter");
            text.sample("rmwp_serve_arrivals_total", "", sample.arrivals);
            text.family("rmwp_serve_decided_total", "arrivals flushed through the RM",
                        "counter");
            text.sample("rmwp_serve_decided_total", "", sample.decided);
            text.family("rmwp_serve_shed_total", "arrivals dropped by overload protection",
                        "counter");
            text.sample("rmwp_serve_shed_total", "", sample.shed);
            text.family("rmwp_serve_completed_total", "tasks completed", "counter");
            text.sample("rmwp_serve_completed_total", "", sample.completed);
            text.family("rmwp_serve_deadline_misses_total", "admitted-task deadline misses",
                        "counter");
            text.sample("rmwp_serve_deadline_misses_total", "", sample.deadline_misses);
            gauge("rmwp_serve_backlog_depth", "requests waiting in the admission backlog",
                  sample.queued);
            gauge("rmwp_serve_active_tasks", "engine active set size", sample.active);
            gauge("rmwp_serve_ring_occupancy", "observability ring events retained",
                  sample.ring_occupancy);
            text.family("rmwp_serve_ring_dropped_total",
                        "observability ring events lost to wraparound", "counter");
            text.sample("rmwp_serve_ring_dropped_total", "",
                        board.ring_dropped.load(std::memory_order_relaxed));
            gauge("rmwp_serve_rss_kb", "process resident set size (kB)", sample.rss_kb);
            text.family("rmwp_serve_sim_clock_seconds", "simulation clock", "gauge");
            text.sample("rmwp_serve_sim_clock_seconds", "", sample.sim_clock);

            const std::uint64_t predictions =
                board.predictor_predictions.load(std::memory_order_relaxed);
            const std::uint64_t hits = board.predictor_hits.load(std::memory_order_relaxed);
            text.family("rmwp_serve_predictor_hit_ratio",
                        "online-predictor hit rate over the whole run (NaN before the "
                        "first scored prediction)",
                        "gauge");
            text.sample("rmwp_serve_predictor_hit_ratio", "",
                        predictions > 0 ? static_cast<double>(hits) /
                                              static_cast<double>(predictions)
                                        : std::numeric_limits<double>::quiet_NaN());

            // Sharded-admission configuration (DESIGN.md §15).  Immutable
            // for the lifetime of the serve run, so reading it from the
            // telemetry thread needs no synchronisation.  The matching
            // stage costs are rmwp_stage_shard_solve / _merge above.
            gauge("rmwp_serve_shards", "sharded-admission solve buckets cap (--shards)",
                  rm.shard_config().shards);
            gauge("rmwp_serve_probe_jobs",
                  "concurrent per-decision shard probes (--probe-jobs)",
                  rm.shard_config().probe_jobs);

            // Service latency as a summary straight off the board's live HDR.
            text.family("rmwp_serve_latency_us",
                        "wall-clock service latency per backlog flush (microseconds)",
                        "summary");
            for (const double q : {0.5, 0.9, 0.99, 0.999}) {
                char label[32];
                std::snprintf(label, sizeof label, "quantile=\"%g\"", q);
                text.sample("rmwp_serve_latency_us", label, board.latency.quantile_us(q));
            }
            text.sample("rmwp_serve_latency_us", "", board.latency.sum_us(), "_sum");
            text.sample("rmwp_serve_latency_us", "", board.latency.count(), "_count");

            gauge("rmwp_serve_healthy",
                  "1 while no invariant violation has been latched",
                  monitor.violation().has_value() ? 0u : 1u);
            return text.take();
        };
        handlers.health = [&monitor] {
            const auto violation = monitor.violation();
            return violation.has_value() ? violation->to_string() : std::string();
        };
        telemetry.emplace(config.telemetry_port, std::move(handlers));
        if (config.telemetry_port_out != nullptr)
            config.telemetry_port_out->store(telemetry->port(), std::memory_order_release);
        std::cerr << "[serve] telemetry listening on 127.0.0.1:" << telemetry->port() << '\n';
        publish_telemetry();
    }

    const auto emit_windows = [&] {
        while (engine.clock() >= next_window) {
            const TraceResult& r = engine.result();
            char line[256];
            std::snprintf(line, sizeof line,
                          "[serve] t=%.0f accepted=%zu rejected=%zu shed=%llu completed=%zu "
                          "misses=%zu active=%zu energy=%.1f",
                          next_window, r.accepted - window_base.accepted,
                          r.rejected - window_base.rejected,
                          static_cast<unsigned long long>(shed - window_base.shed),
                          r.completed - window_base.completed, r.deadline_misses - window_base.misses,
                          engine.active_count(), r.total_energy - window_base.energy);
            window_out << line;
            if (config.sim.sink != nullptr) {
                // Ring health: events currently retained / lost to
                // wraparound since the run began (cumulative — a growing
                // second number means the ring is undersized).
                std::snprintf(line, sizeof line, " ring=%llu/%llu",
                              static_cast<unsigned long long>(config.sim.sink->occupancy()),
                              static_cast<unsigned long long>(config.sim.sink->dropped()));
                window_out << line;
            }
            std::snprintf(line, sizeof line, " p99=%.0fus",
                          board.latency.quantile_us(0.99));
            window_out << line;
            const std::size_t predictions =
                online != nullptr ? online->type_predictions() : 0;
            const std::size_t hits = online != nullptr ? online->type_hits() : 0;
            if (online != nullptr) {
                // Per-window predictor hit rate; a window with no scored
                // predictions (e.g. no arrivals) reports n/a, not 0%.
                const std::size_t scored = predictions - window_base.predictions;
                if (scored > 0) {
                    std::snprintf(line, sizeof line, " phit=%.3f",
                                  static_cast<double>(hits - window_base.hits) /
                                      static_cast<double>(scored));
                    window_out << line;
                } else {
                    window_out << " phit=n/a";
                }
            }
            window_out << '\n';
            window_base = {r.accepted, r.rejected, r.completed, r.deadline_misses, shed,
                           r.total_energy, predictions, hits};
            next_window += config.window;
            ++windows_emitted;
            publish_telemetry();
        }
    };

    /// One backlog flush.  Batching off (batch_window < 0): decide the
    /// front request alone, exactly the pre-batching loop.  Batching on:
    /// greedily extend the group with further queued requests whose wakes
    /// fall within batch_window of the front's AND satisfy `eligible` (the
    /// caller's flush limit — next arrival / fault-chunk boundary), then
    /// decide the whole group at the last member's wake in a single
    /// decide_batch activation.  Grouping is derived afresh at flush time
    /// from the backlog, so checkpoints need no extra state.
    std::vector<StreamArrival> group;
    const auto flush_front = [&](auto&& eligible) {
        // RMWP_LINT_ALLOW(R1): host-scope admission-latency metric; never feeds sim state
        const auto begun = std::chrono::steady_clock::now();
        if (config.batch_window < 0.0) {
            const PendingArrival pending = backlog.front();
            backlog.pop_front();
            engine.stream_arrival(pending.request, pending.uid, pending.wake);
        } else {
            group.clear();
            const Time window_end = backlog.front().wake + config.batch_window;
            Time wake = backlog.front().wake;
            do {
                const PendingArrival& front = backlog.front();
                wake = front.wake;
                group.push_back({front.request, front.uid});
                backlog.pop_front();
            } while (!backlog.empty() && backlog.front().wake <= window_end &&
                     eligible(backlog.front().wake));
            engine.stream_arrival_batch(group, wake);
        }
        // RMWP_LINT_ALLOW(R1): host-scope admission-latency metric; never feeds sim state
        const auto ended = std::chrono::steady_clock::now();
        board.latency.record(
            std::chrono::duration<double, std::micro>(ended - begun).count());
        publish_engine_state();
        emit_windows();
    };

    const auto chunk_end = [&] {
        return static_cast<Time>(chunk_index + 1) * config.fault_chunk;
    };
    const auto switch_chunk = [&] {
        const Time boundary = chunk_end();
        engine.drain_through(boundary);
        ++chunk_index;
        chunk = make_fault_chunk(platform, config, chunk_index);
        engine.set_fault_schedule(&*chunk, boundary, /*include_events_at_from=*/true);
    };

    /// Process queued decisions and fault-chunk boundaries in time order up
    /// to (strictly before) the next arrival at `t`.
    const auto advance_to = [&](Time t) {
        while (true) {
            const Time wake =
                backlog.empty() ? std::numeric_limits<Time>::infinity() : backlog.front().wake;
            const Time boundary =
                faults_on ? chunk_end() : std::numeric_limits<Time>::infinity();
            if (wake < t && wake <= boundary) {
                flush_front([&](Time w) { return w < t && w <= boundary; });
            } else if (faults_on && boundary <= t) {
                switch_chunk();
            } else {
                break;
            }
        }
    };

    const auto write_checkpoint = [&] {
        const std::string tmp = config.checkpoint_path + ".tmp";
        {
            std::ofstream os(tmp);
            if (!os)
                throw std::runtime_error("serve: cannot write checkpoint: " + tmp);
            os << "RMWP-SERVE-CHECKPOINT 1\n";
            os << "digest " << digest << '\n';
            os << consumed << ' ' << shed << ' ' << chunk_index << '\n';
            put_f64(os, decider_free);
            const SourceCursor cursor = source.cursor();
            os << cursor.seq << ' ';
            put_f64(os, cursor.aux);
            os << backlog.size() << '\n';
            for (const PendingArrival& pending : backlog) {
                os << pending.uid << ' ' << pending.request.type << '\n';
                put_f64(os, pending.request.arrival);
                put_f64(os, pending.request.relative_deadline);
                put_f64(os, pending.wake);
            }
            engine.save_stream(os);
            os << "predictor " << (online != nullptr ? "online" : "none") << '\n';
            if (online != nullptr) online->save(os);
            os.flush();
            if (!os) throw std::runtime_error("serve: checkpoint write failed: " + tmp);
        }
        if (std::rename(tmp.c_str(), config.checkpoint_path.c_str()) != 0)
            throw std::runtime_error("serve: cannot move checkpoint into place: " +
                                     config.checkpoint_path);
    };

    // --- main loop ---
    // RMWP_LINT_ALLOW(R1): wall_seconds reporting only, excluded from determinism checks
    const auto wall_begin = std::chrono::steady_clock::now();
    ServeResult out;
    bool stopped_by_signal = false;

    while (true) {
        if (g_stop_requested.load(std::memory_order_relaxed) != 0) {
            stopped_by_signal = true;
            break;
        }
        if (violation_flagged.load(std::memory_order_relaxed)) break;
        if (config.max_arrivals != 0 && consumed >= config.max_arrivals) break;

        const std::optional<Request> request = source.next();
        if (!request.has_value()) break;
        if (config.max_sim_time > 0.0 && request->arrival > config.max_sim_time) break;

        advance_to(request->arrival);

        const TaskUid uid = consumed;
        ++consumed;
        if (config.max_pending != 0 && backlog.size() >= config.max_pending) {
            engine.stream_shed(*request, uid);
            ++shed;
            board.shed.store(shed, std::memory_order_relaxed);
        } else {
            // Deterministic admission decider in simulation time: one
            // request at a time, `decision_cost` each.  cost = 0 degrades
            // to wake == arrival, i.e. exactly the batch protocol.
            const Time wake = std::max(decider_free, request->arrival) + config.decision_cost;
            decider_free = wake;
            backlog.push_back({*request, uid, wake});
        }
        board.arrivals.store(consumed, std::memory_order_relaxed);
        board.parse_errors.store(source.parse_errors(), std::memory_order_relaxed);
        publish_engine_state();
        // Refresh the telemetry snapshot every 256 consumed arrivals: a
        // registry snapshot copies every counter, too dear per arrival and
        // plenty fresh for a scrape endpoint (windows also refresh it).
        if (telemetry.has_value() && consumed % 256 == 0) publish_telemetry();

        if (config.chaos_fake_miss_at != 0 && consumed == config.chaos_fake_miss_at) {
            chaos_extra_misses = 1;
            publish_engine_state();
        }

        if (checkpointing && consumed % config.checkpoint_every == 0) {
            write_checkpoint();
            ++out.checkpoints_written;
        }
    }

    // --- graceful drain: decide everything still queued, run to quiescence ---
    while (!backlog.empty()) {
        if (faults_on && chunk_end() <= backlog.front().wake) {
            switch_chunk();
        } else {
            flush_front([&](Time w) { return !faults_on || w < chunk_end(); });
        }
    }
    out.result = engine.finish_stream();
    publish_engine_state();
    publish_telemetry();

    if (config.monitor) {
        monitor.check_now();
        monitor.stop();
    }
    emit_windows();

    out.arrivals = consumed;
    out.shed = shed;
    out.parse_errors = source.parse_errors();
    out.monitor_checks = monitor.checks();
    out.windows_emitted = windows_emitted;
    out.stopped_by_signal = stopped_by_signal;
    // RMWP_LINT_ALLOW(R1): wall_seconds reporting only, excluded from determinism checks
    out.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                     wall_begin)
                           .count();
    out.latency_p50_us = board.latency.quantile_us(0.50);
    out.latency_p90_us = board.latency.quantile_us(0.90);
    out.latency_p99_us = board.latency.quantile_us(0.99);
    out.latency_p999_us = board.latency.quantile_us(0.999);
    if (config.sim.sink != nullptr) {
        out.ring_occupancy = config.sim.sink->occupancy();
        out.ring_dropped = config.sim.sink->dropped();
    }
    if (online != nullptr) {
        out.predictor_predictions = online->type_predictions();
        out.predictor_hits = online->type_hits();
    }
    if (config.stage_stats_out != nullptr) *config.stage_stats_out = stage_stats;
    if (telemetry.has_value()) {
        // Leave the endpoint answering through the drain (a scrape during
        // SIGTERM shutdown must still see well-formed metrics); stop only
        // once the final state is published.
        out.telemetry_requests = telemetry->requests_served();
        telemetry->stop();
    }
    if (const auto violation = monitor.violation(); violation.has_value()) {
        out.exit_code = 3;
        out.violation = violation->to_string();
    }
    return out;
}

} // namespace rmwp
