// Independent plan auditing: re-derives the paper's schedulability and
// accounting invariants (constraints (1)-(14), DESIGN.md §8) from first
// principles and checks every RM artefact against them.
//
// The auditor deliberately does NOT reuse the algebra it audits: durations,
// energies, EDF priorities, and processor demand are recomputed here from
// the raw TaskType tables and ActiveTask states, so a silent encoding bug in
// task_state.cpp, plan_instance.cpp, or edf.cpp surfaces as a diagnosed
// violation instead of a corrupted experiment figure.  Layers:
//
//   audit_window    schedule vs. its items: segment structure, per-resource
//                   EDF order, work conservation, reservation exactness,
//                   processor-demand feasibility, deadline adherence;
//   audit_items     items vs. task states: throttle-inflated WCETs,
//                   migration charged exactly once, pinning, offline masks;
//   audit_instance  PlanInstance encoding vs. the activation context it was
//                   built from (cpm/epm tables, window, reservation blocks);
//   audit_decision  an RM admission verdict end to end (mapping shape,
//                   instance encoding, realized-schedule feasibility);
//   audit_rescue    a fault-rescue verdict (partition, health, feasibility);
//   differential_admission
//                   cross-check of an (arbitrary) RM's verdict against the
//                   complete branch-and-bound search on small instances.
//
// All entry points are const, allocate only locally, and never mutate the
// audited structures, so audited runs are bit-identical to unaudited ones.
#pragma once

#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/manager.hpp"
#include "core/plan_instance.hpp"

namespace rmwp {

/// One violated invariant class.  Each code maps to one row of the
/// DESIGN.md §8 invariant table.
enum class AuditCode {
    schedule_shape,        ///< timeline container disagrees with the platform
    segment_bounds,        ///< segment empty, reversed, or before the window start
    segment_overlap,       ///< overlapping segments on one timeline
    unknown_segment,       ///< a segment's uid has no corresponding item
    duplicate_item,        ///< the same uid appears in two items
    wrong_timeline,        ///< a task executes off its assigned physical core
    release_violated,      ///< a task executes before its release
    work_conservation,     ///< executed time differs from the planned duration
    completion_mismatch,   ///< completion map disagrees with the timeline
    deadline_missed,       ///< an admitted/kept task finishes after its deadline
    feasibility_mismatch,  ///< the feasible flag contradicts the completions
    edf_order,             ///< a lower-priority task ran while a higher-priority one was ready
    idle_while_ready,      ///< a preemptable resource idled with ready work queued
    non_preemptable_split, ///< a task was split on a non-preemptable resource
    pinned_violation,      ///< pinning broken (moved, duplicated, or on a CPU)
    reservation_overlap,   ///< two reserved windows overlap on one resource
    reservation_shifted,   ///< a reserved block does not occupy exactly its window
    offline_resource,      ///< work placed on an offline resource
    not_executable,        ///< task mapped to a resource its type cannot use
    throttle_ignored,      ///< duration misses the throttle-inflated WCET
    migration_miscount,    ///< migration overhead not charged exactly once
    duration_mismatch,     ///< duration disagrees with first principles (other)
    item_encoding,         ///< item release/deadline disagree with the task state
    energy_mismatch,       ///< energy accounting does not conserve
    window_mismatch,       ///< planning window is not max_j t_left_j
    instance_shape,        ///< PlanInstance task order/contents malformed
    block_accounting,      ///< blocked_time disagrees with the expanded blocks
    demand_overflow,       ///< processor demand exceeds supply in some interval
    mapping_incomplete,    ///< decision does not cover the task set exactly once
    rescue_partition,      ///< kept + aborted is not a partition of the survivors
    differential_admit,    ///< RM admitted a set the complete search proves infeasible
};

[[nodiscard]] const char* to_string(AuditCode code) noexcept;

/// One concrete violation with a human-readable diagnostic.
struct AuditViolation {
    AuditCode code = AuditCode::schedule_shape;
    std::string detail;
};

/// Outcome of one audit entry point; empty means every invariant held.
struct AuditReport {
    std::vector<AuditViolation> violations;

    [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
    [[nodiscard]] bool has(AuditCode code) const noexcept;
    void add(AuditCode code, std::string detail);
    void merge(AuditReport&& other);
    /// "<n> audit violation(s): [code] detail; ..." — stable, greppable.
    [[nodiscard]] std::string summary() const;
};

/// Thrown by callers (e.g. the simulator under RMWP_AUDIT) when a report is
/// not ok; carries the full summary so tests can assert on the diagnostic.
class audit_error : public std::runtime_error {
public:
    explicit audit_error(const AuditReport& report) : std::runtime_error(report.summary()) {}
};

class ScheduleAuditor {
public:
    struct Options {
        /// Absolute time/energy comparison slack.  Times are O(1e4) ms and
        /// durations O(10) ms; 1e-4 is far below any meaningful quantity yet
        /// a safe two decades above the EDF engine's own 1e-6 epsilon, so
        /// the auditor never flags the engine's legitimate tie-breaking.
        double tolerance = 1e-4;
        /// Largest instance (tasks incl. candidate and predicted) the
        /// differential cross-check solves exactly.
        std::size_t differential_max_tasks = 8;
        /// Node budget for the differential search.  Generous enough that
        /// every instance under differential_max_tasks terminates, making a
        /// nullopt verdict a *proof* of infeasibility.
        std::uint64_t differential_node_limit = 20'000'000;
    };

    ScheduleAuditor() = default;
    explicit ScheduleAuditor(Options options) : options_(options) {}

    /// Audit a window schedule against the items it was built from.
    [[nodiscard]] AuditReport audit_window(const Platform& platform, Time now,
                                           std::span<const ScheduleItem> items,
                                           const WindowSchedule& schedule,
                                           const PlatformHealth* health = nullptr) const;

    /// Audit executable-schedule items against the task states they encode.
    [[nodiscard]] AuditReport audit_items(const Platform& platform, const Catalog& catalog,
                                          Time now, std::span<const ActiveTask> active,
                                          std::span<const ScheduleItem> items,
                                          const PlatformHealth* health = nullptr) const;

    /// Audit a PlanInstance's encoding against the context it came from.
    [[nodiscard]] AuditReport audit_instance(const ArrivalContext& context,
                                             const PlanInstance& instance) const;

    /// Audit one admission decision end to end.
    [[nodiscard]] AuditReport audit_decision(const ArrivalContext& context,
                                             const Decision& decision) const;

    /// Audit one fault-rescue decision end to end.
    [[nodiscard]] AuditReport audit_rescue(const RescueContext& context,
                                           const RescueDecision& decision) const;

    /// Energy conservation: the reported plan energy must equal the sum of
    /// the per-task (per-chunk) energies of the mapping.
    [[nodiscard]] AuditReport audit_plan_energy(const PlanInstance& instance,
                                                const std::vector<ResourceId>& mapping,
                                                double reported_energy) const;

    /// Differential admission cross-check against the exact search.
    struct Differential {
        bool checked = false;      ///< instance small enough to solve exactly
        bool exact_admits = false; ///< the complete search found a feasible plan
        /// Hard violations only: the RM admitted a set the complete search
        /// proves infeasible, or the exact plan's energy fails to conserve.
        /// An RM *rejection* the exact search overturns is reported via
        /// exact_admits and is informational — incomplete heuristics are
        /// allowed to reject feasible sets (Sec 5.2), never the reverse.
        AuditReport report;
    };
    [[nodiscard]] Differential differential_admission(const ArrivalContext& context,
                                                      const Decision& decision) const;

    [[nodiscard]] const Options& options() const noexcept { return options_; }

private:
    Options options_;
};

} // namespace rmwp
