#include "audit/audit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "core/edf.hpp"
#include "core/exact_rm.hpp"
#include "core/reservation.hpp"

namespace rmwp {

const char* to_string(AuditCode code) noexcept {
    switch (code) {
    case AuditCode::schedule_shape: return "schedule_shape";
    case AuditCode::segment_bounds: return "segment_bounds";
    case AuditCode::segment_overlap: return "segment_overlap";
    case AuditCode::unknown_segment: return "unknown_segment";
    case AuditCode::duplicate_item: return "duplicate_item";
    case AuditCode::wrong_timeline: return "wrong_timeline";
    case AuditCode::release_violated: return "release_violated";
    case AuditCode::work_conservation: return "work_conservation";
    case AuditCode::completion_mismatch: return "completion_mismatch";
    case AuditCode::deadline_missed: return "deadline_missed";
    case AuditCode::feasibility_mismatch: return "feasibility_mismatch";
    case AuditCode::edf_order: return "edf_order";
    case AuditCode::idle_while_ready: return "idle_while_ready";
    case AuditCode::non_preemptable_split: return "non_preemptable_split";
    case AuditCode::pinned_violation: return "pinned_violation";
    case AuditCode::reservation_overlap: return "reservation_overlap";
    case AuditCode::reservation_shifted: return "reservation_shifted";
    case AuditCode::offline_resource: return "offline_resource";
    case AuditCode::not_executable: return "not_executable";
    case AuditCode::throttle_ignored: return "throttle_ignored";
    case AuditCode::migration_miscount: return "migration_miscount";
    case AuditCode::duration_mismatch: return "duration_mismatch";
    case AuditCode::item_encoding: return "item_encoding";
    case AuditCode::energy_mismatch: return "energy_mismatch";
    case AuditCode::window_mismatch: return "window_mismatch";
    case AuditCode::instance_shape: return "instance_shape";
    case AuditCode::block_accounting: return "block_accounting";
    case AuditCode::demand_overflow: return "demand_overflow";
    case AuditCode::mapping_incomplete: return "mapping_incomplete";
    case AuditCode::rescue_partition: return "rescue_partition";
    case AuditCode::differential_admit: return "differential_admit";
    }
    return "unknown";
}

bool AuditReport::has(AuditCode code) const noexcept {
    for (const AuditViolation& violation : violations)
        if (violation.code == code) return true;
    return false;
}

void AuditReport::add(AuditCode code, std::string detail) {
    violations.push_back(AuditViolation{code, std::move(detail)});
}

void AuditReport::merge(AuditReport&& other) {
    for (AuditViolation& violation : other.violations) violations.push_back(std::move(violation));
    other.violations.clear();
}

std::string AuditReport::summary() const {
    std::ostringstream out;
    out << violations.size() << " audit violation(s):";
    for (const AuditViolation& violation : violations)
        out << " [" << to_string(violation.code) << "] " << violation.detail << ";";
    return out.str();
}

namespace {

/// The EDF priority order the paper fixes (reservations outrank everything;
/// then earliest deadline; real tasks beat the predicted task on ties via
/// the uid layout).  Re-stated here independently of edf.cpp on purpose.
[[nodiscard]] bool outranks(const ScheduleItem& a, const ScheduleItem& b) noexcept {
    if (a.reserved != b.reserved) return a.reserved;
    if (a.abs_deadline != b.abs_deadline) return a.abs_deadline < b.abs_deadline;
    if (a.release != b.release) return a.release < b.release;
    return a.uid < b.uid;
}

[[nodiscard]] std::string uid_str(TaskUid uid) {
    if (is_reserved_uid(uid)) return "reserved#" + std::to_string(uid & ~kReservedUidBase);
    if (is_predicted_uid(uid)) return "predicted#" + std::to_string(uid - kPredictedUidBase);
    return "task#" + std::to_string(uid);
}

/// First-principles occupied time of `task` if it ends up on `to`:
/// throttle-inflated remaining work plus migration overhead charged exactly
/// once (a relocation's cost replaces any unpaid prior overhead; staying put
/// keeps the unpaid part; unstarted tasks owe nothing).
struct ExpectedCost {
    double work = 0.0;     ///< remaining_fraction * wcet * throttle
    double overhead = 0.0; ///< migration time still to be paid on `to`
    double energy = 0.0;   ///< remaining energy + migration energy overhead

    [[nodiscard]] double duration() const noexcept { return work + overhead; }
};

[[nodiscard]] ExpectedCost expected_cost(const ActiveTask& task, const TaskType& type,
                                         ResourceId to, const PlatformHealth* health) {
    const bool migrates = task.started && to != task.resource;
    ExpectedCost cost;
    cost.work = task.remaining_fraction * type.wcet(to);
    if (health != nullptr) cost.work *= health->throttle(to);
    if (migrates)
        cost.overhead = type.migration_time(task.resource, to);
    else if (to == task.resource)
        cost.overhead = task.pending_overhead;
    cost.energy = task.remaining_fraction * type.energy(to) +
                  (migrates ? type.migration_energy(task.resource, to) : 0.0);
    return cost;
}

/// Diagnose a duration that disagrees with first principles: name the
/// specific accounting bug when the error matches its signature.
void diagnose_duration(AuditReport& report, const ScheduleItem& item, const ExpectedCost& cost,
                       double unthrottled_work, double migration_time, double tolerance) {
    const double error = item.duration - cost.duration();
    if (std::abs(error) <= tolerance) return;
    if (std::abs(item.duration - (unthrottled_work + cost.overhead)) <= tolerance) {
        report.add(AuditCode::throttle_ignored,
                   uid_str(item.uid) + " planned with the nominal WCET on a throttled resource");
        return;
    }
    if (migration_time > tolerance && (std::abs(error - migration_time) <= tolerance ||
                                       std::abs(error + migration_time) <= tolerance)) {
        report.add(AuditCode::migration_miscount,
                   uid_str(item.uid) + " migration overhead charged " +
                       (error > 0 ? "twice" : "zero times") + " instead of once");
        return;
    }
    report.add(AuditCode::duration_mismatch,
               uid_str(item.uid) + " duration " + std::to_string(item.duration) +
                   " != expected " + std::to_string(cost.duration()));
}

/// All per-timeline checks of audit_window for one physical resource.
void audit_timeline(AuditReport& report, const Resource& resource, Time now,
                    const std::vector<const ScheduleItem*>& items,
                    const ResourceTimeline& timeline, double tol) {
    // A margin safely above the EDF engine's own epsilon: only violations a
    // whole tolerance beyond any legitimate tie-break are flagged.
    const double margin = 10.0 * tol;
    const auto name = [&] { return " on " + resource.name(); };

    // -- segment structure: ordered, non-overlapping, inside the window.
    const std::vector<Segment>& segments = timeline.segments;
    for (std::size_t s = 0; s < segments.size(); ++s) {
        const Segment& segment = segments[s];
        if (segment.end <= segment.start || segment.start < now - tol)
            report.add(AuditCode::segment_bounds,
                       uid_str(segment.uid) + " segment [" + std::to_string(segment.start) +
                           ", " + std::to_string(segment.end) + ") outside window" + name());
        if (s > 0 && segment.start < segments[s - 1].end - tol)
            report.add(AuditCode::segment_overlap,
                       uid_str(segment.uid) + " overlaps " + uid_str(segments[s - 1].uid) +
                           name());
    }

    std::unordered_map<TaskUid, const ScheduleItem*> by_uid;
    std::size_t pinned_count = 0;
    for (const ScheduleItem* item : items) {
        if (!by_uid.emplace(item->uid, item).second)
            report.add(AuditCode::duplicate_item, uid_str(item->uid) + " listed twice" + name());
        if (item->pinned_first && ++pinned_count > 1)
            report.add(AuditCode::pinned_violation, "two pinned tasks" + name());
        if (item->pinned_first && resource.preemptable())
            report.add(AuditCode::pinned_violation,
                       uid_str(item->uid) + " pinned on a preemptable resource" + name());
    }

    // -- per-item execution accounting derived from the segments alone.
    std::unordered_map<TaskUid, double> executed;
    std::unordered_map<TaskUid, std::size_t> chunks;
    std::unordered_map<TaskUid, Time> last_end;
    for (const Segment& segment : segments) {
        const auto it = by_uid.find(segment.uid);
        if (it == by_uid.end()) {
            report.add(AuditCode::unknown_segment, uid_str(segment.uid) + " has no item" + name());
            continue;
        }
        const ScheduleItem& item = *it->second;
        if (segment.start < item.release - tol)
            report.add(AuditCode::release_violated,
                       uid_str(segment.uid) + " starts " + std::to_string(segment.start) +
                           " before release " + std::to_string(item.release) + name());
        executed[segment.uid] += segment.duration();
        ++chunks[segment.uid];
        last_end[segment.uid] = std::max(last_end[segment.uid], segment.end);
    }

    for (const ScheduleItem* item : items) {
        const double run = executed[item->uid];
        const double planned = std::max(item->duration, 0.0);
        if (std::abs(run - planned) > margin)
            report.add(AuditCode::work_conservation,
                       uid_str(item->uid) + " executed " + std::to_string(run) + " of planned " +
                           std::to_string(planned) + name());
        if (!resource.preemptable() && chunks[item->uid] > 1)
            report.add(AuditCode::non_preemptable_split,
                       uid_str(item->uid) + " split into " + std::to_string(chunks[item->uid]) +
                           " chunks" + name());
        if (item->reserved) {
            // A reservation occupies exactly its design-time window.
            const bool shifted = chunks[item->uid] != 1 ||
                                 std::abs(executed[item->uid] - item->duration) > margin ||
                                 std::abs(last_end[item->uid] -
                                          (item->release + item->duration)) > margin;
            if (shifted)
                report.add(AuditCode::reservation_shifted,
                           uid_str(item->uid) + " not exactly at [" +
                               std::to_string(item->release) + ", " +
                               std::to_string(item->release + item->duration) + ")" + name());
        }
    }

    // -- reserved windows must be pairwise disjoint by design.
    for (std::size_t a = 0; a < items.size(); ++a) {
        if (!items[a]->reserved) continue;
        for (std::size_t b = a + 1; b < items.size(); ++b) {
            if (!items[b]->reserved) continue;
            const Time lo = std::max(items[a]->release, items[b]->release);
            const Time hi = std::min(items[a]->release + items[a]->duration,
                                     items[b]->release + items[b]->duration);
            if (hi - lo > margin)
                report.add(AuditCode::reservation_overlap,
                           uid_str(items[a]->uid) + " and " + uid_str(items[b]->uid) +
                               " windows overlap" + name());
        }
    }

    // -- EDF order and work conservation over time (preemptable resources
    //    run exactly the highest-priority ready task and never idle with
    //    ready work; non-preemptable dispatching is audited structurally
    //    via the single-chunk rule above).
    if (resource.preemptable()) {
        std::unordered_map<TaskUid, double> done;
        Time prev_end = now;
        for (const Segment& segment : segments) {
            const auto running = by_uid.find(segment.uid);
            for (const ScheduleItem* item : items) {
                const double remaining = std::max(item->duration, 0.0) - done[item->uid];
                const bool ready =
                    item->release <= segment.start + tol && remaining > margin;
                if (!ready || item->uid == segment.uid) continue;
                if (segment.start - prev_end > margin && item->release <= prev_end + tol)
                    report.add(AuditCode::idle_while_ready,
                               "idle [" + std::to_string(prev_end) + ", " +
                                   std::to_string(segment.start) + ") while " +
                                   uid_str(item->uid) + " ready" + name());
                if (running != by_uid.end() && outranks(*item, *running->second))
                    report.add(AuditCode::edf_order,
                               uid_str(segment.uid) + " ran at " +
                                   std::to_string(segment.start) + " while higher-priority " +
                                   uid_str(item->uid) + " was ready" + name());
            }
            done[segment.uid] += segment.duration();
            prev_end = std::max(prev_end, segment.end);
        }
    }

    // -- processor-demand criterion: in every interval [r, d] spanned by a
    //    release and a deadline, the demand of items that must fully execute
    //    inside it cannot exceed the supply.  Purely item-derived, so a
    //    timeline that silently drops work cannot mask an overfull window.
    std::vector<Time> releases{now};
    for (const ScheduleItem* item : items) releases.push_back(item->release);
    for (const Time r : releases) {
        for (const ScheduleItem* bound : items) {
            const Time d = bound->abs_deadline;
            if (d <= r + tol) continue;
            double demand = 0.0;
            for (const ScheduleItem* item : items)
                if (item->release >= r - tol && item->abs_deadline <= d + tol)
                    demand += std::max(item->duration, 0.0);
            const double slack = margin + tol * static_cast<double>(items.size());
            if (demand > (d - r) + slack)
                report.add(AuditCode::demand_overflow,
                           "demand " + std::to_string(demand) + " exceeds supply " +
                               std::to_string(d - r) + " in [" + std::to_string(r) + ", " +
                               std::to_string(d) + ")" + name());
        }
    }
}

} // namespace

AuditReport ScheduleAuditor::audit_window(const Platform& platform, Time now,
                                          std::span<const ScheduleItem> items,
                                          const WindowSchedule& schedule,
                                          const PlatformHealth* health) const {
    AuditReport report;
    const double tol = options_.tolerance;
    const double margin = 10.0 * tol;

    if (schedule.per_resource.size() != platform.size()) {
        report.add(AuditCode::schedule_shape,
                   "schedule has " + std::to_string(schedule.per_resource.size()) +
                       " timelines for " + std::to_string(platform.size()) + " resources");
        return report;
    }

    // Group items by physical timeline; screen out malformed mappings.
    std::vector<std::vector<const ScheduleItem*>> by_physical(platform.size());
    for (const ScheduleItem& item : items) {
        if (item.resource >= platform.size()) {
            report.add(AuditCode::schedule_shape,
                       uid_str(item.uid) + " mapped to resource " +
                           std::to_string(item.resource) + " of " +
                           std::to_string(platform.size()));
            continue;
        }
        // Offline resources are infeasible *mapping* targets.  Design-time
        // reservations are exempt: their windows keep blocking the resource
        // through an outage (the critical task is not ours to re-map).
        if (!item.reserved && health != nullptr && !health->online(item.resource))
            report.add(AuditCode::offline_resource,
                       uid_str(item.uid) + " mapped to offline " +
                           platform.resource(item.resource).name());
        by_physical[platform.resource(item.resource).physical()].push_back(&item);
    }

    for (ResourceId i = 0; i < platform.size(); ++i) {
        const Resource& resource = platform.resource(i);
        if (resource.physical() != i) {
            // Operating points share the anchor's timeline; theirs stay empty.
            if (!schedule.per_resource[i].segments.empty())
                report.add(AuditCode::wrong_timeline,
                           "segments on non-anchor operating point " + resource.name());
            continue;
        }
        // A segment may only carry a uid mapped to this physical core.
        for (const Segment& segment : schedule.per_resource[i].segments) {
            const bool known = std::any_of(
                by_physical[i].begin(), by_physical[i].end(),
                [&](const ScheduleItem* item) { return item->uid == segment.uid; });
            if (!known)
                report.add(AuditCode::wrong_timeline,
                           uid_str(segment.uid) + " executes on " + resource.name() +
                               " without being mapped there");
        }
        audit_timeline(report, resource, now, by_physical[i], schedule.per_resource[i], tol);
    }

    // -- completion map vs. timelines, and the feasibility verdict itself.
    bool any_missed = false;
    for (const ScheduleItem& item : items) {
        if (item.resource >= platform.size()) continue;
        const auto completion = schedule.completion_of(item.uid);
        if (!completion.has_value()) {
            report.add(AuditCode::completion_mismatch, uid_str(item.uid) + " has no completion");
            continue;
        }
        if (item.duration > tol) {
            const auto segs = schedule.segments_of(item.uid);
            if (!segs.empty() && std::abs(segs.back().end - *completion) > margin)
                report.add(AuditCode::completion_mismatch,
                           uid_str(item.uid) + " completion " + std::to_string(*completion) +
                               " != last segment end " + std::to_string(segs.back().end));
        }
        if (*completion > item.abs_deadline + margin) {
            any_missed = true;
            if (schedule.feasible)
                report.add(AuditCode::deadline_missed,
                           uid_str(item.uid) + " completes " + std::to_string(*completion) +
                               " after deadline " + std::to_string(item.abs_deadline) +
                               " in a schedule claimed feasible");
        }
    }
    if (!schedule.feasible && !any_missed && !items.empty())
        report.add(AuditCode::feasibility_mismatch,
                   "schedule claimed infeasible but every completion meets its deadline");
    return report;
}

AuditReport ScheduleAuditor::audit_items(const Platform& platform, const Catalog& catalog,
                                         Time now, std::span<const ActiveTask> active,
                                         std::span<const ScheduleItem> items,
                                         const PlatformHealth* health) const {
    AuditReport report;
    const double tol = options_.tolerance;

    std::unordered_map<TaskUid, const ActiveTask*> tasks;
    for (const ActiveTask& task : active) tasks.emplace(task.uid, &task);

    std::size_t real_items = 0;
    for (const ScheduleItem& item : items) {
        if (item.reserved || is_predicted_uid(item.uid)) continue;
        ++real_items;
        const auto it = tasks.find(item.uid);
        if (it == tasks.end()) {
            report.add(AuditCode::mapping_incomplete,
                       uid_str(item.uid) + " scheduled but not in the active set");
            continue;
        }
        const ActiveTask& task = *it->second;
        const TaskType& type = catalog.type(task.type);

        if (item.resource >= platform.size() || !type.executable_on(item.resource)) {
            report.add(AuditCode::not_executable,
                       uid_str(item.uid) + " mapped to a resource its type cannot use");
            continue;
        }
        if (health != nullptr && !health->online(item.resource))
            report.add(AuditCode::offline_resource,
                       uid_str(item.uid) + " mapped to offline " +
                           platform.resource(item.resource).name());
        if (task.pinned && item.resource != task.resource)
            report.add(AuditCode::pinned_violation,
                       uid_str(item.uid) + " pinned to " +
                           platform.resource(task.resource).name() + " but scheduled elsewhere");
        if (item.pinned_first != task.pinned)
            report.add(AuditCode::pinned_violation,
                       uid_str(item.uid) + " pinned flag disagrees with the task state");
        if (std::abs(item.abs_deadline - task.absolute_deadline) > tol ||
            item.release < now - tol)
            report.add(AuditCode::item_encoding,
                       uid_str(item.uid) + " release/deadline disagree with the task state");

        const ExpectedCost cost = expected_cost(task, type, item.resource, health);
        const double unthrottled = task.remaining_fraction * type.wcet(item.resource);
        const double migration = task.started && item.resource != task.resource
                                     ? type.migration_time(task.resource, item.resource)
                                     : 0.0;
        diagnose_duration(report, item, cost, unthrottled, migration, tol);
    }
    if (real_items != active.size())
        report.add(AuditCode::mapping_incomplete,
                   std::to_string(real_items) + " scheduled of " +
                       std::to_string(active.size()) + " active tasks");
    return report;
}

AuditReport ScheduleAuditor::audit_instance(const ArrivalContext& context,
                                            const PlanInstance& instance) const {
    AuditReport report;
    const double tol = options_.tolerance;
    const Platform& platform = *context.platform;
    const std::size_t n = platform.size();
    const std::size_t real = context.active.size() + 1;

    if (instance.tasks.size() != real + instance.predicted_count ||
        instance.predicted_count > context.predicted.size()) {
        report.add(AuditCode::instance_shape,
                   "instance holds " + std::to_string(instance.tasks.size()) + " tasks for " +
                       std::to_string(real) + " real + " +
                       std::to_string(instance.predicted_count) + " predicted");
        return report;
    }

    // -- planning window: K-bar = max_j t_left_j, recomputed independently.
    Time latest = context.candidate.absolute_deadline;
    for (const ActiveTask& task : context.active) latest = std::max(latest, task.absolute_deadline);
    for (std::size_t k = 0; k < instance.predicted_count; ++k)
        latest = std::max(latest, context.predicted[k].absolute_deadline());
    if (std::abs(instance.window - (latest - context.now)) > tol)
        report.add(AuditCode::window_mismatch,
                   "window " + std::to_string(instance.window) + " != max t_left " +
                       std::to_string(latest - context.now));

    // -- per-task cpm/epm tables vs. first principles.
    const auto check_real = [&](const PlanTask& plan, const ActiveTask& task, bool candidate) {
        const TaskType& type = context.catalog->type(task.type);
        if (plan.uid != task.uid || plan.is_predicted || plan.is_candidate != candidate ||
            plan.cpm.size() != n || plan.epm.size() != n) {
            report.add(AuditCode::instance_shape, uid_str(plan.uid) + " malformed plan task");
            return;
        }
        for (ResourceId i = 0; i < n; ++i) {
            const bool listed =
                std::find(plan.executable.begin(), plan.executable.end(), i) !=
                plan.executable.end();
            const bool offline = context.health != nullptr && !context.health->online(i);
            const bool usable =
                type.executable_on(i) && !offline && (!task.pinned || i == task.resource);
            if (listed != usable || std::isfinite(plan.cpm[i]) != usable) {
                report.add(offline && listed ? AuditCode::offline_resource
                                             : AuditCode::instance_shape,
                           uid_str(plan.uid) + " executable set wrong on " +
                               platform.resource(i).name());
                continue;
            }
            if (!usable) continue;
            const ExpectedCost cost = expected_cost(task, type, i, context.health);
            ScheduleItem as_item;
            as_item.uid = plan.uid;
            as_item.duration = plan.cpm[i];
            diagnose_duration(report, as_item, cost, task.remaining_fraction * type.wcet(i),
                              task.started && i != task.resource
                                  ? type.migration_time(task.resource, i)
                                  : 0.0,
                              tol);
            if (std::abs(plan.epm[i] - cost.energy) > tol)
                report.add(AuditCode::energy_mismatch,
                           uid_str(plan.uid) + " epm " + std::to_string(plan.epm[i]) +
                               " != expected " + std::to_string(cost.energy) + " on " +
                               platform.resource(i).name());
        }
    };

    for (std::size_t j = 0; j < context.active.size(); ++j)
        check_real(instance.tasks[j], context.active[j], false);
    check_real(instance.tasks[context.active.size()], context.candidate, true);

    for (std::size_t k = 0; k < instance.predicted_count; ++k) {
        const PlanTask& plan = instance.tasks[real + k];
        const PredictedTask& predicted = context.predicted[k];
        const TaskType& type = context.catalog->type(predicted.type);
        if (!plan.is_predicted || plan.uid != kPredictedUidBase + k ||
            std::abs(plan.release - std::max(predicted.arrival, context.now)) > tol ||
            std::abs(plan.abs_deadline - predicted.absolute_deadline()) > tol) {
            report.add(AuditCode::instance_shape, "predicted task " + std::to_string(k) +
                                                      " misencoded");
            continue;
        }
        for (const ResourceId i : plan.executable) {
            double wcet = type.wcet(i);
            if (context.health != nullptr) wcet *= context.health->throttle(i);
            if (std::abs(plan.cpm[i] - wcet) > tol)
                report.add(AuditCode::throttle_ignored,
                           "predicted task " + std::to_string(k) + " cpm misses throttle on " +
                               platform.resource(i).name());
            if (std::abs(plan.epm[i] - type.energy(i)) > tol)
                report.add(AuditCode::energy_mismatch,
                           "predicted task " + std::to_string(k) + " epm mismatch on " +
                               platform.resource(i).name());
        }
    }

    // -- reservation blocks: per-anchor bookkeeping must agree.
    if (instance.blocks.size() != n || instance.blocked_time.size() != n) {
        report.add(AuditCode::block_accounting, "block containers disagree with the platform");
        return report;
    }
    for (ResourceId i = 0; i < n; ++i) {
        double total = 0.0;
        for (const ScheduleItem& block : instance.blocks[i]) {
            total += block.duration;
            if (!block.reserved || block.release < instance.now - tol)
                report.add(AuditCode::block_accounting,
                           "malformed reservation block on " + platform.resource(i).name());
        }
        if (std::abs(total - instance.blocked_time[i]) >
            tol * (1.0 + static_cast<double>(instance.blocks[i].size())))
            report.add(AuditCode::block_accounting,
                       "blocked_time " + std::to_string(instance.blocked_time[i]) +
                           " != sum of blocks " + std::to_string(total) + " on " +
                           platform.resource(i).name());
    }
    return report;
}

AuditReport ScheduleAuditor::audit_decision(const ArrivalContext& context,
                                            const Decision& decision) const {
    AuditReport report;
    const Platform& platform = *context.platform;

    // -- encoding audit of the optimisation instance this activation used.
    report.merge(audit_instance(context, PlanInstance::build(context, context.predicted.size())));

    // -- mapping shape: admitted plans re-map the whole set exactly once;
    //    rejections change nothing.
    if (!decision.admitted) {
        if (!decision.assignments.empty())
            report.add(AuditCode::mapping_incomplete,
                       "rejected decision carries " +
                           std::to_string(decision.assignments.size()) + " assignments");
        return report;
    }

    std::vector<const ActiveTask*> mapped;
    std::size_t candidate_seen = 0;
    for (const TaskAssignment& assignment : decision.assignments) {
        const ActiveTask* task = nullptr;
        if (assignment.uid == context.candidate.uid) {
            task = &context.candidate;
            ++candidate_seen;
        } else {
            for (const ActiveTask& active : context.active)
                if (active.uid == assignment.uid) task = &active;
        }
        if (task == nullptr) {
            report.add(AuditCode::mapping_incomplete,
                       uid_str(assignment.uid) + " assigned but unknown");
            continue;
        }
        if (std::count_if(mapped.begin(), mapped.end(),
                          [&](const ActiveTask* seen) { return seen->uid == task->uid; }) > 0)
            report.add(AuditCode::mapping_incomplete, uid_str(task->uid) + " assigned twice");
        mapped.push_back(task);
    }
    if (candidate_seen != 1 || decision.assignments.size() != context.active.size() + 1)
        report.add(AuditCode::mapping_incomplete,
                   "admitted decision maps " + std::to_string(decision.assignments.size()) +
                       " of " + std::to_string(context.active.size() + 1) + " tasks");
    if (!report.ok()) return report;

    // -- realize the admitted mapping with first-principles items and verify
    //    the firm-deadline guarantee plus every window invariant.
    std::vector<ScheduleItem> items;
    items.reserve(decision.assignments.size());
    Time horizon = context.now;
    for (std::size_t j = 0; j < decision.assignments.size(); ++j) {
        const TaskAssignment& assignment = decision.assignments[j];
        const ActiveTask& task = *mapped[j];
        const TaskType& type = context.catalog->type(task.type);
        if (assignment.resource >= platform.size() || !type.executable_on(assignment.resource)) {
            report.add(AuditCode::not_executable,
                       uid_str(task.uid) + " admitted onto an unusable resource");
            return report;
        }
        const ExpectedCost cost = expected_cost(task, type, assignment.resource, context.health);
        ScheduleItem item;
        item.uid = task.uid;
        item.resource = assignment.resource;
        item.release = context.now;
        item.abs_deadline = task.absolute_deadline;
        item.duration = cost.duration();
        item.pinned_first = task.pinned;
        items.push_back(item);
        horizon = std::max(horizon, task.absolute_deadline);
    }
    if (context.reservations != nullptr && !context.reservations->empty())
        context.reservations->append_blocks(context.now, horizon, items);

    const WindowSchedule schedule = build_window_schedule(platform, context.now, items);
    if (!schedule.feasible)
        report.add(AuditCode::deadline_missed,
                   "admitted task set is not schedulable under EDF from first principles");
    // The admitted candidate joins the active set for the item audit.
    std::vector<ActiveTask> all(context.active.begin(), context.active.end());
    all.push_back(context.candidate);
    report.merge(audit_items(platform, *context.catalog, context.now, all, items,
                             context.health));
    report.merge(audit_window(platform, context.now, items, schedule, context.health));
    return report;
}

AuditReport ScheduleAuditor::audit_rescue(const RescueContext& context,
                                          const RescueDecision& decision) const {
    AuditReport report;
    const Platform& platform = *context.platform;

    // -- partition: every survivor appears in exactly one of kept/aborted.
    std::unordered_map<TaskUid, int> seen;
    for (const TaskAssignment& assignment : decision.kept) ++seen[assignment.uid];
    for (const TaskUid uid : decision.aborted) ++seen[uid];
    if (seen.size() != context.active.size() ||
        decision.kept.size() + decision.aborted.size() != context.active.size())
        report.add(AuditCode::rescue_partition,
                   "kept " + std::to_string(decision.kept.size()) + " + aborted " +
                       std::to_string(decision.aborted.size()) + " != " +
                       std::to_string(context.active.size()) + " survivors");
    for (const ActiveTask& task : context.active) {
        const auto it = seen.find(task.uid);
        if (it == seen.end() || it->second != 1)
            report.add(AuditCode::rescue_partition,
                       uid_str(task.uid) + " appears " +
                           std::to_string(it == seen.end() ? 0 : it->second) +
                           " times in the rescue verdict");
    }
    if (!report.ok()) return report;

    // -- kept mappings: healthy targets, schedulable from first principles.
    std::vector<ScheduleItem> items;
    std::vector<ActiveTask> kept_tasks;
    Time horizon = context.now;
    for (const TaskAssignment& assignment : decision.kept) {
        const ActiveTask* task = nullptr;
        for (const ActiveTask& active : context.active)
            if (active.uid == assignment.uid) task = &active;
        if (task == nullptr) continue; // unreachable: the partition check passed
        const TaskType& type = context.catalog->type(task->type);
        if (context.health != nullptr && !context.health->online(assignment.resource))
            report.add(AuditCode::offline_resource,
                       uid_str(task->uid) + " rescued onto an offline resource");
        if (assignment.resource >= platform.size() || !type.executable_on(assignment.resource)) {
            report.add(AuditCode::not_executable,
                       uid_str(task->uid) + " rescued onto an unusable resource");
            continue;
        }
        if (task->pinned && assignment.resource != task->resource)
            report.add(AuditCode::pinned_violation,
                       uid_str(task->uid) + " pinned task migrated by a rescue");

        const ExpectedCost cost = expected_cost(*task, type, assignment.resource, context.health);
        ScheduleItem item;
        item.uid = task->uid;
        item.resource = assignment.resource;
        item.release = context.now;
        item.abs_deadline = task->absolute_deadline;
        item.duration = cost.duration();
        item.pinned_first = task->pinned;
        items.push_back(item);
        kept_tasks.push_back(*task);
        horizon = std::max(horizon, task->absolute_deadline);
    }
    if (!report.ok()) return report;
    if (context.reservations != nullptr && !context.reservations->empty())
        context.reservations->append_blocks(context.now, horizon, items);

    const WindowSchedule schedule = build_window_schedule(platform, context.now, items);
    if (!schedule.feasible)
        report.add(AuditCode::deadline_missed,
                   "rescued task set is not schedulable under EDF from first principles");
    report.merge(audit_items(platform, *context.catalog, context.now, kept_tasks, items,
                             context.health));
    report.merge(audit_window(platform, context.now, items, schedule, context.health));
    return report;
}

AuditReport ScheduleAuditor::audit_plan_energy(const PlanInstance& instance,
                                               const std::vector<ResourceId>& mapping,
                                               double reported_energy) const {
    AuditReport report;
    if (mapping.size() != instance.tasks.size()) {
        report.add(AuditCode::energy_mismatch,
                   "mapping covers " + std::to_string(mapping.size()) + " of " +
                       std::to_string(instance.tasks.size()) + " plan tasks");
        return report;
    }
    double total = 0.0;
    for (std::size_t j = 0; j < instance.tasks.size(); ++j) {
        const PlanTask& task = instance.tasks[j];
        if (mapping[j] >= task.epm.size() || !std::isfinite(task.epm[mapping[j]])) {
            report.add(AuditCode::energy_mismatch,
                       uid_str(task.uid) + " mapped outside its executable set");
            return report;
        }
        total += task.epm[mapping[j]];
    }
    const double slack =
        options_.tolerance * (1.0 + static_cast<double>(instance.tasks.size())) +
        1e-9 * std::abs(total);
    if (std::abs(total - reported_energy) > slack)
        report.add(AuditCode::energy_mismatch,
                   "plan energy " + std::to_string(reported_energy) +
                       " != sum of per-chunk energies " + std::to_string(total));
    return report;
}

ScheduleAuditor::Differential ScheduleAuditor::differential_admission(
    const ArrivalContext& context, const Decision& decision) const {
    Differential result;
    const std::size_t count = context.active.size() + 1 + context.predicted.size();
    if (count > options_.differential_max_tasks) return result;
    result.checked = true;

    ExactRM::Options exact_options;
    exact_options.node_limit = options_.differential_node_limit;

    // Mirror the Sec 4.1 admission ladder with the complete search: feasible
    // with all predictions, else trimmed, down to the prediction-free plan.
    for (std::size_t k = context.predicted.size() + 1; k-- > 0;) {
        const PlanInstance instance = PlanInstance::build(context, k);
        if (const auto exact = ExactRM::optimize(instance, exact_options)) {
            result.exact_admits = true;
            // Energy conservation of the exact plan itself.
            result.report.merge(audit_plan_energy(instance, exact->mapping, exact->energy));
            break;
        }
    }

    // The search is complete within the node budget, so "the RM admitted but
    // the exact search finds nothing feasible" proves one of the two sides
    // wrong — a hard violation either way.
    if (decision.admitted && !result.exact_admits)
        result.report.add(AuditCode::differential_admit,
                          "RM admitted a task set the complete search proves infeasible");
    return result;
}

} // namespace rmwp
