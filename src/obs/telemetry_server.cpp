#include "obs/telemetry_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace rmwp::obs {

std::string prometheus_name(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const char c = raw[i];
        const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
                           c == ':';
        const bool digit = c >= '0' && c <= '9';
        out.push_back(alpha || (digit && i > 0) ? c : '_');
    }
    if (out.empty()) out = "_";
    return out;
}

namespace {

void append_double(std::string& out, double d) {
    if (d != d) {
        out += "NaN";
        return;
    }
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    out += buffer;
}

} // namespace

void PrometheusText::family(std::string_view name, std::string_view help,
                            std::string_view type) {
    text_ += "# HELP ";
    text_ += name;
    text_ += ' ';
    text_ += help;
    text_ += "\n# TYPE ";
    text_ += name;
    text_ += ' ';
    text_ += type;
    text_ += '\n';
}

void PrometheusText::sample(std::string_view name, std::string_view labels, double value,
                            std::string_view suffix) {
    text_ += name;
    text_ += suffix;
    if (!labels.empty()) {
        text_ += '{';
        text_ += labels;
        text_ += '}';
    }
    text_ += ' ';
    append_double(text_, value);
    text_ += '\n';
}

void PrometheusText::sample(std::string_view name, std::string_view labels,
                            std::uint64_t value, std::string_view suffix) {
    text_ += name;
    text_ += suffix;
    if (!labels.empty()) {
        text_ += '{';
        text_ += labels;
        text_ += '}';
    }
    text_ += ' ';
    text_ += std::to_string(value);
    text_ += '\n';
}

void render_metrics(PrometheusText& out, const MetricsSnapshot& snapshot,
                    std::string_view prefix) {
    const auto full = [&](std::string_view raw) {
        return std::string(prefix) + prometheus_name(raw);
    };
    for (const auto& counter : snapshot.counters) {
        const std::string name = full(counter.name) + "_total";
        out.family(name, "engine counter " + counter.name, "counter");
        out.sample(name, "", counter.value);
    }
    for (const auto& gauge : snapshot.gauges) {
        const std::string name = full(gauge.name);
        out.family(name, "engine gauge " + gauge.name, "gauge");
        out.sample(name, "", gauge.value);
    }
    for (const auto& histogram : snapshot.histograms) {
        const std::string name = full(histogram.name);
        out.family(name, "engine histogram " + histogram.name, "histogram");
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
            cumulative += histogram.buckets[i];
            std::string label = "le=\"";
            append_double(label, histogram.bounds[i]);
            label += '"';
            out.sample(name, label, cumulative, "_bucket");
        }
        out.sample(name, "le=\"+Inf\"", histogram.count, "_bucket");
        out.sample(name, "", histogram.sum, "_sum");
        out.sample(name, "", histogram.count, "_count");
    }
    for (const auto& hdr : snapshot.hdrs) {
        const std::string name = full(hdr.name);
        out.family(name, "HDR histogram " + hdr.name, "summary");
        for (const double q : {0.5, 0.9, 0.99, 0.999}) {
            char label[32];
            std::snprintf(label, sizeof label, "quantile=\"%g\"", q);
            out.sample(name, label, hdr.quantile(q));
        }
        out.sample(name, "", hdr.sum, "_sum");
        out.sample(name, "", hdr.count, "_count");
    }
}

void render_stage_stats(PrometheusText& out, const StageStats& stages,
                        std::string_view prefix) {
    const std::string calls = std::string(prefix) + "stage_calls_total";
    const std::string time_ns = std::string(prefix) + "stage_time_ns_total";
    out.family(calls, "admission pipeline stage invocations", "counter");
    for (std::size_t s = 0; s < kStageCount; ++s) {
        const std::string label =
            std::string("stage=\"") + to_string(static_cast<Stage>(s)) + "\"";
        out.sample(calls, label, stages.stage[s].calls);
    }
    out.family(time_ns, "estimated host time per stage (sampled; see DESIGN.md §14)",
               "counter");
    for (std::size_t s = 0; s < kStageCount; ++s) {
        const std::string label =
            std::string("stage=\"") + to_string(static_cast<Stage>(s)) + "\"";
        out.sample(time_ns, label, stages.estimated_ns(static_cast<Stage>(s)));
    }

    const std::string verdicts = std::string(prefix) + "stage_prefilter_verdicts_total";
    out.family(verdicts, "analytic EDF prefilter outcomes", "counter");
    out.sample(verdicts, "verdict=\"infeasible\"", stages.prefilter_infeasible);
    out.sample(verdicts, "verdict=\"feasible\"", stages.prefilter_feasible);
    out.sample(verdicts, "verdict=\"unknown\"", stages.prefilter_unknown);

    const std::string arena = std::string(prefix) + "plan_arena_high_water_bytes";
    out.family(arena, "plan-scratch arena footprint high-water mark", "gauge");
    out.sample(arena, "", stages.arena_high_water_bytes);
}

namespace {

/// One client connection mid-request or mid-response.
struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t out_off = 0;
    bool responding = false;
};

constexpr std::size_t kMaxRequestBytes = 8192;

[[nodiscard]] std::string http_response(int status, std::string_view reason,
                                        std::string_view content_type,
                                        std::string_view body) {
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " + std::string(reason) +
                      "\r\nContent-Type: " + std::string(content_type) +
                      "\r\nContent-Length: " + std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

/// Extract the request target from "GET /path HTTP/1.1"; empty on anything
/// that is not a well-formed GET request line.
[[nodiscard]] std::string_view parse_get_target(std::string_view head) {
    const std::size_t line_end = head.find("\r\n");
    std::string_view line = line_end == std::string_view::npos ? head : head.substr(0, line_end);
    if (!line.starts_with("GET ")) return {};
    line.remove_prefix(4);
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) return {};
    return line.substr(0, space);
}

void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
}

} // namespace

TelemetryServer::TelemetryServer(int port, TelemetryHandlers handlers)
    : handlers_(std::move(handlers)) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listen_fd_ < 0) throw std::runtime_error("telemetry: socket() failed");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        const int saved = errno;
        close_fd(listen_fd_);
        throw std::runtime_error("telemetry: cannot listen on 127.0.0.1:" +
                                 std::to_string(port) + ": " + std::strerror(saved));
    }
    socklen_t len = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    if (::pipe(wake_fd_) != 0) {
        close_fd(listen_fd_);
        throw std::runtime_error("telemetry: pipe() failed");
    }
    thread_ = std::thread([this] { run(); });
}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_relaxed);
    const char poke = 'x';
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_[1], &poke, 1);
    thread_.join();
    close_fd(listen_fd_);
    close_fd(wake_fd_[0]);
    close_fd(wake_fd_[1]);
}

void TelemetryServer::run() {
    std::vector<Conn> conns;
    std::vector<pollfd> fds;
    while (!stop_.load(std::memory_order_relaxed)) {
        fds.clear();
        fds.push_back({wake_fd_[0], POLLIN, 0});
        fds.push_back({listen_fd_, POLLIN, 0});
        for (const Conn& conn : conns)
            fds.push_back({conn.fd, static_cast<short>(conn.responding ? POLLOUT : POLLIN), 0});
        if (::poll(fds.data(), fds.size(), 250) < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if ((fds[0].revents & POLLIN) != 0) break; // stop() poked the pipe

        // Connections accepted below have no pollfd this round: only the
        // first `polled` entries of conns may be swept against fds.
        const std::size_t polled = fds.size() - 2;
        if ((fds[1].revents & POLLIN) != 0) {
            for (;;) {
                const int client = ::accept4(listen_fd_, nullptr, nullptr,
                                             SOCK_NONBLOCK | SOCK_CLOEXEC);
                if (client < 0) break;
                conns.push_back({client, {}, {}, 0, false});
            }
        }

        for (std::size_t k = polled; k-- > 0;) {
            Conn& conn = conns[k];
            const pollfd& pfd = fds[2 + k];
            bool done = false;
            if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 && !conn.responding) {
                done = true;
            } else if (!conn.responding && (pfd.revents & POLLIN) != 0) {
                char buffer[4096];
                const ssize_t n = ::read(conn.fd, buffer, sizeof buffer);
                // n == 0 is orderly EOF: always done.  errno is only
                // meaningful for n < 0 (read() leaves it untouched on
                // success, and the accept4 drain above ends with EAGAIN).
                if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
                    done = true;
                } else if (n > 0) {
                    conn.in.append(buffer, static_cast<std::size_t>(n));
                    if (conn.in.size() > kMaxRequestBytes) {
                        conn.out = http_response(431, "Request Header Fields Too Large",
                                                 "text/plain", "request too large\n");
                        conn.responding = true;
                    } else if (conn.in.find("\r\n\r\n") != std::string::npos) {
                        const std::string_view target = parse_get_target(conn.in);
                        requests_.fetch_add(1, std::memory_order_relaxed);
                        if (target == "/metrics" && handlers_.metrics) {
                            conn.out = http_response(
                                200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                                handlers_.metrics());
                        } else if (target == "/healthz") {
                            const std::string violation =
                                handlers_.health ? handlers_.health() : std::string();
                            conn.out = violation.empty()
                                           ? http_response(200, "OK", "text/plain", "ok\n")
                                           : http_response(503, "Service Unavailable",
                                                           "text/plain", violation + "\n");
                        } else if (target.empty()) {
                            conn.out = http_response(405, "Method Not Allowed", "text/plain",
                                                     "only GET is supported\n");
                        } else {
                            conn.out = http_response(404, "Not Found", "text/plain",
                                                     "try /metrics or /healthz\n");
                        }
                        conn.responding = true;
                    }
                }
            } else if (conn.responding && (pfd.revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
                // MSG_NOSIGNAL: a scraper that disconnects mid-response must
                // yield EPIPE here, not a process-killing SIGPIPE.
                const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                                         conn.out.size() - conn.out_off, MSG_NOSIGNAL);
                if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
                    done = true;
                } else if (n > 0) {
                    conn.out_off += static_cast<std::size_t>(n);
                    done = conn.out_off == conn.out.size();
                }
            }
            if (done) {
                close_fd(conn.fd);
                conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(k));
            }
        }
    }
    for (Conn& conn : conns) close_fd(conn.fd);
}

} // namespace rmwp::obs
