// Log-linear-bucketed HDR-style histogram over unsigned integer ticks.
//
// The classic HdrHistogram trick: values below 2^kLinearBits land in exact
// unit-width buckets; above that, each power-of-two magnitude group is split
// into 2^kSubBits sub-buckets, so the bucket width is always <= value /
// 2^kSubBits and every quantile is exact to within ~3.1 % relative error —
// at a fixed memory footprint (one u64 per bucket, no per-sample storage).
// This replaces the coarse log2 LatencyBuckets quantiles in serve's window
// stats and backs the `/metrics` latency summaries (DESIGN.md §14).
//
// Two variants share the same constexpr bucket geometry:
//  - HdrHistogram: single-threaded, mergeable, value-semantic.  Safe for
//    sim-scope metrics: identical sample multisets give identical state, so
//    obs::deterministic_equal can compare them bit-for-bit.
//  - AtomicHdrHistogram: relaxed-atomic recording for cross-thread boards
//    (serve's HealthBoard latency; the monitor thread reads quantiles live).
//
// Ticks are caller-defined units; serve records nanoseconds.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rmwp::obs {

namespace hdr_detail {

/// Sub-bucket resolution: 2^5 = 32 sub-buckets per magnitude group bounds
/// the relative quantile error by 1/32 (~3.1 %).
inline constexpr unsigned kSubBits = 5;
/// Values < 2^(kSubBits + 1) = 64 are counted exactly (unit buckets).
inline constexpr std::uint64_t kLinearLimit = 1ull << (kSubBits + 1);
/// Highest magnitude group: values up to 2^46 - 1 ticks (~19.5 h in ns).
inline constexpr unsigned kMaxMagnitude = 45;
inline constexpr std::uint64_t kMaxTrackable = (1ull << (kMaxMagnitude + 1)) - 1;
inline constexpr std::size_t kGroupCount = kMaxMagnitude - kSubBits; // m = 6..45
inline constexpr std::size_t kBucketCount =
    static_cast<std::size_t>(kLinearLimit) + kGroupCount * (1u << kSubBits); // 1344

/// Bucket index for a tick value (values above kMaxTrackable clamp into the
/// last bucket).
[[nodiscard]] constexpr std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value < kLinearLimit) return static_cast<std::size_t>(value);
    if (value > kMaxTrackable) value = kMaxTrackable;
    const unsigned magnitude =
        static_cast<unsigned>(std::bit_width(value)) - 1; // in [kSubBits+1, kMaxMagnitude]
    const unsigned shift = magnitude - kSubBits;
    const std::uint64_t sub = value >> shift; // in [32, 63]
    return static_cast<std::size_t>(kLinearLimit) +
           (magnitude - kSubBits - 1) * (1u << kSubBits) +
           static_cast<std::size_t>(sub - (1u << kSubBits));
}

/// Largest tick value mapping to `index` (inverse of bucket_index).
[[nodiscard]] constexpr std::uint64_t bucket_upper(std::size_t index) noexcept {
    if (index < kLinearLimit) return index;
    const std::size_t offset = index - static_cast<std::size_t>(kLinearLimit);
    const unsigned shift = static_cast<unsigned>(offset / (1u << kSubBits)) + 1;
    const std::uint64_t sub = (1u << kSubBits) + offset % (1u << kSubBits);
    return ((sub + 1) << shift) - 1;
}

static_assert(bucket_index(0) == 0);
static_assert(bucket_index(63) == 63);
static_assert(bucket_index(64) == 64);
static_assert(bucket_index(65) == 64);
static_assert(bucket_upper(64) == 65);
static_assert(bucket_index(bucket_upper(200)) == 200);
static_assert(bucket_index(bucket_upper(kBucketCount - 1)) == kBucketCount - 1);
static_assert(bucket_index(kMaxTrackable) == kBucketCount - 1);

} // namespace hdr_detail

/// One populated bucket of a histogram snapshot (sparse form, ordered by
/// index; what MetricsSnapshot carries and deterministic_equal compares).
struct HdrCell {
    std::uint32_t index = 0;
    std::uint64_t count = 0;

    friend bool operator==(const HdrCell&, const HdrCell&) = default;
};

/// Single-threaded HDR histogram (see file comment).
class HdrHistogram {
public:
    void record(std::uint64_t value) noexcept;
    void record_n(std::uint64_t value, std::uint64_t times) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
    /// min()/max() are exact recorded extrema (0 when empty).
    [[nodiscard]] std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
    [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

    /// Upper bound of the bucket holding the rank-ceil(q*count) sample,
    /// clamped to max(); exact for values < 64, <= 3.1 % high otherwise.
    /// q is clamped to [0, 1]; returns 0 on an empty histogram.
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

    /// Accumulate another histogram (geometry is fixed, so any two merge;
    /// merging is associative and commutative by construction).
    void merge(const HdrHistogram& other) noexcept;

    void reset() noexcept;

    /// Sparse populated buckets, ascending by index.
    [[nodiscard]] std::vector<HdrCell> cells() const;
    /// Rebuild dense state from sparse cells + exact extrema (snapshot
    /// round-trip; used by MetricsSnapshot::merge).
    void load(const std::vector<HdrCell>& cells, std::uint64_t sum, std::uint64_t min,
              std::uint64_t max) noexcept;

    friend bool operator==(const HdrHistogram& a, const HdrHistogram& b) {
        return a.count_ == b.count_ && a.sum_ == b.sum_ && a.min_ == b.min_ &&
               a.max_ == b.max_ && a.counts_ == b.counts_;
    }

private:
    std::array<std::uint64_t, hdr_detail::kBucketCount> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

/// Cross-thread HDR histogram: writers use relaxed fetch_add (the serve
/// thread), readers (monitor / telemetry thread) see a consistent-enough
/// live view — quantiles over a monotone stream need no stronger ordering.
/// No min/max (a CAS loop on the hot path buys nothing the quantiles don't
/// already give).
class AtomicHdrHistogram {
public:
    void record(std::uint64_t value) noexcept {
        counts_[hdr_detail::bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value, std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    /// Same contract as HdrHistogram::quantile (without the max() clamp).
    [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

    /// Copy the live counters into a value-semantic histogram (for window
    /// deltas and `/metrics` rendering off the serving thread).
    [[nodiscard]] HdrHistogram snapshot() const;

private:
    std::array<std::atomic<std::uint64_t>, hdr_detail::kBucketCount> counts_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

} // namespace rmwp::obs
