#include "obs/stage_timer.hpp"

namespace rmwp::obs {

const char* to_string(Stage stage) noexcept {
    switch (stage) {
    case Stage::decide: return "decide";
    case Stage::solve: return "solve";
    case Stage::batch_assemble: return "batch_assemble";
    case Stage::sorted_refresh: return "sorted_refresh";
    case Stage::prefilter: return "prefilter";
    case Stage::edf_simulate: return "edf_simulate";
    case Stage::shard_solve: return "shard_solve";
    case Stage::shard_merge: return "shard_merge";
    }
    return "unknown";
}

#ifdef RMWP_OBS
namespace detail {
thread_local StageStats* t_stage_stats = nullptr;
} // namespace detail
#endif

} // namespace rmwp::obs
