// Event-stream exporters (DESIGN.md §10):
//
//  * JSONL — one JSON object per event per line; trivially greppable and
//    re-parseable (read_events_jsonl round-trips it with line-numbered
//    errors on corruption).  By default the host timestamp is omitted so
//    the file's bytes are a pure function of simulated state — the
//    per-trace artefacts the experiment engine writes are byte-identical
//    for every --jobs value.
//  * Chrome trace_event JSON — loadable in chrome://tracing or
//    https://ui.perfetto.dev.  One lane (thread) per platform resource
//    carrying the executed schedule slices, fault outage/throttle spans,
//    and preemption markers, plus one "RM" lane carrying arrivals,
//    admissions, rejections, rescues, and plan rebuilds as instant events.
//    Timestamps are simulated milliseconds mapped to trace microseconds.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace rmwp::obs {

struct ExportOptions {
    /// Include the non-deterministic host timestamp in JSONL lines.
    bool include_host_time = false;
    /// Lane names for the Chrome export, indexed by resource id; resources
    /// beyond the vector (or an empty vector) fall back to "R<i>".
    std::vector<std::string> resource_names;
};

void write_events_jsonl(std::ostream& out, std::span<const TraceEvent> events,
                        const ExportOptions& options = {});

/// Append one event as a single JSONL line (including the trailing '\n') to
/// `out`.  The unit write_events_jsonl and the rotating TraceStreamWriter
/// are both built on, so shard files and ring dumps are byte-compatible.
void append_event_jsonl(std::string& out, const TraceEvent& event,
                        bool include_host_time = false);

/// Parse a JSONL event stream as written by write_events_jsonl.  Any
/// malformed line — truncated JSON, wrong types, unknown event kind —
/// throws std::runtime_error naming the 1-based line number; garbage is
/// never silently accepted.
[[nodiscard]] std::vector<TraceEvent> read_events_jsonl(std::istream& in);

void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events,
                        const ExportOptions& options = {});

/// Filesystem-safe mangling of a run label ("heuristic/on(oh=0.10)" →
/// "heuristic_on_oh-0.10_"-style): everything outside [A-Za-z0-9._-]
/// becomes '-'.  Shared by the CLI and the experiment engine so per-trace
/// artefact names are predictable.
[[nodiscard]] std::string sanitize_label(std::string_view label);

} // namespace rmwp::obs
