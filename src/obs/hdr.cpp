#include "obs/hdr.hpp"

#include <algorithm>
#include <cmath>

namespace rmwp::obs {

using hdr_detail::bucket_index;
using hdr_detail::bucket_upper;
using hdr_detail::kBucketCount;

namespace {

/// Rank of the sample a quantile selects: ceil(q * count), at least 1.
[[nodiscard]] std::uint64_t quantile_rank(double q, std::uint64_t count) noexcept {
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
    return rank == 0 ? 1 : rank;
}

} // namespace

void HdrHistogram::record(std::uint64_t value) noexcept { record_n(value, 1); }

void HdrHistogram::record_n(std::uint64_t value, std::uint64_t times) noexcept {
    if (times == 0) return;
    counts_[bucket_index(value)] += times;
    count_ += times;
    sum_ += value * times;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t HdrHistogram::quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    const std::uint64_t rank = quantile_rank(q, count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        seen += counts_[i];
        if (seen >= rank) return std::min(bucket_upper(i), max_);
    }
    return max_; // unreachable: seen reaches count_ >= rank
}

void HdrHistogram::merge(const HdrHistogram& other) noexcept {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void HdrHistogram::reset() noexcept {
    counts_.fill(0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ull;
    max_ = 0;
}

std::vector<HdrCell> HdrHistogram::cells() const {
    std::vector<HdrCell> out;
    for (std::size_t i = 0; i < kBucketCount; ++i)
        if (counts_[i] != 0) out.push_back({static_cast<std::uint32_t>(i), counts_[i]});
    return out;
}

void HdrHistogram::load(const std::vector<HdrCell>& cells, std::uint64_t sum,
                        std::uint64_t min, std::uint64_t max) noexcept {
    reset();
    for (const HdrCell& cell : cells) {
        if (cell.index >= kBucketCount) continue; // foreign snapshot; drop
        counts_[cell.index] += cell.count;
        count_ += cell.count;
    }
    sum_ = sum;
    min_ = count_ == 0 ? ~0ull : min;
    max_ = max;
}

std::uint64_t AtomicHdrHistogram::quantile(double q) const noexcept {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    const std::uint64_t rank = quantile_rank(q, total);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        seen += counts_[i].load(std::memory_order_relaxed);
        if (seen >= rank) return bucket_upper(i);
    }
    return bucket_upper(kBucketCount - 1);
}

HdrHistogram AtomicHdrHistogram::snapshot() const {
    std::vector<HdrCell> cells;
    std::size_t lo = kBucketCount;
    std::size_t hi = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        const std::uint64_t n = counts_[i].load(std::memory_order_relaxed);
        if (n == 0) continue;
        cells.push_back({static_cast<std::uint32_t>(i), n});
        if (lo == kBucketCount) lo = i;
        hi = i;
    }
    HdrHistogram out;
    if (cells.empty()) return out;
    // Carry the exact atomic sum into the snapshot instead of re-deriving it
    // from bucket upper bounds (which would bias it up to ~3 % high and make
    // snapshot().sum() drift from the live sum()).  Extrema stay at bucket
    // resolution: the atomic variant deliberately tracks none.
    out.load(cells, sum_.load(std::memory_order_relaxed), bucket_upper(lo),
             bucket_upper(hi));
    return out;
}

} // namespace rmwp::obs
