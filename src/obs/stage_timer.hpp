// Per-stage hot-path profiling for the admission pipeline (DESIGN.md §14).
//
// A thread installs a StageStats block (StageStatsScope RAII); the
// instrumentation macros below then attribute call counts, sampled host
// time, EDF prefilter verdicts, and the plan-arena high-water mark to named
// stages.  With no block installed every hook is a single thread-local
// pointer test; with RMWP_OBS compiled out the macros expand to nothing and
// this header contributes zero symbols to the core/sim archives (the CI
// `nm` gate pins that).
//
// Timing is *sampled*: a steady_clock pair is taken on every 64th call per
// stage and scaled by calls/samples — simulate_edf runs millions of times
// per serve minute, and two clock reads per call would cost more than the
// stage itself.  Hooks only ever write to the installed block, never read
// engine state, so admission decisions are bit-identical with stats
// installed or not (pinned by tests/test_telemetry.cpp).
//
// This file is on the rmwp-analyze R1 wall-clock allowlist; call sites in
// src/core and src/sim stay clock-free by construction.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace rmwp::obs {

/// Named stages of one admission decision, in pipeline order.
enum class Stage : std::uint8_t {
    decide = 0,     ///< whole ResourceManager::decide / decide_batch call
    solve,          ///< one solver run over an assembled PlanInstance
    batch_assemble, ///< BatchPlanner::assemble (candidate/tail rewrite)
    sorted_refresh, ///< memoised sorted-block recomputation in fill_blocks
    prefilter,      ///< analytic EDF prefilter (demand / dispatch-mirror scans)
    edf_simulate,   ///< exact EDF simulation fallback
    shard_solve,    ///< sharded per-bucket sub-solves, incl. cross-shard wait
    shard_merge,    ///< deterministic cross-shard mapping merge
};

inline constexpr std::size_t kStageCount = 8;

/// Lower-snake-case stage name (Prometheus label value).
[[nodiscard]] const char* to_string(Stage stage) noexcept;

/// One thread's accumulated stage profile.  Plain data, defined regardless
/// of RMWP_OBS so ServeConfig/ServeResult can carry pointers to it; only
/// the hooks that fill it are compiled out.
struct StageStats {
    struct Cell {
        std::uint64_t calls = 0;
        std::uint64_t samples = 0;    ///< calls that were actually timed
        std::uint64_t sampled_ns = 0; ///< host time over those samples
    };

    std::array<Cell, kStageCount> stage{};
    std::uint64_t prefilter_infeasible = 0; ///< verdicts: provably infeasible
    std::uint64_t prefilter_feasible = 0;   ///< verdicts: provably feasible
    std::uint64_t prefilter_unknown = 0;    ///< verdicts: fell through to EDF
    std::uint64_t arena_high_water_bytes = 0;

    [[nodiscard]] const Cell& cell(Stage s) const noexcept {
        return stage[static_cast<std::size_t>(s)];
    }
    /// Total host time estimate: sampled_ns scaled up by calls/samples.
    [[nodiscard]] std::uint64_t estimated_ns(Stage s) const noexcept {
        const Cell& c = cell(s);
        if (c.samples == 0) return 0;
        return static_cast<std::uint64_t>(static_cast<double>(c.sampled_ns) *
                                          static_cast<double>(c.calls) /
                                          static_cast<double>(c.samples));
    }
    void reset() noexcept { *this = StageStats{}; }
};

#ifdef RMWP_OBS

namespace detail {
/// The installed per-thread sink; nullptr (the default) disables every hook.
extern thread_local StageStats* t_stage_stats;
} // namespace detail

[[nodiscard]] inline StageStats* stage_stats() noexcept { return detail::t_stage_stats; }

/// Install `stats` as the calling thread's sink for the scope's lifetime
/// (restores the previous sink on exit, so scopes nest).
class StageStatsScope {
public:
    explicit StageStatsScope(StageStats* stats) noexcept : previous_(detail::t_stage_stats) {
        detail::t_stage_stats = stats;
    }
    ~StageStatsScope() { detail::t_stage_stats = previous_; }
    StageStatsScope(const StageStatsScope&) = delete;
    StageStatsScope& operator=(const StageStatsScope&) = delete;

private:
    StageStats* previous_;
};

/// Every 64th call per stage is timed (power of two; see file comment).
inline constexpr std::uint64_t kStageSampleMask = 63;

/// RAII hook: counts one call to `stage` and, on sampled calls, its host
/// time.  No-op when no StageStats is installed.
class StageScope {
public:
    explicit StageScope(Stage stage) noexcept {
        StageStats* stats = stage_stats();
        if (stats == nullptr) return;
        cell_ = &stats->stage[static_cast<std::size_t>(stage)];
        if ((cell_->calls++ & kStageSampleMask) == 0) {
            timed_ = true;
            begin_ = std::chrono::steady_clock::now();
        }
    }
    ~StageScope() {
        if (!timed_) return;
        const auto elapsed = std::chrono::steady_clock::now() - begin_;
        cell_->sampled_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
        ++cell_->samples;
    }
    StageScope(const StageScope&) = delete;
    StageScope& operator=(const StageScope&) = delete;

private:
    StageStats::Cell* cell_ = nullptr;
    std::chrono::steady_clock::time_point begin_{};
    bool timed_ = false;
};

/// Credit externally measured time to a stage (the engine already brackets
/// decide() with a steady_clock pair for the overhead model; that
/// measurement is reused rather than re-clocked).
inline void stage_add_timed_ns(Stage stage, std::uint64_t ns) noexcept {
    StageStats* stats = stage_stats();
    if (stats == nullptr) return;
    StageStats::Cell& cell = stats->stage[static_cast<std::size_t>(stage)];
    ++cell.calls;
    ++cell.samples;
    cell.sampled_ns += ns;
}

#define RMWP_STAGE_CONCAT_IMPL(a, b) a##b
#define RMWP_STAGE_CONCAT(a, b) RMWP_STAGE_CONCAT_IMPL(a, b)

/// Count + sample-time the enclosing scope as `stage` (an obs::Stage).
#define RMWP_STAGE_SCOPE(stage) \
    const ::rmwp::obs::StageScope RMWP_STAGE_CONCAT(rmwp_stage_scope_, __LINE__)(stage)

/// Bump one of the three prefilter verdict counters (`which` is the
/// StageStats member name: prefilter_infeasible / _feasible / _unknown).
#define RMWP_STAGE_VERDICT(which)                                             \
    do {                                                                      \
        if (::rmwp::obs::StageStats* rmwp_stage_stats_ = ::rmwp::obs::stage_stats(); \
            rmwp_stage_stats_ != nullptr)                                     \
            ++rmwp_stage_stats_->which;                                       \
    } while (false)

/// Record the plan-arena footprint high-water mark.  `...` (the byte count
/// expression) is only evaluated when a sink is installed.
#define RMWP_STAGE_ARENA_BYTES(...)                                           \
    do {                                                                      \
        if (::rmwp::obs::StageStats* rmwp_stage_stats_ = ::rmwp::obs::stage_stats(); \
            rmwp_stage_stats_ != nullptr) {                                   \
            const std::uint64_t rmwp_stage_bytes_ = (__VA_ARGS__);            \
            if (rmwp_stage_bytes_ > rmwp_stage_stats_->arena_high_water_bytes) \
                rmwp_stage_stats_->arena_high_water_bytes = rmwp_stage_bytes_; \
        }                                                                     \
    } while (false)

#else // !RMWP_OBS

#define RMWP_STAGE_SCOPE(stage) \
    do {                        \
    } while (false)
#define RMWP_STAGE_VERDICT(which) \
    do {                          \
    } while (false)
#define RMWP_STAGE_ARENA_BYTES(...) \
    do {                            \
    } while (false)

#endif // RMWP_OBS

} // namespace rmwp::obs
