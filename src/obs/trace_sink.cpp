#include "obs/trace_sink.hpp"

#include <atomic>
#include <cstdio>

#include "obs/trace_stream.hpp"
#include "util/check.hpp"

namespace rmwp::obs {
namespace {

/// One warning per process (not per sink): a 500-trace experiment with a
/// small ring must not print 500 copies.  Overwriting is by design — the
/// warning exists so nobody mistakes a truncated event file for the whole
/// run.
std::atomic_flag overwrite_warned = ATOMIC_FLAG_INIT;

void note_ring_overwrite(std::size_t capacity) noexcept {
    if (overwrite_warned.test_and_set(std::memory_order_relaxed)) return;
    std::fprintf(stderr,
                 "obs: TraceSink ring wrapped (capacity %zu); oldest events are being "
                 "overwritten — dropped() counts them, exports keep the most recent tail\n",
                 capacity);
}

} // namespace

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
    RMWP_EXPECT(capacity_ > 0);
    ring_.resize(capacity_);
}

void TraceSink::emit(double t_sim, EventKind kind, std::uint64_t task, std::int64_t resource,
                     double detail, std::uint32_t aux) noexcept {
    if (emitted_ == capacity_) note_ring_overwrite(capacity_);
    TraceEvent& slot = ring_[emitted_ % capacity_];
    slot.t_sim = t_sim;
    slot.t_host =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    slot.task = task;
    slot.resource = resource;
    slot.detail = detail;
    slot.aux = aux;
    slot.kind = kind;
    ++emitted_;
    if (stream_ != nullptr) stream_->append(slot);
}

std::vector<TraceEvent> TraceSink::events() const {
    std::vector<TraceEvent> out;
    const std::uint64_t retained = emitted_ < capacity_ ? emitted_ : capacity_;
    out.reserve(retained);
    const std::uint64_t first = emitted_ - retained;
    for (std::uint64_t k = 0; k < retained; ++k)
        out.push_back(ring_[(first + k) % capacity_]);
    return out;
}

} // namespace rmwp::obs
