#include "obs/trace_sink.hpp"

#include "util/check.hpp"

namespace rmwp::obs {

TraceSink::TraceSink(std::size_t capacity) : capacity_(capacity) {
    RMWP_EXPECT(capacity_ > 0);
    ring_.resize(capacity_);
}

void TraceSink::emit(double t_sim, EventKind kind, std::uint64_t task, std::int64_t resource,
                     double detail, std::uint32_t aux) noexcept {
    TraceEvent& slot = ring_[emitted_ % capacity_];
    slot.t_sim = t_sim;
    slot.t_host =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    slot.task = task;
    slot.resource = resource;
    slot.detail = detail;
    slot.aux = aux;
    slot.kind = kind;
    ++emitted_;
}

std::vector<TraceEvent> TraceSink::events() const {
    std::vector<TraceEvent> out;
    const std::uint64_t retained = emitted_ < capacity_ ? emitted_ : capacity_;
    out.reserve(retained);
    const std::uint64_t first = emitted_ - retained;
    for (std::uint64_t k = 0; k < retained; ++k)
        out.push_back(ring_[(first + k) % capacity_]);
    return out;
}

} // namespace rmwp::obs
