// Metrics registry (DESIGN.md §10): named counters, gauges, and
// fixed-bucket histograms owned by one TraceSink (and therefore by one
// simulation run — single-threaded by construction, no locks anywhere).
//
// Metrics come in two scopes.  `sim` metrics derive exclusively from
// simulated state (rejection reasons, per-resource busy time, plan sizes)
// and are bit-identical across jobs counts and tracing configurations;
// `host` metrics measure the machine the run happens to execute on
// (admission latency) and are excluded from every determinism comparison,
// exactly like TraceResult's wall-clock fields.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/hdr.hpp"

namespace rmwp::obs {

enum class MetricScope : std::uint8_t {
    sim,  ///< derived from simulated state only — deterministic
    host, ///< measures the host — excluded from determinism comparisons
};

/// Monotone event count.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept { value_ += n; }
    [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Accumulating scalar (e.g. per-resource busy time).  Merging snapshots
/// across traces sums gauges, so register only sum-mergeable quantities.
class Gauge {
public:
    void add(double v) noexcept { value_ += v; }
    [[nodiscard]] double value() const noexcept { return value_; }

private:
    double value_ = 0.0;
};

/// Fixed-bucket histogram.  Bucket i counts values v with
/// bounds[i-1] < v <= bounds[i] (right-closed); one implicit overflow
/// bucket counts v > bounds.back().  Bounds are fixed at registration so
/// snapshots from different traces merge bucket-by-bucket.
class Histogram {
public:
    /// Throws std::invalid_argument unless bounds are non-empty, finite,
    /// and strictly increasing (equal or NaN bounds would make bucket
    /// assignment ambiguous and snapshots unmergeable).
    explicit Histogram(std::vector<double> bounds);

    void record(double v) noexcept;
    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
    /// bounds().size() + 1 entries; the last is the overflow bucket.
    [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept { return counts_; }
    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }

private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

/// Immutable copy of a registry's state, safe to move across threads and
/// embed in TraceResult.  Entries keep registration order so artefacts
/// diff cleanly between runs.
struct MetricsSnapshot {
    struct CounterValue {
        std::string name;
        MetricScope scope = MetricScope::sim;
        std::uint64_t value = 0;
    };
    struct GaugeValue {
        std::string name;
        MetricScope scope = MetricScope::sim;
        double value = 0.0;
    };
    struct HistogramValue {
        std::string name;
        MetricScope scope = MetricScope::sim;
        std::vector<double> bounds;
        std::vector<std::uint64_t> buckets;
        std::uint64_t count = 0;
        double sum = 0.0;
    };
    /// Sparse HDR histogram state (bucket geometry is global, so cells +
    /// exact extrema reconstruct the full histogram; see obs/hdr.hpp).
    struct HdrValue {
        std::string name;
        MetricScope scope = MetricScope::sim;
        std::vector<HdrCell> cells;
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0;
        std::uint64_t max = 0;

        [[nodiscard]] std::uint64_t quantile(double q) const;
    };

    std::vector<CounterValue> counters;
    std::vector<GaugeValue> gauges;
    std::vector<HistogramValue> histograms;
    std::vector<HdrValue> hdrs;

    [[nodiscard]] bool empty() const noexcept {
        return counters.empty() && gauges.empty() && histograms.empty() && hdrs.empty();
    }

    /// Sum `other` into this snapshot, matching entries by name (counters
    /// and gauges add; histograms require identical bounds and add
    /// bucket-wise).  Entries missing on either side are kept/appended, so
    /// merging per-trace snapshots yields the whole-experiment totals.
    void merge(const MetricsSnapshot& other);

    [[nodiscard]] const CounterValue* find_counter(std::string_view name) const noexcept;
    [[nodiscard]] const GaugeValue* find_gauge(std::string_view name) const noexcept;
    [[nodiscard]] const HistogramValue* find_histogram(std::string_view name) const noexcept;
    [[nodiscard]] const HdrValue* find_hdr(std::string_view name) const noexcept;

    [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept {
        const CounterValue* c = find_counter(name);
        return c == nullptr ? 0 : c->value;
    }
};

/// True when every `sim`-scoped metric matches exactly (names, order, and
/// values); `host`-scoped entries are ignored.  The metrics arm of the §9
/// determinism contract.
[[nodiscard]] bool deterministic_equal(const MetricsSnapshot& a, const MetricsSnapshot& b);

/// Name-addressed registry.  Lookup is a linear probe over registration
/// order (registries hold tens of metrics; hot-path call sites cache the
/// returned references instead of re-looking-up).
class MetricsRegistry {
public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Find-or-create.  Re-registering an existing name with the same kind
    /// (and, for histograms, the same bounds) returns the original
    /// instrument.  Registering a name already held by a *different* kind
    /// — or a histogram with different bounds — throws
    /// std::invalid_argument: two instruments sharing one name would
    /// silently shadow each other in snapshots and `/metrics` output.
    [[nodiscard]] Counter& counter(std::string_view name, MetricScope scope = MetricScope::sim);
    [[nodiscard]] Gauge& gauge(std::string_view name, MetricScope scope = MetricScope::sim);
    [[nodiscard]] Histogram& histogram(std::string_view name, std::vector<double> bounds,
                                       MetricScope scope = MetricScope::sim);
    [[nodiscard]] HdrHistogram& hdr(std::string_view name,
                                    MetricScope scope = MetricScope::sim);

    [[nodiscard]] MetricsSnapshot snapshot() const;

private:
    template <typename T>
    struct Entry {
        std::string name;
        MetricScope scope;
        std::unique_ptr<T> instrument;
    };

    /// Throws std::invalid_argument when `name` is already registered
    /// under a kind other than `kind` (the anti-shadowing rule above).
    void reject_cross_kind(std::string_view name, std::string_view kind) const;

    std::vector<Entry<Counter>> counters_;
    std::vector<Entry<Gauge>> gauges_;
    std::vector<Entry<Histogram>> histograms_;
    std::vector<Entry<HdrHistogram>> hdrs_;
};

} // namespace rmwp::obs
