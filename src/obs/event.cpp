#include "obs/event.hpp"

#include <cstring>

namespace rmwp::obs {
namespace {

constexpr const char* kKindNames[kEventKindCount] = {
    "arrival",      "admit",       "reject",      "exec",        "preempt",
    "migrate",      "complete",    "abort",       "rescue_begin", "rescue_keep",
    "rescue_abort", "fault_onset", "fault_recovery", "plan_rebuild",
};

} // namespace

const char* to_string(EventKind kind) noexcept {
    const auto index = static_cast<std::size_t>(kind);
    return index < kEventKindCount ? kKindNames[index] : "unknown";
}

bool parse_event_kind(const char* name, EventKind& out) noexcept {
    for (std::size_t i = 0; i < kEventKindCount; ++i) {
        if (std::strcmp(name, kKindNames[i]) == 0) {
            out = static_cast<EventKind>(i);
            return true;
        }
    }
    return false;
}

} // namespace rmwp::obs
