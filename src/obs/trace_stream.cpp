#include "obs/trace_stream.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace rmwp::obs {
namespace {

constexpr const char* kIndexName = "index.json";

[[nodiscard]] std::string shard_name(std::uint64_t sequence) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "events-%05llu.jsonl",
                  static_cast<unsigned long long>(sequence));
    return buffer;
}

void append_json_double(std::string& out, double d) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    out += buffer;
}

} // namespace

TraceStreamWriter::TraceStreamWriter(std::string directory, TraceStreamOptions options)
    : directory_(std::move(directory)), options_(options) {
    if (options_.max_events_per_shard == 0 || options_.max_bytes_per_shard == 0)
        throw std::runtime_error("trace stream: shard budgets must be positive");
    std::error_code ec;
    std::filesystem::create_directories(directory_, ec);
    if (ec)
        throw std::runtime_error("trace stream: cannot create directory '" + directory_ +
                                 "': " + ec.message());
    open_shard();
    write_index();
}

TraceStreamWriter::~TraceStreamWriter() {
    try {
        finish();
    } catch (...) { // NOLINT(bugprone-empty-catch): destructor must not throw
    }
}

void TraceStreamWriter::append(const TraceEvent& event) {
    if (finished_) throw std::runtime_error("trace stream: append after finish");
    if (current_.events >= options_.max_events_per_shard ||
        current_.bytes >= options_.max_bytes_per_shard) {
        seal_shard();
        open_shard();
        write_index();
    }
    line_.clear();
    append_event_jsonl(line_, event, options_.include_host_time);
    out_.write(line_.data(), static_cast<std::streamsize>(line_.size()));
    if (!out_)
        throw std::runtime_error("trace stream: write failed on shard '" + current_.file + "'");
    if (current_.events == 0) current_.first_t_sim = event.t_sim;
    current_.last_t_sim = event.t_sim;
    ++current_.events;
    current_.bytes += line_.size();
    ++total_events_;
    total_bytes_ += line_.size();
}

void TraceStreamWriter::finish() {
    if (finished_) return;
    seal_shard();
    write_index();
    finished_ = true;
}

std::uint64_t TraceStreamWriter::shard_count() const noexcept {
    return sealed_.size() + (shard_open_ ? 1 : 0);
}

void TraceStreamWriter::open_shard() {
    current_ = ShardInfo{};
    current_.file = shard_name(next_shard_++);
    const std::string path = directory_ + "/" + current_.file;
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) throw std::runtime_error("trace stream: cannot open shard '" + path + "'");
    shard_open_ = true;
}

void TraceStreamWriter::seal_shard() {
    if (!shard_open_) return;
    out_.flush();
    out_.close();
    if (out_.fail())
        throw std::runtime_error("trace stream: flush failed on shard '" + current_.file + "'");
    // An empty trailing shard (finish right after rotation, or no events at
    // all) stays on disk but is still listed — consumers see a consistent
    // directory either way.
    sealed_.push_back(current_);
    shard_open_ = false;
}

void TraceStreamWriter::write_index() const {
    std::string body = "{\"version\":1,\"shards\":[";
    bool first = true;
    const auto append_shard = [&](const ShardInfo& shard) {
        if (!first) body += ',';
        first = false;
        body += "{\"file\":\"" + shard.file + "\",\"events\":" + std::to_string(shard.events) +
                ",\"bytes\":" + std::to_string(shard.bytes) + ",\"first_t_sim\":";
        append_json_double(body, shard.first_t_sim);
        body += ",\"last_t_sim\":";
        append_json_double(body, shard.last_t_sim);
        body += '}';
    };
    for (const ShardInfo& shard : sealed_) append_shard(shard);
    if (shard_open_) append_shard(current_);
    body += "],\"total_events\":" + std::to_string(total_events_) +
            ",\"total_bytes\":" + std::to_string(total_bytes_) + "}\n";

    const std::string tmp = directory_ + "/" + kIndexName + ".tmp";
    const std::string final_path = directory_ + "/" + kIndexName;
    {
        std::ofstream index(tmp, std::ios::binary | std::ios::trunc);
        index.write(body.data(), static_cast<std::streamsize>(body.size()));
        index.flush();
        if (!index)
            throw std::runtime_error("trace stream: cannot write index '" + tmp + "'");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, final_path, ec);
    if (ec)
        throw std::runtime_error("trace stream: cannot publish index '" + final_path +
                                 "': " + ec.message());
}

TraceStreamIndex TraceStreamIndex::load(const std::string& directory) {
    const std::string path = directory + "/" + kIndexName;
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("trace stream: cannot open index '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();

    const JsonValue root = json_parse(text.str());
    if (!root.is_object()) throw std::runtime_error("trace stream index: not a JSON object");
    const auto u64_field = [&](const JsonValue& object, const char* key) -> std::uint64_t {
        const JsonValue* field = object.find(key);
        if (field == nullptr || !field->is_number())
            throw std::runtime_error(std::string("trace stream index: missing numeric field \"") +
                                     key + "\"");
        return static_cast<std::uint64_t>(field->as_number());
    };
    const auto double_field = [&](const JsonValue& object, const char* key) -> double {
        const JsonValue* field = object.find(key);
        if (field == nullptr || !field->is_number())
            throw std::runtime_error(std::string("trace stream index: missing numeric field \"") +
                                     key + "\"");
        return field->as_number();
    };

    TraceStreamIndex index;
    const JsonValue* shards = root.find("shards");
    if (shards == nullptr || !shards->is_array())
        throw std::runtime_error("trace stream index: missing \"shards\" array");
    for (const JsonValue& entry : shards->as_array()) {
        if (!entry.is_object())
            throw std::runtime_error("trace stream index: shard entry is not an object");
        const JsonValue* file = entry.find("file");
        if (file == nullptr || !file->is_string())
            throw std::runtime_error("trace stream index: shard entry lacks \"file\"");
        index.shards.push_back({file->as_string(), u64_field(entry, "events"),
                                u64_field(entry, "bytes"), double_field(entry, "first_t_sim"),
                                double_field(entry, "last_t_sim")});
    }
    index.total_events = u64_field(root, "total_events");
    index.total_bytes = u64_field(root, "total_bytes");
    return index;
}

} // namespace rmwp::obs
