// TraceSink — the per-run event recorder (DESIGN.md §10).
//
// One sink belongs to exactly one simulation run, and a run executes on
// exactly one thread, so recording is lock-free by construction: emit() is
// a bounds-free store into a pre-sized ring plus one host-clock read.  The
// parallel experiment engine creates one sink per trace cell; sinks are
// never shared across threads (the same per-thread discipline as
// PlanScratch::local()).
//
// The ring keeps the most recent `capacity` events; older events are
// overwritten and counted in dropped().  Overwriting (rather than
// stopping) keeps emit() O(1) and branch-predictable on the admission hot
// path, and the tail of a run — completions, rescues, final rebuilds — is
// exactly what post-mortem debugging needs.
//
// Recording hooks compile to nothing when the build disables the
// observability layer (-DRMWP_OBS=OFF): RMWP_TRACE expands to a no-op and
// no tracer symbol is referenced from the simulator.  When compiled in but
// no sink is attached (the default), each hook costs one null-pointer
// branch.
#pragma once

#include <chrono>
#include <vector>

#include "obs/event.hpp"
#include "obs/metrics.hpp"

namespace rmwp::obs {

class TraceStreamWriter;

class TraceSink {
public:
    static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

    explicit TraceSink(std::size_t capacity = kDefaultCapacity);

    TraceSink(const TraceSink&) = delete;
    TraceSink& operator=(const TraceSink&) = delete;

    /// Record one event.  `t_host` is stamped here (host seconds since the
    /// sink was created); every other field is caller-provided simulated
    /// state, so the deterministic payload never depends on the host.
    void emit(double t_sim, EventKind kind, std::uint64_t task = kNoTask,
              std::int64_t resource = kNoResource, double detail = 0.0,
              std::uint32_t aux = 0) noexcept;

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    /// Events ever emitted (including overwritten ones).
    [[nodiscard]] std::uint64_t total_emitted() const noexcept { return emitted_; }
    /// Events lost to ring wraparound.
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        return emitted_ > capacity_ ? emitted_ - capacity_ : 0;
    }
    /// Events currently retained in the ring (== capacity once wrapped).
    [[nodiscard]] std::uint64_t occupancy() const noexcept {
        return emitted_ < capacity_ ? emitted_ : capacity_;
    }

    /// The retained events, oldest first.
    [[nodiscard]] std::vector<TraceEvent> events() const;

    [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
    [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }

    /// Forward every emitted event to a durable rotating shard stream (in
    /// addition to the ring).  The writer must outlive the sink or be
    /// detached with nullptr first; emit() stays noexcept by treating
    /// stream I/O failures as fatal (a durable trace that silently loses
    /// events would be worse than a crash).
    void set_stream(TraceStreamWriter* stream) noexcept { stream_ = stream; }
    [[nodiscard]] TraceStreamWriter* stream() const noexcept { return stream_; }

private:
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::uint64_t emitted_ = 0;
    std::chrono::steady_clock::time_point start_ = std::chrono::steady_clock::now();
    MetricsRegistry metrics_;
    TraceStreamWriter* stream_ = nullptr;
};

} // namespace rmwp::obs

/// Record an event through a nullable sink pointer.  Compiled out entirely
/// (arguments unevaluated) when the observability layer is disabled.
#ifdef RMWP_OBS
#define RMWP_TRACE(sink, ...)                          \
    do {                                               \
        if ((sink) != nullptr) (sink)->emit(__VA_ARGS__); \
    } while (false)
#else
#define RMWP_TRACE(sink, ...) \
    do {                      \
    } while (false)
#endif
