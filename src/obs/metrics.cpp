#include "obs/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace rmwp::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
    if (bounds_.empty())
        throw std::invalid_argument("obs: Histogram needs at least one bucket bound");
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (!std::isfinite(bounds_[i]))
            throw std::invalid_argument("obs: Histogram bound " + std::to_string(i) +
                                        " is not finite");
        if (i > 0 && bounds_[i] <= bounds_[i - 1])
            throw std::invalid_argument(
                "obs: Histogram bounds must be strictly increasing (bound " +
                std::to_string(i) + " = " + std::to_string(bounds_[i]) +
                " does not exceed its predecessor " + std::to_string(bounds_[i - 1]) + ")");
    }
    counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) noexcept {
    // Right-closed buckets: v lands in the first bucket whose upper bound
    // is >= v; strictly above the last bound is overflow.
    std::size_t bucket = bounds_.size();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (v <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    ++counts_[bucket];
    ++count_;
    sum_ += v;
}

namespace {

template <typename Entries>
[[nodiscard]] auto* find_by_name(Entries& entries, std::string_view name) noexcept {
    for (auto& entry : entries)
        if (entry.name == name) return &entry;
    return static_cast<decltype(&entries.front())>(nullptr);
}

} // namespace

void MetricsRegistry::reject_cross_kind(std::string_view name, std::string_view kind) const {
    const auto held_as = [&](std::string_view other_kind) {
        throw std::invalid_argument("obs: metric '" + std::string(name) +
                                    "' is already registered as a " + std::string(other_kind) +
                                    "; re-registering it as a " + std::string(kind) +
                                    " would shadow it");
    };
    if (kind != "counter" && find_by_name(counters_, name) != nullptr) held_as("counter");
    if (kind != "gauge" && find_by_name(gauges_, name) != nullptr) held_as("gauge");
    if (kind != "histogram" && find_by_name(histograms_, name) != nullptr) held_as("histogram");
    if (kind != "hdr histogram" && find_by_name(hdrs_, name) != nullptr)
        held_as("hdr histogram");
}

Counter& MetricsRegistry::counter(std::string_view name, MetricScope scope) {
    if (auto* entry = find_by_name(counters_, name)) return *entry->instrument;
    reject_cross_kind(name, "counter");
    counters_.push_back({std::string(name), scope, std::make_unique<Counter>()});
    return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(std::string_view name, MetricScope scope) {
    if (auto* entry = find_by_name(gauges_, name)) return *entry->instrument;
    reject_cross_kind(name, "gauge");
    gauges_.push_back({std::string(name), scope, std::make_unique<Gauge>()});
    return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                                      MetricScope scope) {
    if (auto* entry = find_by_name(histograms_, name)) {
        if (entry->instrument->bounds() != bounds)
            throw std::invalid_argument("obs: histogram '" + std::string(name) +
                                        "' re-registered with different bucket bounds");
        return *entry->instrument;
    }
    reject_cross_kind(name, "histogram");
    histograms_.push_back(
        {std::string(name), scope, std::make_unique<Histogram>(std::move(bounds))});
    return *histograms_.back().instrument;
}

HdrHistogram& MetricsRegistry::hdr(std::string_view name, MetricScope scope) {
    if (auto* entry = find_by_name(hdrs_, name)) return *entry->instrument;
    reject_cross_kind(name, "hdr histogram");
    hdrs_.push_back({std::string(name), scope, std::make_unique<HdrHistogram>()});
    return *hdrs_.back().instrument;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& entry : counters_)
        snap.counters.push_back({entry.name, entry.scope, entry.instrument->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& entry : gauges_)
        snap.gauges.push_back({entry.name, entry.scope, entry.instrument->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& entry : histograms_)
        snap.histograms.push_back({entry.name, entry.scope, entry.instrument->bounds(),
                                   entry.instrument->buckets(), entry.instrument->count(),
                                   entry.instrument->sum()});
    snap.hdrs.reserve(hdrs_.size());
    for (const auto& entry : hdrs_)
        snap.hdrs.push_back({entry.name, entry.scope, entry.instrument->cells(),
                             entry.instrument->count(), entry.instrument->sum(),
                             entry.instrument->min(), entry.instrument->max()});
    return snap;
}

std::uint64_t MetricsSnapshot::HdrValue::quantile(double q) const {
    HdrHistogram dense;
    dense.load(cells, sum, min, max);
    return dense.quantile(q);
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
    for (const CounterValue& theirs : other.counters) {
        if (auto* mine = find_by_name(counters, theirs.name)) mine->value += theirs.value;
        else counters.push_back(theirs);
    }
    for (const GaugeValue& theirs : other.gauges) {
        if (auto* mine = find_by_name(gauges, theirs.name)) mine->value += theirs.value;
        else gauges.push_back(theirs);
    }
    for (const HistogramValue& theirs : other.histograms) {
        auto* mine = find_by_name(histograms, theirs.name);
        if (mine == nullptr) {
            histograms.push_back(theirs);
            continue;
        }
        RMWP_EXPECT(mine->bounds == theirs.bounds);
        for (std::size_t i = 0; i < mine->buckets.size(); ++i)
            mine->buckets[i] += theirs.buckets[i];
        mine->count += theirs.count;
        mine->sum += theirs.sum;
    }
    for (const HdrValue& theirs : other.hdrs) {
        auto* mine = find_by_name(hdrs, theirs.name);
        if (mine == nullptr) {
            hdrs.push_back(theirs);
            continue;
        }
        // The shared fixed geometry makes the merge a sparse bucket-wise
        // sum; route it through the dense form to keep cells ordered.
        HdrHistogram merged;
        merged.load(mine->cells, mine->sum, mine->min, mine->max);
        HdrHistogram addend;
        addend.load(theirs.cells, theirs.sum, theirs.min, theirs.max);
        merged.merge(addend);
        mine->cells = merged.cells();
        mine->count = merged.count();
        mine->sum = merged.sum();
        mine->min = merged.min();
        mine->max = merged.max();
    }
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const noexcept {
    return find_by_name(counters, name);
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::find_gauge(
    std::string_view name) const noexcept {
    return find_by_name(gauges, name);
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    std::string_view name) const noexcept {
    return find_by_name(histograms, name);
}

const MetricsSnapshot::HdrValue* MetricsSnapshot::find_hdr(
    std::string_view name) const noexcept {
    return find_by_name(hdrs, name);
}

bool deterministic_equal(const MetricsSnapshot& a, const MetricsSnapshot& b) {
    // Sim-scoped entries must match in order, name, and exact value: the
    // registration sequence itself is part of the deterministic behaviour.
    const auto sim_counters = [](const MetricsSnapshot& s) {
        std::vector<const MetricsSnapshot::CounterValue*> out;
        for (const auto& c : s.counters)
            if (c.scope == MetricScope::sim) out.push_back(&c);
        return out;
    };
    const auto ca = sim_counters(a);
    const auto cb = sim_counters(b);
    if (ca.size() != cb.size()) return false;
    for (std::size_t i = 0; i < ca.size(); ++i)
        if (ca[i]->name != cb[i]->name || ca[i]->value != cb[i]->value) return false;

    const auto sim_gauges = [](const MetricsSnapshot& s) {
        std::vector<const MetricsSnapshot::GaugeValue*> out;
        for (const auto& g : s.gauges)
            if (g.scope == MetricScope::sim) out.push_back(&g);
        return out;
    };
    const auto ga = sim_gauges(a);
    const auto gb = sim_gauges(b);
    if (ga.size() != gb.size()) return false;
    for (std::size_t i = 0; i < ga.size(); ++i)
        if (ga[i]->name != gb[i]->name || ga[i]->value != gb[i]->value) return false;

    const auto sim_histograms = [](const MetricsSnapshot& s) {
        std::vector<const MetricsSnapshot::HistogramValue*> out;
        for (const auto& h : s.histograms)
            if (h.scope == MetricScope::sim) out.push_back(&h);
        return out;
    };
    const auto ha = sim_histograms(a);
    const auto hb = sim_histograms(b);
    if (ha.size() != hb.size()) return false;
    for (std::size_t i = 0; i < ha.size(); ++i) {
        if (ha[i]->name != hb[i]->name || ha[i]->bounds != hb[i]->bounds ||
            ha[i]->buckets != hb[i]->buckets || ha[i]->count != hb[i]->count ||
            ha[i]->sum != hb[i]->sum)
            return false;
    }

    const auto sim_hdrs = [](const MetricsSnapshot& s) {
        std::vector<const MetricsSnapshot::HdrValue*> out;
        for (const auto& h : s.hdrs)
            if (h.scope == MetricScope::sim) out.push_back(&h);
        return out;
    };
    const auto da = sim_hdrs(a);
    const auto db = sim_hdrs(b);
    if (da.size() != db.size()) return false;
    for (std::size_t i = 0; i < da.size(); ++i) {
        if (da[i]->name != db[i]->name || da[i]->cells != db[i]->cells ||
            da[i]->count != db[i]->count || da[i]->sum != db[i]->sum ||
            da[i]->min != db[i]->min || da[i]->max != db[i]->max)
            return false;
    }
    return true;
}

} // namespace rmwp::obs
