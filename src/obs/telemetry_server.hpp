// Live telemetry endpoint for long-running serve mode (DESIGN.md §14).
//
// TelemetryServer is a deliberately minimal HTTP/1.1 server: one service
// thread, poll(2)-driven, loopback-only, no dependencies.  It answers
//   GET /metrics  — Prometheus text exposition (version 0.0.4)
//   GET /healthz  — "ok" (200) or the monitor's violation (503)
// and closes every connection after one response.  Request handling never
// touches serve's hot path: the handlers passed in at construction read
// only published snapshots and atomics, so the admission loop never blocks
// on a socket.
//
// PrometheusText is the exposition builder the /metrics handler (and the
// strict parse-back test) use: every metric family gets exactly one
// HELP/TYPE header before its samples, names are sanitised to the
// Prometheus grammar, and doubles are emitted round-trippably.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/stage_timer.hpp"

namespace rmwp::obs {

/// Map an internal metric name to the Prometheus grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes '_'
/// ("reject.no_candidate_plan" -> "reject_no_candidate_plan").
[[nodiscard]] std::string prometheus_name(std::string_view raw);

/// Append-only exposition-text builder (see file comment).
class PrometheusText {
public:
    /// Start a metric family: emits "# HELP" and "# TYPE" lines.  `type`
    /// is one of counter/gauge/histogram/summary/untyped.
    void family(std::string_view name, std::string_view help, std::string_view type);
    /// One sample line; `labels` is the rendered label body without braces
    /// (e.g. `stage="prefilter"`), empty for none, and `suffix` extends the
    /// family name (e.g. "_bucket").
    void sample(std::string_view name, std::string_view labels, double value,
                std::string_view suffix = "");
    void sample(std::string_view name, std::string_view labels, std::uint64_t value,
                std::string_view suffix = "");

    [[nodiscard]] const std::string& text() const noexcept { return text_; }
    [[nodiscard]] std::string take() noexcept { return std::move(text_); }

private:
    std::string text_;
};

/// Render a MetricsSnapshot (counters/gauges/histograms/HDR histograms)
/// under `prefix` ("rmwp_").  Counters get a "_total" suffix; histograms
/// become Prometheus histograms with cumulative `le` buckets; HDR
/// histograms become summaries with p50/p90/p99/p99.9 quantiles.
void render_metrics(PrometheusText& out, const MetricsSnapshot& snapshot,
                    std::string_view prefix);

/// Render a stage profile: rmwp_stage_calls_total / rmwp_stage_time_ns_total
/// (estimated; see StageStats::estimated_ns) labelled by stage, the
/// prefilter verdict counters labelled by verdict, and the plan-arena
/// high-water gauge.
void render_stage_stats(PrometheusText& out, const StageStats& stages,
                        std::string_view prefix);

struct TelemetryHandlers {
    /// Body for GET /metrics (content type text/plain; version=0.0.4).
    std::function<std::string()> metrics;
    /// Empty string = healthy (200 "ok"); non-empty = the violation
    /// description, served with status 503.
    std::function<std::string()> health;
};

class TelemetryServer {
public:
    /// Bind 127.0.0.1:`port` (0 picks an ephemeral port, see port()) and
    /// start the service thread.  Throws std::runtime_error when the
    /// socket cannot be bound.
    TelemetryServer(int port, TelemetryHandlers handlers);
    ~TelemetryServer();
    TelemetryServer(const TelemetryServer&) = delete;
    TelemetryServer& operator=(const TelemetryServer&) = delete;

    /// The bound port (useful with port 0).
    [[nodiscard]] int port() const noexcept { return port_; }
    /// Requests answered so far (any endpoint, including 404s).
    [[nodiscard]] std::uint64_t requests_served() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }

    /// Stop accepting, drain in-flight responses, and join the thread.
    /// Idempotent; the destructor calls it.
    void stop();

private:
    void run();

    TelemetryHandlers handlers_;
    int listen_fd_ = -1;
    int wake_fd_[2] = {-1, -1}; ///< self-pipe: stop() pokes the poll loop
    int port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::thread thread_;
};

} // namespace rmwp::obs
