#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace rmwp::obs {
namespace {

/// Round-trip double formatting (same convention as the bench artefacts).
void write_double(std::ostream& out, double d) {
    if (!std::isfinite(d)) {
        out << "null";
        return;
    }
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.17g", d);
    out << buffer;
}

void write_json_string(std::ostream& out, std::string_view s) {
    out << '"';
    for (const char c : s) {
        switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\n': out << "\\n"; break;
        case '\t': out << "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                out << buffer;
            } else {
                out << c;
            }
            break;
        }
    }
    out << '"';
}

std::string lane_name(const ExportOptions& options, std::int64_t resource) {
    const auto index = static_cast<std::size_t>(resource);
    if (resource >= 0 && index < options.resource_names.size())
        return options.resource_names[index];
    return "R" + std::to_string(resource);
}

/// Mirrors FaultKind (src/fault/fault.hpp) as carried in the event aux
/// field; the simulator pins the correspondence where it emits.
const char* fault_span_name(std::uint32_t aux) {
    switch (aux) {
    case 0: return "OUTAGE";
    case 1: return "PERMANENT FAILURE";
    case 2: return "THROTTLE";
    default: return "FAULT";
    }
}

/// The RM decision lane's thread id — far above any realistic resource id
/// so the lane sorts last in the viewer.
constexpr std::int64_t kRmLaneTid = 1000;

constexpr double kMsToUs = 1000.0; // simulated ms -> trace microseconds

} // namespace

void append_event_jsonl(std::string& out, const TraceEvent& event, bool include_host_time) {
    char buffer[64];
    const auto append_double = [&](double d) {
        if (!std::isfinite(d)) {
            out += "null";
            return;
        }
        std::snprintf(buffer, sizeof buffer, "%.17g", d);
        out += buffer;
    };
    out += "{\"t_sim\":";
    append_double(event.t_sim);
    if (include_host_time) {
        out += ",\"t_host\":";
        append_double(event.t_host);
    }
    // Event kind names are [a-z_] by construction — no string escaping.
    out += ",\"kind\":\"";
    out += to_string(event.kind);
    out += "\",\"task\":";
    if (event.task == kNoTask) out += "null";
    else out += std::to_string(event.task);
    out += ",\"resource\":";
    if (event.resource < 0) out += "null";
    else out += std::to_string(event.resource);
    out += ",\"detail\":";
    append_double(event.detail);
    out += ",\"aux\":";
    out += std::to_string(event.aux);
    out += "}\n";
}

void write_events_jsonl(std::ostream& out, std::span<const TraceEvent> events,
                        const ExportOptions& options) {
    std::string line;
    for (const TraceEvent& event : events) {
        line.clear();
        append_event_jsonl(line, event, options.include_host_time);
        out << line;
    }
}

std::vector<TraceEvent> read_events_jsonl(std::istream& in) {
    std::vector<TraceEvent> events;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto fail = [&](const std::string& message) -> void {
            throw std::runtime_error("events jsonl line " + std::to_string(line_number) + ": " +
                                     message);
        };
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

        JsonValue value{nullptr};
        try {
            value = json_parse(line);
        } catch (const json_error& error) {
            fail(error.what());
        }
        if (!value.is_object()) fail("expected one JSON object per line");

        const auto number_field = [&](const char* key) -> double {
            const JsonValue* field = value.find(key);
            if (field == nullptr || !field->is_number())
                fail(std::string("missing or non-numeric field \"") + key + "\"");
            return field->as_number();
        };

        TraceEvent event;
        event.t_sim = number_field("t_sim");

        const JsonValue* kind = value.find("kind");
        if (kind == nullptr || !kind->is_string()) fail("missing or non-string field \"kind\"");
        if (!parse_event_kind(kind->as_string().c_str(), event.kind))
            fail("unknown event kind \"" + kind->as_string() + "\"");

        const JsonValue* task = value.find("task");
        if (task == nullptr) fail("missing field \"task\"");
        if (task->is_null()) {
            event.task = kNoTask;
        } else if (task->is_number() && task->as_number() >= 0.0) {
            event.task = static_cast<std::uint64_t>(task->as_number());
        } else {
            fail("field \"task\" must be null or a non-negative number");
        }

        const JsonValue* resource = value.find("resource");
        if (resource == nullptr) fail("missing field \"resource\"");
        if (resource->is_null()) {
            event.resource = kNoResource;
        } else if (resource->is_number() && resource->as_number() >= 0.0) {
            event.resource = static_cast<std::int64_t>(resource->as_number());
        } else {
            fail("field \"resource\" must be null or a non-negative number");
        }

        event.detail = number_field("detail");

        const double aux = number_field("aux");
        if (aux < 0.0 || aux > 4294967295.0 || aux != std::floor(aux))
            fail("field \"aux\" must be an unsigned 32-bit integer");
        event.aux = static_cast<std::uint32_t>(aux);

        if (const JsonValue* host = value.find("t_host")) {
            if (!host->is_number()) fail("field \"t_host\" must be a number");
            event.t_host = host->as_number();
        }
        events.push_back(event);
    }
    return events;
}

namespace {

/// Emitter for one trace_event record; tracks the need for separators.
class ChromeWriter {
public:
    explicit ChromeWriter(std::ostream& out) : out_(out) { out_ << "{\"traceEvents\": [\n"; }

    void finish() { out_ << "\n]}\n"; }

    void metadata(std::int64_t tid, const std::string& name) {
        begin();
        out_ << R"({"ph": "M", "pid": 0, "tid": )" << tid
             << R"(, "name": "thread_name", "args": {"name": )";
        write_json_string(out_, name);
        out_ << "}}";
    }

    void complete(std::int64_t tid, const std::string& name, double ts_us, double dur_us) {
        begin();
        out_ << R"({"ph": "X", "pid": 0, "tid": )" << tid << ", \"name\": ";
        write_json_string(out_, name);
        out_ << ", \"ts\": ";
        write_double(out_, ts_us);
        out_ << ", \"dur\": ";
        write_double(out_, dur_us);
        out_ << "}";
    }

    void instant(std::int64_t tid, const std::string& name, double ts_us) {
        begin();
        out_ << R"({"ph": "i", "pid": 0, "tid": )" << tid << ", \"name\": ";
        write_json_string(out_, name);
        out_ << ", \"ts\": ";
        write_double(out_, ts_us);
        out_ << R"(, "s": "t"})";
    }

private:
    void begin() {
        if (!first_) out_ << ",\n";
        first_ = false;
    }

    std::ostream& out_;
    bool first_ = true;
};

} // namespace

void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events,
                        const ExportOptions& options) {
    ChromeWriter writer(out);
    writer.metadata(kRmLaneTid, "RM");

    // Name every resource lane that appears (plus all configured names, so
    // idle resources still show up as empty lanes).
    std::vector<std::int64_t> lanes;
    const auto ensure_lane = [&](std::int64_t resource) {
        for (const std::int64_t lane : lanes)
            if (lane == resource) return;
        lanes.push_back(resource);
        writer.metadata(resource, lane_name(options, resource));
    };
    for (std::size_t i = 0; i < options.resource_names.size(); ++i)
        ensure_lane(static_cast<std::int64_t>(i));
    for (const TraceEvent& event : events)
        if (event.resource >= 0) ensure_lane(event.resource);

    double horizon_us = 0.0;
    for (const TraceEvent& event : events)
        horizon_us = std::max(horizon_us, event.t_sim * kMsToUs);

    // Open fault spans per resource: onset opens, recovery closes; spans
    // still open at the end of the stream (permanent failures) run to the
    // horizon so the outage gap stays visible.
    struct OpenFault {
        std::int64_t resource;
        double start_us;
        std::uint32_t aux;
        double factor;
    };
    std::vector<OpenFault> open_faults;

    for (const TraceEvent& event : events) {
        const double ts = event.t_sim * kMsToUs;
        const std::string task_label =
            event.task == kNoTask ? std::string("-") : std::to_string(event.task);
        switch (event.kind) {
        case EventKind::exec:
            writer.complete(event.resource, "task " + task_label, ts, event.detail * kMsToUs);
            break;
        case EventKind::preempt:
            writer.instant(event.resource, "preempt task " + task_label, ts);
            break;
        case EventKind::complete:
            writer.instant(event.resource >= 0 ? event.resource : kRmLaneTid,
                           "complete task " + task_label, ts);
            break;
        case EventKind::fault_onset:
            open_faults.push_back({event.resource, ts, event.aux, event.detail});
            break;
        case EventKind::fault_recovery: {
            for (std::size_t k = open_faults.size(); k-- > 0;) {
                if (open_faults[k].resource != event.resource) continue;
                writer.complete(event.resource, fault_span_name(open_faults[k].aux),
                                open_faults[k].start_us, ts - open_faults[k].start_us);
                open_faults.erase(open_faults.begin() + static_cast<std::ptrdiff_t>(k));
                break;
            }
            break;
        }
        case EventKind::arrival:
            writer.instant(kRmLaneTid, "arrival task " + task_label, ts);
            break;
        case EventKind::admit:
            writer.instant(kRmLaneTid,
                           "admit task " + task_label + " -> " +
                               lane_name(options, event.resource),
                           ts);
            break;
        case EventKind::reject:
            writer.instant(kRmLaneTid,
                           "reject task " + task_label + " (reason " +
                               std::to_string(event.aux) + ")",
                           ts);
            break;
        case EventKind::migrate:
            writer.instant(kRmLaneTid,
                           "migrate task " + task_label + " " + lane_name(options, event.resource) +
                               " -> " + lane_name(options, static_cast<std::int64_t>(event.aux)),
                           ts);
            break;
        case EventKind::abort_overhead:
            writer.instant(kRmLaneTid, "abort task " + task_label, ts);
            break;
        case EventKind::rescue_begin:
            writer.instant(kRmLaneTid, "rescue activation", ts);
            break;
        case EventKind::rescue_keep:
            writer.instant(kRmLaneTid,
                           "rescue keep task " + task_label + " -> " +
                               lane_name(options, event.resource),
                           ts);
            break;
        case EventKind::rescue_abort:
            writer.instant(kRmLaneTid, "rescue abort task " + task_label, ts);
            break;
        case EventKind::plan_rebuild:
            writer.instant(kRmLaneTid, "plan rebuild", ts);
            break;
        }
    }

    for (const OpenFault& fault : open_faults)
        writer.complete(fault.resource, fault_span_name(fault.aux), fault.start_us,
                        std::max(horizon_us - fault.start_us, 0.0));
    writer.finish();
}

std::string sanitize_label(std::string_view label) {
    std::string out;
    out.reserve(label.size());
    for (const char c : label) {
        const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
        out.push_back(keep ? c : '-');
    }
    return out;
}

} // namespace rmwp::obs
