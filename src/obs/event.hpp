// Structured observability events (DESIGN.md §10).
//
// Every interesting decision the simulator or a resource manager takes —
// arrivals, admissions and rejections (with reason codes), executed
// schedule slices, preemptions, migrations, fault onsets/recoveries,
// rescue steps, plan rebuilds — is recorded as one fixed-size TraceEvent.
// Events carry two clocks: `t_sim` (simulated milliseconds, fully
// deterministic) and `t_host` (host seconds since the sink was created,
// explicitly excluded from every determinism comparison).  The payload is
// numeric by design: the event stream stays POD, allocation-free, and
// cheap enough to record on the admission hot path.
#pragma once

#include <cstdint>
#include <limits>

namespace rmwp::obs {

/// Event taxonomy.  The numeric values are part of the on-disk JSONL
/// format only through their names (to_string/parse below); reordering is
/// safe for binaries but invalidates previously written files, so append
/// new kinds at the end.
enum class EventKind : std::uint8_t {
    arrival = 0,    ///< request arrived (task = trace index, detail = abs deadline)
    admit,          ///< candidate admitted (resource = mapping, aux = used_prediction)
    reject,         ///< candidate rejected (aux = RejectReason code)
    exec,           ///< executed schedule slice (resource, t_sim = begin, detail = duration)
    preempt,        ///< slice closed with the task still unfinished (planned preemption)
    migrate,        ///< task relocated (resource = from, aux = to, detail = energy)
    complete,       ///< task finished (t_sim = completion instant)
    abort_overhead, ///< admitted task dropped: overhead stall made its deadline unreachable
    rescue_begin,   ///< capacity-loss rescue activation (detail = active-set size)
    rescue_keep,    ///< task kept by the rescue (resource = new mapping, aux = was displaced)
    rescue_abort,   ///< task shed by the rescue
    fault_onset,    ///< fault struck (resource, aux = FaultKind code, detail = throttle factor)
    fault_recovery, ///< fault cleared (resource, aux = FaultKind code)
    plan_rebuild,   ///< execution schedule rebuilt (detail = active-set size)
};

inline constexpr std::size_t kEventKindCount = 14;

/// No-task / no-resource sentinels for events that concern the whole run.
inline constexpr std::uint64_t kNoTask = std::numeric_limits<std::uint64_t>::max();
inline constexpr std::int64_t kNoResource = -1;

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// Parse an event-kind name as written by to_string.  Returns false (and
/// leaves `out` untouched) on an unknown name.
[[nodiscard]] bool parse_event_kind(const char* name, EventKind& out) noexcept;

/// One recorded event.  48 bytes, trivially copyable.
struct TraceEvent {
    double t_sim = 0.0;  ///< simulated time (ms) — deterministic
    double t_host = 0.0; ///< host seconds since sink creation — NOT deterministic
    std::uint64_t task = kNoTask;
    std::int64_t resource = kNoResource;
    double detail = 0.0;    ///< kind-specific payload (duration, energy, set size, ...)
    std::uint32_t aux = 0;  ///< kind-specific small payload (reason/kind codes, targets)
    EventKind kind = EventKind::arrival;

    /// Equality over every deterministic field (t_host ignored): the unit
    /// of the jobs-independence and tracing-on/off contracts.
    [[nodiscard]] bool deterministic_equal(const TraceEvent& other) const noexcept {
        return t_sim == other.t_sim && task == other.task && resource == other.resource &&
               detail == other.detail && aux == other.aux && kind == other.kind;
    }
};

} // namespace rmwp::obs
