// Minimal strict JSON parser for the observability layer: the exporters'
// self-check ("parse back what you wrote"), the JSONL event reader, and
// the fuzz-ish negative tests all go through it.  No external dependency;
// errors are json_error exceptions carrying 1-based line:column positions
// so a truncated or corrupted artefact points at the offending byte.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace rmwp::obs {

class json_error : public std::runtime_error {
public:
    json_error(std::string message, std::size_t line, std::size_t column)
        : std::runtime_error("json error at " + std::to_string(line) + ":" +
                             std::to_string(column) + ": " + message),
          line_(line),
          column_(column) {}

    [[nodiscard]] std::size_t line() const noexcept { return line_; }
    [[nodiscard]] std::size_t column() const noexcept { return column_; }

private:
    std::size_t line_;
    std::size_t column_;
};

/// Parsed JSON value.  Numbers are kept as double (the artefacts only
/// contain values a double round-trips); object member order is preserved.
class JsonValue {
public:
    using Array = std::vector<JsonValue>;
    using Object = std::vector<std::pair<std::string, JsonValue>>;

    JsonValue() = default;
    JsonValue(std::nullptr_t) {}
    JsonValue(bool b) : value_(b) {}
    JsonValue(double d) : value_(d) {}
    JsonValue(std::string s) : value_(std::move(s)) {}
    JsonValue(Array a) : value_(std::move(a)) {}
    JsonValue(Object o) : value_(std::move(o)) {}

    [[nodiscard]] bool is_null() const noexcept {
        return std::holds_alternative<std::nullptr_t>(value_);
    }
    [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(value_); }
    [[nodiscard]] bool is_number() const noexcept {
        return std::holds_alternative<double>(value_);
    }
    [[nodiscard]] bool is_string() const noexcept {
        return std::holds_alternative<std::string>(value_);
    }
    [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(value_); }
    [[nodiscard]] bool is_object() const noexcept {
        return std::holds_alternative<Object>(value_);
    }

    [[nodiscard]] bool as_bool() const { return std::get<bool>(value_); }
    [[nodiscard]] double as_number() const { return std::get<double>(value_); }
    [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(value_); }
    [[nodiscard]] const Array& as_array() const { return std::get<Array>(value_); }
    [[nodiscard]] const Object& as_object() const { return std::get<Object>(value_); }

    /// First member with the given key, or nullptr.
    [[nodiscard]] const JsonValue* find(std::string_view key) const {
        for (const auto& [name, value] : as_object())
            if (name == key) return &value;
        return nullptr;
    }

private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_{nullptr};
};

/// Parse exactly one JSON document; trailing non-whitespace is an error.
/// Throws json_error (with line:column) on any malformation.
[[nodiscard]] JsonValue json_parse(std::string_view text);

} // namespace rmwp::obs
