// Rotating JSONL trace shards for endless serve runs (DESIGN.md §14).
//
// The in-memory TraceSink ring keeps only the most recent `capacity`
// events; a long-running service needs durable traces.  TraceStreamWriter
// appends every event to the current shard file (`events-00000.jsonl`,
// byte-compatible with write_events_jsonl) and rotates to a new shard when
// the event-count or byte budget is exceeded.  `index.json` in the same
// directory — rewritten atomically (tmp + rename) on every rotation and on
// finish() — lists each shard with its event count, byte size, and covered
// simulated-time range, so consumers can locate a time window without
// scanning every shard.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace rmwp::obs {

struct TraceStreamOptions {
    std::uint64_t max_events_per_shard = 1u << 16;       ///< rotate after this many events
    std::uint64_t max_bytes_per_shard = 64u * 1024 * 1024; ///< ... or this many bytes
    bool include_host_time = false; ///< host timestamps make shards nondeterministic
};

class TraceStreamWriter {
public:
    /// Creates `directory` (and parents) if needed; throws
    /// std::runtime_error when the directory or first shard cannot be
    /// created or the options are degenerate (zero budgets).
    explicit TraceStreamWriter(std::string directory, TraceStreamOptions options = {});
    ~TraceStreamWriter();
    TraceStreamWriter(const TraceStreamWriter&) = delete;
    TraceStreamWriter& operator=(const TraceStreamWriter&) = delete;

    /// Append one event to the current shard, rotating first when the
    /// budgets are already spent.  Throws std::runtime_error on I/O errors
    /// (short writes must not silently truncate a durable trace).
    void append(const TraceEvent& event);

    /// Seal the current shard and write the final index.  Idempotent;
    /// called by the destructor, but callers that care about errors should
    /// call it explicitly (the destructor swallows them).
    void finish();

    [[nodiscard]] const std::string& directory() const noexcept { return directory_; }
    /// Shards on disk, including the one currently being written.
    [[nodiscard]] std::uint64_t shard_count() const noexcept;
    [[nodiscard]] std::uint64_t total_events() const noexcept { return total_events_; }
    [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }

private:
    struct ShardInfo {
        std::string file; ///< name relative to directory_
        std::uint64_t events = 0;
        std::uint64_t bytes = 0;
        double first_t_sim = 0.0;
        double last_t_sim = 0.0;
    };

    void open_shard();
    void seal_shard();
    void write_index() const;

    std::string directory_;
    TraceStreamOptions options_;
    std::ofstream out_;
    std::string line_; ///< reused per-event serialisation buffer
    std::vector<ShardInfo> sealed_;
    ShardInfo current_;
    std::uint64_t next_shard_ = 0;
    std::uint64_t total_events_ = 0;
    std::uint64_t total_bytes_ = 0;
    bool shard_open_ = false;
    bool finished_ = false;
};

/// Parsed index.json contents (shards in write order) for consumers and the
/// rotation round-trip test.  Throws std::runtime_error on malformed input.
struct TraceStreamIndex {
    struct Shard {
        std::string file;
        std::uint64_t events = 0;
        std::uint64_t bytes = 0;
        double first_t_sim = 0.0;
        double last_t_sim = 0.0;
    };
    std::vector<Shard> shards;
    std::uint64_t total_events = 0;
    std::uint64_t total_bytes = 0;

    [[nodiscard]] static TraceStreamIndex load(const std::string& directory);
};

} // namespace rmwp::obs
