#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>

namespace rmwp::obs {
namespace {

/// Recursive-descent parser with explicit depth limiting (fuzzed inputs
/// must exhaust neither the stack nor memory before hitting an error).
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        skip_whitespace();
        JsonValue value = parse_value(0);
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after JSON value");
        return value;
    }

private:
    static constexpr std::size_t kMaxDepth = 64;

    [[noreturn]] void fail(const std::string& message) const {
        throw json_error(message, line_, column_);
    }

    [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

    [[nodiscard]] char peek() const {
        if (at_end()) fail("unexpected end of input");
        return text_[pos_];
    }

    char take() {
        const char c = peek();
        ++pos_;
        if (c == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        return c;
    }

    void expect(char c) {
        if (at_end() || text_[pos_] != c)
            fail(std::string("expected '") + c + "'");
        (void)take();
    }

    void skip_whitespace() {
        while (!at_end()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
            (void)take();
        }
    }

    JsonValue parse_value(std::size_t depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        if (at_end()) fail("unexpected end of input");
        switch (peek()) {
        case '{': return parse_object(depth);
        case '[': return parse_array(depth);
        case '"': return JsonValue(parse_string());
        case 't': return parse_keyword("true", JsonValue(true));
        case 'f': return parse_keyword("false", JsonValue(false));
        case 'n': return parse_keyword("null", JsonValue(nullptr));
        default: return parse_number();
        }
    }

    JsonValue parse_keyword(const char* keyword, JsonValue value) {
        for (const char* c = keyword; *c != '\0'; ++c)
            if (at_end() || take() != *c) fail(std::string("invalid literal, expected ") + keyword);
        return value;
    }

    JsonValue parse_number() {
        const std::size_t start = pos_;
        if (!at_end() && text_[pos_] == '-') (void)take();
        bool any_digit = false;
        const auto digits = [&] {
            while (!at_end() && text_[pos_] >= '0' && text_[pos_] <= '9') {
                (void)take();
                any_digit = true;
            }
        };
        digits();
        if (!at_end() && text_[pos_] == '.') {
            (void)take();
            digits();
        }
        if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            (void)take();
            if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) (void)take();
            digits();
        }
        if (!any_digit) fail("invalid number");
        const std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || errno == ERANGE || !std::isfinite(value))
            fail("unrepresentable number '" + token + "'");
        return JsonValue(value);
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            if (at_end()) fail("unterminated string");
            const char c = take();
            if (c == '"') return out;
            if (static_cast<unsigned char>(c) < 0x20) fail("unescaped control character");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (at_end()) fail("unterminated escape");
            const char escape = take();
            switch (escape) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    if (at_end()) fail("truncated \\u escape");
                    const char h = take();
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else fail("invalid \\u escape digit");
                }
                // The artefacts only escape control characters; decode the
                // BMP code point as UTF-8 without surrogate-pair support.
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
            }
            default: fail("unknown escape sequence");
            }
        }
    }

    JsonValue parse_array(std::size_t depth) {
        expect('[');
        JsonValue::Array items;
        skip_whitespace();
        if (!at_end() && peek() == ']') {
            (void)take();
            return JsonValue(std::move(items));
        }
        while (true) {
            skip_whitespace();
            items.push_back(parse_value(depth + 1));
            skip_whitespace();
            const char c = take();
            if (c == ']') return JsonValue(std::move(items));
            if (c != ',') fail("expected ',' or ']' in array");
        }
    }

    JsonValue parse_object(std::size_t depth) {
        expect('{');
        JsonValue::Object members;
        skip_whitespace();
        if (!at_end() && peek() == '}') {
            (void)take();
            return JsonValue(std::move(members));
        }
        while (true) {
            skip_whitespace();
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            skip_whitespace();
            members.emplace_back(std::move(key), parse_value(depth + 1));
            skip_whitespace();
            const char c = take();
            if (c == '}') return JsonValue(std::move(members));
            if (c != ',') fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t column_ = 1;
};

} // namespace

JsonValue json_parse(std::string_view text) { return Parser(text).parse_document(); }

} // namespace rmwp::obs
