// Tests for the DVFS extension: operating-point platform construction,
// level-scaled catalog generation, physical-timeline serialisation, the
// RM's speed/energy choices, and end-to-end invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

Platform make_dvfs_platform() {
    PlatformBuilder builder;
    builder.add_cpu_with_dvfs({1.0, 0.8, 0.5}, "big");
    builder.add_cpu_with_dvfs({1.0, 0.6}, "little");
    builder.add_gpu("GPU");
    return builder.build();
}

TEST(DvfsPlatform, BuilderCreatesOperatingPoints) {
    const Platform platform = make_dvfs_platform();
    ASSERT_EQ(platform.size(), 6u); // 3 + 2 + 1
    EXPECT_EQ(platform.physical_count(), 3u);
    EXPECT_TRUE(platform.has_dvfs());

    EXPECT_EQ(platform.resource(0).name(), "big@1");
    EXPECT_EQ(platform.resource(1).name(), "big@0.8");
    EXPECT_EQ(platform.resource(2).name(), "big@0.5");
    EXPECT_EQ(platform.resource(0).physical(), 0u);
    EXPECT_EQ(platform.resource(1).physical(), 0u);
    EXPECT_EQ(platform.resource(2).physical(), 0u);
    EXPECT_DOUBLE_EQ(platform.resource(1).frequency(), 0.8);
    EXPECT_EQ(platform.resource(3).physical(), 3u);
    EXPECT_EQ(platform.resource(4).physical(), 3u);
    EXPECT_EQ(platform.resource(5).physical(), 5u);
    EXPECT_FALSE(make_paper_platform().has_dvfs());
}

TEST(DvfsPlatform, BuilderValidatesLevels) {
    PlatformBuilder builder;
    EXPECT_THROW(builder.add_cpu_with_dvfs({0.8, 0.5}), precondition_error); // must start at 1.0
    EXPECT_THROW(builder.add_cpu_with_dvfs({1.0, 1.0}), precondition_error); // strictly decreasing
    EXPECT_THROW(builder.add_cpu_with_dvfs({}), precondition_error);
}

TEST(DvfsCatalog, LevelsDeriveFromNominalDraw) {
    const Platform platform = make_dvfs_platform();
    Rng rng(31);
    const Catalog catalog = generate_catalog(platform, CatalogParams{.type_count = 40}, rng);
    for (const TaskType& type : catalog) {
        // big core: levels 1.0 / 0.8 / 0.5.
        EXPECT_NEAR(type.wcet(1), type.wcet(0) / 0.8, 1e-9);
        EXPECT_NEAR(type.wcet(2), type.wcet(0) / 0.5, 1e-9);
        EXPECT_NEAR(type.energy(1), type.energy(0) * 0.64, 1e-9);
        EXPECT_NEAR(type.energy(2), type.energy(0) * 0.25, 1e-9);
        // Level switches on one core move no state.
        EXPECT_DOUBLE_EQ(type.migration_time(0, 2), 0.0);
        EXPECT_DOUBLE_EQ(type.migration_energy(1, 0), 0.0);
        // Real migrations still cost.
        EXPECT_GT(type.migration_time(0, 3), 0.0);
        EXPECT_GT(type.migration_energy(2, 5), 0.0);
    }
}

TEST(DvfsCatalog, StaticEnergyShiftsTheOptimalLevel) {
    // cost(f) = (1-s) f^2 + s / f.  With s = 0.5 and the big core's levels
    // {1, 0.8, 0.5} the cheapest operating point is the *middle* one:
    // slowing down all the way loses to leakage.
    const Platform platform = make_dvfs_platform();
    Rng rng(32);
    CatalogParams params;
    params.type_count = 10;
    params.static_energy_fraction = 0.5;
    const Catalog catalog = generate_catalog(platform, params, rng);
    for (const TaskType& type : catalog) {
        const double e1 = type.energy(0);            // big@1.0
        EXPECT_NEAR(type.energy(1), e1 * (0.5 * 0.64 + 0.5 / 0.8), 1e-9);
        EXPECT_NEAR(type.energy(2), e1 * (0.5 * 0.25 + 0.5 / 0.5), 1e-9);
        EXPECT_LT(type.energy(1), type.energy(0)); // 0.8 beats full speed
        EXPECT_LT(type.energy(1), type.energy(2)); // ... and beats 0.5
    }
    // Validation rejects nonsense.
    params.static_energy_fraction = 1.5;
    EXPECT_THROW(params.validate(), precondition_error);
}

TEST(DvfsSchedule, LevelsOfOneCoreSerialise) {
    const Platform platform = make_dvfs_platform();
    // Two items on different operating points of the big core.
    ScheduleItem a;
    a.uid = 1;
    a.resource = 0; // big@1
    a.abs_deadline = 100.0;
    a.duration = 4.0;
    ScheduleItem b;
    b.uid = 2;
    b.resource = 2; // big@0.5
    b.abs_deadline = 50.0;
    b.duration = 6.0;

    const WindowSchedule schedule =
        build_window_schedule(platform, 0.0, std::vector{a, b});
    EXPECT_TRUE(schedule.feasible);
    // Both run on the physical timeline of resource 0, EDF order: b first.
    ASSERT_EQ(schedule.per_resource[0].segments.size(), 2u);
    EXPECT_TRUE(schedule.per_resource[1].segments.empty());
    EXPECT_TRUE(schedule.per_resource[2].segments.empty());
    EXPECT_DOUBLE_EQ(*schedule.completion_of(2), 6.0);
    EXPECT_DOUBLE_EQ(*schedule.completion_of(1), 10.0);
}

struct DvfsWorld {
    Platform platform = make_dvfs_platform();
    Catalog catalog;

    static Catalog make_catalog(const Platform& platform) {
        Rng rng = Rng(777).derive(1);
        return generate_catalog(platform, CatalogParams{.type_count = 30}, rng);
    }

    DvfsWorld() : catalog(make_catalog(platform)) {}
};

TEST(DvfsRm, LooseDeadlinePicksSlowestLevel) {
    const DvfsWorld world;
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.candidate.uid = 1;
    context.candidate.type = 0;
    context.candidate.absolute_deadline = 10000.0; // no time pressure at all

    // With no deadline pressure the cheapest option wins.  The cheapest CPU
    // point is the lowest-frequency level of the cheaper core; the GPU may
    // still beat it (2-10x advantage) — either way the energy must be the
    // global minimum.
    HeuristicRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    const TaskType& type = world.catalog.type(0);
    double cheapest = type.energy(0);
    for (ResourceId i = 1; i < world.platform.size(); ++i)
        cheapest = std::min(cheapest, type.energy(i));
    EXPECT_DOUBLE_EQ(type.energy(decision.assignments[0].resource), cheapest);
}

TEST(DvfsRm, TightDeadlineForcesFasterLevel) {
    // Hand-built catalog on the DVFS platform (GPU not executable):
    //   big    @1.0/0.8/0.5: wcet 40/50/80,  energy 15/9.6/3.75
    //   little @1.0/0.6:     wcet 44/73.3,   energy 14/5.04
    // With deadline 44 only big@1 (finishes at 40) and little@1 (44) fit;
    // little@1 is the cheaper of the two, so the energy-minimal admissible
    // choice is resource 3.
    const Platform platform = make_dvfs_platform();
    const std::size_t n = platform.size();
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    std::vector<TaskType> types;
    types.emplace_back(
        0,
        std::vector<double>{40.0, 50.0, 80.0, 44.0, 44.0 / 0.6, kNotExecutable},
        std::vector<double>{15.0, 9.6, 3.75, 14.0, 14.0 * 0.36, kNotExecutable}, zero, zero);
    const Catalog catalog(std::move(types));

    ArrivalContext context;
    context.now = 0.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.candidate.uid = 1;
    context.candidate.type = 0;
    context.candidate.absolute_deadline = 44.0;

    HeuristicRM heuristic;
    ExactRM exact;
    for (ResourceManager* rm : std::initializer_list<ResourceManager*>{&heuristic, &exact}) {
        const Decision decision = rm->decide(context);
        ASSERT_TRUE(decision.admitted);
        EXPECT_EQ(decision.assignments[0].resource, 3u) << rm->name();
    }

    // Loosening the deadline to 90 opens big@0.5 (80 <= 90, 3.75 J): the
    // slow level becomes the optimum.
    context.candidate.absolute_deadline = 90.0;
    for (ResourceManager* rm : std::initializer_list<ResourceManager*>{&heuristic, &exact}) {
        const Decision decision = rm->decide(context);
        ASSERT_TRUE(decision.admitted);
        EXPECT_EQ(decision.assignments[0].resource, 2u) << rm->name();
    }
}

TEST(DvfsEndToEnd, DvfsSavesEnergyOnLooseDeadlines) {
    // The same workload on the same cores, with and without operating
    // points: under loose deadlines DVFS must save energy without hurting
    // acceptance.
    Platform plain = PlatformBuilder{}.add_cpu("c1").add_cpu("c2").add_gpu("GPU").build();
    Platform dvfs = PlatformBuilder{}
                        .add_cpu_with_dvfs({1.0, 0.7, 0.4}, "c1")
                        .add_cpu_with_dvfs({1.0, 0.7, 0.4}, "c2")
                        .add_gpu("GPU")
                        .build();
    Rng rng_a = Rng(55).derive(1);
    const Catalog plain_catalog = generate_catalog(plain, CatalogParams{.type_count = 40}, rng_a);
    Rng rng_b = Rng(55).derive(1);
    const Catalog dvfs_catalog = generate_catalog(dvfs, CatalogParams{.type_count = 40}, rng_b);

    TraceGenParams params;
    params.length = 150;
    params.group = DeadlineGroup::less_tight;
    params.interarrival_mean = 14.0;
    params.interarrival_stddev = 4.0;
    Rng trace_rng = Rng(56).derive(2);
    const Trace trace = generate_trace(plain_catalog, params, trace_rng);

    HeuristicRM rm;
    NullPredictor off_a;
    const TraceResult plain_result = simulate_trace(plain, plain_catalog, trace, rm, off_a);
    NullPredictor off_b;
    const TraceResult dvfs_result = simulate_trace(dvfs, dvfs_catalog, trace, rm, off_b);

    EXPECT_EQ(plain_result.deadline_misses, 0u);
    EXPECT_EQ(dvfs_result.deadline_misses, 0u);
    EXPECT_LE(dvfs_result.rejected, plain_result.rejected + 2);
    EXPECT_LT(dvfs_result.total_energy, plain_result.total_energy);
}

TEST(DvfsEndToEnd, MidMigrationLevelSwitchRegression) {
    // Regression: a started task that still carried unpaid migration time
    // was switched to another operating point of the same core; the stale
    // pending overhead survived while the plan assumed it replaced, making
    // the executed schedule infeasible.  This exact configuration used to
    // throw.
    PlatformBuilder builder;
    for (int i = 1; i <= 5; ++i)
        builder.add_cpu_with_dvfs({1.0, 0.75, 0.5}, "CPU" + std::to_string(i));
    builder.add_gpu("GPU");
    const Platform platform = builder.build();
    Rng catalog_rng = Rng(42).derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, catalog_rng);

    TraceGenParams params;
    params.length = 400;
    params.group = DeadlineGroup::less_tight;
    const auto traces = generate_traces(catalog, params, 13, Rng(42).derive(2));

    HeuristicRM rm;
    OraclePredictor oracle;
    const TraceResult result =
        simulate_trace(platform, catalog, traces[12], rm, oracle);
    EXPECT_EQ(result.deadline_misses, 0u);
}

class DvfsInvariants : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(DvfsInvariants, SimulationGuaranteesHold) {
    const auto [seed, predict] = GetParam();
    const DvfsWorld world;
    TraceGenParams params;
    params.length = 120;
    params.interarrival_mean = 10.0;
    params.interarrival_stddev = 3.0;
    Rng trace_rng = Rng(seed).derive(3);
    const Trace trace = generate_trace(world.catalog, params, trace_rng);

    HeuristicRM rm;
    std::unique_ptr<Predictor> predictor;
    if (predict) predictor = std::make_unique<OraclePredictor>();
    else predictor = std::make_unique<NullPredictor>();
    const TraceResult result =
        simulate_trace(world.platform, world.catalog, trace, rm, *predictor);

    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_GT(result.total_energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvfsInvariants,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4, 5), ::testing::Bool()));

TEST(DvfsExact, ExactNeverCostsMoreThanHeuristic) {
    const DvfsWorld world;
    Rng rng(88);
    for (int round = 0; round < 25; ++round) {
        ArrivalContext context;
        context.now = 0.0;
        context.platform = &world.platform;
        context.catalog = &world.catalog;
        context.candidate.uid = 1;
        context.candidate.type = rng.index(world.catalog.size());
        context.candidate.absolute_deadline = rng.uniform(30.0, 400.0);

        const PlanInstance instance = PlanInstance::build(context, 0);
        const auto heuristic = HeuristicRM::map_tasks(instance);
        const auto exact = ExactRM::optimize(instance);
        if (!heuristic) continue;
        ASSERT_TRUE(exact.has_value());
        double heuristic_energy = 0.0;
        for (std::size_t j = 0; j < instance.tasks.size(); ++j)
            heuristic_energy += instance.tasks[j].epm[(*heuristic)[j]];
        EXPECT_LE(exact->energy, heuristic_energy + 1e-9);
    }
}

} // namespace
} // namespace rmwp
