// Tests for the execution-time-variation extension: tasks whose actual work
// is below their WCET budget complete early, the simulator reclaims the
// slack, and all firm-real-time guarantees still hold (the RM plans with the
// pessimistic WCET, so early completion can only help).
#include <gtest/gtest.h>

#include <tuple>

#include "core/heuristic_rm.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

struct VariationWorld {
    Platform platform = make_paper_platform();
    Catalog catalog;

    static Catalog make_catalog(const Platform& platform) {
        Rng rng = Rng(606).derive(1);
        return generate_catalog(platform, CatalogParams{}, rng);
    }

    VariationWorld() : catalog(make_catalog(platform)) {}

    [[nodiscard]] Trace make_trace(std::size_t length, double interarrival = 6.0) const {
        TraceGenParams params;
        params.length = length;
        params.interarrival_mean = interarrival;
        params.interarrival_stddev = interarrival / 3.0;
        Rng trace_rng = Rng(606).derive(2);
        return generate_trace(catalog, params, trace_rng);
    }
};

TEST(ExecutionVariation, FactorOneReproducesWcetBehaviour) {
    const VariationWorld world;
    const Trace trace = world.make_trace(150);
    HeuristicRM rm;

    NullPredictor off_a;
    const TraceResult baseline = simulate_trace(world.platform, world.catalog, trace, rm, off_a);

    SimOptions options;
    options.execution_time_factor_min = 1.0;
    options.execution_seed = 99; // must be irrelevant at factor 1
    NullPredictor off_b;
    const TraceResult same =
        simulate_trace(world.platform, world.catalog, trace, rm, off_b, options);

    EXPECT_EQ(baseline.accepted, same.accepted);
    EXPECT_DOUBLE_EQ(baseline.total_energy, same.total_energy);
}

TEST(ExecutionVariation, EarlyCompletionReducesEnergyAndKeepsGuarantees) {
    const VariationWorld world;
    const Trace trace = world.make_trace(250);
    HeuristicRM rm;

    NullPredictor off_a;
    const TraceResult wcet_exact =
        simulate_trace(world.platform, world.catalog, trace, rm, off_a);

    SimOptions options;
    options.execution_time_factor_min = 0.5; // actual work uniform in [0.5, 1] x WCET
    options.execution_seed = 7;
    NullPredictor off_b;
    const TraceResult varied =
        simulate_trace(world.platform, world.catalog, trace, rm, off_b, options);

    EXPECT_EQ(varied.deadline_misses, 0u);
    EXPECT_EQ(varied.completed, varied.accepted);
    // Less actual work executed => less energy...
    EXPECT_LT(varied.total_energy, wcet_exact.total_energy);
    // ... and reclaimed slack can only help admission.
    EXPECT_GE(varied.accepted, wcet_exact.accepted);
}

TEST(ExecutionVariation, DeterministicInExecutionSeed) {
    const VariationWorld world;
    const Trace trace = world.make_trace(150);
    HeuristicRM rm;

    auto run = [&](std::uint64_t seed) {
        SimOptions options;
        options.execution_time_factor_min = 0.6;
        options.execution_seed = seed;
        NullPredictor off;
        return simulate_trace(world.platform, world.catalog, trace, rm, off, options);
    };
    const TraceResult a = run(5);
    const TraceResult b = run(5);
    const TraceResult c = run(6);
    EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.accepted, b.accepted);
    // A different seed draws different actual works.
    EXPECT_NE(a.total_energy, c.total_energy);
}

class VariationInvariants
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double, bool>> {};

TEST_P(VariationInvariants, GuaranteesHoldUnderVariation) {
    const auto [seed, factor, predict] = GetParam();
    const VariationWorld world;
    TraceGenParams params;
    params.length = 150;
    Rng trace_rng = Rng(seed).derive(3);
    const Trace trace = generate_trace(world.catalog, params, trace_rng);

    HeuristicRM rm;
    SimOptions options;
    options.execution_time_factor_min = factor;
    options.execution_seed = seed;
    std::unique_ptr<Predictor> predictor;
    if (predict) predictor = std::make_unique<OraclePredictor>();
    else predictor = std::make_unique<NullPredictor>();

    const TraceResult result =
        simulate_trace(world.platform, world.catalog, trace, rm, *predictor, options);
    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_GT(result.total_energy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VariationInvariants,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(0.3, 0.6, 0.9),
                                            ::testing::Bool()));

} // namespace
} // namespace rmwp
