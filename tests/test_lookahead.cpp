// Tests for the multi-step lookahead extension: predict_horizon
// implementations, multi-predicted planning, the trimming admission ladder,
// and end-to-end monotonicity.
#include <gtest/gtest.h>

#include <tuple>

#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "predict/noisy.hpp"
#include "predict/online.hpp"
#include "predict/oracle.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

struct LookaheadWorld {
    Platform platform = make_paper_platform();
    Catalog catalog;
    Trace trace;

    static Catalog make_catalog(const Platform& platform) {
        Rng rng = Rng(900).derive(1);
        return generate_catalog(platform, CatalogParams{}, rng);
    }

    explicit LookaheadWorld(std::size_t length = 400) : catalog(make_catalog(platform)) {
        TraceGenParams params;
        params.length = length;
        Rng trace_rng = Rng(900).derive(2);
        trace = generate_trace(catalog, params, trace_rng);
    }
};

TEST(PredictHorizon, OracleReturnsTruthInOrder) {
    const LookaheadWorld world;
    OraclePredictor oracle;
    const auto horizon = oracle.predict_horizon(world.trace, 5, 0.0, 4);
    ASSERT_EQ(horizon.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
        const Request& truth = world.trace.request(5 + 1 + k);
        EXPECT_EQ(horizon[k].type, truth.type);
        EXPECT_DOUBLE_EQ(horizon[k].arrival, truth.arrival);
        EXPECT_DOUBLE_EQ(horizon[k].relative_deadline, truth.relative_deadline);
    }
    // Nearest first, nondecreasing arrivals.
    for (std::size_t k = 1; k < horizon.size(); ++k)
        EXPECT_GE(horizon[k].arrival, horizon[k - 1].arrival);
}

TEST(PredictHorizon, TruncatesAtTraceEnd) {
    const LookaheadWorld world;
    OraclePredictor oracle;
    const std::size_t last = world.trace.size() - 1;
    EXPECT_TRUE(oracle.predict_horizon(world.trace, last, 0.0, 3).empty());
    EXPECT_EQ(oracle.predict_horizon(world.trace, last - 2, 0.0, 5).size(), 2u);
}

TEST(PredictHorizon, DefaultWrapsPredictNext) {
    const LookaheadWorld world;
    // NullPredictor uses the default implementation.
    NullPredictor null;
    EXPECT_TRUE(null.predict_horizon(world.trace, 0, 0.0, 3).empty());
}

TEST(PredictHorizon, DepthZeroIsEmpty) {
    const LookaheadWorld world;
    OraclePredictor oracle;
    EXPECT_TRUE(oracle.predict_horizon(world.trace, 0, 0.0, 0).empty());
}

TEST(PredictHorizon, NoisyAppliesIndependentNoisePerStep) {
    const LookaheadWorld world;
    NoisyPredictor predictor(world.catalog, 0.5, 0.0, Rng(7));
    std::size_t hits = 0;
    std::size_t total = 0;
    for (std::size_t j = 0; j + 4 < world.trace.size(); j += 3) {
        const auto horizon = predictor.predict_horizon(world.trace, j, 0.0, 3);
        ASSERT_EQ(horizon.size(), 3u);
        for (std::size_t k = 0; k < 3; ++k) {
            ++total;
            if (horizon[k].type == world.trace.request(j + 1 + k).type) ++hits;
        }
    }
    EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(total), 0.5, 0.05);
}

TEST(PredictHorizon, OnlineRollsOutTheChain) {
    const LookaheadWorld world;
    // A deterministic cyclic type stream the chain can learn.
    std::vector<Request> requests;
    for (std::size_t j = 0; j < 200; ++j)
        requests.push_back(Request{static_cast<Time>(j) * 6.0, j % 4, 30.0});
    const Trace trace(std::move(requests));

    OnlinePredictor predictor(world.catalog);
    for (std::size_t j = 0; j < 150; ++j) predictor.observe(trace, j);
    const auto horizon = predictor.predict_horizon(trace, 150, trace.request(150).arrival, 3);
    ASSERT_EQ(horizon.size(), 3u);
    EXPECT_EQ(horizon[0].type, (150 + 1) % 4);
    EXPECT_EQ(horizon[1].type, (150 + 2) % 4);
    EXPECT_EQ(horizon[2].type, (150 + 3) % 4);
    // Arrivals step by the learned gap (~6).
    EXPECT_NEAR(horizon[1].arrival - horizon[0].arrival, 6.0, 0.5);
}

TEST(MultiPredictedPlanning, InstanceCarriesAllSteps) {
    const LookaheadWorld world;
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.candidate.uid = 1;
    context.candidate.type = 0;
    context.candidate.absolute_deadline = 200.0;
    context.predicted = {PredictedTask{1, 10.0, 50.0}, PredictedTask{2, 20.0, 60.0},
                         PredictedTask{3, 30.0, 70.0}};

    const PlanInstance all = PlanInstance::build(context, 3);
    EXPECT_EQ(all.tasks.size(), 4u);
    EXPECT_EQ(all.predicted_count, 3u);
    EXPECT_TRUE(all.tasks[1].is_predicted);
    EXPECT_NE(all.tasks[1].uid, all.tasks[2].uid); // distinct per-step uids
    EXPECT_TRUE(is_predicted_uid(all.tasks[3].uid));
    EXPECT_FALSE(is_reserved_uid(all.tasks[3].uid));

    const PlanInstance trimmed = PlanInstance::build(context, 1);
    EXPECT_EQ(trimmed.tasks.size(), 2u);
    // Bool still converts as before (regression for the paper-mode API).
    const PlanInstance legacy = PlanInstance::build(context, true);
    EXPECT_EQ(legacy.predicted_count, 1u);
}

TEST(MultiPredictedPlanning, LadderTrimsFurthestFirst) {
    // Predicted step 2 is impossible (deadline shorter than any WCET); the
    // ladder must keep step 1 and still plan with prediction.
    const LookaheadWorld world;
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.candidate.uid = 1;
    context.candidate.type = 0;
    context.candidate.absolute_deadline = 500.0;
    context.predicted = {PredictedTask{1, 10.0, 200.0}, PredictedTask{2, 12.0, 0.001}};

    HeuristicRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    EXPECT_TRUE(decision.used_prediction); // depth-1 plan succeeded
}

TEST(MultiPredictedPlanning, ExactHandlesSeveralPredictedTasks) {
    const LookaheadWorld world;
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.candidate.uid = 1;
    context.candidate.type = 0;
    context.candidate.absolute_deadline = 300.0;
    context.predicted = {PredictedTask{1, 5.0, 100.0}, PredictedTask{2, 10.0, 120.0}};

    const PlanInstance instance = PlanInstance::build(context, 2);
    const auto result = ExactRM::optimize(instance);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->mapping.size(), 3u);
}

TEST(LookaheadEndToEnd, DeeperHorizonNeverHurtsMuchAndUsuallyHelps) {
    const LookaheadWorld world(300);
    HeuristicRM rm;

    auto rejection_at_depth = [&](std::size_t depth) {
        OraclePredictor oracle;
        SimOptions options;
        options.lookahead = depth;
        const TraceResult result =
            simulate_trace(world.platform, world.catalog, world.trace, rm, oracle, options);
        EXPECT_EQ(result.deadline_misses, 0u);
        return result.rejection_percent();
    };

    const double d0 = rejection_at_depth(0);
    const double d1 = rejection_at_depth(1);
    const double d3 = rejection_at_depth(3);
    EXPECT_LE(d1, d0 + 0.5);
    EXPECT_LE(d3, d1 + 0.5);
    EXPECT_LT(d3, d0); // the headline effect
}

} // namespace
} // namespace rmwp
