// Tests for the observability layer (DESIGN.md §10): the TraceSink ring,
// the metrics registry, the Chrome/JSONL exporters (including parse-back
// round trips and fuzz-ish negative inputs), a golden pinned event sequence
// for the motivational scenario, and the layer's determinism contracts —
// tracing on/off never changes the simulated outcome, and per-trace
// artefacts are byte-identical for every jobs value.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/heuristic_rm.hpp"
#include "core/reservation.hpp"
#include "exp/runner.hpp"
#include "fault/fault.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "workload/trace_generator.hpp"
#include "workload/trace_io.hpp"

namespace rmwp {
namespace {

// ---- TraceSink ring buffer ----

TEST(TraceSink, RecordsEverythingBelowCapacity) {
    obs::TraceSink sink(16);
    sink.emit(1.0, obs::EventKind::arrival, 7, 2, 42.0, 3);
    ASSERT_EQ(sink.events().size(), 1u);
    const obs::TraceEvent event = sink.events().front();
    EXPECT_EQ(event.t_sim, 1.0);
    EXPECT_EQ(event.kind, obs::EventKind::arrival);
    EXPECT_EQ(event.task, 7u);
    EXPECT_EQ(event.resource, 2);
    EXPECT_EQ(event.detail, 42.0);
    EXPECT_EQ(event.aux, 3u);
    EXPECT_GE(event.t_host, 0.0); // stamped by the sink
    EXPECT_EQ(sink.dropped(), 0u);
}

TEST(TraceSink, RingWraparoundKeepsNewestOldestFirst) {
    obs::TraceSink sink(8);
    EXPECT_EQ(sink.capacity(), 8u);
    for (int i = 0; i < 20; ++i)
        sink.emit(static_cast<double>(i), obs::EventKind::exec, static_cast<std::uint64_t>(i));
    EXPECT_EQ(sink.total_emitted(), 20u);
    EXPECT_EQ(sink.dropped(), 12u);
    const std::vector<obs::TraceEvent> events = sink.events();
    ASSERT_EQ(events.size(), 8u);
    // The retained window is the 8 newest events, oldest first: 12..19.
    for (std::size_t k = 0; k < events.size(); ++k) {
        EXPECT_EQ(events[k].t_sim, static_cast<double>(12 + k));
        EXPECT_EQ(events[k].task, static_cast<std::uint64_t>(12 + k));
    }
}

TEST(TraceSink, TraceMacroToleratesNullSink) {
    [[maybe_unused]] obs::TraceSink* sink = nullptr;
    RMWP_TRACE(sink, 0.0, obs::EventKind::arrival); // must compile to a safe no-op
}

// ---- metrics registry ----

TEST(Metrics, HistogramBucketsAreRightClosed) {
    obs::MetricsRegistry registry;
    obs::Histogram& h = registry.histogram("h", {1.0, 2.0, 4.0});
    h.record(0.5); // bucket 0: v <= 1
    h.record(1.0); // bucket 0: right-closed at the bound
    h.record(2.0); // bucket 1: 1 < v <= 2
    h.record(4.0); // bucket 2: 2 < v <= 4
    h.record(4.5); // overflow: v > 4
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 2.0 + 4.0 + 4.5);
}

TEST(Metrics, RegistryFindsOrCreatesAndSnapshotsInRegistrationOrder) {
    obs::MetricsRegistry registry;
    obs::Counter& a = registry.counter("a");
    obs::Gauge& g = registry.gauge("g");
    obs::Counter& b = registry.counter("b");
    a.add(2);
    b.add(5);
    g.add(1.5);
    // Re-registration returns the same instrument, not a fresh one.
    EXPECT_EQ(&registry.counter("a"), &a);
    EXPECT_EQ(&registry.gauge("g"), &g);
    registry.counter("a").add();

    const obs::MetricsSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.counters.size(), 2u);
    EXPECT_EQ(snap.counters[0].name, "a");
    EXPECT_EQ(snap.counters[0].value, 3u);
    EXPECT_EQ(snap.counters[1].name, "b");
    EXPECT_EQ(snap.counters[1].value, 5u);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].value, 1.5);
    EXPECT_EQ(snap.counter_value("a"), 3u);
    EXPECT_EQ(snap.counter_value("missing"), 0u);
    EXPECT_FALSE(snap.empty());
}

TEST(Metrics, MergeSumsByNameAndAppendsMissing) {
    obs::MetricsRegistry ra;
    ra.counter("x").add(2);
    ra.gauge("busy").add(1.25);
    ra.histogram("h", {1.0, 2.0}).record(0.5);
    obs::MetricsRegistry rb;
    rb.counter("x").add(3);
    rb.counter("y").add(1);
    rb.gauge("busy").add(0.75);
    rb.histogram("h", {1.0, 2.0}).record(1.5);

    obs::MetricsSnapshot merged = ra.snapshot();
    merged.merge(rb.snapshot());
    EXPECT_EQ(merged.counter_value("x"), 5u);
    EXPECT_EQ(merged.counter_value("y"), 1u);
    const obs::MetricsSnapshot::GaugeValue* busy = merged.find_gauge("busy");
    ASSERT_NE(busy, nullptr);
    EXPECT_DOUBLE_EQ(busy->value, 2.0);
    const obs::MetricsSnapshot::HistogramValue* h = merged.find_histogram("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 2u);
    EXPECT_EQ(h->buckets[0], 1u);
    EXPECT_EQ(h->buckets[1], 1u);
}

TEST(Metrics, DeterministicEqualIgnoresHostScope) {
    obs::MetricsRegistry ra;
    ra.counter("sim_events").add(4);
    ra.histogram("latency_us", {1.0, 10.0}, obs::MetricScope::host).record(3.0);
    obs::MetricsRegistry rb;
    rb.counter("sim_events").add(4);
    rb.histogram("latency_us", {1.0, 10.0}, obs::MetricScope::host).record(9999.0);

    EXPECT_TRUE(obs::deterministic_equal(ra.snapshot(), rb.snapshot()));
    rb.counter("sim_events").add(); // sim-scoped divergence must be caught
    EXPECT_FALSE(obs::deterministic_equal(ra.snapshot(), rb.snapshot()));
}

// ---- the motivational scenario, fully instrumented ----

struct MiniWorld {
    Platform platform = make_motivational_platform();
    Catalog catalog = [] {
        const std::size_t n = 3;
        std::vector<std::vector<double>> cm(n, std::vector<double>(n, 1.0));
        std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.5));
        for (std::size_t i = 0; i < n; ++i) cm[i][i] = em[i][i] = 0.0;
        std::vector<TaskType> types;
        types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                           std::vector<double>{7.3, 8.4, 2.0}, cm, em);
        types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                           std::vector<double>{6.2, 7.5, 1.5}, cm, em);
        return Catalog(std::move(types));
    }();
};

/// Run scenario (a) of Fig 1 (tau_2 must be rejected) with a sink attached.
std::vector<obs::TraceEvent> motivational_events(obs::TraceSink& sink, TraceResult* result_out) {
    const MiniWorld world;
    const Trace trace({Request{0.0, 0, 8.0}, Request{1.0, 1, 5.0}});
    HeuristicRM rm;
    NullPredictor off;
    SimOptions options;
    options.sink = &sink;
    const TraceResult result =
        simulate_trace(world.platform, world.catalog, trace, rm, off, options);
    if (result_out != nullptr) *result_out = result;
    return sink.events();
}

[[maybe_unused]] std::string dump(const std::vector<obs::TraceEvent>& events) {
    std::ostringstream out;
    for (const obs::TraceEvent& event : events) {
        out << to_string(event.kind) << " t=" << event.t_sim << " task=";
        if (event.task == obs::kNoTask) out << "-";
        else out << event.task;
        out << " resource=" << event.resource << " detail=" << event.detail
            << " aux=" << event.aux << "\n";
    }
    return out.str();
}

// The next tests need the engine's recording hooks, which -DRMWP_OBS=OFF
// compiles out entirely (the zero-cost contract): no events can be emitted,
// so the golden sequences are meaningful only in observability builds.
#ifdef RMWP_OBS
TEST(GoldenEvents, MotivationalScenarioPinnedSequence) {
    obs::TraceSink sink;
    TraceResult result;
    const std::vector<obs::TraceEvent> actual = motivational_events(sink, &result);
    ASSERT_EQ(result.accepted, 1u);
    ASSERT_EQ(result.rejected, 1u);
    EXPECT_EQ(sink.dropped(), 0u);

    // The exact deterministic event sequence of the motivational scenario.
    // A change here is a change to the simulator's observable behaviour and
    // must be deliberate.
    struct Expected {
        obs::EventKind kind;
        double t_sim;
        std::uint64_t task;
        std::int64_t resource;
        double detail;
        std::uint32_t aux;
    };
    const std::vector<Expected> expected = {
        // t=0: tau_1 arrives (deadline 8), admitted onto the GPU (resource
        // 2, the energy-greedy pick), schedule built for 1 task.
        {obs::EventKind::arrival, 0.0, 0, obs::kNoResource, 8.0, 0},
        {obs::EventKind::admit, 0.0, 0, 2, 0.0, 0},
        {obs::EventKind::plan_rebuild, 0.0, obs::kNoTask, obs::kNoResource, 1.0, 0},
        // t=1: tau_2 arrives (deadline 6); execution first advances 0->1
        // (one executed slice of tau_1 on the GPU), then the RM exhausts
        // its placements (reason code heuristic_exhausted = 2).
        {obs::EventKind::arrival, 1.0, 1, obs::kNoResource, 6.0, 0},
        {obs::EventKind::exec, 0.0, 0, 2, 1.0, 0},
        {obs::EventKind::reject, 1.0, 1, obs::kNoResource, 0.0,
         static_cast<std::uint32_t>(RejectReason::heuristic_exhausted)},
        {obs::EventKind::plan_rebuild, 1.0, obs::kNoTask, obs::kNoResource, 1.0, 0},
        // t=5: tau_1's remaining slice 1->5 executes and it completes.
        {obs::EventKind::exec, 1.0, 0, 2, 4.0, 0},
        {obs::EventKind::complete, 5.0, 0, 2, 0.0, 0},
    };

    ASSERT_EQ(actual.size(), expected.size()) << "actual sequence:\n" << dump(actual);
    for (std::size_t k = 0; k < expected.size(); ++k) {
        const obs::TraceEvent& a = actual[k];
        const Expected& e = expected[k];
        EXPECT_EQ(a.kind, e.kind) << "event " << k << "\n" << dump(actual);
        EXPECT_EQ(a.t_sim, e.t_sim) << "event " << k << "\n" << dump(actual);
        EXPECT_EQ(a.task, e.task) << "event " << k << "\n" << dump(actual);
        EXPECT_EQ(a.resource, e.resource) << "event " << k << "\n" << dump(actual);
        EXPECT_EQ(a.detail, e.detail) << "event " << k << "\n" << dump(actual);
        EXPECT_EQ(a.aux, e.aux) << "event " << k << "\n" << dump(actual);
    }

    // The snapshot embedded in the TraceResult mirrors the stream.
    EXPECT_EQ(result.obs_metrics.counter_value("admit"), 1u);
    EXPECT_EQ(result.obs_metrics.counter_value("reject.heuristic_exhausted"), 1u);
    EXPECT_EQ(result.obs_metrics.counter_value("complete"), 1u);
    EXPECT_EQ(result.obs_metrics.counter_value("plan_rebuild"), 2u);
    const obs::MetricsSnapshot::GaugeValue* busy = result.obs_metrics.find_gauge("busy_time.2");
    ASSERT_NE(busy, nullptr);
    EXPECT_DOUBLE_EQ(busy->value, 5.0);
    const obs::MetricsSnapshot::HistogramValue* plan =
        result.obs_metrics.find_histogram("plan_size");
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(plan->count, 2u); // one per RM decision
}

TEST(GoldenEvents, ReservationWindowEmitsPreemptEvent) {
    // A critical reservation in the middle of the only executable resource's
    // timeline splits the adaptive task's execution — the planned preemption
    // must surface as a preempt event between two adjacent exec slices.
    const MiniWorld world;
    const std::size_t n = 3;
    std::vector<std::vector<double>> cm(n, std::vector<double>(n, 1.0));
    std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.5));
    for (std::size_t i = 0; i < n; ++i) cm[i][i] = em[i][i] = 0.0;
    std::vector<TaskType> types;
    types.emplace_back(0, std::vector<double>{8.0, kNotExecutable, kNotExecutable},
                       std::vector<double>{7.3, kNotExecutable, kNotExecutable}, cm, em);
    const Catalog catalog(std::move(types));

    const Trace trace({Request{0.0, 0, 30.0}});
    const ReservationTable reservations(
        {CriticalTask{"ctrl", 0, /*period=*/100.0, /*offset=*/2.0, /*duration=*/3.0, 1.0}});
    HeuristicRM rm;
    NullPredictor off;
    obs::TraceSink sink;
    SimOptions options;
    options.sink = &sink;
    const TraceResult result =
        simulate_trace(world.platform, catalog, trace, rm, off, reservations, options);
    ASSERT_EQ(result.completed, 1u);

    // Execution: [0,2) task, [2,5) reserved, [5,11) task — one preemption.
    std::vector<obs::TraceEvent> exec_slices;
    std::size_t preempts = 0;
    for (const obs::TraceEvent& event : sink.events()) {
        if (event.kind == obs::EventKind::exec) exec_slices.push_back(event);
        if (event.kind == obs::EventKind::preempt) {
            ++preempts;
            EXPECT_EQ(event.t_sim, 2.0);
            EXPECT_EQ(event.task, 0u);
            EXPECT_EQ(event.resource, 0);
        }
    }
    EXPECT_EQ(preempts, 1u);
    ASSERT_EQ(exec_slices.size(), 2u);
    EXPECT_EQ(exec_slices[0].t_sim, 0.0);
    EXPECT_EQ(exec_slices[0].detail, 2.0);
    EXPECT_EQ(exec_slices[1].t_sim, 5.0);
    EXPECT_EQ(exec_slices[1].detail, 6.0);
    EXPECT_EQ(result.obs_metrics.counter_value("preempt"), 1u);
}

// ---- exporters: well-formedness and round trips ----

TEST(Exporters, ChromeTraceParsesBackAsValidTraceEventJson) {
    obs::TraceSink sink;
    const std::vector<obs::TraceEvent> events = motivational_events(sink, nullptr);

    obs::ExportOptions options;
    options.resource_names = {"CPU", "FPGA", "GPU"};
    std::ostringstream out;
    obs::write_chrome_trace(out, events, options);

    const obs::JsonValue document = obs::json_parse(out.str());
    ASSERT_TRUE(document.is_object());
    const obs::JsonValue* trace_events = document.find("traceEvents");
    ASSERT_NE(trace_events, nullptr);
    ASSERT_TRUE(trace_events->is_array());
    EXPECT_FALSE(trace_events->as_array().empty());

    std::size_t complete_spans = 0;
    std::size_t instants = 0;
    std::size_t metadata = 0;
    for (const obs::JsonValue& record : trace_events->as_array()) {
        ASSERT_TRUE(record.is_object());
        const obs::JsonValue* ph = record.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_TRUE(ph->is_string());
        const std::string& kind = ph->as_string();
        if (kind == "X") {
            ++complete_spans;
            EXPECT_NE(record.find("dur"), nullptr);
        } else if (kind == "i") {
            ++instants;
        } else if (kind == "M") {
            ++metadata;
        } else {
            FAIL() << "unexpected phase " << kind;
        }
        EXPECT_NE(record.find("tid"), nullptr);
    }
    EXPECT_EQ(complete_spans, 2u); // the two executed slices of tau_1
    EXPECT_GE(instants, 4u);       // arrivals, admit, reject, rebuilds, complete
    EXPECT_EQ(metadata, 4u);       // RM lane + three named resource lanes
}
#endif // RMWP_OBS

TEST(Exporters, ChromeTraceDrawsFaultSpans) {
    // Synthetic stream: an outage with recovery and a permanent failure
    // without one (the span must run to the stream horizon).
    std::vector<obs::TraceEvent> events(4);
    events[0] = {2.0, 0.0, obs::kNoTask, 0, 1.0, 0, obs::EventKind::fault_onset};
    events[1] = {4.0, 0.0, obs::kNoTask, 0, 1.0, 0, obs::EventKind::fault_recovery};
    events[2] = {5.0, 0.0, obs::kNoTask, 1, 1.0, 1, obs::EventKind::fault_onset};
    events[3] = {9.0, 0.0, 3, 0, 1.5, 0, obs::EventKind::exec};

    std::ostringstream out;
    obs::write_chrome_trace(out, events, obs::ExportOptions{});
    const obs::JsonValue document = obs::json_parse(out.str());
    const obs::JsonValue* trace_events = document.find("traceEvents");
    ASSERT_NE(trace_events, nullptr);

    bool outage_seen = false;
    bool permanent_seen = false;
    for (const obs::JsonValue& record : trace_events->as_array()) {
        const obs::JsonValue* name = record.find("name");
        if (name == nullptr || !name->is_string()) continue;
        if (name->as_string() == "OUTAGE") {
            outage_seen = true;
            EXPECT_DOUBLE_EQ(record.find("ts")->as_number(), 2000.0);
            EXPECT_DOUBLE_EQ(record.find("dur")->as_number(), 2000.0);
        }
        if (name->as_string() == "PERMANENT FAILURE") {
            permanent_seen = true;
            EXPECT_DOUBLE_EQ(record.find("ts")->as_number(), 5000.0);
            // Runs to the horizon: the last event sits at t=9ms + 1.5ms? No —
            // the horizon is the latest event timestamp (9ms).
            EXPECT_DOUBLE_EQ(record.find("dur")->as_number(), 4000.0);
        }
    }
    EXPECT_TRUE(outage_seen);
    EXPECT_TRUE(permanent_seen);
}

TEST(Exporters, JsonlRoundTripPreservesDeterministicFields) {
    obs::TraceSink sink;
    const std::vector<obs::TraceEvent> events = motivational_events(sink, nullptr);

    std::ostringstream out;
    obs::write_events_jsonl(out, events, obs::ExportOptions{});
    std::istringstream in(out.str());
    const std::vector<obs::TraceEvent> reread = obs::read_events_jsonl(in);
    ASSERT_EQ(reread.size(), events.size());
    for (std::size_t k = 0; k < events.size(); ++k)
        EXPECT_TRUE(events[k].deterministic_equal(reread[k])) << "event " << k;
}

TEST(Exporters, JsonlRoundTripCanCarryHostTime) {
    obs::TraceSink sink;
    sink.emit(1.0, obs::EventKind::arrival, 0);
    const std::vector<obs::TraceEvent> events = sink.events();

    obs::ExportOptions options;
    options.include_host_time = true;
    std::ostringstream out;
    obs::write_events_jsonl(out, events, options);
    EXPECT_NE(out.str().find("t_host"), std::string::npos);
    std::istringstream in(out.str());
    const std::vector<obs::TraceEvent> reread = obs::read_events_jsonl(in);
    ASSERT_EQ(reread.size(), 1u);
    EXPECT_EQ(reread[0].t_host, events[0].t_host); // %.17g round-trips doubles
}

TEST(Exporters, SanitizeLabelKeepsOnlyFilenameSafeCharacters) {
    EXPECT_EQ(obs::sanitize_label("heuristic/noisy a=0.8"), "heuristic-noisy-a-0.8");
    EXPECT_EQ(obs::sanitize_label("plain_OK-1.2"), "plain_OK-1.2");
}

// ---- tracing on/off and jobs-count determinism ----

ExperimentConfig small_config(std::uint64_t seed = 42) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, seed);
    config.trace_count = 4;
    config.trace.length = 30;
    config.fault.outage_rate = 0.004;
    config.fault.throttle_rate = 0.004;
    config.fault.permanent_prob = 0.2;
    return config;
}

PredictorSpec noisy_predictor() {
    PredictorSpec predictor;
    predictor.kind = PredictorSpec::Kind::noisy;
    predictor.type_accuracy = 0.8;
    predictor.time_nrmse = 0.2;
    return predictor;
}

#ifdef RMWP_OBS
TEST(ObsDeterminism, TracingOnAndOffAreBitIdentical) {
    const ExperimentConfig config = small_config();
    ExperimentRunner plain(config, 1);
    ExperimentRunner traced(config, 1);
    ObsOptions obs;
    obs.collect_metrics = true;
    traced.set_obs(obs);

    const RunSpec spec{RmKind::heuristic, noisy_predictor()};
    const RunOutcome off = plain.run(spec);
    const RunOutcome on = traced.run(spec);
    ASSERT_EQ(off.per_trace.size(), on.per_trace.size());
    for (std::size_t t = 0; t < off.per_trace.size(); ++t) {
        EXPECT_TRUE(equivalent_ignoring_host_time(off.per_trace[t], on.per_trace[t]))
            << "trace " << t << " differs between tracing off and on";
        EXPECT_TRUE(off.per_trace[t].obs_metrics.empty());
        EXPECT_FALSE(on.per_trace[t].obs_metrics.empty());
    }
}
#endif // RMWP_OBS

TEST(ObsDeterminism, MetricsSnapshotsIdenticalAcrossJobsCounts) {
    const ExperimentConfig config = small_config(7);
    ObsOptions obs;
    obs.collect_metrics = true;
    ExperimentRunner serial(config, 1);
    serial.set_obs(obs);
    ExperimentRunner parallel(config, 8);
    parallel.set_obs(obs);

    const RunSpec spec{RmKind::heuristic, noisy_predictor()};
    const RunOutcome a = serial.run(spec);
    const RunOutcome b = parallel.run(spec);
    ASSERT_EQ(a.per_trace.size(), b.per_trace.size());
    for (std::size_t t = 0; t < a.per_trace.size(); ++t)
        EXPECT_TRUE(obs::deterministic_equal(a.per_trace[t].obs_metrics,
                                             b.per_trace[t].obs_metrics))
            << "sim-scoped metrics differ at trace " << t;
}

std::map<std::string, std::string> read_directory(const std::filesystem::path& dir) {
    std::map<std::string, std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream content;
        content << in.rdbuf();
        files[entry.path().filename().string()] = content.str();
    }
    return files;
}

TEST(ObsDeterminism, ArtefactFilesAreByteIdenticalAcrossJobsCounts) {
    const ExperimentConfig config = small_config(11);
    const std::filesystem::path base =
        std::filesystem::path(::testing::TempDir()) / "rmwp_obs_artefacts";
    std::filesystem::remove_all(base);

    const RunSpec spec{RmKind::heuristic, noisy_predictor()};
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
        ExperimentRunner runner(config, jobs);
        ObsOptions obs;
        obs.trace_dir = (base / ("jobs" + std::to_string(jobs))).string();
        obs.jsonl = true; // chrome stays on too
        runner.set_obs(obs);
        (void)runner.run(spec);
    }

    const auto serial = read_directory(base / "jobs1");
    const auto parallel = read_directory(base / "jobs8");
    // One Chrome trace + one JSONL file per trace cell, for both runs.
    ASSERT_EQ(serial.size(), 2 * config.trace_count);
    ASSERT_EQ(serial.size(), parallel.size());
    for (const auto& [name, content] : serial) {
        const auto other = parallel.find(name);
        ASSERT_NE(other, parallel.end()) << "missing artefact " << name;
        EXPECT_EQ(content, other->second) << "artefact " << name << " differs across jobs";
    }
    std::filesystem::remove_all(base);
}

// ---- differential test: the event stream vs the TraceResult ----

[[maybe_unused]] std::size_t count_kind(const std::vector<obs::TraceEvent>& events,
                                        obs::EventKind kind) {
    std::size_t n = 0;
    for (const obs::TraceEvent& event : events)
        if (event.kind == kind) ++n;
    return n;
}

#ifdef RMWP_OBS
TEST(ObsDifferential, EventStreamRecomputesTraceResultFigures) {
    // Randomised seeded scenarios with faults and rescue: everything the
    // TraceResult reports about admissions, completions, aborts, and
    // migrations must be recomputable from the event stream alone, and the
    // counters must agree with both.
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, seed);
        config.trace.length = 60;
        config.fault.outage_rate = 0.006;
        config.fault.throttle_rate = 0.004;
        config.fault.permanent_prob = 0.3;

        const Platform platform = config.make_platform();
        Rng catalog_rng = Rng(seed).derive(100);
        const Catalog catalog = generate_catalog(platform, config.catalog, catalog_rng);
        const std::vector<Trace> traces =
            generate_traces(catalog, config.trace, 2, Rng(seed).derive(101));

        for (std::size_t t = 0; t < traces.size(); ++t) {
            SCOPED_TRACE("trace " + std::to_string(t));
            const Trace& trace = traces[t];
            Time horizon = 0.0;
            for (const Request& request : trace)
                horizon = std::max(horizon, request.absolute_deadline());
            Rng fault_rng = Rng(seed).derive(200 + t);
            const FaultSchedule faults =
                generate_fault_schedule(platform, config.fault, horizon, fault_rng);

            HeuristicRM rm;
            PredictorSpec spec = noisy_predictor();
            spec.overhead = 0.2; // overhead stalls make aborts reachable
            const std::unique_ptr<Predictor> predictor =
                make_predictor(spec, catalog, Rng(seed).derive(300 + t));

            obs::TraceSink sink; // default 65536-slot ring
            SimOptions options;
            options.fault_schedule = &faults;
            options.sink = &sink;
            const TraceResult result =
                simulate_trace(platform, catalog, trace, rm, *predictor, options);
            ASSERT_EQ(sink.dropped(), 0u) << "ring too small for a differential check";
            const std::vector<obs::TraceEvent> events = sink.events();
            const obs::MetricsSnapshot& metrics = result.obs_metrics;

            // Admission outcomes: events == counters == TraceResult.
            EXPECT_EQ(count_kind(events, obs::EventKind::admit), result.accepted);
            EXPECT_EQ(count_kind(events, obs::EventKind::reject), result.rejected);
            EXPECT_EQ(count_kind(events, obs::EventKind::complete), result.completed);
            EXPECT_EQ(count_kind(events, obs::EventKind::abort_overhead), result.aborted);
            EXPECT_EQ(count_kind(events, obs::EventKind::rescue_abort), result.fault_aborted);
            EXPECT_EQ(count_kind(events, obs::EventKind::migrate), result.migrations);
            EXPECT_EQ(count_kind(events, obs::EventKind::rescue_begin),
                      result.rescue_activations);
            EXPECT_EQ(count_kind(events, obs::EventKind::fault_onset),
                      result.resource_outages + result.throttle_events);
            EXPECT_EQ(metrics.counter_value("admit"), result.accepted);
            EXPECT_EQ(metrics.counter_value("complete"), result.completed);
            EXPECT_EQ(metrics.counter_value("abort_overhead"), result.aborted);
            EXPECT_EQ(metrics.counter_value("rescue.abort"), result.fault_aborted);
            EXPECT_EQ(metrics.counter_value("migrate"), result.migrations);
            EXPECT_EQ(metrics.counter_value("rescue.activation"), result.rescue_activations);

            // Rejection reasons: the per-reason counters partition the total.
            std::uint64_t reject_total = 0;
            for (std::size_t r = 0; r < kRejectReasonCount; ++r)
                reject_total += metrics.counter_value(
                    std::string("reject.") + to_string(static_cast<RejectReason>(r)));
            EXPECT_EQ(reject_total, result.rejected);

            // Rescued = tasks a rescue kept after displacement (aux flag).
            std::size_t rescued = 0;
            for (const obs::TraceEvent& event : events)
                if (event.kind == obs::EventKind::rescue_keep && event.aux == 1u) ++rescued;
            EXPECT_EQ(rescued, result.rescued);

            // Per-resource busy time: the gauges add exactly the slice
            // durations the exec events carry, in the same order, so the
            // recomputed sums are bit-identical (not just close).
            std::vector<double> busy(platform.size(), 0.0);
            for (const obs::TraceEvent& event : events)
                if (event.kind == obs::EventKind::exec)
                    busy[static_cast<std::size_t>(event.resource)] += event.detail;
            for (ResourceId i = 0; i < platform.size(); ++i) {
                const obs::MetricsSnapshot::GaugeValue* gauge =
                    metrics.find_gauge("busy_time." + std::to_string(i));
                ASSERT_NE(gauge, nullptr);
                EXPECT_EQ(busy[i], gauge->value) << "resource " << i;
            }

            // The plan-size histogram saw exactly one sample per RM decision
            // that reached the RM (deadline-passed pre-checks never do).
            const obs::MetricsSnapshot::HistogramValue* plan =
                metrics.find_histogram("plan_size");
            ASSERT_NE(plan, nullptr);
            const std::uint64_t deadline_rejects =
                metrics.counter_value("reject.deadline_passed");
            EXPECT_EQ(plan->count + deadline_rejects, result.requests);
        }
    }
}
#endif // RMWP_OBS

// ---- fuzz-ish negative inputs: parsers must fail loudly, never crash ----

TEST(ObsNegative, JsonParserRejectsMalformedInputWithPositions) {
    const char* bad[] = {
        "",
        "{",
        "[1,2",
        "{\"a\":}",
        "tru",
        "\"unterminated",
        "{} trailing",
        "{\"a\":1,}",
        "[1 2]",
        "1e",
        "\"bad\\q\"",
        "{\"a\" 1}",
        "nan",
    };
    for (const char* input : bad) {
        SCOPED_TRACE(std::string("input: ") + input);
        try {
            (void)obs::json_parse(input);
            FAIL() << "malformed input parsed successfully";
        } catch (const obs::json_error& error) {
            EXPECT_GE(error.line(), 1u);
            EXPECT_GE(error.column(), 1u);
            EXPECT_NE(std::string(error.what()).find("json error at"), std::string::npos);
        }
    }
    // Errors point at the offending line, not just "somewhere".
    try {
        (void)obs::json_parse("{\n  \"a\": ?\n}");
        FAIL() << "must throw";
    } catch (const obs::json_error& error) {
        EXPECT_EQ(error.line(), 2u);
    }
}

void expect_jsonl_error(const std::string& input, const std::string& needle) {
    std::istringstream in(input);
    try {
        (void)obs::read_events_jsonl(in);
        FAIL() << "malformed jsonl accepted: " << input;
    } catch (const std::runtime_error& error) {
        EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
            << "message was: " << error.what();
    }
}

TEST(ObsNegative, JsonlReaderNamesTheOffendingLine) {
    const std::string good =
        R"({"t_sim":1,"kind":"arrival","task":0,"resource":null,"detail":0,"aux":0})";
    expect_jsonl_error(good + "\n" + R"({"t_sim":2,"kind":"arr)", "line 2");
    expect_jsonl_error("42", "line 1");
    expect_jsonl_error(R"({"t_sim":1,"kind":"warp","task":0,"resource":null,"detail":0,"aux":0})",
                       "unknown event kind");
    expect_jsonl_error(R"({"t_sim":1,"kind":"exec","task":-3,"resource":0,"detail":0,"aux":0})",
                       "task");
    expect_jsonl_error(R"({"t_sim":1,"kind":"exec","task":0,"resource":0,"detail":0,"aux":1.5})",
                       "aux");
    expect_jsonl_error(R"({"kind":"exec","task":0,"resource":0,"detail":0,"aux":0})", "t_sim");
    expect_jsonl_error(good + "\n\n" + "[]", "line 3"); // blank lines are skipped, not counted out
}

TEST(ObsNegative, TraceAndCatalogCsvReadersRejectGarbage) {
    const char* bad_traces[] = {
        "not,a,header\n0,0,1\n",
        "arrival,type,relative_deadline\n0,0\n",
        "arrival,type,relative_deadline\nzero,0,1\n",
        "arrival,type,relative_deadline\n-1,0,1\n",
        "arrival,type,relative_deadline\n5,0,1\n1,0,1\n",
        "arrival,type,relative_deadline\n0,0,inf\n",
    };
    for (const char* input : bad_traces) {
        SCOPED_TRACE(std::string("trace csv: ") + input);
        std::istringstream in(input);
        try {
            (void)read_trace_csv(in);
            FAIL() << "malformed trace accepted";
        } catch (const std::runtime_error& error) {
            EXPECT_FALSE(std::string(error.what()).empty());
        }
    }

    const char* bad_catalogs[] = {
        "garbage\n",
        "type,resource,wcet,energy\n0,0\n",
        "type,resource,wcet,energy\n0,0,abc,1\n",
    };
    for (const char* input : bad_catalogs) {
        SCOPED_TRACE(std::string("catalog csv: ") + input);
        std::istringstream in(input);
        try {
            (void)read_catalog_csv(in);
            FAIL() << "malformed catalog accepted";
        } catch (const std::runtime_error& error) {
            EXPECT_FALSE(std::string(error.what()).empty());
        }
    }
}

} // namespace
} // namespace rmwp
