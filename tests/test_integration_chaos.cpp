// Cross-feature integration sweep: every extension enabled at once, under
// randomized configurations.  The invariants that must survive any
// combination of DVFS operating points, critical reservations, multi-step
// lookahead, prediction noise/overhead, execution-time variation, periodic
// activation, and injected faults (outages, throttling, permanent failures):
//   * no admitted task ever misses its deadline (aborts only with overhead
//     stalls or fault rescues);
//   * accounting conserves: accepted = completed + aborted + fault_aborted,
//     requests = accepted + rejected;
//   * energy is positive and finite, migrations carry energy consistently;
//   * runs are bit-deterministic given the same seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/baseline_rm.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/reservation.hpp"
#include "fault/fault.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

struct ChaosConfig {
    std::uint64_t seed = 0;
    bool dvfs = false;
    bool reservations = false;
    std::size_t lookahead = 1;
    double type_accuracy = 1.0;
    double time_nrmse = 0.0;
    double overhead = 0.0;
    double execution_factor = 1.0;
    double activation_period = 0.0;
    int rm = 0; // 0 heuristic, 1 exact, 2 baseline
    FaultParams fault; // fault injection (all-zero = fault-free)
};

ChaosConfig random_config(std::uint64_t seed) {
    Rng rng(seed * 7919 + 13);
    ChaosConfig config;
    config.seed = seed;
    config.dvfs = rng.bernoulli(0.5);
    config.reservations = rng.bernoulli(0.4);
    config.lookahead = rng.index(4); // 0..3
    config.type_accuracy = rng.uniform(0.3, 1.0);
    config.time_nrmse = rng.uniform(0.0, 0.5);
    config.overhead = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.3) : 0.0;
    config.execution_factor = rng.bernoulli(0.5) ? rng.uniform(0.4, 1.0) : 1.0;
    config.activation_period = rng.bernoulli(0.3) ? rng.uniform(2.0, 12.0) : 0.0;
    config.rm = static_cast<int>(rng.index(3));
    // Fault draws come after every pre-existing one, so the fault-free
    // subset of the sweep sees the exact configurations it always did.
    if (rng.bernoulli(0.5)) {
        config.fault.outage_rate = rng.uniform(1.0, 6.0);
        config.fault.outage_duration_mean = rng.uniform(20.0, 80.0);
        config.fault.throttle_rate = rng.bernoulli(0.5) ? rng.uniform(1.0, 4.0) : 0.0;
        config.fault.permanent_prob = rng.bernoulli(0.3) ? 0.2 : 0.0;
        config.fault.min_online = 2;
    }
    return config;
}

TraceResult run_chaos(const ChaosConfig& config) {
    PlatformBuilder builder;
    for (int i = 1; i <= 4; ++i) {
        if (config.dvfs) builder.add_cpu_with_dvfs({1.0, 0.7, 0.4}, "C" + std::to_string(i));
        else builder.add_cpu("C" + std::to_string(i));
    }
    builder.add_gpu("GPU");
    const Platform platform = builder.build();

    Rng catalog_rng = Rng(config.seed).derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{.type_count = 40},
                                             catalog_rng);

    TraceGenParams params;
    params.length = 120;
    params.group = config.seed % 2 == 0 ? DeadlineGroup::very_tight : DeadlineGroup::less_tight;
    if (config.seed % 3 == 0) {
        params.arrival_model = ArrivalModel::two_phase;
        params.type_correlation = 0.7;
    }
    Rng trace_rng = Rng(config.seed).derive(2);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    const ReservationTable reservations(
        {CriticalTask{"ctrl", platform.size() - 1, 30.0, 0.0, 6.0, 1.0},
         CriticalTask{"mon", 0, 50.0, 5.0, 8.0, 0.5}});

    PredictorSpec spec;
    spec.kind = PredictorSpec::Kind::noisy;
    spec.type_accuracy = config.type_accuracy;
    spec.time_nrmse = config.time_nrmse;
    spec.overhead = config.overhead;
    const auto predictor = make_predictor(spec, catalog, Rng(config.seed).derive(3));

    SimOptions options;
    options.lookahead = config.lookahead;
    options.execution_time_factor_min = config.execution_factor;
    options.execution_seed = config.seed;
    options.activation_period = config.activation_period;

    FaultSchedule faults;
    if (config.fault.any()) {
        Time horizon = 0.0;
        for (const Request& request : trace)
            horizon = std::max(horizon, request.absolute_deadline());
        Rng fault_rng = Rng(config.seed).derive(4);
        faults = generate_fault_schedule(platform, config.fault, horizon, fault_rng);
        options.fault_schedule = &faults;
    }

    HeuristicRM heuristic;
    // A bounded node budget keeps the sweep fast: under DVFS + throttling
    // many admission instances are infeasible, and proving that exhausts
    // the default 20M-node budget once per arrival.  Every invariant here
    // is independent of mapping optimality.
    ExactRM exact(ExactRM::Options{.node_limit = 300'000});
    BaselineRM baseline;
    ResourceManager& rm = config.rm == 0 ? static_cast<ResourceManager&>(heuristic)
                          : config.rm == 1 ? static_cast<ResourceManager&>(exact)
                                           : static_cast<ResourceManager&>(baseline);

    if (config.reservations)
        return simulate_trace(platform, catalog, trace, rm, *predictor, reservations, options);
    return simulate_trace(platform, catalog, trace, rm, *predictor, options);
}

class Chaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Chaos, InvariantsSurviveEveryFeatureCombination) {
    const ChaosConfig config = random_config(GetParam());
    const TraceResult result = run_chaos(config);

    EXPECT_EQ(result.deadline_misses, 0u)
        << "seed " << config.seed << " rm " << config.rm;
    EXPECT_EQ(result.accepted + result.rejected, result.requests);
    EXPECT_EQ(result.completed + result.aborted + result.fault_aborted, result.accepted);
    if (config.overhead == 0.0) {
        EXPECT_EQ(result.aborted, 0u);
    }
    if (!config.fault.any()) {
        EXPECT_EQ(result.resource_outages + result.throttle_events, 0u);
        EXPECT_EQ(result.fault_aborted, 0u);
        EXPECT_EQ(result.rescued, 0u);
        EXPECT_DOUBLE_EQ(result.degraded_energy, 0.0);
    }
    EXPECT_LE(result.rescue_migrations, result.migrations);
    EXPECT_LE(result.degraded_energy, result.total_energy + 1e-9);
    if (config.rm == 2) {
        EXPECT_EQ(result.rescued, 0u); // non-replanning: displaced tasks die
    }
    EXPECT_TRUE(std::isfinite(result.total_energy));
    EXPECT_GE(result.total_energy, 0.0);
    EXPECT_GE(result.migration_energy, 0.0);
    EXPECT_LE(result.migration_energy, result.total_energy + 1e-9);
    if (config.rm == 2) {
        EXPECT_EQ(result.migrations, 0u); // baseline never moves
    }
    EXPECT_LE(result.activations, result.requests);
    EXPECT_GE(result.reference_energy, 0.0);
    if (config.reservations) {
        EXPECT_GE(result.critical_energy, 0.0);
    }
}

TEST_P(Chaos, BitDeterministic) {
    const ChaosConfig config = random_config(GetParam());
    const TraceResult a = run_chaos(config);
    const TraceResult b = run_chaos(config);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_DOUBLE_EQ(a.total_energy, b.total_energy);
    EXPECT_DOUBLE_EQ(a.critical_energy, b.critical_energy);
    EXPECT_EQ(a.fault_aborted, b.fault_aborted);
    EXPECT_EQ(a.rescued, b.rescued);
    EXPECT_EQ(a.rescue_migrations, b.rescue_migrations);
    EXPECT_DOUBLE_EQ(a.degraded_energy, b.degraded_energy);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, Chaos, ::testing::Range<std::uint64_t>(0, 40));

} // namespace
} // namespace rmwp
