// Differential fuzz-and-property suite for sharded concurrent admission
// (DESIGN.md §15): the sharded solve must be *bit-identical* to the
// sequential path at any shard count and any probe-job count.
//
//   * fuzzer — 200 random worlds on an islands platform (the partition the
//     sharding exists for), each decided by {heuristic, exact, baseline}
//     across {shards 1, 2, 4, 8} x {probe_jobs 1, 8}, with injected faults
//     and 0-2 predicted requests, on both decide() and decide_batch();
//     MilpRM (which documents ignoring the config) rides on a subsample;
//   * directed cases — a cross-shard tie-break world of byte-identical twin
//     islands, and the degenerate single-group partition where shards = 8
//     must fold to one bucket and change nothing;
//   * partition properties — groups are the executability components,
//     rebuilt deterministically, with the bucket folding rules pinned;
//   * order properties — demand_order is a total order whose per-shard
//     sort + merge equals the full sort, and insert_demand_ordered's
//     incremental state equals a full re-sort (the foundation the
//     per-bucket EDF probes stand on);
//   * serve level — a faulty, predicted, 400-arrival serve run under
//     --shards 4 --probe-jobs 4 ends in the same simulated state as the
//     sequential service, records decision latency after the cross-shard
//     merge (monotone HDR quantiles), and attributes shard_solve /
//     shard_merge stage samples to the engine thread.
//
// An RMWP_AUDIT build additionally re-solves every sharded instance
// sequentially inside ShardedSolver::run and asserts bit-equality — running
// this binary under build-audit exercises that drift gate on every world
// below.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/baseline_rm.hpp"
#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/milp_rm.hpp"
#include "core/shard.hpp"
#include "platform/health.hpp"
#include "predict/online.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

constexpr std::size_t kIslands = 4;

/// Eight plain cores, two GPUs, one DVFS core: eleven physical resources
/// that generate_partitioned_catalog deals round-robin into four islands
/// (0: CPU0 CPU4 GPU0, 1: CPU1 CPU5 GPU1, 2: CPU2 CPU6 DVFS, 3: CPU3 CPU7),
/// each with at least one CPU.  The DVFS core's operating point exercises
/// the partition's "points join their physical core" rule.  `with_dvfs =
/// false` drops the DVFS core (ten resources, same four islands) for the
/// MilpRM subsample — the MILP formulation predates DVFS and rejects
/// platforms that model it.
Platform make_islands_platform(bool with_dvfs = true) {
    PlatformBuilder builder;
    for (int k = 0; k < 8; ++k) builder.add_cpu("CPU" + std::to_string(k));
    builder.add_gpu("GPU0");
    builder.add_gpu("GPU1");
    if (with_dvfs) builder.add_cpu_with_dvfs({1.0, 0.5}, "DVFS");
    return builder.build();
}

ActiveTask task_of(TaskUid uid, TaskTypeId type, Time arrival, Time rel_deadline) {
    ActiveTask task;
    task.uid = uid;
    task.type = type;
    task.arrival = arrival;
    task.absolute_deadline = arrival + rel_deadline;
    return task;
}

/// Randomized single-arrival world on the islands platform: assorted active
/// tasks spread over the islands, optional injected faults (outage and
/// throttle), a fresh candidate, and 0-2 predicted requests.
struct ShardWorld {
    Platform platform;
    Catalog catalog;
    PlatformHealth health;
    std::vector<ActiveTask> active;
    ArrivalContext context;

    explicit ShardWorld(std::uint64_t seed, bool with_dvfs = true)
        : platform(make_islands_platform(with_dvfs)), catalog([&] {
        CatalogParams params;
        params.type_count = 16;
        Rng catalog_rng = Rng(seed).derive(1);
        return generate_partitioned_catalog(platform, params, kIslands, catalog_rng);
    }()) {
        Rng rng(seed);

        // Faults first, so active tasks only ever sit on online resources
        // (the engine invariant): maybe one outage and one throttle, always
        // sparing CPU0 so at least one island stays fully healthy.
        if (rng.bernoulli(0.35)) {
            const ResourceId victim = 1 + static_cast<ResourceId>(rng.index(7));
            health.set_online(platform, victim, false);
        }
        if (rng.bernoulli(0.35)) {
            const ResourceId victim = 1 + static_cast<ResourceId>(rng.index(7));
            if (health.online(victim))
                health.set_throttle(platform, victim, rng.uniform(1.1, 1.8));
        }

        const std::size_t task_count = rng.index(6);
        for (std::size_t j = 0; j < task_count; ++j) {
            const TaskTypeId type_id = rng.index(catalog.size());
            const TaskType& type = catalog.type(type_id);
            std::vector<ResourceId> online;
            for (const ResourceId r : type.executable_resources())
                if (health.online(r)) online.push_back(r);
            if (online.empty()) continue; // its whole island is dark; skip
            ActiveTask task = task_of(j, type_id, 0.0, 0.0);
            task.absolute_deadline = rng.uniform(15.0, 160.0);
            task.resource = online[rng.index(online.size())];
            if (rng.bernoulli(0.5)) {
                task.started = true;
                task.remaining_fraction = rng.uniform(0.2, 1.0);
                if (!platform.resource(task.resource).preemptable()) task.pinned = true;
            }
            active.push_back(task);
        }

        context.now = 5.0;
        context.platform = &platform;
        context.catalog = &catalog;
        context.active = active;
        context.health = &health;
        context.candidate = task_of(100, rng.index(catalog.size()), 5.0, rng.uniform(10.0, 120.0));
        const std::size_t lookahead = rng.index(3); // 0-2 predicted requests
        for (std::size_t p = 0; p < lookahead; ++p)
            context.predicted.push_back(PredictedTask{rng.index(catalog.size()),
                                                      5.0 + rng.uniform(0.0, 12.0),
                                                      rng.uniform(8.0, 80.0)});
    }

    /// A follow-up candidate arriving at the same instant as the first.
    [[nodiscard]] BatchItem item(TaskUid uid, Rng& rng) const {
        BatchItem item;
        item.candidate = task_of(uid, rng.index(catalog.size()), 5.0, rng.uniform(10.0, 120.0));
        if (rng.bernoulli(0.6))
            item.predicted = {PredictedTask{rng.index(catalog.size()),
                                            5.0 + rng.uniform(0.0, 12.0),
                                            rng.uniform(8.0, 80.0)}};
        return item;
    }

    [[nodiscard]] BatchArrivalContext batch_of(std::span<const BatchItem> items) const {
        BatchArrivalContext batch;
        batch.now = context.now;
        batch.platform = &platform;
        batch.catalog = &catalog;
        batch.active = active;
        batch.items = items;
        batch.health = &health;
        return batch;
    }
};

void expect_same_decision(const Decision& a, const Decision& b, const char* what,
                          std::uint64_t seed, std::size_t index = 0) {
    EXPECT_EQ(a.admitted, b.admitted) << what << " seed " << seed << " item " << index;
    EXPECT_EQ(a.used_prediction, b.used_prediction)
        << what << " seed " << seed << " item " << index;
    EXPECT_EQ(static_cast<int>(a.reason), static_cast<int>(b.reason))
        << what << " seed " << seed << " item " << index;
    ASSERT_EQ(a.assignments.size(), b.assignments.size())
        << what << " seed " << seed << " item " << index;
    for (std::size_t k = 0; k < a.assignments.size(); ++k) {
        EXPECT_EQ(a.assignments[k].uid, b.assignments[k].uid)
            << what << " seed " << seed << " item " << index;
        EXPECT_EQ(a.assignments[k].resource, b.assignments[k].resource)
            << what << " seed " << seed << " item " << index;
    }
}

enum class Kind { heuristic, exact, baseline };

std::unique_ptr<ResourceManager> make_rm(Kind kind) {
    switch (kind) {
    case Kind::heuristic: return std::make_unique<HeuristicRM>();
    case Kind::exact: return std::make_unique<ExactRM>();
    case Kind::baseline: return std::make_unique<BaselineRM>();
    }
    return nullptr;
}

constexpr std::size_t kShardGrid[] = {1, 2, 4, 8};
constexpr std::size_t kJobGrid[] = {1, 8};

// ---- the differential fuzzer ----

class ShardDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardDifferential, DecideAndBatchBitIdenticalAcrossTheConfigGrid) {
    const std::uint64_t seed = GetParam();
    const ShardWorld world(seed);
    Rng rng(seed ^ 0xd1ffe4e57ULL);

    std::vector<BatchItem> items;
    items.push_back({world.context.candidate, world.context.predicted});
    const std::size_t extra = 1 + rng.index(3);
    for (std::size_t m = 0; m < extra; ++m) items.push_back(world.item(101 + m, rng));
    const BatchArrivalContext batch = world.batch_of(items);

    for (const Kind kind : {Kind::heuristic, Kind::exact, Kind::baseline}) {
        const std::unique_ptr<ResourceManager> reference = make_rm(kind);
        const Decision single = reference->decide(world.context);
        std::vector<Decision> batched;
        reference->decide_batch(batch, batched);
        ASSERT_EQ(batched.size(), items.size()) << reference->name();

        for (const std::size_t shards : kShardGrid) {
            for (const std::size_t jobs : kJobGrid) {
                const std::unique_ptr<ResourceManager> sharded = make_rm(kind);
                sharded->set_shard_config({shards, jobs});
                const Decision sharded_single = sharded->decide(world.context);
                expect_same_decision(single, sharded_single,
                                     (sharded->name() + " decide s" + std::to_string(shards) +
                                      "j" + std::to_string(jobs))
                                         .c_str(),
                                     seed);
                std::vector<Decision> sharded_batch;
                sharded->decide_batch(batch, sharded_batch);
                ASSERT_EQ(sharded_batch.size(), items.size()) << sharded->name();
                for (std::size_t m = 0; m < items.size(); ++m)
                    expect_same_decision(batched[m], sharded_batch[m],
                                         (sharded->name() + " batch s" +
                                          std::to_string(shards) + "j" + std::to_string(jobs))
                                             .c_str(),
                                         seed, m);
            }
        }
    }

    // MilpRM documents *ignoring* the shard config (its solver does not
    // decompose provably bit-identically); the subsample pins that ignoring
    // is total — identical decisions, not a partial sharded path.  It runs
    // on the DVFS-free islands variant because the MILP formulation rejects
    // DVFS platforms outright.
    if (seed % 5 == 0) {
        ShardWorld milp_world(seed, /*with_dvfs=*/false);
        // The MILP lookahead models at most one predicted request.
        if (milp_world.context.predicted.size() > 1) milp_world.context.predicted.resize(1);
        Rng milp_rng(seed ^ 0x31415926535ULL);
        std::vector<BatchItem> milp_items;
        milp_items.push_back({milp_world.context.candidate, milp_world.context.predicted});
        const std::size_t milp_extra = 1 + milp_rng.index(3);
        for (std::size_t m = 0; m < milp_extra; ++m)
            milp_items.push_back(milp_world.item(101 + m, milp_rng));
        const BatchArrivalContext milp_batch = milp_world.batch_of(milp_items);

        MilpRM reference;
        MilpRM sharded;
        sharded.set_shard_config({4, 8});
        expect_same_decision(reference.decide(milp_world.context),
                             sharded.decide(milp_world.context), "milp decide", seed);
        std::vector<Decision> a;
        std::vector<Decision> b;
        reference.decide_batch(milp_batch, a);
        sharded.decide_batch(milp_batch, b);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t m = 0; m < a.size(); ++m)
            expect_same_decision(a[m], b[m], "milp batch", seed, m);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDifferential, ::testing::Range<std::uint64_t>(0, 200));

// ---- directed cases ----

/// Byte-identical twin islands: CPU0 and CPU1 host mirror-image task types
/// with equal costs and equal deadlines, so every cross-bucket comparison a
/// sequential solve could make is a tie.  The sharded path never makes
/// those comparisons (buckets are independent); bit-identity therefore
/// hinges on the within-bucket tie-breaks being total — exactly what the
/// totalized sorts in ExactRM and the lowest-index picks in Algorithm 1
/// provide.
TEST(ShardDirected, CrossShardTieBreaksMatchSequential) {
    PlatformBuilder builder;
    builder.add_cpu("CPU0");
    builder.add_cpu("CPU1");
    const Platform platform = builder.build();

    const double inf = kNotExecutable;
    const std::vector<std::vector<double>> no_migration(2, std::vector<double>(2, 0.0));
    std::vector<TaskType> types;
    types.emplace_back(0, std::vector<double>{10.0, inf}, std::vector<double>{5.0, inf},
                       no_migration, no_migration); // island 0 resident
    types.emplace_back(1, std::vector<double>{inf, 10.0}, std::vector<double>{inf, 5.0},
                       no_migration, no_migration); // island 1 mirror twin
    types.emplace_back(2, std::vector<double>{10.0, inf}, std::vector<double>{5.0, inf},
                       no_migration, no_migration); // the candidate's type
    const Catalog catalog{std::move(types)};

    std::vector<ActiveTask> active;
    active.push_back(task_of(0, 0, 0.0, 50.0)); // equal deadlines: a demand_order
    active.push_back(task_of(1, 1, 0.0, 50.0)); // tie broken only by uid
    active[0].resource = 0;
    active[1].resource = 1;

    ArrivalContext context;
    context.now = 0.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.active = active;
    context.candidate = task_of(100, 2, 0.0, 25.0);
    context.predicted = {PredictedTask{1, 5.0, 30.0}}; // predicted in the *other* island

    for (const Kind kind : {Kind::heuristic, Kind::exact}) {
        const std::unique_ptr<ResourceManager> reference = make_rm(kind);
        const std::unique_ptr<ResourceManager> sharded = make_rm(kind);
        sharded->set_shard_config({2, 2});
        const Decision a = reference->decide(context);
        const Decision b = sharded->decide(context);
        expect_same_decision(a, b, sharded->name().c_str(), 0);
        // The world is feasible by construction; pin the full placement so
        // the tie can never silently flip both paths the same wrong way.
        ASSERT_TRUE(b.admitted) << sharded->name();
        ASSERT_EQ(b.assignments.size(), 3u) << sharded->name();
        for (const TaskAssignment& assignment : b.assignments) {
            if (assignment.uid == 0) EXPECT_EQ(assignment.resource, 0u);
            if (assignment.uid == 1) EXPECT_EQ(assignment.resource, 1u);
            if (assignment.uid == 100) EXPECT_EQ(assignment.resource, 0u);
        }
    }
}

/// The degenerate partition: on the motivational platform every type can
/// reach every resource, so the executability graph is one connected
/// component — shards = 8 must fold to a single bucket and reproduce the
/// sequential path exactly (it *is* the sequential solve, plus the fold).
TEST(ShardDirected, SingleGroupPartitionFoldsToOneBucket) {
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        const Platform platform = make_motivational_platform();
        CatalogParams params;
        params.type_count = 8;
        Rng catalog_rng = Rng(seed).derive(1);
        const Catalog catalog = generate_catalog(platform, params, catalog_rng);

        ShardPartition partition;
        partition.rebuild(platform, catalog);
        ASSERT_EQ(partition.group_count(), 1u);
        ASSERT_EQ(partition.bucket_count(8), 1u);

        Rng rng(seed);
        std::vector<ActiveTask> active;
        const std::size_t task_count = rng.index(5);
        for (std::size_t j = 0; j < task_count; ++j) {
            ActiveTask task = task_of(j, rng.index(catalog.size()), 0.0, 0.0);
            const TaskType& type = catalog.type(task.type);
            task.absolute_deadline = rng.uniform(10.0, 120.0);
            task.resource =
                type.executable_resources()[rng.index(type.executable_resources().size())];
            active.push_back(task);
        }
        ArrivalContext context;
        context.now = 5.0;
        context.platform = &platform;
        context.catalog = &catalog;
        context.active = active;
        context.candidate = task_of(100, rng.index(catalog.size()), 5.0, rng.uniform(8.0, 90.0));

        for (const Kind kind : {Kind::heuristic, Kind::exact}) {
            const std::unique_ptr<ResourceManager> reference = make_rm(kind);
            const std::unique_ptr<ResourceManager> sharded = make_rm(kind);
            sharded->set_shard_config({8, 8});
            expect_same_decision(reference->decide(context), sharded->decide(context),
                                 sharded->name().c_str(), seed);
        }
    }
}

// ---- partition properties ----

TEST(ShardPartitionProperty, GroupsAreTheExecutabilityComponents) {
    const Platform platform = make_islands_platform();
    CatalogParams params;
    params.type_count = 16;
    Rng rng = Rng(7).derive(1);
    const Catalog catalog = generate_partitioned_catalog(platform, params, kIslands, rng);

    ShardPartition partition;
    partition.rebuild(platform, catalog);
    EXPECT_EQ(partition.group_count(), kIslands);

    // Every type's executable resources share one group, and types assigned
    // to the same island land in the same group.
    std::vector<std::size_t> island_group(kIslands, static_cast<std::size_t>(-1));
    for (TaskTypeId t = 0; t < catalog.size(); ++t) {
        const auto& resources = catalog.type(t).executable_resources();
        ASSERT_FALSE(resources.empty());
        const std::size_t group = partition.group_of(resources.front());
        for (const ResourceId r : resources) EXPECT_EQ(partition.group_of(r), group);
        std::size_t& expected = island_group[t % kIslands];
        if (expected == static_cast<std::size_t>(-1)) expected = group;
        EXPECT_EQ(group, expected) << "type " << t;
    }

    // Operating points share their physical core's group.
    for (const Resource& resource : platform.resources())
        EXPECT_EQ(partition.group_of(resource.id()), partition.group_of(resource.physical()));

    // Bucket folding rules: the cap clamps at group_count, a zero cap acts
    // as one, and folding is plain modulo over dense group ids.
    EXPECT_EQ(partition.bucket_count(1), 1u);
    EXPECT_EQ(partition.bucket_count(3), 3u);
    EXPECT_EQ(partition.bucket_count(8), kIslands);
    EXPECT_EQ(partition.bucket_count(0), 1u);
    for (const Resource& resource : platform.resources())
        EXPECT_EQ(partition.bucket_of_resource(resource.id(), 3),
                  partition.group_of(resource.id()) % 3);
}

TEST(ShardPartitionProperty, RebuildIsDeterministicAndReusable) {
    const Platform platform = make_islands_platform();
    CatalogParams params;
    params.type_count = 16;
    Rng rng = Rng(11).derive(1);
    const Catalog catalog = generate_partitioned_catalog(platform, params, kIslands, rng);

    ShardPartition fresh;
    fresh.rebuild(platform, catalog);
    ShardPartition reused;
    // A pooled partition must forget a previous, differently-shaped world.
    const Platform other = make_motivational_platform();
    CatalogParams other_params;
    other_params.type_count = 4;
    Rng other_rng = Rng(3).derive(1);
    const Catalog other_catalog = generate_catalog(other, other_params, other_rng);
    reused.rebuild(other, other_catalog);
    reused.rebuild(platform, catalog);

    ASSERT_EQ(fresh.group_count(), reused.group_count());
    for (const Resource& resource : platform.resources())
        EXPECT_EQ(fresh.group_of(resource.id()), reused.group_of(resource.id()));

    // Dense ids in smallest-resource-id order: group 0 contains resource 0,
    // and the first resource of each group id ascends.
    std::vector<ResourceId> first_of(fresh.group_count(), platform.size());
    for (const Resource& resource : platform.resources()) {
        ResourceId& first = first_of[fresh.group_of(resource.id())];
        first = std::min(first, resource.id());
    }
    for (std::size_t g = 1; g < first_of.size(); ++g) EXPECT_LT(first_of[g - 1], first_of[g]);
}

// ---- demand-order properties (the ground the per-bucket probes stand on) ----

std::vector<ScheduleItem> random_items(std::uint64_t seed, std::size_t count) {
    // Coarse value grids force plenty of deadline/release ties, so the uid
    // tie-break actually decides orderings.
    Rng rng(seed);
    std::vector<ScheduleItem> items;
    for (std::size_t k = 0; k < count; ++k) {
        ScheduleItem item;
        item.uid = k;
        item.abs_deadline = 10.0 * static_cast<double>(1 + rng.index(4));
        item.release = 2.0 * static_cast<double>(rng.index(3));
        item.duration = rng.uniform(1.0, 5.0);
        items.push_back(item);
    }
    rng.shuffle(items);
    return items;
}

TEST(DemandOrderProperty, TotalOrderSurvivesShardSplitAndMerge) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        std::vector<ScheduleItem> items = random_items(seed, 64);

        // Totality and antisymmetry over distinct items (uids are unique).
        Rng pick(seed ^ 0x70701ULL);
        for (int probe = 0; probe < 64; ++probe) {
            const ScheduleItem& a = items[pick.index(items.size())];
            const ScheduleItem& b = items[pick.index(items.size())];
            if (a.uid == b.uid) continue;
            EXPECT_NE(demand_order(a, b), demand_order(b, a));
        }

        std::vector<ScheduleItem> full = items;
        std::sort(full.begin(), full.end(), demand_order);

        // Split into 4 "shards" by an arbitrary key, sort each, then merge:
        // the result must be the full sort, element for element — the exact
        // shape of a per-bucket sorted state re-unified by the merge.
        std::vector<std::vector<ScheduleItem>> shards(4);
        for (const ScheduleItem& item : items) shards[item.uid % 4].push_back(item);
        std::vector<ScheduleItem> merged;
        for (std::vector<ScheduleItem>& shard : shards) {
            std::sort(shard.begin(), shard.end(), demand_order);
            std::vector<ScheduleItem> next;
            std::merge(merged.begin(), merged.end(), shard.begin(), shard.end(),
                       std::back_inserter(next), demand_order);
            merged = std::move(next);
        }
        ASSERT_EQ(merged.size(), full.size());
        for (std::size_t k = 0; k < full.size(); ++k)
            EXPECT_EQ(merged[k].uid, full[k].uid) << "seed " << seed << " slot " << k;
    }
}

TEST(DemandOrderProperty, IncrementalInsertEqualsFullResort) {
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
        const std::vector<ScheduleItem> items = random_items(seed ^ 0x1245ULL, 48);

        std::vector<ScheduleItem> incremental;
        for (const ScheduleItem& item : items) {
            const std::size_t at = insert_demand_ordered(incremental, item);
            ASSERT_LT(at, incremental.size());
            EXPECT_EQ(incremental[at].uid, item.uid);
        }

        std::vector<ScheduleItem> resorted = items;
        std::sort(resorted.begin(), resorted.end(), demand_order);
        ASSERT_EQ(incremental.size(), resorted.size());
        for (std::size_t k = 0; k < resorted.size(); ++k)
            EXPECT_EQ(incremental[k].uid, resorted[k].uid) << "seed " << seed << " slot " << k;
    }
}

// ---- serve level ----

void expect_same_trace(const TraceResult& a, const TraceResult& b) {
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.activations, b.activations);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.deadline_misses, b.deadline_misses);
    EXPECT_EQ(a.aborted, b.aborted);
    EXPECT_EQ(a.fault_aborted, b.fault_aborted);
    EXPECT_EQ(a.total_energy, b.total_energy);
    EXPECT_EQ(a.migration_energy, b.migration_energy);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.plans_with_prediction, b.plans_with_prediction);
    EXPECT_EQ(a.resource_outages, b.resource_outages);
    EXPECT_EQ(a.throttle_events, b.throttle_events);
    EXPECT_EQ(a.rescue_activations, b.rescue_activations);
    EXPECT_EQ(a.rescued, b.rescued);
    EXPECT_EQ(a.rescue_migrations, b.rescue_migrations);
}

TEST(ShardServe, ShardedServiceIsBitIdenticalAndRecordsMergedLatency) {
    const auto run_once = [](const ShardConfig& shard, obs::StageStats* stats) {
        const Platform platform = make_islands_platform();
        CatalogParams params;
        params.type_count = 16;
        Rng catalog_rng = Rng(5).derive(1);
        const Catalog catalog = generate_partitioned_catalog(platform, params, kIslands,
                                                             catalog_rng);
        SyntheticSourceParams source_params;
        source_params.seed = 9;
        SyntheticArrivalSource source(catalog, source_params);
        HeuristicRM rm;
        rm.set_shard_config(shard);
        OnlinePredictor predictor(catalog);
        ServeConfig config;
        config.monitor = false;
        config.max_arrivals = 400;
        config.faults.outage_rate = 0.25;
        config.faults.throttle_rate = 0.2;
        config.fault_seed = 17;
        config.fault_chunk = 500.0;
        config.sim.execution_seed = 21;
        config.sim.execution_time_factor_min = 0.7;
        config.stage_stats_out = stats;
        return run_serve(platform, catalog, rm, predictor, nullptr, source, config);
    };

    obs::StageStats stats;
    const ServeResult sequential = run_once({1, 1}, nullptr);
    const ServeResult sharded = run_once({4, 4}, &stats);

    EXPECT_EQ(sequential.exit_code, 0);
    EXPECT_EQ(sharded.exit_code, 0);
    EXPECT_EQ(sequential.arrivals, sharded.arrivals);
    EXPECT_EQ(sequential.shed, sharded.shed);
    expect_same_trace(sequential.result, sharded.result);
    EXPECT_GT(sharded.result.rescue_activations + sharded.result.throttle_events, 0u);
    // The online predictor scores itself identically along both paths.
    EXPECT_GT(sequential.predictor_predictions, 0u);
    EXPECT_EQ(sequential.predictor_predictions, sharded.predictor_predictions);
    EXPECT_EQ(sequential.predictor_hits, sharded.predictor_hits);

    // The latency HDR records after the cross-shard merge — every quantile
    // covers whole decisions, so the ladder of quantiles is monotone and
    // strictly positive on both paths.
    for (const ServeResult* run : {&sequential, &sharded}) {
        EXPECT_GT(run->latency_p50_us, 0.0);
        EXPECT_LE(run->latency_p50_us, run->latency_p90_us);
        EXPECT_LE(run->latency_p90_us, run->latency_p99_us);
        EXPECT_LE(run->latency_p99_us, run->latency_p999_us);
    }

#ifdef RMWP_OBS
    // Shard stage attribution lands on the engine thread (the caller of the
    // fork-join), where serve's StageStatsScope is installed.
    EXPECT_GT(stats.cell(obs::Stage::shard_solve).calls, 0u);
    EXPECT_GT(stats.cell(obs::Stage::shard_merge).calls, 0u);
    EXPECT_GE(stats.cell(obs::Stage::shard_solve).calls,
              stats.cell(obs::Stage::shard_merge).calls);
#endif
}

} // namespace
} // namespace rmwp
