// Tests for the prediction substrate: oracle truthfulness, calibrated noise
// (the Fig 4 knobs), the online Markov/two-phase predictor, and the spec
// factory.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "predict/noisy.hpp"
#include "predict/online.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "util/stats.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

struct PredictWorld {
    Platform platform = make_paper_platform();
    Catalog catalog;
    Trace trace;

    static Catalog make_world_catalog(const Platform& platform, std::uint64_t seed) {
        CatalogParams params;
        params.type_count = 20;
        Rng catalog_rng = Rng(seed).derive(1);
        return generate_catalog(platform, params, catalog_rng);
    }

    explicit PredictWorld(std::uint64_t seed = 1, std::size_t length = 2000)
        : catalog(make_world_catalog(platform, seed)) {
        TraceGenParams trace_params;
        trace_params.length = length;
        Rng trace_rng = Rng(seed).derive(2);
        trace = generate_trace(catalog, trace_params, trace_rng);
    }
};

TEST(Oracle, ReturnsGroundTruth) {
    const PredictWorld setup;
    OraclePredictor oracle;
    for (std::size_t j = 0; j + 1 < 50; ++j) {
        const auto predicted = oracle.predict_next(setup.trace, j, setup.trace.request(j).arrival);
        ASSERT_TRUE(predicted.has_value());
        const Request& next = setup.trace.request(j + 1);
        EXPECT_EQ(predicted->type, next.type);
        EXPECT_DOUBLE_EQ(predicted->arrival, next.arrival);
        EXPECT_DOUBLE_EQ(predicted->relative_deadline, next.relative_deadline);
    }
}

TEST(Oracle, NoPredictionAtEndOfTrace) {
    const PredictWorld setup;
    OraclePredictor oracle;
    EXPECT_FALSE(oracle.predict_next(setup.trace, setup.trace.size() - 1, 0.0).has_value());
}

TEST(Oracle, ClampsArrivalToNow) {
    const PredictWorld setup;
    OraclePredictor oracle;
    const Time late_now = setup.trace.request(1).arrival + 100.0;
    const auto predicted = oracle.predict_next(setup.trace, 0, late_now);
    ASSERT_TRUE(predicted.has_value());
    EXPECT_DOUBLE_EQ(predicted->arrival, late_now);
}

TEST(Oracle, OverheadPassthrough) {
    OraclePredictor oracle(0.25);
    EXPECT_DOUBLE_EQ(oracle.overhead(), 0.25);
}

TEST(Noisy, TypeAccuracyIsCalibrated) {
    const PredictWorld setup;
    NoisyPredictor predictor(setup.catalog, /*type_accuracy=*/0.75, /*time_nrmse=*/0.0,
                             Rng(99));
    std::size_t hits = 0;
    std::size_t total = 0;
    for (std::size_t j = 0; j + 1 < setup.trace.size(); ++j) {
        const auto predicted = predictor.predict_next(setup.trace, j, 0.0);
        ASSERT_TRUE(predicted.has_value());
        ++total;
        if (predicted->type == setup.trace.request(j + 1).type) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / static_cast<double>(total), 0.75, 0.03);
}

TEST(Noisy, WrongTypeIsNeverTheTruth) {
    // With accuracy 0, the predicted identity must always differ.
    const PredictWorld setup;
    NoisyPredictor predictor(setup.catalog, 0.0, 0.0, Rng(100));
    for (std::size_t j = 0; j + 1 < 300; ++j) {
        const auto predicted = predictor.predict_next(setup.trace, j, 0.0);
        ASSERT_TRUE(predicted.has_value());
        EXPECT_NE(predicted->type, setup.trace.request(j + 1).type);
    }
}

TEST(Noisy, ArrivalNrmseIsCalibrated) {
    const PredictWorld setup;
    const double dialed = 0.25;
    NoisyPredictor predictor(setup.catalog, 1.0, dialed, Rng(101));
    std::vector<double> predicted_times;
    std::vector<double> actual_times;
    for (std::size_t j = 0; j + 1 < setup.trace.size(); ++j) {
        const auto predicted = predictor.predict_next(setup.trace, j, 0.0);
        ASSERT_TRUE(predicted.has_value());
        predicted_times.push_back(predicted->arrival);
        actual_times.push_back(setup.trace.request(j + 1).arrival);
    }
    // Sec 5.4 definition: RMSE over the trace normalised by the mean
    // interarrival time.
    const double realized =
        rmse(predicted_times, actual_times) / setup.trace.mean_interarrival();
    EXPECT_NEAR(realized, dialed, 0.03);
}

TEST(Noisy, DeadlineStaysTruthful) {
    const PredictWorld setup;
    NoisyPredictor predictor(setup.catalog, 0.5, 0.5, Rng(102));
    for (std::size_t j = 0; j + 1 < 100; ++j) {
        const auto predicted = predictor.predict_next(setup.trace, j, 0.0);
        ASSERT_TRUE(predicted.has_value());
        EXPECT_DOUBLE_EQ(predicted->relative_deadline,
                         setup.trace.request(j + 1).relative_deadline);
    }
}

TEST(Noisy, ArrivalNeverBeforeNow) {
    const PredictWorld setup;
    NoisyPredictor predictor(setup.catalog, 1.0, 2.0, Rng(103)); // huge noise
    for (std::size_t j = 0; j + 1 < 500; ++j) {
        const Time now = setup.trace.request(j).arrival;
        const auto predicted = predictor.predict_next(setup.trace, j, now);
        ASSERT_TRUE(predicted.has_value());
        EXPECT_GE(predicted->arrival, now);
    }
}

TEST(Null, NeverPredicts) {
    const PredictWorld setup;
    NullPredictor predictor;
    EXPECT_FALSE(predictor.predict_next(setup.trace, 0, 0.0).has_value());
    EXPECT_DOUBLE_EQ(predictor.overhead(), 0.0);
}

TEST(TwoPhaseEstimator, ConvergesOnUnimodalStream) {
    TwoPhaseInterarrivalEstimator estimator;
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) estimator.observe(rng.gaussian_above(6.0, 2.0, 0.1));
    EXPECT_NEAR(estimator.predict(), 6.0, 1.0);
}

TEST(TwoPhaseEstimator, TracksAlternatingPhases) {
    // Gaps alternate between a burst regime (~2) and a lull regime (~20) in
    // blocks; after the blocks stabilise, predictions should follow the
    // current regime, not the global mean (~11).
    TwoPhaseInterarrivalEstimator estimator;
    Rng rng(8);
    double burst_error = 0.0;
    double lull_error = 0.0;
    int scored = 0;
    for (int block = 0; block < 40; ++block) {
        const bool burst = block % 2 == 0;
        for (int i = 0; i < 25; ++i) {
            const double gap = burst ? rng.gaussian_above(2.0, 0.2, 0.1)
                                     : rng.gaussian_above(20.0, 2.0, 0.1);
            estimator.observe(gap);
            if (block >= 10 && i >= 1) { // warm, and within-block
                const double prediction = estimator.predict();
                if (burst) burst_error += std::abs(prediction - 2.0);
                else lull_error += std::abs(prediction - 20.0);
                ++scored;
            }
        }
    }
    ASSERT_GT(scored, 0);
    // Mean in-regime error far below the 9-unit error a global mean incurs.
    EXPECT_LT((burst_error + lull_error) / scored, 3.0);
}

TEST(MarkovChain, LearnsDeterministicCycle) {
    MarkovTypeChain chain(4);
    chain.observe_first(0);
    for (int round = 0; round < 10; ++round)
        for (TaskTypeId t = 0; t < 4; ++t) chain.observe(t, (t + 1) % 4);
    for (TaskTypeId t = 0; t < 4; ++t) EXPECT_EQ(chain.predict(t), (t + 1) % 4);
}

TEST(MarkovChain, ColdRowFallsBackToGlobalMode) {
    MarkovTypeChain chain(5);
    chain.observe_first(2);
    chain.observe(2, 2);
    chain.observe(2, 2);
    // Row 4 never seen: the global mode (type 2) is predicted.
    EXPECT_EQ(chain.predict(4), 2u);
}

TEST(Online, LearnsPatternedStream) {
    // Types follow a cycle; the online predictor should reach high realized
    // type accuracy.
    const PredictWorld setup;
    std::vector<Request> requests;
    Time arrival = 0.0;
    Rng rng(9);
    for (std::size_t j = 0; j < 600; ++j) {
        if (j > 0) arrival += rng.gaussian_above(6.0, 1.0, 0.5);
        requests.push_back(Request{arrival, j % 5, 30.0});
    }
    const Trace trace(std::move(requests));

    OnlinePredictor predictor(setup.catalog);
    for (std::size_t j = 0; j + 1 < trace.size(); ++j) {
        predictor.observe(trace, j);
        std::ignore = predictor.predict_next(trace, j, trace.request(j).arrival);
    }
    predictor.observe(trace, trace.size() - 1);
    EXPECT_GT(predictor.realized_type_accuracy(), 0.9);
}

TEST(Online, ColdStartYieldsNoPrediction) {
    const PredictWorld setup;
    OnlinePredictor predictor(setup.catalog);
    predictor.observe(setup.trace, 0);
    EXPECT_FALSE(predictor.predict_next(setup.trace, 0, 0.0).has_value());
}

TEST(Factory, BuildsEveryKind) {
    const PredictWorld setup;
    for (const PredictorSpec::Kind kind :
         {PredictorSpec::Kind::none, PredictorSpec::Kind::oracle, PredictorSpec::Kind::noisy,
          PredictorSpec::Kind::online}) {
        PredictorSpec spec;
        spec.kind = kind;
        const auto predictor = make_predictor(spec, setup.catalog, Rng(1));
        ASSERT_NE(predictor, nullptr);
        EXPECT_FALSE(predictor->name().empty());
    }
    EXPECT_EQ(PredictorSpec::off().label(), "off");
    EXPECT_EQ(PredictorSpec::perfect().label(), "on");
}

} // namespace
} // namespace rmwp
