// Tests for the MILP substrate: problem container, two-phase simplex, and
// branch & bound — textbook cases, edge cases, and randomized
// cross-validation against exhaustive search.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "milp/milp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rmwp::milp {
namespace {

TEST(LinearProgram, MergesDuplicateTerms) {
    LinearProgram lp;
    const int x = lp.add_variable("x", 0.0, 10.0);
    const int row = lp.add_constraint({{x, 1.0}, {x, 2.0}}, Relation::less_equal, 6.0);
    ASSERT_EQ(lp.constraint(row).terms.size(), 1u);
    EXPECT_DOUBLE_EQ(lp.constraint(row).terms[0].coefficient, 3.0);
}

TEST(LinearProgram, RejectsBadIndicesAndBounds) {
    LinearProgram lp;
    EXPECT_THROW(lp.add_variable("x", 3.0, 1.0), precondition_error);
    const int x = lp.add_variable("x", 0.0, 1.0);
    EXPECT_THROW(lp.set_objective(x + 1, 1.0), precondition_error);
    EXPECT_THROW(lp.add_constraint({{5, 1.0}}, Relation::equal, 0.0), precondition_error);
}

TEST(Simplex, TextbookMaximization) {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), z = 36.
    LinearProgram lp;
    const int x = lp.add_variable("x", 0.0, 1e30);
    const int y = lp.add_variable("y", 0.0, 1e30);
    lp.set_sense(Sense::maximize);
    lp.set_objective(x, 3.0);
    lp.set_objective(y, 5.0);
    lp.add_constraint({{x, 1.0}}, Relation::less_equal, 4.0);
    lp.add_constraint({{y, 2.0}}, Relation::less_equal, 12.0);
    lp.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::less_equal, 18.0);

    const LpSolution solution = solve_lp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.objective, 36.0, 1e-8);
    EXPECT_NEAR(solution.values[static_cast<std::size_t>(x)], 2.0, 1e-8);
    EXPECT_NEAR(solution.values[static_cast<std::size_t>(y)], 6.0, 1e-8);
}

TEST(Simplex, MinimizationWithGreaterEqual) {
    // min 2x + 3y s.t. x + y >= 4, x >= 1  ->  (4, 0)? No: coefficients make
    // x cheaper per unit: x = 4, y = 0, z = 8.
    LinearProgram lp;
    const int x = lp.add_variable("x", 0.0, 1e30);
    const int y = lp.add_variable("y", 0.0, 1e30);
    lp.set_objective(x, 2.0);
    lp.set_objective(y, 3.0);
    lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::greater_equal, 4.0);
    lp.add_constraint({{x, 1.0}}, Relation::greater_equal, 1.0);

    const LpSolution solution = solve_lp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.objective, 8.0, 1e-8);
}

TEST(Simplex, EqualityConstraints) {
    // min x + y s.t. x + 2y = 6, x - y = 0  ->  x = y = 2, z = 4.
    LinearProgram lp;
    const int x = lp.add_variable("x", 0.0, 1e30);
    const int y = lp.add_variable("y", 0.0, 1e30);
    lp.set_objective(x, 1.0);
    lp.set_objective(y, 1.0);
    lp.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::equal, 6.0);
    lp.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::equal, 0.0);

    const LpSolution solution = solve_lp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.values[static_cast<std::size_t>(x)], 2.0, 1e-8);
    EXPECT_NEAR(solution.values[static_cast<std::size_t>(y)], 2.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
    LinearProgram lp;
    const int x = lp.add_variable("x", 0.0, 1e30);
    lp.set_objective(x, 1.0);
    lp.add_constraint({{x, 1.0}}, Relation::less_equal, 1.0);
    lp.add_constraint({{x, 1.0}}, Relation::greater_equal, 2.0);
    EXPECT_EQ(solve_lp(lp).status, SolveStatus::infeasible);
}

TEST(Simplex, DetectsUnbounded) {
    LinearProgram lp;
    const double inf = std::numeric_limits<double>::infinity();
    const int x = lp.add_variable("x", 0.0, inf);
    lp.set_sense(Sense::maximize);
    lp.set_objective(x, 1.0);
    lp.add_constraint({{x, -1.0}}, Relation::less_equal, 0.0); // x >= 0, no upper bound
    EXPECT_EQ(solve_lp(lp).status, SolveStatus::unbounded);
}

TEST(Simplex, HandlesFreeVariables) {
    // min |shift|-style: x free, min x s.t. x >= -5  ->  x = -5.
    LinearProgram lp;
    const double inf = std::numeric_limits<double>::infinity();
    const int x = lp.add_variable("x", -inf, inf);
    lp.set_objective(x, 1.0);
    lp.add_constraint({{x, 1.0}}, Relation::greater_equal, -5.0);
    const LpSolution solution = solve_lp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.values[0], -5.0, 1e-8);
}

TEST(Simplex, HandlesNegativeLowerBounds) {
    // min x + y with x in [-3, -1], y in [2, 5], x + y >= 0.
    LinearProgram lp;
    const int x = lp.add_variable("x", -3.0, -1.0);
    const int y = lp.add_variable("y", 2.0, 5.0);
    lp.set_objective(x, 1.0);
    lp.set_objective(y, 1.0);
    lp.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::greater_equal, 0.0);
    const LpSolution solution = solve_lp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.objective, 0.0, 1e-8); // e.g. x=-3, y=3 or x=-2, y=2
}

TEST(Simplex, UpperBoundsRespected) {
    LinearProgram lp;
    const int x = lp.add_variable("x", 0.0, 2.5);
    lp.set_sense(Sense::maximize);
    lp.set_objective(x, 1.0);
    const LpSolution solution = solve_lp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.values[0], 2.5, 1e-8);
}

TEST(Milp, SimpleKnapsack) {
    // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary  ->  a + c (17) vs b + c
    // (20, weight 6 ok) -> 20.
    LinearProgram lp;
    const int a = lp.add_binary_variable("a");
    const int b = lp.add_binary_variable("b");
    const int c = lp.add_binary_variable("c");
    lp.set_sense(Sense::maximize);
    lp.set_objective(a, 10.0);
    lp.set_objective(b, 13.0);
    lp.set_objective(c, 7.0);
    lp.add_constraint({{a, 3.0}, {b, 4.0}, {c, 2.0}}, Relation::less_equal, 6.0);

    const MilpSolution solution = solve_milp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_TRUE(solution.proven_optimal);
    EXPECT_NEAR(solution.objective, 20.0, 1e-6);
    EXPECT_NEAR(solution.values[static_cast<std::size_t>(b)], 1.0, 1e-6);
    EXPECT_NEAR(solution.values[static_cast<std::size_t>(c)], 1.0, 1e-6);
}

TEST(Milp, IntegerRounding) {
    // max x, 2x <= 7, x integer -> 3 (LP relaxation gives 3.5).
    LinearProgram lp;
    const int x = lp.add_integer_variable("x", 0.0, 100.0);
    lp.set_sense(Sense::maximize);
    lp.set_objective(x, 1.0);
    lp.add_constraint({{x, 2.0}}, Relation::less_equal, 7.0);
    const MilpSolution solution = solve_milp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.objective, 3.0, 1e-6);
}

TEST(Milp, InfeasibleIntegerProblem) {
    // 0.4 <= x <= 0.6, x integer: LP-feasible, integer-infeasible.
    LinearProgram lp;
    const int x = lp.add_integer_variable("x", 0.0, 1.0);
    lp.set_objective(x, 1.0);
    lp.add_constraint({{x, 1.0}}, Relation::greater_equal, 0.4);
    lp.add_constraint({{x, 1.0}}, Relation::less_equal, 0.6);
    EXPECT_EQ(solve_milp(lp).status, SolveStatus::infeasible);
}

TEST(Milp, MixedIntegerAndContinuous) {
    // min y s.t. y >= 2.5 - x, y >= x - 2.5, x integer in [0, 5]:
    // the best integer x is 2 or 3, y = 0.5.
    LinearProgram lp;
    const int x = lp.add_integer_variable("x", 0.0, 5.0);
    const int y = lp.add_variable("y", 0.0, 1e30);
    lp.set_objective(y, 1.0);
    lp.add_constraint({{y, 1.0}, {x, 1.0}}, Relation::greater_equal, 2.5);
    lp.add_constraint({{y, 1.0}, {x, -1.0}}, Relation::greater_equal, -2.5);
    const MilpSolution solution = solve_milp(lp);
    ASSERT_EQ(solution.status, SolveStatus::optimal);
    EXPECT_NEAR(solution.objective, 0.5, 1e-6);
}

/// Random binary MILPs cross-checked against exhaustive enumeration.
class MilpRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MilpRandom, MatchesExhaustiveEnumeration) {
    Rng rng(GetParam());
    const int vars = 2 + static_cast<int>(rng.index(4)); // 2..5 binaries
    const int rows = 1 + static_cast<int>(rng.index(4));

    LinearProgram lp;
    std::vector<int> handles;
    std::vector<double> costs;
    for (int v = 0; v < vars; ++v) {
        // Built in two steps: gcc 12's -Wrestrict misfires on
        // operator+(const char*, std::string&&) at -O2.
        std::string name = "b";
        name += std::to_string(v);
        handles.push_back(lp.add_binary_variable(name));
        costs.push_back(rng.uniform(-5.0, 5.0));
        lp.set_objective(handles.back(), costs.back());
    }
    std::vector<std::vector<double>> coefficients(rows, std::vector<double>(vars));
    std::vector<double> rhs(rows);
    for (int r = 0; r < rows; ++r) {
        std::vector<LinearTerm> terms;
        for (int v = 0; v < vars; ++v) {
            coefficients[r][v] = rng.uniform(-3.0, 3.0);
            terms.push_back({handles[v], coefficients[r][v]});
        }
        rhs[r] = rng.uniform(-2.0, 4.0);
        lp.add_constraint(std::move(terms), Relation::less_equal, rhs[r]);
    }

    // Exhaustive ground truth.
    double best = std::numeric_limits<double>::infinity();
    for (int mask = 0; mask < (1 << vars); ++mask) {
        bool ok = true;
        for (int r = 0; r < rows && ok; ++r) {
            double lhs = 0.0;
            for (int v = 0; v < vars; ++v)
                if (mask & (1 << v)) lhs += coefficients[r][v];
            ok = lhs <= rhs[r] + 1e-9;
        }
        if (!ok) continue;
        double cost = 0.0;
        for (int v = 0; v < vars; ++v)
            if (mask & (1 << v)) cost += costs[v];
        best = std::min(best, cost);
    }

    const MilpSolution solution = solve_milp(lp);
    if (std::isinf(best)) {
        EXPECT_EQ(solution.status, SolveStatus::infeasible);
    } else {
        ASSERT_EQ(solution.status, SolveStatus::optimal) << "seed " << GetParam();
        EXPECT_NEAR(solution.objective, best, 1e-6) << "seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(RandomMilps, MilpRandom, ::testing::Range<std::uint64_t>(0, 80));

TEST(SolveStatus, ToString) {
    EXPECT_STREQ(to_string(SolveStatus::optimal), "optimal");
    EXPECT_STREQ(to_string(SolveStatus::infeasible), "infeasible");
    EXPECT_STREQ(to_string(SolveStatus::unbounded), "unbounded");
    EXPECT_STREQ(to_string(SolveStatus::iteration_limit), "iteration_limit");
}

} // namespace
} // namespace rmwp::milp
