// Tests for the EDF scheduling engine — the semantics at the heart of both
// resource managers: EDF ordering, the predicted task's release-time
// preemption (the MILP's constraints (4)-(14) as behaviour), non-preemptable
// resources, pinned tasks, and feasibility detection.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/edf.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace rmwp {
namespace {

const Resource kCpu(0, ResourceKind::cpu, "CPU");
const Resource kGpu(1, ResourceKind::gpu, "GPU");

ScheduleItem item(TaskUid uid, double duration, Time deadline, Time release = 0.0,
                  bool pinned = false) {
    ScheduleItem it;
    it.uid = uid;
    it.resource = 0;
    it.release = release;
    it.abs_deadline = deadline;
    it.duration = duration;
    it.pinned_first = pinned;
    return it;
}

/// All segments must be disjoint and time-ordered.
void expect_well_formed(const ResourceTimeline& timeline, Time now) {
    Time previous_end = now;
    for (const Segment& segment : timeline.segments) {
        EXPECT_GE(segment.start, previous_end - 1e-9);
        EXPECT_GT(segment.end, segment.start);
        previous_end = segment.end;
    }
}

TEST(Edf, SingleTaskRunsImmediately) {
    const std::vector<ScheduleItem> items{item(1, 5.0, 10.0)};
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    ASSERT_EQ(result.timeline.segments.size(), 1u);
    EXPECT_DOUBLE_EQ(result.timeline.segments[0].start, 0.0);
    EXPECT_DOUBLE_EQ(result.timeline.segments[0].end, 5.0);
    EXPECT_DOUBLE_EQ(completion.at(1), 5.0);
}

TEST(Edf, StartsAtNowNotZero) {
    std::vector<ScheduleItem> items{item(1, 5.0, 110.0, 100.0)};
    const auto result = schedule_resource(kCpu, 100.0, items);
    ASSERT_EQ(result.timeline.segments.size(), 1u);
    EXPECT_DOUBLE_EQ(result.timeline.segments[0].start, 100.0);
}

TEST(Edf, OrdersByDeadline) {
    const std::vector<ScheduleItem> items{item(1, 4.0, 20.0), item(2, 3.0, 5.0),
                                          item(3, 2.0, 12.0)};
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    // EDF: 2 (d=5), then 3 (d=12), then 1 (d=20).
    EXPECT_DOUBLE_EQ(completion.at(2), 3.0);
    EXPECT_DOUBLE_EQ(completion.at(3), 5.0);
    EXPECT_DOUBLE_EQ(completion.at(1), 9.0);
    expect_well_formed(result.timeline, 0.0);
}

TEST(Edf, DetectsDeadlineViolation) {
    const std::vector<ScheduleItem> items{item(1, 4.0, 4.0), item(2, 3.0, 5.0)};
    const auto result = schedule_resource(kCpu, 0.0, items);
    // Task 1 finishes at 4 (ok), task 2 at 7 > 5: infeasible.
    EXPECT_FALSE(result.feasible);
    EXPECT_FALSE(resource_feasible(kCpu, 0.0, items));
}

TEST(Edf, ExactlyMeetingDeadlineIsFeasible) {
    const std::vector<ScheduleItem> items{item(1, 4.0, 4.0), item(2, 3.0, 7.0)};
    EXPECT_TRUE(resource_feasible(kCpu, 0.0, items));
}

TEST(Edf, DeadlineTieBreaksByUid) {
    const std::vector<ScheduleItem> items{item(7, 2.0, 10.0), item(3, 2.0, 10.0)};
    std::unordered_map<TaskUid, Time> completion;
    std::ignore = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_DOUBLE_EQ(completion.at(3), 2.0);
    EXPECT_DOUBLE_EQ(completion.at(7), 4.0);
}

TEST(Edf, ZeroDurationCompletesInstantly) {
    const std::vector<ScheduleItem> items{item(1, 0.0, 10.0), item(2, 3.0, 5.0)};
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_EQ(completion.count(1), 1u);
    ASSERT_EQ(result.timeline.segments.size(), 1u); // no zero-width segment emitted
}

// ---- predicted-task semantics (the virtual task has release = s_p) ----

TEST(EdfPredicted, LaterDeadlineQueuesAfterAll) {
    // Paper case (4)/(5): tau_p has the latest deadline; it runs at
    // max(s_p, q_i) where q_i is when everything else finishes.
    std::vector<ScheduleItem> items{item(1, 6.0, 10.0),
                                    item(kPredictedUid, 3.0, 20.0, /*release=*/2.0)};
    std::unordered_map<TaskUid, Time> completion;
    auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(1), 6.0);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 9.0); // starts at q = 6 > s_p = 2

    // s_p beyond q: starts at s_p.
    items[1].release = 8.0;
    completion.clear();
    result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 11.0);
    // The resource idles in [6, 8): verify via the segment start.
    ASSERT_EQ(result.timeline.segments.size(), 2u);
    EXPECT_DOUBLE_EQ(result.timeline.segments[1].start, 8.0);
}

TEST(EdfPredicted, EarlierDeadlineArrivingDuringSl1DoesNotPreempt) {
    // Paper case (6)/(7) with s_p <= q_i: SL1 (deadline <= d_p) runs first;
    // tau_p follows without preempting.
    const std::vector<ScheduleItem> items{
        item(1, 4.0, 6.0),                                   // SL1 (d=6 <= d_p=8)
        item(2, 5.0, 30.0),                                  // SL2
        item(kPredictedUid, 2.0, 8.0, /*release=*/1.0),      // d_p = 8
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(1), 4.0);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 6.0);
    EXPECT_DOUBLE_EQ(completion.at(2), 11.0);
    // Task 1 must not be split.
    EXPECT_EQ(result.timeline.segments.size(), 3u);
}

TEST(EdfPredicted, ArrivalAfterQPreemptsRunningSl2Task) {
    // Paper constraints (8)-(14): tau_p arrives while an SL2 task runs; the
    // task splits into two chunks around tau_p.
    const std::vector<ScheduleItem> items{
        item(1, 3.0, 5.0),                              // SL1, runs [0, 3)
        item(2, 8.0, 30.0),                             // SL2, starts at 3
        item(kPredictedUid, 2.0, 10.0, /*release=*/5.0) // preempts task 2 at 5
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(1), 3.0);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 7.0);
    EXPECT_DOUBLE_EQ(completion.at(2), 13.0); // 8 units of work + 2 preempted

    // Task 2 must have exactly two chunks: [3, 5) and [7, 13).
    std::vector<Segment> chunks;
    for (const Segment& segment : result.timeline.segments)
        if (segment.uid == 2) chunks.push_back(segment);
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_DOUBLE_EQ(chunks[0].start, 3.0);
    EXPECT_DOUBLE_EQ(chunks[0].end, 5.0);
    EXPECT_DOUBLE_EQ(chunks[1].start, 7.0);
    EXPECT_DOUBLE_EQ(chunks[1].end, 13.0);
}

TEST(EdfPredicted, EqualDeadlineDoesNotPreempt) {
    // SL1 is "deadline earlier *or equal*": the predicted task loses ties.
    const std::vector<ScheduleItem> items{
        item(1, 6.0, 10.0),
        item(kPredictedUid, 2.0, 10.0, /*release=*/2.0),
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_DOUBLE_EQ(completion.at(1), 6.0); // not preempted at t=2
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 8.0);
    EXPECT_EQ(result.timeline.segments.size(), 2u);
}

TEST(EdfPredicted, NoPreemptionOnGpu) {
    // Sec 4.1: preemption by the predicted task is not applied to a GPU.
    // The same scenario as ArrivalAfterQPreempts... but on the GPU: tau_p
    // waits for the running task to finish.
    const std::vector<ScheduleItem> items{
        item(1, 3.0, 5.0),
        item(2, 8.0, 30.0),
        item(kPredictedUid, 2.0, 16.0, /*release=*/5.0),
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kGpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(2), 11.0);              // runs [3, 11) unsplit
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 13.0);  // boundary dispatch at 11
    for (const Segment& segment : result.timeline.segments)
        if (segment.uid == 2) {
            EXPECT_DOUBLE_EQ(segment.duration(), 8.0);
        }
}

TEST(EdfPredicted, GpuBoundaryDispatchPrefersPredictedWhenReleased) {
    // At a task boundary past s_p, EDF picks the (earlier-deadline)
    // predicted task before remaining SL2 work.
    const std::vector<ScheduleItem> items{
        item(1, 4.0, 6.0),
        item(2, 5.0, 40.0),
        item(3, 5.0, 50.0),
        item(kPredictedUid, 2.0, 12.0, /*release=*/3.0),
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kGpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(1), 4.0);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 6.0); // boundary at 4 >= s_p = 3
    EXPECT_DOUBLE_EQ(completion.at(2), 11.0);
    EXPECT_DOUBLE_EQ(completion.at(3), 16.0);
}

TEST(EdfPredicted, GpuWorkConservingBeforeRelease) {
    // If the boundary comes before s_p, the GPU does not idle waiting for
    // the predicted task: non-preemptive EDF is work-conserving.
    const std::vector<ScheduleItem> items{
        item(1, 2.0, 4.0),
        item(2, 6.0, 40.0),
        item(kPredictedUid, 2.0, 12.0, /*release=*/3.0),
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kGpu, 0.0, items, &completion);
    // Boundary at t=2 < s_p=3: task 2 dispatches; tau_p must wait until 8.
    EXPECT_DOUBLE_EQ(completion.at(2), 8.0);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 10.0);
    EXPECT_TRUE(result.feasible);
}

// ---- pinned tasks ----

TEST(EdfPinned, PinnedRunsFirstDespiteLaterDeadline) {
    const std::vector<ScheduleItem> items{
        item(1, 5.0, 100.0, 0.0, /*pinned=*/true), // currently executing on the GPU
        item(2, 2.0, 8.0),                         // earlier deadline but must wait
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kGpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(1), 5.0);
    EXPECT_DOUBLE_EQ(completion.at(2), 7.0);
}

TEST(EdfPinned, PinnedOnPreemptableResourceThrows) {
    const std::vector<ScheduleItem> items{item(1, 5.0, 100.0, 0.0, /*pinned=*/true)};
    EXPECT_THROW(std::ignore = schedule_resource(kCpu, 0.0, items), precondition_error);
}

// ---- window-level assembly ----

TEST(WindowSchedule, GroupsByResourceAndReportsCompletions) {
    const Platform platform = make_motivational_platform();
    std::vector<ScheduleItem> items;
    ScheduleItem a = item(1, 5.0, 10.0);
    a.resource = 0;
    ScheduleItem b = item(2, 3.0, 6.0);
    b.resource = 2;
    items = {a, b};
    const WindowSchedule schedule = build_window_schedule(platform, 0.0, items);
    EXPECT_TRUE(schedule.feasible);
    ASSERT_EQ(schedule.per_resource.size(), 3u);
    EXPECT_EQ(schedule.per_resource[0].segments.size(), 1u);
    EXPECT_TRUE(schedule.per_resource[1].segments.empty());
    EXPECT_EQ(schedule.per_resource[2].segments.size(), 1u);
    EXPECT_DOUBLE_EQ(*schedule.completion_of(1), 5.0);
    EXPECT_DOUBLE_EQ(*schedule.completion_of(2), 3.0);
    EXPECT_FALSE(schedule.completion_of(99).has_value());
}

TEST(WindowSchedule, SegmentsOfCollectsAcrossResources) {
    const Platform platform = make_motivational_platform();
    ScheduleItem a = item(1, 5.0, 20.0);
    a.resource = 0;
    const WindowSchedule schedule = build_window_schedule(platform, 0.0, std::vector{a});
    const auto segments = schedule.segments_of(1);
    ASSERT_EQ(segments.size(), 1u);
    EXPECT_DOUBLE_EQ(segments[0].duration(), 5.0);
}

TEST(WindowSchedule, InvalidResourceIndexThrows) {
    const Platform platform = make_motivational_platform();
    ScheduleItem a = item(1, 5.0, 20.0);
    a.resource = 9;
    EXPECT_THROW(std::ignore = build_window_schedule(platform, 0.0, std::vector{a}),
                 precondition_error);
}

// ---- reserved + predicted interplay ----

TEST(EdfMixed, ReservationOutranksPredictedTask) {
    // A reservation and the predicted task both want the window [4, 6); the
    // reservation runs exactly on time and tau_p follows, even though the
    // predicted deadline is tight.
    ScheduleItem reservation;
    reservation.uid = kReservedUidBase + 1;
    reservation.release = 4.0;
    reservation.abs_deadline = 6.0;
    reservation.duration = 2.0;
    reservation.reserved = true;

    const std::vector<ScheduleItem> items{
        item(1, 3.0, 20.0),
        item(kPredictedUid, 3.0, 9.0, /*release=*/4.0),
        reservation,
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(kReservedUidBase + 1), 6.0);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 9.0); // after the window
    EXPECT_DOUBLE_EQ(completion.at(1), 3.0);             // runs [0,3), before the window
}

TEST(EdfMixed, PredictedPreemptsTaskThenReservationPreemptsPredicted) {
    // Real task runs from 0; tau_p (tight deadline) preempts it at 2; the
    // reservation at 4 preempts tau_p; everything resumes afterwards.
    ScheduleItem reservation;
    reservation.uid = kReservedUidBase + 2;
    reservation.release = 4.0;
    reservation.abs_deadline = 5.0;
    reservation.duration = 1.0;
    reservation.reserved = true;

    const std::vector<ScheduleItem> items{
        item(1, 6.0, 30.0),
        item(kPredictedUid, 3.0, 8.0, /*release=*/2.0),
        reservation,
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    // Timeline: task1 [0,2), tau_p [2,4), reservation [4,5), tau_p [5,6),
    // task1 [6,10).
    EXPECT_DOUBLE_EQ(completion.at(kReservedUidBase + 2), 5.0);
    EXPECT_DOUBLE_EQ(completion.at(kPredictedUid), 6.0);
    EXPECT_DOUBLE_EQ(completion.at(1), 10.0);
    // tau_p must be split into two chunks around the reservation.
    std::size_t predicted_chunks = 0;
    for (const Segment& segment : result.timeline.segments)
        if (segment.uid == kPredictedUid) ++predicted_chunks;
    EXPECT_EQ(predicted_chunks, 2u);
}

// ---- randomized properties ----

TEST(EdfProperty, FeasibleOnlyWhenAllCompletionsMeetDeadlines) {
    Rng rng(314);
    for (int round = 0; round < 300; ++round) {
        const bool gpu = rng.bernoulli(0.5);
        const std::size_t count = 1 + rng.index(6);
        std::vector<ScheduleItem> items;
        for (std::size_t j = 0; j < count; ++j) {
            ScheduleItem it = item(j + 1, rng.uniform(0.5, 8.0), rng.uniform(2.0, 30.0));
            items.push_back(it);
        }
        if (rng.bernoulli(0.5))
            items.push_back(item(kPredictedUid, rng.uniform(0.5, 6.0), rng.uniform(4.0, 30.0),
                                 rng.uniform(0.0, 10.0)));

        std::unordered_map<TaskUid, Time> completion;
        const auto result =
            schedule_resource(gpu ? kGpu : kCpu, 0.0, items, &completion);

        bool all_met = true;
        double total_work = 0.0;
        for (const ScheduleItem& it : items) {
            ASSERT_EQ(completion.count(it.uid), 1u);
            if (completion.at(it.uid) > it.abs_deadline + 1e-6) all_met = false;
            total_work += it.duration;
        }
        EXPECT_EQ(result.feasible, all_met);
        EXPECT_EQ(resource_feasible(gpu ? kGpu : kCpu, 0.0, items), all_met);

        // Conservation: total segment time equals total work.
        double total_segments = 0.0;
        for (const Segment& segment : result.timeline.segments)
            total_segments += segment.duration();
        EXPECT_NEAR(total_segments, total_work, 1e-6);
        expect_well_formed(result.timeline, 0.0);
    }
}

TEST(EdfProperty, PreemptiveEdfDominatesNonPreemptive) {
    // On a single resource with release times, preemptive EDF is optimal:
    // whenever the non-preemptive (GPU) dispatch succeeds, preemptive EDF
    // must too.
    Rng rng(2718);
    int gpu_feasible = 0;
    for (int round = 0; round < 400; ++round) {
        const std::size_t count = 1 + rng.index(5);
        std::vector<ScheduleItem> items;
        for (std::size_t j = 0; j < count; ++j)
            items.push_back(item(j + 1, rng.uniform(0.5, 6.0), rng.uniform(2.0, 25.0)));
        items.push_back(item(kPredictedUid, rng.uniform(0.5, 4.0), rng.uniform(3.0, 25.0),
                             rng.uniform(0.0, 8.0)));
        if (resource_feasible(kGpu, 0.0, items)) {
            ++gpu_feasible;
            EXPECT_TRUE(resource_feasible(kCpu, 0.0, items));
        }
    }
    EXPECT_GT(gpu_feasible, 50); // the property must actually be exercised
}

// ---- demand-bound prefilter (the admission hot-path screen) ----

TEST(EdfPrefilterTest, RejectsOverloadAcceptsSlackOnPlainSets) {
    // Plain = preemptable resource, everything released, nothing reserved
    // or pinned: both certificates of edf_demand_prefilter can fire.
    const std::vector<ScheduleItem> overload{item(1, 4.0, 4.0), item(2, 3.0, 5.0)};
    EXPECT_EQ(edf_demand_prefilter(kCpu, 0.0, overload), EdfPrefilter::infeasible);

    const std::vector<ScheduleItem> slack{item(1, 2.0, 10.0), item(2, 3.0, 20.0)};
    EXPECT_EQ(edf_demand_prefilter(kCpu, 0.0, slack), EdfPrefilter::feasible);
}

TEST(EdfPrefilterTest, ProcessorDemandCriterionDecidesFutureReleases) {
    // Plain preemptive EDF with release times: the prefilter's
    // processor-demand criterion (anchored scan plus one scan per distinct
    // future release) is a full verdict — the common admission probe that
    // carries a predicted task no longer falls back to the simulation.
    const std::vector<ScheduleItem> loose{item(1, 2.0, 30.0),
                                          item(kPredictedUid, 1.0, 25.0, /*release=*/5.0)};
    EXPECT_EQ(edf_demand_prefilter(kCpu, 0.0, loose), EdfPrefilter::feasible);
    EXPECT_TRUE(resource_feasible(kCpu, 0.0, loose));

    const std::vector<ScheduleItem> overload{item(1, 8.0, 9.0),
                                             item(kPredictedUid, 4.0, 10.0, /*release=*/5.0)};
    EXPECT_EQ(edf_demand_prefilter(kCpu, 0.0, overload), EdfPrefilter::infeasible);
    EXPECT_FALSE(resource_feasible(kCpu, 0.0, overload));

    // The future window [5, 13) is overfull even though the now-anchored
    // demand bound passes: only the per-release scan catches it.
    const std::vector<ScheduleItem> window_overload{
        item(1, 2.0, 30.0), item(kPredictedUid, 9.0, 13.0, /*release=*/5.0)};
    EXPECT_EQ(edf_demand_prefilter(kCpu, 0.0, window_overload), EdfPrefilter::infeasible);
    EXPECT_FALSE(resource_feasible(kCpu, 0.0, window_overload));

    // Exactly-tight future window: inside the safety band, the prefilter
    // must refuse to guess and defer to the simulation.
    const std::vector<ScheduleItem> tight{item(kPredictedUid, 5.0, 10.0, /*release=*/5.0)};
    EXPECT_EQ(edf_demand_prefilter(kCpu, 0.0, tight), EdfPrefilter::unknown);
    EXPECT_TRUE(resource_feasible(kCpu, 0.0, tight));
}

TEST(EdfPrefilterTest, NonPreemptableAllReleasedIsDecisive) {
    // Run-to-completion dispatch with everything released follows demand
    // order back-to-back, so the prefilter's mirror scan reproduces the
    // simulation's completion times and yields a full verdict — the GPU
    // admission probe (the bulk of serve-mode feasibility checks) resolves
    // analytically.
    const std::vector<ScheduleItem> fits{item(1, 4.0, 5.0), item(2, 3.0, 9.0)};
    EXPECT_EQ(edf_demand_prefilter(kGpu, 0.0, fits), EdfPrefilter::feasible);

    const std::vector<ScheduleItem> late{item(1, 4.0, 5.0), item(2, 3.0, 6.0)};
    EXPECT_EQ(edf_demand_prefilter(kGpu, 0.0, late), EdfPrefilter::infeasible);

    // A pinned head outranks demand order; the mirror scan accounts for it.
    const std::vector<ScheduleItem> pinned_ok{
        item(1, 5.0, 100.0, 0.0, /*pinned=*/true), item(2, 2.0, 8.0)};
    EXPECT_EQ(edf_demand_prefilter(kGpu, 0.0, pinned_ok), EdfPrefilter::feasible);
    const std::vector<ScheduleItem> pinned_late{
        item(1, 5.0, 100.0, 0.0, /*pinned=*/true), item(2, 2.0, 6.0)};
    EXPECT_EQ(edf_demand_prefilter(kGpu, 0.0, pinned_late), EdfPrefilter::infeasible);

    // A future release reintroduces idle/boundary effects: back to the
    // necessary-condition scan, decisive only for overload.
    const std::vector<ScheduleItem> future{item(1, 2.0, 30.0),
                                           item(kPredictedUid, 1.0, 25.0, /*release=*/5.0)};
    EXPECT_EQ(edf_demand_prefilter(kGpu, 0.0, future), EdfPrefilter::unknown);
}

TEST(EdfPrefilterTest, SortedVariantAgreesOnRandomPermutations) {
    // edf_demand_prefilter_sorted documents bit-identical verdicts to the
    // unsorted entry point on any permutation: both scan the demand order.
    Rng rng(97531);
    int decisive = 0;
    for (int round = 0; round < 1500; ++round) {
        const Resource& resource = rng.bernoulli(0.4) ? kGpu : kCpu;
        const Time now = rng.uniform(0.0, 10.0);
        const std::size_t count = 1 + rng.index(7);
        std::vector<ScheduleItem> items;
        for (std::size_t j = 0; j < count; ++j) {
            const Time release = rng.bernoulli(0.3) ? now + rng.uniform(0.0, 6.0) : now;
            items.push_back(item(j + 1, rng.uniform(0.2, 6.0),
                                 release + rng.uniform(0.5, 18.0), release));
        }
        if (resource.kind() == ResourceKind::gpu && rng.bernoulli(0.3))
            items.push_back(item(50, rng.uniform(0.5, 3.0), now + rng.uniform(1.0, 20.0), now,
                                 /*pinned=*/true));
        if (rng.bernoulli(0.2)) {
            ScheduleItem reservation;
            reservation.uid = kReservedUidBase + 1;
            reservation.release = now + rng.uniform(0.0, 8.0);
            reservation.duration = rng.uniform(0.5, 2.0);
            reservation.abs_deadline = reservation.release + reservation.duration;
            reservation.reserved = true;
            items.push_back(reservation);
        }

        std::vector<ScheduleItem> sorted = items;
        std::sort(sorted.begin(), sorted.end(), demand_order);
        // A hostile permutation of the unsorted input.
        std::vector<ScheduleItem> shuffled = items;
        for (std::size_t j = shuffled.size(); j > 1; --j)
            std::swap(shuffled[j - 1], shuffled[rng.index(j)]);

        const EdfPrefilter unsorted_verdict = edf_demand_prefilter(resource, now, shuffled);
        const EdfPrefilter sorted_verdict = edf_demand_prefilter_sorted(resource, now, sorted);
        EXPECT_EQ(unsorted_verdict, sorted_verdict) << "round " << round;
        if (sorted_verdict != EdfPrefilter::unknown) ++decisive;
    }
    EXPECT_GT(decisive, 300);
}

TEST(EdfPrefilterTest, IncrementalInsertionMatchesFromScratchRecompute) {
    // The solvers grow per-anchor lists one insert_demand_ordered at a
    // time.  After every insertion the incrementally maintained list must
    // equal a from-scratch sort of the same multiset, and the sorted
    // prefilter's verdict over it must equal the unsorted prefilter's over
    // the insertion-order list — the incremental demand-bound state never
    // drifts from a recompute.
    Rng rng(86420);
    for (int round = 0; round < 200; ++round) {
        const Resource& resource = rng.bernoulli(0.5) ? kGpu : kCpu;
        const Time now = rng.uniform(0.0, 5.0);
        std::vector<ScheduleItem> incremental;
        std::vector<ScheduleItem> arrival_order;
        const std::size_t count = 1 + rng.index(10);
        for (std::size_t j = 0; j < count; ++j) {
            // Duplicate deadlines and releases on purpose: the total order's
            // uid tie-break is what keeps the two sides aligned.
            const Time release =
                rng.bernoulli(0.3) ? now + static_cast<double>(rng.index(4)) * 1.5 : now;
            ScheduleItem next = item(j + 1, rng.uniform(0.2, 5.0),
                                     release + 2.0 + static_cast<double>(rng.index(5)) * 2.0,
                                     release);
            arrival_order.push_back(next);
            const std::size_t pos = insert_demand_ordered(incremental, next);
            EXPECT_EQ(incremental[pos].uid, next.uid);

            std::vector<ScheduleItem> recomputed = arrival_order;
            std::sort(recomputed.begin(), recomputed.end(), demand_order);
            ASSERT_EQ(recomputed.size(), incremental.size());
            for (std::size_t k = 0; k < recomputed.size(); ++k)
                EXPECT_EQ(recomputed[k].uid, incremental[k].uid) << "round " << round;

            EXPECT_EQ(edf_demand_prefilter_sorted(resource, now, incremental),
                      edf_demand_prefilter(resource, now, arrival_order))
                << "round " << round;
        }
    }
}

TEST(EdfGolden, SoaInnerLoopReproducesGoldenSegmentOrder) {
    // Golden pin for the struct-of-arrays EDF inner loop: a scenario mixing
    // a future-release preemption, a reservation window, and a deadline tie
    // must reproduce this exact segment sequence.  Any reordering of the
    // SoA scan (or a drifting tie-break) changes the segments, not just the
    // completion times.
    ScheduleItem reservation;
    reservation.uid = kReservedUidBase + 1;
    reservation.release = 6.0;
    reservation.abs_deadline = 7.0;
    reservation.duration = 1.0;
    reservation.reserved = true;
    const std::vector<ScheduleItem> items{
        item(2, 4.0, 40.0),                              // ties on uid with 5
        item(5, 3.0, 40.0),                              // loses the uid tie
        item(1, 2.0, 9.0),                               // earliest deadline, runs first
        item(kPredictedUid, 2.0, 12.0, /*release=*/3.0), // preempts task 2 at 3
        reservation,                                     // preempts tau_p's tail window
    };
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);

    // Expected dispatch: 1 [0,2), 2 [2,3), tau_p [3,5), 2 [5,6),
    // reservation [6,7), 2 [7,9), 5 [9,12).
    const std::vector<std::tuple<TaskUid, double, double>> golden{
        {1, 0.0, 2.0},  {2, 2.0, 3.0},
        {kPredictedUid, 3.0, 5.0}, {2, 5.0, 6.0},
        {kReservedUidBase + 1, 6.0, 7.0}, {2, 7.0, 9.0},
        {5, 9.0, 12.0},
    };
    ASSERT_EQ(result.timeline.segments.size(), golden.size());
    for (std::size_t k = 0; k < golden.size(); ++k) {
        EXPECT_EQ(result.timeline.segments[k].uid, std::get<0>(golden[k])) << "segment " << k;
        EXPECT_DOUBLE_EQ(result.timeline.segments[k].start, std::get<1>(golden[k]));
        EXPECT_DOUBLE_EQ(result.timeline.segments[k].end, std::get<2>(golden[k]));
    }
    EXPECT_DOUBLE_EQ(completion.at(2), 9.0);
    EXPECT_DOUBLE_EQ(completion.at(5), 12.0);
}

TEST(EdfPrefilterTest, DvfsAnchorScreensTheMergedOperatingPointSet) {
    // Operating points of one DVFS core share the anchor's timeline
    // (build_window_schedule groups by physical()); by the time the
    // prefilter runs it sees the merged item set with level-scaled
    // durations on the anchor resource — both verdicts must match the
    // window-level outcome.
    PlatformBuilder builder;
    builder.add_cpu_with_dvfs({1.0, 0.5}, "CPU");
    const Platform platform = builder.build();
    const Resource& anchor = platform.resource(0);
    ASSERT_EQ(platform.resource(1).physical(), 0u);

    ScheduleItem full = item(1, 2.0, 12.0); // at the 1.0 level
    ScheduleItem half = item(2, 4.0, 12.0); // 2.0 of work at f = 0.5
    half.resource = 1;
    std::vector<ScheduleItem> merged{full, half};
    EXPECT_EQ(edf_demand_prefilter(anchor, 0.0, merged), EdfPrefilter::feasible);
    EXPECT_TRUE(build_window_schedule(platform, 0.0, merged).feasible);

    ScheduleItem heavy = item(3, 16.0, 12.0); // 8.0 of work at f = 0.5
    heavy.resource = 1;
    merged.push_back(heavy);
    EXPECT_EQ(edf_demand_prefilter(anchor, 0.0, merged), EdfPrefilter::infeasible);
    EXPECT_FALSE(build_window_schedule(platform, 0.0, merged).feasible);
}

TEST(EdfPrefilterTest, DecisiveVerdictsAgreeWithFullSimulation) {
    // Randomized agreement: on arbitrary instances — reservations,
    // non-preemptable resources, pinned heads, future releases, zero
    // durations, now != 0 — a decisive prefilter verdict must match the
    // full EDF simulation, and resource_feasible (which consults the
    // prefilter first) must always equal schedule_resource's verdict.
    Rng rng(20260806);
    int infeasible_verdicts = 0;
    int feasible_verdicts = 0;
    int unknown_verdicts = 0;
    int mixed_rounds = 0;
    for (int round = 0; round < 3000; ++round) {
        const bool gpu = rng.bernoulli(0.3);
        const Resource& resource = gpu ? kGpu : kCpu;
        const Time now = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.0, 15.0);
        const std::size_t count = 1 + rng.index(7);

        std::vector<ScheduleItem> items;
        bool mixed = false;
        for (std::size_t j = 0; j < count; ++j) {
            const double duration = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.2, 6.0);
            Time release = now;
            if (rng.bernoulli(0.25)) { // future release (predicted-style)
                release = now + rng.uniform(0.0, 8.0);
                mixed = true;
            }
            items.push_back(
                item(j + 1, duration, release + rng.uniform(0.5, 22.0), release));
        }
        if (rng.bernoulli(0.2)) { // one exact-window reservation
            ScheduleItem reservation;
            reservation.uid = kReservedUidBase + 1;
            reservation.release = now + rng.uniform(0.0, 10.0);
            reservation.duration = rng.uniform(0.5, 3.0);
            reservation.abs_deadline = reservation.release + reservation.duration;
            reservation.reserved = true;
            items.push_back(reservation);
            mixed = true;
        }
        if (gpu && rng.bernoulli(0.3)) { // currently-executing head task
            ScheduleItem pinned = item(100, rng.uniform(0.5, 4.0),
                                       now + rng.uniform(1.0, 20.0), now, /*pinned=*/true);
            items.push_back(pinned);
            mixed = true;
        }
        if (gpu || mixed) ++mixed_rounds;

        const EdfPrefilter verdict = edf_demand_prefilter(resource, now, items);
        const bool simulated = schedule_resource(resource, now, items).feasible;
        switch (verdict) {
        case EdfPrefilter::infeasible:
            ++infeasible_verdicts;
            EXPECT_FALSE(simulated) << "round " << round;
            break;
        case EdfPrefilter::feasible:
            ++feasible_verdicts;
            EXPECT_TRUE(simulated) << "round " << round;
            break;
        case EdfPrefilter::unknown:
            ++unknown_verdicts;
            break;
        }
        EXPECT_EQ(resource_feasible(resource, now, items), simulated) << "round " << round;
    }
    // Every verdict class and the awkward-instance pool must be exercised.
    EXPECT_GT(infeasible_verdicts, 100);
    EXPECT_GT(feasible_verdicts, 100);
    EXPECT_GT(unknown_verdicts, 100);
    EXPECT_GT(mixed_rounds, 500);
}

} // namespace
} // namespace rmwp
