// Live-telemetry tests (DESIGN.md §14): HDR histogram accuracy and merge
// algebra, stage-profiler transparency (decisions bit-identical with
// instrumentation on vs off), the Prometheus exposition checked by a strict
// parser, rotating trace shards with index round-trip, and the telemetry
// endpoint scraped end to end over a real socket — including through a
// signal-requested drain.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/heuristic_rm.hpp"
#include "obs/export.hpp"
#include "obs/hdr.hpp"
#include "obs/metrics.hpp"
#include "obs/stage_timer.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/trace_sink.hpp"
#include "obs/trace_stream.hpp"
#include "predict/predictor.hpp"
#include "serve/serve.hpp"
#include "workload/catalog.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

// ---- helpers ----------------------------------------------------------

/// RAII temp directory under the test working directory.
struct TempDir {
    explicit TempDir(std::string name) : path(std::move(name)) {
        std::filesystem::remove_all(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string path;
};

/// Blocking HTTP/1.0-style GET against 127.0.0.1:`port`; returns the whole
/// response (status line + headers + body) or an empty string when the
/// connection could not be established.
std::string http_get(int port, const std::string& target) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
        close(fd);
        return {};
    }
    const std::string request = "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
    const char* cursor = request.data();
    std::size_t left = request.size();
    while (left > 0) {
        const ssize_t wrote = write(fd, cursor, left);
        if (wrote <= 0) break;
        cursor += wrote;
        left -= static_cast<std::size_t>(wrote);
    }
    std::string response;
    char buffer[4096];
    while (true) {
        const ssize_t got = read(fd, buffer, sizeof buffer);
        if (got <= 0) break;
        response.append(buffer, static_cast<std::size_t>(got));
    }
    close(fd);
    return response;
}

std::string body_of(const std::string& response) {
    const auto split = response.find("\r\n\r\n");
    return split == std::string::npos ? std::string() : response.substr(split + 4);
}

/// Strict Prometheus text-format (0.0.4) checker.  Throws std::runtime_error
/// with the offending line on any violation:
///  * every line is a well-formed comment or `name[{labels}] value` sample;
///  * every sample belongs to a previously TYPEd family (counter samples
///    match the family name, histogram samples add _bucket/_sum/_count,
///    summary samples add quantile labels and _sum/_count);
///  * family names obey the metric grammar and are declared exactly once;
///  * histogram `le` buckets are cumulative and end with an +Inf bucket
///    equal to _count.
void check_prometheus_text(const std::string& text) {
    const auto fail = [](const std::string& why, const std::string& line) {
        throw std::runtime_error("prometheus: " + why + ": " + line);
    };
    const auto valid_name = [](const std::string& name) {
        if (name.empty()) return false;
        const auto ok = [](char c, bool first) {
            return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
                   (!first && std::isdigit(static_cast<unsigned char>(c)));
        };
        for (std::size_t k = 0; k < name.size(); ++k)
            if (!ok(name[k], k == 0)) return false;
        return true;
    };

    struct Family {
        std::string type;
        bool helped = false;
        double last_bucket = -1.0; ///< histogram: previous cumulative le count
        double inf_bucket = -1.0;  ///< histogram: the +Inf bucket count
        double count = -1.0;       ///< histogram: the _count sample
    };
    std::map<std::string, Family> families;

    const auto family_for = [&](const std::string& sample) -> std::pair<std::string, Family*> {
        // Longest-prefix match: the sample name is the family name itself or
        // family + one of the reserved suffixes.
        for (const char* suffix : {"", "_bucket", "_sum", "_count"}) {
            const std::string tail = suffix;
            if (sample.size() <= tail.size()) continue;
            if (sample.compare(sample.size() - tail.size(), tail.size(), tail) != 0) continue;
            const std::string base = sample.substr(0, sample.size() - tail.size());
            if (const auto it = families.find(base); it != families.end())
                return {tail, &it->second};
        }
        if (const auto it = families.find(sample); it != families.end())
            return {std::string(), &it->second};
        return {std::string(), nullptr};
    };

    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) fail("empty line", "(empty)");
        if (line.rfind("# HELP ", 0) == 0) {
            std::istringstream fields(line.substr(7));
            std::string name;
            if (!(fields >> name) || !valid_name(name)) fail("bad HELP", line);
            families[name].helped = true;
            continue;
        }
        if (line.rfind("# TYPE ", 0) == 0) {
            std::istringstream fields(line.substr(7));
            std::string name, type;
            if (!(fields >> name >> type) || !valid_name(name)) fail("bad TYPE", line);
            if (type != "counter" && type != "gauge" && type != "histogram" &&
                type != "summary" && type != "untyped")
                fail("unknown type", line);
            Family& family = families[name];
            if (!family.type.empty()) fail("family TYPEd twice", line);
            if (!family.helped) fail("TYPE without preceding HELP", line);
            family.type = type;
            continue;
        }
        if (line[0] == '#') fail("unknown comment", line);

        // Sample: name[{labels}] value
        const std::size_t brace = line.find('{');
        const std::size_t name_end = std::min(brace, line.find(' '));
        if (name_end == std::string::npos) fail("no value", line);
        const std::string name = line.substr(0, name_end);
        if (!valid_name(name)) fail("bad sample name", line);

        std::string labels;
        std::size_t value_at = name_end;
        if (brace != std::string::npos && brace == name_end) {
            const std::size_t close = line.find('}', brace);
            if (close == std::string::npos) fail("unterminated labels", line);
            labels = line.substr(brace + 1, close - brace - 1);
            value_at = close + 1;
        }
        if (value_at >= line.size() || line[value_at] != ' ') fail("no value separator", line);
        const std::string value_text = line.substr(value_at + 1);
        double value = 0.0;
        if (value_text == "+Inf") value = std::numeric_limits<double>::infinity();
        else if (value_text == "NaN") value = std::numeric_limits<double>::quiet_NaN();
        else {
            std::size_t used = 0;
            try {
                value = std::stod(value_text, &used);
            } catch (const std::exception&) {
                fail("unparsable value", line);
            }
            if (used != value_text.size()) fail("trailing junk after value", line);
        }

        const auto [suffix, family] = family_for(name);
        if (family == nullptr) fail("sample without TYPE", line);
        if (family->type == "counter" || family->type == "gauge" ||
            family->type == "untyped") {
            if (!suffix.empty()) fail("suffix on scalar family", line);
            if (family->type == "counter" && value < 0.0) fail("negative counter", line);
        } else if (family->type == "histogram") {
            if (suffix == "_bucket") {
                const std::size_t le = labels.find("le=\"");
                if (le == std::string::npos) fail("bucket without le", line);
                const std::size_t end = labels.find('"', le + 4);
                const std::string bound = labels.substr(le + 4, end - le - 4);
                if (value + 1e-9 < family->last_bucket)
                    fail("non-cumulative histogram buckets", line);
                family->last_bucket = value;
                if (bound == "+Inf") family->inf_bucket = value;
            } else if (suffix == "_count") {
                family->count = value;
            } else if (suffix != "_sum") {
                fail("bad histogram sample", line);
            }
        } else { // summary
            if (suffix.empty()) {
                if (labels.find("quantile=\"") == std::string::npos)
                    fail("summary sample without quantile", line);
            } else if (suffix != "_sum" && suffix != "_count") {
                fail("bad summary sample", line);
            }
        }
    }

    for (const auto& [name, family] : families) {
        if (family.type.empty()) throw std::runtime_error("prometheus: HELP without TYPE: " + name);
        if (family.type == "histogram") {
            if (family.inf_bucket < 0.0)
                throw std::runtime_error("prometheus: histogram without +Inf bucket: " + name);
            if (family.count >= 0.0 && family.inf_bucket != family.count)
                throw std::runtime_error("prometheus: +Inf bucket != _count: " + name);
        }
    }
}

// ---- HDR histogram ----------------------------------------------------

TEST(Hdr, QuantileAccuracyVsExactSortOnMillionSamples) {
    // Deterministic mixed workload: bulk uniform [1, 1e5) plus a heavy tail
    // up to ~5e8 ticks — covers linear buckets, mid groups, and high groups.
    std::vector<std::uint64_t> samples;
    samples.reserve(1'000'000);
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    const auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    obs::HdrHistogram hdr;
    for (int k = 0; k < 1'000'000; ++k) {
        std::uint64_t value = next() % 100'000 + 1;
        if (k % 1000 == 0) value = next() % 500'000'000 + 1'000'000; // tail
        samples.push_back(value);
        hdr.record(value);
    }
    ASSERT_EQ(hdr.count(), samples.size());

    std::vector<std::uint64_t> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0}) {
        const std::size_t rank = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::ceil(q * static_cast<double>(sorted.size()))));
        const std::uint64_t exact = sorted[rank - 1];
        const std::uint64_t estimate = hdr.quantile(q);
        // The estimate is the upper bucket bound of the exact sample's
        // bucket (clamped to the recorded max): never below the truth and
        // at most one sub-bucket (~3.2 %) above it.
        EXPECT_GE(estimate, exact) << "q=" << q;
        EXPECT_LE(static_cast<double>(estimate), static_cast<double>(exact) * 1.032 + 1.0)
            << "q=" << q;
    }
    EXPECT_EQ(hdr.min(), sorted.front());
    EXPECT_EQ(hdr.max(), sorted.back());
    EXPECT_EQ(hdr.quantile(1.0), sorted.back()); // max is exact, not a bucket bound
}

TEST(Hdr, MergeIsAssociativeCommutativeAndMatchesDirectRecording) {
    obs::HdrHistogram a, b, c, direct;
    std::uint64_t value = 1;
    for (int k = 0; k < 3000; ++k) {
        value = value * 2862933555777941757ull + 3037000493ull;
        const std::uint64_t sample = value % 1'000'000;
        (k % 3 == 0 ? a : k % 3 == 1 ? b : c).record(sample);
        direct.record(sample);
    }

    obs::HdrHistogram left = a;  // (a + b) + c
    left.merge(b);
    left.merge(c);
    obs::HdrHistogram right = c; // a + (c + b) — exercises commutation too
    right.merge(b);
    right.merge(a);
    EXPECT_EQ(left, right);
    EXPECT_EQ(left, direct);
    EXPECT_EQ(left.count(), 3000u);
}

TEST(Hdr, CellsLoadRoundTripAndAtomicSnapshot) {
    obs::HdrHistogram dense;
    for (std::uint64_t v : {0ull, 1ull, 63ull, 64ull, 1000ull, 123456789ull})
        dense.record(v);
    obs::HdrHistogram reloaded;
    reloaded.load(dense.cells(), dense.sum(), dense.min(), dense.max());
    EXPECT_EQ(dense, reloaded);

    obs::AtomicHdrHistogram atomic_hdr;
    for (std::uint64_t v : {5ull, 5ull, 500ull, 50'000ull}) atomic_hdr.record(v);
    const obs::HdrHistogram snap = atomic_hdr.snapshot();
    EXPECT_EQ(snap.count(), 4u);
    // snapshot() carries the exact atomic sum, not a bucket-upper-bound
    // re-derivation — snap.sum() must not drift from the live sum().
    EXPECT_EQ(snap.sum(), atomic_hdr.sum());
    // Bucket counts are copied verbatim, so quantiles agree exactly.
    for (const double q : {0.25, 0.5, 1.0})
        EXPECT_EQ(snap.quantile(q), atomic_hdr.quantile(q)) << "q=" << q;
    // An empty atomic histogram snapshots to an empty histogram.
    EXPECT_EQ(obs::AtomicHdrHistogram{}.snapshot().count(), 0u);
}

// ---- registry validation (satellite) -----------------------------------

TEST(Metrics, HistogramCtorRejectsBadBounds) {
    EXPECT_THROW(obs::Histogram({}), std::invalid_argument);
    EXPECT_THROW(obs::Histogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(obs::Histogram({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(obs::Histogram({1.0, std::numeric_limits<double>::infinity()}),
                 std::invalid_argument);
    EXPECT_THROW(obs::Histogram({std::numeric_limits<double>::quiet_NaN()}),
                 std::invalid_argument);
    EXPECT_NO_THROW(obs::Histogram({1.0, 2.0, 4.0}));
}

TEST(Metrics, RegistryRejectsCrossKindAndRespecifiedDuplicates) {
    obs::MetricsRegistry registry;
    obs::Counter& counter = registry.counter("x");
    EXPECT_EQ(&registry.counter("x"), &counter); // same-kind find-or-create stays
    EXPECT_THROW((void)registry.gauge("x"), std::invalid_argument);
    EXPECT_THROW((void)registry.histogram("x", {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW((void)registry.hdr("x"), std::invalid_argument);

    obs::Histogram& histogram = registry.histogram("h", {1.0, 2.0});
    EXPECT_EQ(&registry.histogram("h", {1.0, 2.0}), &histogram);
    EXPECT_THROW((void)registry.histogram("h", {1.0, 2.0, 4.0}), std::invalid_argument);
    EXPECT_THROW((void)registry.counter("h"), std::invalid_argument);
}

// ---- stage profiler ----------------------------------------------------

TEST(StageTimer, HooksAreNoOpsWithoutAnInstalledBlock) {
    // No StageStatsScope: the macros must not crash and must record nowhere.
    RMWP_STAGE_SCOPE(obs::Stage::solve);
    RMWP_STAGE_VERDICT(prefilter_unknown);
    RMWP_STAGE_ARENA_BYTES(1234);
    SUCCEED();
}

#ifdef RMWP_OBS
TEST(StageTimer, ScopeCountsCallsAndSamplesEvery64th) {
    obs::StageStats stats;
    {
        obs::StageStatsScope scope(&stats);
        for (int k = 0; k < 200; ++k) {
            RMWP_STAGE_SCOPE(obs::Stage::solve);
        }
        RMWP_STAGE_VERDICT(prefilter_infeasible);
        RMWP_STAGE_VERDICT(prefilter_infeasible);
        RMWP_STAGE_VERDICT(prefilter_feasible);
        RMWP_STAGE_ARENA_BYTES(100);
        RMWP_STAGE_ARENA_BYTES(4096);
        RMWP_STAGE_ARENA_BYTES(50); // high-water: must not regress
        obs::stage_add_timed_ns(obs::Stage::decide, 1000);
    }
    const obs::StageStats::Cell& solve = stats.cell(obs::Stage::solve);
    EXPECT_EQ(solve.calls, 200u);
    EXPECT_EQ(solve.samples, 4u); // calls 0, 64, 128, 192
    EXPECT_EQ(stats.prefilter_infeasible, 2u);
    EXPECT_EQ(stats.prefilter_feasible, 1u);
    EXPECT_EQ(stats.prefilter_unknown, 0u);
    EXPECT_EQ(stats.arena_high_water_bytes, 4096u);
    EXPECT_EQ(stats.cell(obs::Stage::decide).calls, 1u);
    EXPECT_EQ(stats.estimated_ns(obs::Stage::decide), 1000u);
    // Uninstalled again: nothing moves.
    RMWP_STAGE_SCOPE(obs::Stage::solve);
    EXPECT_EQ(stats.cell(obs::Stage::solve).calls, 200u);
}
#endif

struct TelemetryWorld {
    Platform platform = [] {
        PlatformBuilder builder;
        builder.add_cpu("CPU1");
        builder.add_cpu("CPU2");
        builder.add_cpu("CPU3");
        builder.add_gpu("GPU");
        return builder.build();
    }();
    Catalog catalog = [this] {
        CatalogParams params;
        params.type_count = 20;
        Rng rng(11);
        return generate_catalog(platform, params, rng);
    }();
};

TEST(StageTimer, ServeDecisionsBitIdenticalWithProfilingOnVsOff) {
    const auto run = [](obs::StageStats* stats_out) {
        serve_clear_stop();
        TelemetryWorld world;
        SyntheticSourceParams params;
        params.seed = 21;
        SyntheticArrivalSource source(world.catalog, params);
        HeuristicRM rm;
        NullPredictor predictor;
        ServeConfig config;
        config.monitor = false;
        config.max_arrivals = 800;
        config.batch_window = 0.0; // exercise the batched path's prefilter too
        config.stage_stats_out = stats_out;
        return run_serve(world.platform, world.catalog, rm, predictor, nullptr, source,
                         config);
    };

    const ServeResult off = run(nullptr);
    obs::StageStats stats;
    const ServeResult on = run(&stats);

    // The profiler only ever writes to its own block: every deterministic
    // outcome must be bit-identical with it installed or not.
    EXPECT_EQ(on.result.accepted, off.result.accepted);
    EXPECT_EQ(on.result.rejected, off.result.rejected);
    EXPECT_EQ(on.result.completed, off.result.completed);
    EXPECT_EQ(on.result.deadline_misses, off.result.deadline_misses);
    EXPECT_EQ(on.result.total_energy, off.result.total_energy); // bitwise: same doubles
    EXPECT_EQ(on.arrivals, off.arrivals);

#ifdef RMWP_OBS
    EXPECT_GT(stats.cell(obs::Stage::decide).calls, 0u);
    EXPECT_GT(stats.cell(obs::Stage::solve).calls, 0u);
    EXPECT_GT(stats.cell(obs::Stage::batch_assemble).calls, 0u);
    EXPECT_GT(stats.prefilter_infeasible + stats.prefilter_feasible +
                  stats.prefilter_unknown,
              0u);
    EXPECT_GT(stats.arena_high_water_bytes, 0u);
#endif
}

// ---- Prometheus exposition --------------------------------------------

TEST(Prometheus, NameSanitiserMapsToGrammar) {
    EXPECT_EQ(obs::prometheus_name("reject.no_candidate_plan"), "reject_no_candidate_plan");
    EXPECT_EQ(obs::prometheus_name("busy_time.3"), "busy_time_3");
    EXPECT_EQ(obs::prometheus_name("9lives"), "_lives");
    EXPECT_EQ(obs::prometheus_name(""), "_");
}

TEST(Prometheus, RenderedRegistryPassesStrictChecker) {
    obs::MetricsRegistry registry;
    registry.counter("admit").add(41);
    registry.counter("reject.deadline").add(1);
    registry.gauge("busy_time.0").add(12.5);
    obs::Histogram& plan = registry.histogram("plan_size", {1.0, 2.0, 4.0});
    plan.record(1.0);
    plan.record(3.0);
    plan.record(100.0);
    obs::HdrHistogram& latency = registry.hdr("admission_ns", obs::MetricScope::host);
    for (std::uint64_t v = 1; v < 2000; v += 7) latency.record(v);

    obs::StageStats stages;
#ifdef RMWP_OBS
    {
        obs::StageStatsScope scope(&stages);
        for (int k = 0; k < 100; ++k) {
            RMWP_STAGE_SCOPE(obs::Stage::prefilter);
        }
        RMWP_STAGE_VERDICT(prefilter_feasible);
        RMWP_STAGE_ARENA_BYTES(777);
    }
#endif

    obs::PrometheusText text;
    obs::render_metrics(text, registry.snapshot(), "rmwp_engine_");
    obs::render_stage_stats(text, stages, "rmwp_");
    const std::string exposition = text.take();

    ASSERT_NO_THROW(check_prometheus_text(exposition)) << exposition;
    EXPECT_NE(exposition.find("rmwp_engine_admit_total 41"), std::string::npos);
    EXPECT_NE(exposition.find("rmwp_engine_plan_size_bucket{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(exposition.find("rmwp_engine_admission_ns{quantile=\"0.99\"}"),
              std::string::npos);
    EXPECT_NE(exposition.find("rmwp_stage_calls_total{stage=\"prefilter\"}"),
              std::string::npos);
    // A malformed exposition must actually fail the checker (the checker is
    // load-bearing for the CI smoke job).
    EXPECT_THROW(check_prometheus_text("rmwp_untyped_metric 1\n"), std::runtime_error);
    EXPECT_THROW(check_prometheus_text("# TYPE bad_type foo\n"), std::runtime_error);
}

// ---- rotating trace shards ---------------------------------------------

TEST(TraceStream, RotatesShardsAndIndexRoundTrips) {
    TempDir dir("trace_stream_test_dir");
    obs::TraceStreamOptions options;
    options.max_events_per_shard = 100;
    obs::TraceStreamWriter writer(dir.path, options);
    for (int k = 0; k < 250; ++k) {
        obs::TraceEvent event;
        event.t_sim = static_cast<double>(k);
        event.kind = obs::EventKind::admit;
        event.task = static_cast<std::uint64_t>(k);
        event.resource = k % 4;
        writer.append(event);
    }
    writer.finish();
    EXPECT_EQ(writer.total_events(), 250u);
    EXPECT_EQ(writer.shard_count(), 3u); // 100 + 100 + 50

    const obs::TraceStreamIndex index = obs::TraceStreamIndex::load(dir.path);
    ASSERT_EQ(index.shards.size(), 3u);
    EXPECT_EQ(index.total_events, 250u);
    EXPECT_EQ(index.shards[0].events, 100u);
    EXPECT_EQ(index.shards[1].events, 100u);
    EXPECT_EQ(index.shards[2].events, 50u);
    EXPECT_EQ(index.shards[0].first_t_sim, 0.0);
    EXPECT_EQ(index.shards[0].last_t_sim, 99.0);
    EXPECT_EQ(index.shards[2].first_t_sim, 200.0);
    EXPECT_EQ(index.shards[2].last_t_sim, 249.0);

    // Shards parse back with the standard JSONL reader (byte-compatible
    // with write_events_jsonl) and cover the full event sequence in order.
    std::uint64_t replayed = 0;
    for (const auto& shard : index.shards) {
        std::ifstream in(dir.path + "/" + shard.file);
        ASSERT_TRUE(in.good()) << shard.file;
        const std::vector<obs::TraceEvent> events = obs::read_events_jsonl(in);
        ASSERT_EQ(events.size(), shard.events);
        for (const obs::TraceEvent& event : events) {
            EXPECT_EQ(event.t_sim, static_cast<double>(replayed));
            EXPECT_EQ(event.task, replayed);
            ++replayed;
        }
    }
    EXPECT_EQ(replayed, 250u);
}

TEST(TraceStream, RejectsDegenerateBudgetsAndSinkForwards) {
    obs::TraceStreamOptions zero;
    zero.max_events_per_shard = 0;
    EXPECT_THROW(obs::TraceStreamWriter("trace_stream_bad_dir", zero), std::runtime_error);

    TempDir dir("trace_stream_sink_dir");
    obs::TraceStreamWriter writer(dir.path);
    obs::TraceSink sink(8); // tiny ring: the stream must still see everything
    sink.set_stream(&writer);
    for (int k = 0; k < 40; ++k) sink.emit(static_cast<double>(k), obs::EventKind::arrival, k);
    sink.set_stream(nullptr);
    writer.finish();
    EXPECT_EQ(sink.dropped(), 32u);          // ring kept only the last 8
    EXPECT_EQ(writer.total_events(), 40u);   // the durable stream kept all 40
}

// ---- telemetry server end to end ---------------------------------------

TEST(TelemetryServer, ServesMetricsHealthzAnd404) {
    obs::TelemetryHandlers handlers;
    std::atomic<bool> healthy{true};
    handlers.metrics = [] {
        obs::PrometheusText text;
        text.family("demo_requests_total", "demo", "counter");
        text.sample("demo_requests_total", "", std::uint64_t{7});
        return text.take();
    };
    handlers.health = [&healthy] {
        return healthy.load() ? std::string() : std::string("invariant=broken");
    };
    obs::TelemetryServer server(0, handlers);
    ASSERT_GT(server.port(), 0);

    const std::string metrics = http_get(server.port(), "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
    EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
    ASSERT_NO_THROW(check_prometheus_text(body_of(metrics)));
    EXPECT_NE(body_of(metrics).find("demo_requests_total 7"), std::string::npos);

    EXPECT_NE(http_get(server.port(), "/healthz").find("HTTP/1.1 200"), std::string::npos);
    healthy.store(false);
    const std::string sick = http_get(server.port(), "/healthz");
    EXPECT_NE(sick.find("HTTP/1.1 503"), std::string::npos);
    EXPECT_NE(sick.find("invariant=broken"), std::string::npos);

    EXPECT_NE(http_get(server.port(), "/nope").find("HTTP/1.1 404"), std::string::npos);
    EXPECT_EQ(server.requests_served(), 4u);
    server.stop();
    server.stop(); // idempotent
}

TEST(ServeTelemetry, LiveScrapeAndSigtermDrainKeepExpositionWellFormed) {
    serve_clear_stop();
    TelemetryWorld world;
    SyntheticSourceParams params;
    params.seed = 33;
    SyntheticArrivalSource source(world.catalog, params); // endless
    HeuristicRM rm;
    NullPredictor predictor;
    obs::TraceSink sink;

    ServeConfig config;
    config.monitor = false;
    config.sim.sink = &sink;
    config.telemetry_port = 0;
    std::atomic<int> port{-1};
    config.telemetry_port_out = &port;
    // Slow the stream slightly in sim time so the run lasts until the stop
    // request regardless of scrape timing.
    config.decision_cost = 0.5;

    ServeResult result;
    std::thread serving([&] {
        result = run_serve(world.platform, world.catalog, rm, predictor, nullptr, source,
                           config);
    });

    // RMWP_LINT_ALLOW(R1): host-side wait for a real server thread to bind; no sim state involved
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (port.load(std::memory_order_acquire) < 0 &&
           // RMWP_LINT_ALLOW(R1): host-side wait for a real server thread to bind; no sim state involved
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(port.load(), 0);

    // Live scrapes: body must always pass the strict checker and carry the
    // serve gauges, the engine counters, and the latency summary.
    std::string last_body;
    for (int k = 0; k < 3; ++k) {
        const std::string response = http_get(port.load(), "/metrics");
        ASSERT_NE(response.find("HTTP/1.1 200"), std::string::npos);
        last_body = body_of(response);
        ASSERT_NO_THROW(check_prometheus_text(last_body)) << last_body;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_NE(last_body.find("rmwp_serve_arrivals_total"), std::string::npos);
    EXPECT_NE(last_body.find("rmwp_serve_backlog_depth"), std::string::npos);
    EXPECT_NE(last_body.find("rmwp_serve_ring_occupancy"), std::string::npos);
    EXPECT_NE(last_body.find("rmwp_serve_latency_us{quantile=\"0.999\"}"),
              std::string::npos);
#ifdef RMWP_OBS
    EXPECT_NE(last_body.find("rmwp_engine_admit_total"), std::string::npos);
    EXPECT_NE(last_body.find("rmwp_stage_calls_total{stage=\"decide\"}"),
              std::string::npos);
#endif
    EXPECT_NE(http_get(port.load(), "/healthz").find("HTTP/1.1 200"), std::string::npos);

    // Request the drain (what the SIGTERM handler does) and keep scraping:
    // every response until the socket closes must stay well-formed.
    serve_request_stop();
    int drained_scrapes = 0;
    while (true) {
        const std::string response = http_get(port.load(), "/metrics");
        if (response.empty()) break; // server stopped after the drain
        ASSERT_NE(response.find("HTTP/1.1 200"), std::string::npos);
        ASSERT_NO_THROW(check_prometheus_text(body_of(response)));
        ++drained_scrapes;
    }
    serving.join();
    serve_clear_stop();

    EXPECT_EQ(result.exit_code, 0);
    EXPECT_TRUE(result.stopped_by_signal);
    EXPECT_GE(result.telemetry_requests, static_cast<std::uint64_t>(4 + drained_scrapes));
    EXPECT_GT(result.arrivals, 0u);
    EXPECT_GT(result.latency_p999_us, 0.0);
}

} // namespace
} // namespace rmwp
