// Tests for the resource managers: Algorithm 1 (heuristic), the
// branch-and-bound exact optimiser, admission/fallback semantics, and
// randomized cross-validation against brute-force enumeration.
#include <gtest/gtest.h>

#include <limits>
#include <tuple>

#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

/// Table 1's catalog on the CPU1/CPU2/GPU platform (no migration).
Catalog table1_catalog() {
    const std::size_t n = 3;
    const std::vector<std::vector<double>> zero(n, std::vector<double>(n, 0.0));
    std::vector<TaskType> types;
    types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                       std::vector<double>{7.3, 8.4, 2.0}, zero, zero);
    types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                       std::vector<double>{6.2, 7.5, 1.5}, zero, zero);
    return Catalog(std::move(types));
}

ActiveTask task_of(TaskUid uid, TaskTypeId type, Time arrival, Time rel_deadline) {
    ActiveTask task;
    task.uid = uid;
    task.type = type;
    task.arrival = arrival;
    task.absolute_deadline = arrival + rel_deadline;
    return task;
}

/// Exhaustive search over all mappings (ground truth for the optimisers).
struct BruteForce {
    const PlanInstance& instance;
    double best = std::numeric_limits<double>::infinity();
    std::vector<ResourceId> mapping;
    std::vector<ResourceId> best_mapping;

    explicit BruteForce(const PlanInstance& inst) : instance(inst) {
        mapping.assign(inst.tasks.size(), 0);
        recurse(0, 0.0);
    }

    void recurse(std::size_t j, double cost) {
        if (j == instance.tasks.size()) {
            if (!feasible()) return;
            if (cost < best) {
                best = cost;
                best_mapping = mapping;
            }
            return;
        }
        for (const ResourceId i : instance.tasks[j].executable) {
            mapping[j] = i;
            recurse(j + 1, cost + instance.tasks[j].epm[i]);
        }
    }

    [[nodiscard]] bool feasible() const {
        for (ResourceId i = 0; i < instance.resource_count(); ++i) {
            std::vector<ScheduleItem> items;
            for (std::size_t j = 0; j < instance.tasks.size(); ++j)
                if (mapping[j] == i) items.push_back(instance.item_for(j, i));
            if (!resource_feasible(instance.platform->resource(i), instance.now, items))
                return false;
        }
        return true;
    }

    [[nodiscard]] bool found() const { return !best_mapping.empty(); }
};

// ---- motivational-example decisions at the unit level ----

TEST(HeuristicRM, SingleTaskGoesToCheapestResource) {
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.candidate = task_of(0, 0, 0.0, 8.0);

    HeuristicRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    ASSERT_EQ(decision.assignments.size(), 1u);
    EXPECT_EQ(decision.assignments[0].resource, 2u); // GPU: 2 J vs 7.3/8.4 J
}

TEST(HeuristicRM, PredictionDivertsTaskOffTheGpu) {
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.candidate = task_of(0, 0, 0.0, 8.0);
    context.predicted = {PredictedTask{1, 1.0, 5.0}};

    HeuristicRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    EXPECT_TRUE(decision.used_prediction);
    // tau_1 must leave the GPU for the predicted tau_2: CPU1 is the only
    // resource where it still meets its deadline (8 <= 8).
    EXPECT_EQ(decision.assignments[0].resource, 0u);
}

TEST(HeuristicRM, RejectsWhenGpuPinnedTaskBlocksUrgentArrival) {
    // Scenario (a) of Fig 1: tau_1 runs pinned on the GPU; tau_2 arrives at
    // t=1 with no feasible resource left.
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();

    ActiveTask running = task_of(0, 0, 0.0, 8.0);
    running.resource = 2;
    running.started = true;
    running.pinned = true;
    running.remaining_fraction = 4.0 / 5.0; // 1 of 5 ms done

    const std::vector<ActiveTask> active{running};
    ArrivalContext context;
    context.now = 1.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.active = active;
    context.candidate = task_of(1, 1, 1.0, 5.0);

    HeuristicRM heuristic;
    ExactRM exact;
    EXPECT_FALSE(heuristic.decide(context).admitted);
    EXPECT_FALSE(exact.decide(context).admitted);
}

TEST(HeuristicRM, FallsBackToNoPredictionPlan) {
    // The predicted task saturates the platform; planning with it fails but
    // the arriving task must still be admitted via the Sec 4.1 fallback.
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.candidate = task_of(0, 0, 0.0, 8.0);
    // Predicted task with an impossible deadline.
    context.predicted = {PredictedTask{1, 0.5, 0.1}};

    HeuristicRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    EXPECT_FALSE(decision.used_prediction);
}

TEST(HeuristicRM, AssignmentsCoverActiveSetPlusCandidate) {
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();

    std::vector<ActiveTask> active{task_of(0, 0, 0.0, 50.0), task_of(1, 1, 0.0, 60.0)};
    active[0].resource = 0;
    active[1].resource = 1;
    ArrivalContext context;
    context.now = 1.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.active = active;
    context.candidate = task_of(2, 1, 1.0, 40.0);

    HeuristicRM rm;
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    EXPECT_EQ(decision.assignments.size(), 3u);
    const WindowSchedule schedule = realize_decision(context, decision);
    EXPECT_TRUE(schedule.feasible);
}

TEST(ExactRM, MatchesPaperObjectiveOnTable1) {
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.candidate = task_of(0, 0, 0.0, 8.0);
    context.predicted = {PredictedTask{1, 1.0, 5.0}};

    const PlanInstance instance = PlanInstance::build(context, true);
    const auto result = ExactRM::optimize(instance);
    ASSERT_TRUE(result.has_value());
    // tau_1 on CPU1 (7.3 J) + predicted tau_2 on GPU (1.5 J).
    EXPECT_NEAR(result->energy, 8.8, 1e-9);
    EXPECT_TRUE(result->proven_optimal);
}

TEST(ExactRM, PinnedTaskStaysPut) {
    const Platform platform = make_motivational_platform();
    const Catalog catalog = table1_catalog();

    ActiveTask pinned = task_of(0, 0, 0.0, 20.0);
    pinned.resource = 2;
    pinned.started = true;
    pinned.pinned = true;
    pinned.remaining_fraction = 0.5;

    const std::vector<ActiveTask> active{pinned};
    ArrivalContext context;
    context.now = 1.0;
    context.platform = &platform;
    context.catalog = &catalog;
    context.active = active;
    context.candidate = task_of(1, 1, 1.0, 30.0);

    HeuristicRM heuristic;
    ExactRM exact;
    for (ResourceManager* rm : std::initializer_list<ResourceManager*>{&heuristic, &exact}) {
        const Decision decision = rm->decide(context);
        ASSERT_TRUE(decision.admitted);
        for (const TaskAssignment& assignment : decision.assignments)
            if (assignment.uid == 0) {
                EXPECT_EQ(assignment.resource, 2u);
            }
    }
}

// ---- randomized cross-validation ----

struct RandomInstance {
    Platform platform = make_motivational_platform();
    Catalog catalog;
    std::vector<ActiveTask> active;
    ArrivalContext context;

    static Catalog make_catalog(const Platform& platform, std::uint64_t seed) {
        CatalogParams params;
        params.type_count = 8;
        Rng catalog_rng = Rng(seed).derive(1);
        return generate_catalog(platform, params, catalog_rng);
    }

    explicit RandomInstance(std::uint64_t seed, std::size_t max_tasks = 5)
        : catalog(make_catalog(platform, seed)) {
        Rng rng(seed);

        const std::size_t task_count = rng.index(max_tasks);
        for (std::size_t j = 0; j < task_count; ++j) {
            ActiveTask task = task_of(j, rng.index(catalog.size()), 0.0, 0.0);
            const TaskType& type = catalog.type(task.type);
            task.absolute_deadline = rng.uniform(10.0, 120.0);
            task.resource =
                type.executable_resources()[rng.index(type.executable_resources().size())];
            if (rng.bernoulli(0.5)) {
                task.started = true;
                task.remaining_fraction = rng.uniform(0.2, 1.0);
                if (!platform.resource(task.resource).preemptable()) task.pinned = true;
            }
            active.push_back(task);
        }

        context.now = 5.0;
        context.platform = &platform;
        context.catalog = &catalog;
        context.active = active;
        context.candidate = task_of(100, rng.index(catalog.size()), 5.0, rng.uniform(8.0, 90.0));
        if (rng.bernoulli(0.7)) {
            context.predicted = {PredictedTask{rng.index(catalog.size()),
                                               5.0 + rng.uniform(0.0, 10.0),
                                               rng.uniform(6.0, 60.0)}};
        }
    }
};

class RmCrossValidation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmCrossValidation, ExactMatchesBruteForce) {
    const RandomInstance random(GetParam());
    for (const bool with_prediction : {false, true}) {
        const PlanInstance instance = PlanInstance::build(random.context, with_prediction);
        const BruteForce truth(instance);
        const auto exact = ExactRM::optimize(instance);
        ASSERT_EQ(exact.has_value(), truth.found());
        if (exact) {
            EXPECT_NEAR(exact->energy, truth.best, 1e-9)
                << "seed " << GetParam() << " prediction " << with_prediction;
        }
    }
}

TEST_P(RmCrossValidation, HeuristicNeverBeatsExactAndIsAlwaysFeasible) {
    const RandomInstance random(GetParam());
    for (const bool with_prediction : {false, true}) {
        const PlanInstance instance = PlanInstance::build(random.context, with_prediction);
        const auto heuristic = HeuristicRM::map_tasks(instance);
        const auto exact = ExactRM::optimize(instance);
        if (heuristic) {
            // Whatever the heuristic maps must be feasible...
            double energy = 0.0;
            for (ResourceId i = 0; i < instance.resource_count(); ++i) {
                std::vector<ScheduleItem> items;
                for (std::size_t j = 0; j < instance.tasks.size(); ++j)
                    if ((*heuristic)[j] == i) items.push_back(instance.item_for(j, i));
                EXPECT_TRUE(
                    resource_feasible(instance.platform->resource(i), instance.now, items));
            }
            for (std::size_t j = 0; j < instance.tasks.size(); ++j)
                energy += instance.tasks[j].epm[(*heuristic)[j]];
            // ... and the exact optimum can only be cheaper.
            ASSERT_TRUE(exact.has_value());
            EXPECT_LE(exact->energy, energy + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, RmCrossValidation,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(ExactRM, NodeLimitReturnsBestEffort) {
    const RandomInstance random(17, /*max_tasks=*/5);
    const PlanInstance instance = PlanInstance::build(random.context, true);
    ExactRM::Options options;
    options.node_limit = 2; // absurdly small
    const auto result = ExactRM::optimize(instance, options);
    if (result) {
        EXPECT_FALSE(result->proven_optimal);
    }
}

} // namespace
} // namespace rmwp
