// Tests for the metrics and experiment-harness modules: aggregation math,
// paired comparisons, runner determinism, trace sharing across specs, and
// configuration plumbing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "exp/runner.hpp"
#include "metrics/aggregate.hpp"
#include "util/check.hpp"

namespace rmwp {
namespace {

TraceResult make_result(std::size_t requests, std::size_t rejected, double energy,
                        double reference) {
    TraceResult result;
    result.requests = requests;
    result.rejected = rejected;
    result.accepted = requests - rejected;
    result.total_energy = energy;
    result.reference_energy = reference;
    return result;
}

TEST(TraceResult, PercentMath) {
    const TraceResult result = make_result(200, 50, 30.0, 120.0);
    EXPECT_DOUBLE_EQ(result.rejection_percent(), 25.0);
    EXPECT_DOUBLE_EQ(result.acceptance_percent(), 75.0);
    EXPECT_DOUBLE_EQ(result.normalized_energy(), 0.25);
    EXPECT_DOUBLE_EQ(result.loss_percent(), 25.0);

    TraceResult with_aborts = result;
    with_aborts.aborted = 10;
    EXPECT_DOUBLE_EQ(with_aborts.loss_percent(), 30.0);

    const TraceResult empty{};
    EXPECT_DOUBLE_EQ(empty.rejection_percent(), 0.0);
    EXPECT_DOUBLE_EQ(empty.normalized_energy(), 0.0);
}

TEST(Aggregate, MeansOverTraces) {
    std::vector<TraceResult> results{make_result(100, 10, 5.0, 10.0),
                                     make_result(100, 30, 7.0, 10.0)};
    const AggregateResult aggregate = AggregateResult::over(results);
    EXPECT_DOUBLE_EQ(aggregate.rejection_percent.mean(), 20.0);
    EXPECT_DOUBLE_EQ(aggregate.normalized_energy.mean(), 0.6);
}

TEST(Aggregate, PairedComparison) {
    std::vector<TraceResult> a{make_result(10, 1, 1, 1), make_result(10, 2, 1, 1),
                               make_result(10, 3, 1, 1)};
    std::vector<TraceResult> b{make_result(10, 2, 1, 1), make_result(10, 2, 1, 1),
                               make_result(10, 1, 1, 1)};
    const PairedComparison comparison = compare_acceptance(a, b);
    EXPECT_EQ(comparison.traces, 3u);
    EXPECT_EQ(comparison.a_strictly_better, 1u);
    EXPECT_EQ(comparison.ties, 1u);
    EXPECT_EQ(comparison.b_strictly_better, 1u);
    EXPECT_NEAR(comparison.a_better_or_equal_percent(), 66.67, 0.01);
}

TEST(Aggregate, MismatchedLengthsThrow) {
    std::vector<TraceResult> a{make_result(10, 1, 1, 1)};
    std::vector<TraceResult> b;
    EXPECT_THROW(std::ignore = compare_acceptance(a, b), precondition_error);
}

TEST(Aggregate, PairedTTestDetectsConsistentDifference) {
    std::vector<TraceResult> worse;
    std::vector<TraceResult> better;
    for (std::size_t t = 0; t < 20; ++t) {
        // "worse" rejects 3-4 more requests out of 100 on every trace.
        worse.push_back(make_result(100, 10 + (t % 2), 1, 1));
        better.push_back(make_result(100, 7 - (t % 2), 1, 1));
    }
    const PairedTTest test = paired_rejection_test(worse, better);
    EXPECT_EQ(test.pairs, 20u);
    EXPECT_NEAR(test.mean_difference, 3.5, 0.6);
    EXPECT_TRUE(test.significant());
    EXPECT_LT(test.p_value, 1e-6);
}

TEST(Aggregate, PairedTTestNullCase) {
    std::vector<TraceResult> a;
    std::vector<TraceResult> b;
    Rng rng(5);
    for (std::size_t t = 0; t < 30; ++t) {
        // Same distribution, independent noise: no systematic difference.
        a.push_back(make_result(100, 10 + rng.index(5), 1, 1));
        b.push_back(make_result(100, 10 + rng.index(5), 1, 1));
    }
    const PairedTTest test = paired_rejection_test(a, b);
    EXPECT_FALSE(test.significant(0.001));
}

TEST(Aggregate, PairedTTestZeroVariance) {
    std::vector<TraceResult> a{make_result(100, 10, 1, 1), make_result(100, 10, 1, 1)};
    std::vector<TraceResult> b = a;
    const PairedTTest identical = paired_rejection_test(a, b);
    EXPECT_DOUBLE_EQ(identical.p_value, 1.0);
}

TEST(Aggregate, CsvExportRoundTrips) {
    std::vector<TraceResult> results{make_result(100, 10, 5.0, 10.0),
                                     make_result(100, 20, 6.0, 10.0)};
    std::ostringstream os;
    write_results_csv(os, "test-config", results);
    const std::string text = os.str();
    // Header + two rows.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
    EXPECT_NE(text.find("label,trace,requests"), std::string::npos);
    EXPECT_NE(text.find("test-config,0,100,90,10"), std::string::npos);
    EXPECT_NE(text.find("test-config,1,100,80,20"), std::string::npos);
}

TEST(Config, PaperDefaultsAndPlatform) {
    const ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::less_tight, 7);
    EXPECT_EQ(config.seed, 7u);
    EXPECT_EQ(config.trace.group, DeadlineGroup::less_tight);
    EXPECT_EQ(config.catalog.type_count, 100u);
    const Platform platform = config.make_platform();
    EXPECT_EQ(platform.size(), 6u);
    EXPECT_EQ(platform.cpu_count(), 5u);
}

TEST(Config, RmFactoryAndLabels) {
    EXPECT_EQ(make_rm(RmKind::heuristic)->name(), "heuristic");
    EXPECT_EQ(make_rm(RmKind::exact)->name(), "exact");
    EXPECT_EQ(make_rm(RmKind::milp)->name(), "milp");
    EXPECT_EQ((RunSpec{RmKind::exact, PredictorSpec::perfect()}.label()), "exact/on");
}

TEST(Runner, TraceSetIsSharedAndDeterministic) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, 11);
    config.trace_count = 4;
    config.trace.length = 60;

    const ExperimentRunner runner_a(config);
    const ExperimentRunner runner_b(config);
    ASSERT_EQ(runner_a.traces().size(), 4u);
    for (std::size_t t = 0; t < 4; ++t) {
        ASSERT_EQ(runner_a.traces()[t].size(), runner_b.traces()[t].size());
        for (std::size_t j = 0; j < runner_a.traces()[t].size(); ++j)
            EXPECT_DOUBLE_EQ(runner_a.traces()[t].request(j).arrival,
                             runner_b.traces()[t].request(j).arrival);
    }
}

TEST(Runner, RepeatedRunsAreIdentical) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, 12);
    config.trace_count = 3;
    config.trace.length = 80;
    const ExperimentRunner runner(config);

    const RunSpec spec{RmKind::heuristic, PredictorSpec::perfect()};
    const RunOutcome a = runner.run(spec);
    const RunOutcome b = runner.run(spec);
    ASSERT_EQ(a.per_trace.size(), b.per_trace.size());
    for (std::size_t t = 0; t < a.per_trace.size(); ++t) {
        EXPECT_EQ(a.per_trace[t].accepted, b.per_trace[t].accepted);
        EXPECT_DOUBLE_EQ(a.per_trace[t].total_energy, b.per_trace[t].total_energy);
    }
}

TEST(Runner, NoisySpecsGetIndependentPerTraceStreams) {
    // Two different noisy runs over the same traces must see the *same*
    // noise (determinism), while different traces see different noise.
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, 13);
    config.trace_count = 3;
    config.trace.length = 80;
    const ExperimentRunner runner(config);

    PredictorSpec noisy;
    noisy.kind = PredictorSpec::Kind::noisy;
    noisy.type_accuracy = 0.5;
    const RunOutcome a = runner.run(RunSpec{RmKind::heuristic, noisy});
    const RunOutcome b = runner.run(RunSpec{RmKind::heuristic, noisy});
    for (std::size_t t = 0; t < a.per_trace.size(); ++t)
        EXPECT_EQ(a.per_trace[t].accepted, b.per_trace[t].accepted);
}

TEST(Runner, OverheadCoefficientIsResolvedPerTrace) {
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, 14);
    config.trace_count = 3;
    config.trace.length = 120;
    config.trace.interarrival_mean = 5.0;
    config.trace.interarrival_stddev = 1.5;
    const ExperimentRunner runner(config);

    PredictorSpec heavy = PredictorSpec::perfect();
    heavy.overhead_interarrival_coeff = 0.2; // deliberately punishing
    const RunOutcome outcome = runner.run(RunSpec{RmKind::heuristic, heavy});
    std::size_t aborted = 0;
    for (const TraceResult& r : outcome.per_trace) aborted += r.aborted;
    EXPECT_GT(aborted, 0u); // the stall model actually engaged
}

TEST(Runner, EnvSizeParsesAndFallsBack) {
    ASSERT_EQ(unsetenv("RMWP_TEST_KNOB"), 0);
    EXPECT_EQ(env_size("RMWP_TEST_KNOB", 7), 7u);
    ASSERT_EQ(setenv("RMWP_TEST_KNOB", "", 1), 0);
    EXPECT_EQ(env_size("RMWP_TEST_KNOB", 7), 7u);
    ASSERT_EQ(setenv("RMWP_TEST_KNOB", "42", 1), 0);
    EXPECT_EQ(env_size("RMWP_TEST_KNOB", 7), 42u);
    ASSERT_EQ(unsetenv("RMWP_TEST_KNOB"), 0);
}

TEST(Runner, EnvSizeRejectsMalformedValuesLoudly) {
    // A typo'd scaling knob must not silently run the default-sized
    // experiment: set-but-invalid values throw instead of falling back.
    for (const char* bad : {"bogus", "12abc", "0", "-5", "+3", " 7", "1.5"}) {
        ASSERT_EQ(setenv("RMWP_TEST_KNOB", bad, 1), 0);
        EXPECT_THROW((void)env_size("RMWP_TEST_KNOB", 7), std::runtime_error)
            << "value: " << bad;
    }
    ASSERT_EQ(unsetenv("RMWP_TEST_KNOB"), 0);
}

TEST(Runner, PredictionImprovesAcceptanceOnTightDeadlines) {
    // The paper's headline effect, as a regression test at small scale.
    ExperimentConfig config = ExperimentConfig::paper(DeadlineGroup::very_tight, 42);
    config.trace_count = 8;
    config.trace.length = 250;
    const ExperimentRunner runner(config);
    const RunOutcome off = runner.run(RunSpec{RmKind::heuristic, PredictorSpec::off()});
    const RunOutcome on = runner.run(RunSpec{RmKind::heuristic, PredictorSpec::perfect()});
    EXPECT_LT(on.mean_rejection_percent(), off.mean_rejection_percent());
}

} // namespace
} // namespace rmwp
