// Tests for design-time critical reservations (Sec 2): window expansion,
// EDF engine semantics (absolute priority, non-preemptable dispatch
// blocking), RM capacity carving, and end-to-end simulation guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/exact_rm.hpp"
#include "core/heuristic_rm.hpp"
#include "core/reservation.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

const Resource kCpu(0, ResourceKind::cpu, "CPU");
const Resource kGpu(1, ResourceKind::gpu, "GPU");

ScheduleItem adaptive(TaskUid uid, double duration, Time deadline, Time release = 0.0) {
    ScheduleItem it;
    it.uid = uid;
    it.release = release;
    it.abs_deadline = deadline;
    it.duration = duration;
    return it;
}

ScheduleItem block(TaskUid uid, Time start, double duration) {
    ScheduleItem it;
    it.uid = kReservedUidBase + uid;
    it.release = start;
    it.abs_deadline = start + duration;
    it.duration = duration;
    it.reserved = true;
    return it;
}

// ---- uid space ----

TEST(ReservedUid, Classification) {
    EXPECT_FALSE(is_reserved_uid(0));
    EXPECT_FALSE(is_reserved_uid(123456));
    EXPECT_FALSE(is_reserved_uid(kPredictedUid));
    EXPECT_TRUE(is_reserved_uid(kReservedUidBase));
    EXPECT_TRUE(is_reserved_uid(kReservedUidBase + 42));
}

// ---- table expansion ----

TEST(ReservationTable, ExpandsPeriodicWindows) {
    const ReservationTable table({CriticalTask{"ctrl", 0, /*period=*/10.0, /*offset=*/2.0,
                                               /*duration=*/3.0, /*energy=*/1.0}});
    const auto blocks = table.blocks_for(0, 0.0, 25.0);
    ASSERT_EQ(blocks.size(), 3u);
    EXPECT_DOUBLE_EQ(blocks[0].release, 2.0);
    EXPECT_DOUBLE_EQ(blocks[0].duration, 3.0);
    EXPECT_DOUBLE_EQ(blocks[1].release, 12.0);
    EXPECT_DOUBLE_EQ(blocks[2].release, 22.0);
    for (const auto& b : blocks) {
        EXPECT_TRUE(b.reserved);
        EXPECT_TRUE(is_reserved_uid(b.uid));
        EXPECT_DOUBLE_EQ(b.abs_deadline, b.release + b.duration);
    }
    // Uids are stable and distinct across instances.
    EXPECT_NE(blocks[0].uid, blocks[1].uid);
    const auto again = table.blocks_for(0, 0.0, 25.0);
    EXPECT_EQ(again[1].uid, blocks[1].uid);
}

TEST(ReservationTable, ClipsInProgressWindow) {
    const ReservationTable table({CriticalTask{"ctrl", 0, 10.0, 0.0, 4.0, 1.0}});
    const auto blocks = table.blocks_for(0, 1.5, 6.0);
    ASSERT_EQ(blocks.size(), 1u);
    EXPECT_DOUBLE_EQ(blocks[0].release, 1.5);
    EXPECT_DOUBLE_EQ(blocks[0].duration, 2.5); // remaining part of [0, 4)
    EXPECT_DOUBLE_EQ(blocks[0].abs_deadline, 4.0);
}

TEST(ReservationTable, NoBlocksForOtherResources) {
    const ReservationTable table({CriticalTask{"ctrl", 1, 10.0, 0.0, 4.0, 1.0}});
    EXPECT_TRUE(table.blocks_for(0, 0.0, 100.0).empty());
    EXPECT_EQ(table.blocks_for(1, 0.0, 100.0).size(), 10u);
}

TEST(ReservationTable, UtilizationAndValidation) {
    const ReservationTable table({CriticalTask{"a", 0, 10.0, 0.0, 2.0, 1.0},
                                  CriticalTask{"b", 0, 20.0, 5.0, 4.0, 1.0}});
    EXPECT_DOUBLE_EQ(table.utilization_of(0), 0.4);
    EXPECT_DOUBLE_EQ(table.utilization_of(1), 0.0);

    EXPECT_THROW(ReservationTable({CriticalTask{"", 0, 10.0, 0.0, 1.0, 1.0}}),
                 precondition_error); // empty name
    EXPECT_THROW(ReservationTable({CriticalTask{"x", 0, 10.0, 0.0, 11.0, 1.0}}),
                 precondition_error); // duration > period
    EXPECT_THROW(ReservationTable({CriticalTask{"x", 0, 10.0, 0.0, 6.0, 1.0},
                                   CriticalTask{"y", 0, 10.0, 0.0, 6.0, 1.0}}),
                 precondition_error); // over-utilised resource
}

// ---- EDF engine semantics ----

TEST(ReservedEdf, PreemptsAdaptiveTaskOnCpu) {
    // Adaptive task [0, 8) with a reservation [3, 5): the task splits and
    // finishes at 10.
    const std::vector<ScheduleItem> items{adaptive(1, 8.0, 20.0), block(0, 3.0, 2.0)};
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(1), 10.0);
    EXPECT_DOUBLE_EQ(completion.at(kReservedUidBase + 0), 5.0);
    ASSERT_EQ(result.timeline.segments.size(), 3u);
    EXPECT_DOUBLE_EQ(result.timeline.segments[1].start, 3.0); // reservation exactly on time
    EXPECT_DOUBLE_EQ(result.timeline.segments[1].end, 5.0);
}

TEST(ReservedEdf, ReservationBeatsEarlierDeadlineTask) {
    // Even a tighter-deadline adaptive task cannot displace a reservation.
    const std::vector<ScheduleItem> items{adaptive(1, 4.0, 6.0), block(0, 0.0, 3.0)};
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kCpu, 0.0, items, &completion);
    EXPECT_DOUBLE_EQ(completion.at(kReservedUidBase + 0), 3.0);
    EXPECT_DOUBLE_EQ(completion.at(1), 7.0);
    EXPECT_FALSE(result.feasible); // the adaptive task misses: 7 > 6
}

TEST(ReservedEdf, NonPreemptableDispatchBlocksOverlappingTask) {
    // GPU: a 6-unit task must not start at 0 because the reservation at 4
    // would be overrun; a 3-unit task fits.  The long task waits until the
    // window ends.
    const std::vector<ScheduleItem> items{adaptive(1, 6.0, 30.0), adaptive(2, 3.0, 25.0),
                                          block(0, 4.0, 2.0)};
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kGpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    EXPECT_DOUBLE_EQ(completion.at(2), 3.0);                     // fits before the window
    EXPECT_DOUBLE_EQ(completion.at(kReservedUidBase + 0), 6.0);  // on time
    EXPECT_DOUBLE_EQ(completion.at(1), 12.0);                    // after the window
}

TEST(ReservedEdf, NonPreemptableIdlesWhenNothingFits) {
    const std::vector<ScheduleItem> items{adaptive(1, 6.0, 30.0), block(0, 4.0, 2.0)};
    std::unordered_map<TaskUid, Time> completion;
    const auto result = schedule_resource(kGpu, 0.0, items, &completion);
    EXPECT_TRUE(result.feasible);
    // The GPU idles [0, 4), runs the reservation, then the task.
    EXPECT_DOUBLE_EQ(completion.at(kReservedUidBase + 0), 6.0);
    EXPECT_DOUBLE_EQ(completion.at(1), 12.0);
}

TEST(ReservedEdf, PinnedOverrunMakesReservationLate) {
    // A pinned task [0, 5) overlaps a reservation at 3: the reservation is
    // late, so the schedule is infeasible — the caller must handle it.
    std::vector<ScheduleItem> items{adaptive(1, 5.0, 30.0), block(0, 3.0, 2.0)};
    items[0].pinned_first = true;
    const auto result = schedule_resource(kGpu, 0.0, items);
    EXPECT_FALSE(result.feasible);
}

// ---- RM integration ----

struct ReservedWorld {
    Platform platform = make_paper_platform();
    Catalog catalog;
    ReservationTable reservations;

    static Catalog make_catalog(const Platform& platform) {
        CatalogParams params;
        Rng rng = Rng(404).derive(1);
        return generate_catalog(platform, params, rng);
    }

    ReservedWorld()
        : catalog(make_catalog(platform)),
          // A 40 %-utilisation control loop on the GPU plus a 25 % monitor
          // on CPU1.
          reservations({CriticalTask{"gpu-ctrl", 5, 20.0, 0.0, 8.0, 3.0},
                        CriticalTask{"cpu-mon", 0, 40.0, 10.0, 10.0, 2.0}}) {}
};

TEST(ReservedRm, HeuristicRespectsBlockedGpu) {
    const ReservedWorld world;
    // A GPU-urgent task arriving right before the reserved window cannot be
    // promised the GPU during [0, 8); its only chance is after.
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.reservations = &world.reservations;
    context.candidate.uid = 1;
    context.candidate.type = 0;
    context.candidate.arrival = 0.0;
    const double gpu_wcet = world.catalog.type(0).wcet(5);
    context.candidate.absolute_deadline = 8.0 + gpu_wcet * 1.1; // fits only after the window

    HeuristicRM heuristic;
    const Decision decision = heuristic.decide(context);
    ASSERT_TRUE(decision.admitted);
    const WindowSchedule schedule = realize_decision(context, decision);
    EXPECT_TRUE(schedule.feasible);
    if (decision.assignments[0].resource == 5) {
        // If mapped to the GPU, it must start after the reserved window.
        const auto segments = schedule.segments_of(1);
        ASSERT_FALSE(segments.empty());
        EXPECT_GE(segments.front().start, 8.0 - 1e-9);
    }
}

TEST(ReservedRm, ExactAndHeuristicRejectWhenReservationsLeaveNoRoom) {
    const ReservedWorld world;
    ArrivalContext context;
    context.now = 0.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.reservations = &world.reservations;
    context.candidate.uid = 1;
    context.candidate.type = 0;
    context.candidate.arrival = 0.0;
    // Deadline inside the reserved GPU window and far below any CPU WCET.
    context.candidate.absolute_deadline = 5.0;

    HeuristicRM heuristic;
    ExactRM exact;
    EXPECT_FALSE(heuristic.decide(context).admitted);
    EXPECT_FALSE(exact.decide(context).admitted);
}

// ---- end-to-end simulation ----

class ReservedSimulation : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(ReservedSimulation, GuaranteesHoldWithReservations) {
    const auto [seed, use_prediction] = GetParam();
    const ReservedWorld world;

    TraceGenParams params;
    params.length = 120;
    Rng trace_rng = Rng(seed).derive(7);
    const Trace trace = generate_trace(world.catalog, params, trace_rng);

    HeuristicRM rm;
    std::unique_ptr<Predictor> predictor;
    if (use_prediction) predictor = std::make_unique<OraclePredictor>();
    else predictor = std::make_unique<NullPredictor>();

    const TraceResult result =
        simulate_trace(world.platform, world.catalog, trace, rm, *predictor, world.reservations);

    EXPECT_EQ(result.deadline_misses, 0u);
    EXPECT_EQ(result.aborted, 0u);
    EXPECT_EQ(result.completed, result.accepted);
    EXPECT_GT(result.critical_energy, 0.0); // reserved windows actually ran
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservedSimulation,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Bool()));

TEST(ReservedSimulation2, ReservationsReduceAdaptiveAcceptance) {
    const ReservedWorld world;
    TraceGenParams params;
    params.length = 200;
    params.interarrival_mean = 5.0;
    params.interarrival_stddev = 1.6;
    Rng trace_rng = Rng(11).derive(7);
    const Trace trace = generate_trace(world.catalog, params, trace_rng);

    HeuristicRM rm;
    NullPredictor off;
    const TraceResult with_reservations =
        simulate_trace(world.platform, world.catalog, trace, rm, off, world.reservations);
    NullPredictor off2;
    const TraceResult without =
        simulate_trace(world.platform, world.catalog, trace, rm, off2);

    EXPECT_GT(with_reservations.rejected, without.rejected);
    EXPECT_DOUBLE_EQ(without.critical_energy, 0.0);
}

TEST(ReservedSimulation2, CriticalEnergyMatchesExecutedWindows) {
    // One reservation, a trace long enough for several instances: the
    // accounted critical energy must be an integer-ish multiple of the
    // per-instance energy (full windows) plus at most one partial window.
    const Platform platform = make_paper_platform();
    Rng rng = Rng(500).derive(1);
    const Catalog catalog = generate_catalog(platform, CatalogParams{}, rng);
    const ReservationTable table({CriticalTask{"ctrl", 0, 25.0, 0.0, 5.0, 2.0}});

    TraceGenParams params;
    params.length = 40;
    Rng trace_rng = Rng(501).derive(2);
    const Trace trace = generate_trace(catalog, params, trace_rng);

    HeuristicRM rm;
    NullPredictor off;
    const TraceResult result = simulate_trace(platform, catalog, trace, rm, off, table);
    EXPECT_GT(result.critical_energy, 0.0);
    const double instances = result.critical_energy / 2.0;
    EXPECT_NEAR(instances, std::round(instances), 0.25); // mostly whole windows
}

} // namespace
} // namespace rmwp
