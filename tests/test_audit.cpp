// The plan auditor: crafted invalid plans must each trigger the specific
// diagnostic, clean RM decisions must audit clean, audited runs must be
// bit-identical to unaudited ones, and the differential mode must agree
// with the exact search on small instances.
#include <gtest/gtest.h>

#include <cmath>

#include <vector>

#include "audit/audit.hpp"
#include "core/edf.hpp"
#include "core/heuristic_rm.hpp"
#include "fault/fault.hpp"
#include "platform/health.hpp"
#include "predict/oracle.hpp"
#include "predict/predictor.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "workload/trace_generator.hpp"

namespace rmwp {
namespace {

/// Same hand-built world as test_simulator: CPU1/CPU2/GPU with
/// wcet {8, 12, 5} and energy {7.3, 8.4, 2.0} for type 0; all
/// cross-resource migrations cost 1.0 ms / 0.5 J.
struct MiniWorld {
    Platform platform = make_motivational_platform();
    Catalog catalog = [] {
        const std::size_t n = 3;
        std::vector<std::vector<double>> cm(n, std::vector<double>(n, 1.0));
        std::vector<std::vector<double>> em(n, std::vector<double>(n, 0.5));
        for (std::size_t i = 0; i < n; ++i) cm[i][i] = em[i][i] = 0.0;
        std::vector<TaskType> types;
        types.emplace_back(0, std::vector<double>{8.0, 12.0, 5.0},
                           std::vector<double>{7.3, 8.4, 2.0}, cm, em);
        types.emplace_back(1, std::vector<double>{7.0, 8.5, 3.0},
                           std::vector<double>{6.2, 7.5, 1.5}, cm, em);
        return Catalog(std::move(types));
    }();
    ScheduleAuditor auditor;

    [[nodiscard]] ArrivalContext context_for(const ActiveTask& candidate, Time now = 0.0) const {
        ArrivalContext context;
        context.now = now;
        context.platform = &platform;
        context.catalog = &catalog;
        context.candidate = candidate;
        return context;
    }
};

[[nodiscard]] ActiveTask make_task(TaskUid uid, TaskTypeId type, Time arrival, Time deadline) {
    ActiveTask task;
    task.uid = uid;
    task.type = type;
    task.arrival = arrival;
    task.absolute_deadline = deadline;
    return task;
}

[[nodiscard]] ScheduleItem make_item(TaskUid uid, ResourceId resource, Time release,
                                     Time deadline, double duration) {
    ScheduleItem item;
    item.uid = uid;
    item.resource = resource;
    item.release = release;
    item.abs_deadline = deadline;
    item.duration = duration;
    return item;
}

// ---- clean plans audit clean ----

TEST(Auditor, CleanDecisionPasses) {
    const MiniWorld world;
    HeuristicRM rm;
    ArrivalContext context = world.context_for(make_task(0, 0, 0.0, 30.0));
    const Decision decision = rm.decide(context);
    ASSERT_TRUE(decision.admitted);
    const AuditReport report = world.auditor.audit_decision(context, decision);
    EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Auditor, CleanRejectionPasses) {
    const MiniWorld world;
    HeuristicRM rm;
    // Deadline shorter than the best WCET: nothing can serve it.
    ArrivalContext context = world.context_for(make_task(0, 0, 0.0, 2.0));
    const Decision decision = rm.decide(context);
    ASSERT_FALSE(decision.admitted);
    const AuditReport report = world.auditor.audit_decision(context, decision);
    EXPECT_TRUE(report.ok()) << report.summary();
}

// ---- crafted invalid plans: each triggers its specific diagnostic ----

TEST(Auditor, OverlappingReservationsDiagnosed) {
    const MiniWorld world;
    // Two design-time windows on CPU1 that overlap in [5, 10).
    std::vector<ScheduleItem> items{
        make_item(kReservedUidBase | 1, 0, 0.0, 10.0, 10.0),
        make_item(kReservedUidBase | 2, 0, 5.0, 15.0, 10.0),
    };
    for (ScheduleItem& item : items) item.reserved = true;
    const WindowSchedule schedule = build_window_schedule(world.platform, 0.0, items);
    const AuditReport report = world.auditor.audit_window(world.platform, 0.0, items, schedule);
    EXPECT_TRUE(report.has(AuditCode::reservation_overlap)) << report.summary();
}

TEST(Auditor, OfflineResourceMappingDiagnosed) {
    const MiniWorld world;
    PlatformHealth health;
    health.set_online(world.platform, 2, false); // GPU down

    ArrivalContext context = world.context_for(make_task(0, 0, 0.0, 40.0));
    context.health = &health;

    Decision decision;
    decision.admitted = true;
    decision.assignments = {TaskAssignment{0, 2}}; // onto the offline GPU
    const AuditReport report = world.auditor.audit_decision(context, decision);
    EXPECT_TRUE(report.has(AuditCode::offline_resource)) << report.summary();
}

TEST(Auditor, OverfullWindowDiagnosed) {
    const MiniWorld world;
    // 24 ms of demand squeezed into a 10 ms window on one core.
    std::vector<ScheduleItem> items{
        make_item(1, 0, 0.0, 10.0, 8.0),
        make_item(2, 0, 0.0, 10.0, 8.0),
        make_item(3, 0, 0.0, 10.0, 8.0),
    };
    const WindowSchedule schedule = build_window_schedule(world.platform, 0.0, items);
    const AuditReport report = world.auditor.audit_window(world.platform, 0.0, items, schedule);
    EXPECT_TRUE(report.has(AuditCode::demand_overflow)) << report.summary();
}

TEST(Auditor, MiscountedMigrationDiagnosed) {
    const MiniWorld world;
    ActiveTask task = make_task(7, 0, 0.0, 60.0);
    task.resource = 0;
    task.started = true;
    task.remaining_fraction = 0.5;

    // Relocating CPU1 -> CPU2: 0.5 * 12 work + 1.0 migration = 7.0 ms.
    // Charging the migration twice yields 8.0.
    const std::vector<ActiveTask> active{task};
    std::vector<ScheduleItem> items{make_item(7, 1, 10.0, 60.0, 8.0)};
    const AuditReport report =
        world.auditor.audit_items(world.platform, world.catalog, 10.0, active, items);
    EXPECT_TRUE(report.has(AuditCode::migration_miscount)) << report.summary();

    // Charged exactly once: clean.
    items[0].duration = 7.0;
    EXPECT_TRUE(world.auditor.audit_items(world.platform, world.catalog, 10.0, active, items)
                    .ok());
}

TEST(Auditor, ThrottleIgnoredDiagnosed) {
    const MiniWorld world;
    PlatformHealth health;
    health.set_throttle(world.platform, 0, 1.5);

    ActiveTask task = make_task(3, 0, 0.0, 60.0);
    task.resource = 0;
    const std::vector<ActiveTask> active{task};

    // Planned with the nominal 8 ms WCET; the throttled core needs 12.
    std::vector<ScheduleItem> items{make_item(3, 0, 0.0, 60.0, 8.0)};
    const AuditReport report =
        world.auditor.audit_items(world.platform, world.catalog, 0.0, active, items, &health);
    EXPECT_TRUE(report.has(AuditCode::throttle_ignored)) << report.summary();

    items[0].duration = 12.0;
    EXPECT_TRUE(world.auditor
                    .audit_items(world.platform, world.catalog, 0.0, active, items, &health)
                    .ok());
}

TEST(Auditor, EnergyConservationDiagnosed) {
    const MiniWorld world;
    ArrivalContext context = world.context_for(make_task(0, 0, 0.0, 30.0));
    const PlanInstance instance = PlanInstance::build(context, 0);

    const std::vector<ResourceId> mapping{2}; // GPU: 2.0 J
    EXPECT_TRUE(world.auditor.audit_plan_energy(instance, mapping, 2.0).ok());
    const AuditReport report = world.auditor.audit_plan_energy(instance, mapping, 1.0);
    EXPECT_TRUE(report.has(AuditCode::energy_mismatch)) << report.summary();
}

TEST(Auditor, EdfOrderViolationDiagnosed) {
    const MiniWorld world;
    // Tight deadline (5) vs. loose (20), both released at 0 on CPU1 — but
    // the forged timeline runs the loose one first.
    const std::vector<ScheduleItem> items{
        make_item(1, 0, 0.0, 5.0, 2.0),
        make_item(2, 0, 0.0, 20.0, 2.0),
    };
    WindowSchedule forged;
    forged.start = 0.0;
    forged.feasible = true;
    forged.per_resource.resize(world.platform.size());
    forged.per_resource[0].segments = {Segment{2, 0.0, 2.0}, Segment{1, 2.0, 4.0}};
    forged.completion = {{2, 2.0}, {1, 4.0}};

    const AuditReport report = world.auditor.audit_window(world.platform, 0.0, items, forged);
    EXPECT_TRUE(report.has(AuditCode::edf_order)) << report.summary();

    // The honest EDF order is clean.
    const WindowSchedule honest = build_window_schedule(world.platform, 0.0, items);
    EXPECT_TRUE(world.auditor.audit_window(world.platform, 0.0, items, honest).ok());
}

TEST(Auditor, RescuePartitionViolationDiagnosed) {
    const MiniWorld world;
    ActiveTask task = make_task(4, 0, 0.0, 50.0);
    task.resource = 0;
    const std::vector<ActiveTask> active{task};

    RescueContext context;
    context.now = 5.0;
    context.platform = &world.platform;
    context.catalog = &world.catalog;
    context.active = active;

    // The task vanishes from both lists: not a partition of the survivors.
    const AuditReport report = world.auditor.audit_rescue(context, RescueDecision{});
    EXPECT_TRUE(report.has(AuditCode::rescue_partition)) << report.summary();

    RescueDecision keep;
    keep.kept = {TaskAssignment{4, 0}};
    EXPECT_TRUE(world.auditor.audit_rescue(context, keep).ok());
}

// ---- audited runs are bit-identical to unaudited ones ----

TEST(Auditor, AuditedRunIsBitIdenticalToUnaudited) {
    const MiniWorld world;
    TraceGenParams params;
    params.length = 120;
    Rng trace_rng(2024);
    const Trace trace = generate_trace(world.catalog, params, trace_rng);

    FaultParams fault_params;
    fault_params.outage_rate = 2.0;
    fault_params.outage_duration_mean = 40.0;
    fault_params.throttle_rate = 1.0;
    Rng fault_rng(7);
    const FaultSchedule faults =
        generate_fault_schedule(world.platform, fault_params, 1000.0, fault_rng);

    const auto run = [&](bool audit) {
        HeuristicRM rm;
        OraclePredictor oracle;
        SimOptions options;
        options.audit = audit;
        options.fault_schedule = &faults;
        return simulate_trace(world.platform, world.catalog, trace, rm, oracle, options);
    };
    const TraceResult audited = run(true);
    const TraceResult plain = run(false);

    // Every simulated quantity must match bitwise; only host-side wall
    // clocks and the audit counters themselves may differ.
    EXPECT_EQ(audited.accepted, plain.accepted);
    EXPECT_EQ(audited.rejected, plain.rejected);
    EXPECT_EQ(audited.completed, plain.completed);
    EXPECT_EQ(audited.deadline_misses, plain.deadline_misses);
    EXPECT_EQ(audited.aborted, plain.aborted);
    EXPECT_EQ(audited.fault_aborted, plain.fault_aborted);
    EXPECT_EQ(audited.total_energy, plain.total_energy);         // bitwise
    EXPECT_EQ(audited.migration_energy, plain.migration_energy); // bitwise
    EXPECT_EQ(audited.migrations, plain.migrations);
    EXPECT_EQ(audited.critical_energy, plain.critical_energy);
    EXPECT_EQ(audited.activations, plain.activations);
    EXPECT_EQ(audited.plans_with_prediction, plain.plans_with_prediction);
    EXPECT_EQ(audited.resource_outages, plain.resource_outages);
    EXPECT_EQ(audited.throttle_events, plain.throttle_events);
    EXPECT_EQ(audited.rescue_activations, plain.rescue_activations);
    EXPECT_EQ(audited.rescued, plain.rescued);
    EXPECT_EQ(audited.rescue_migrations, plain.rescue_migrations);
    EXPECT_EQ(audited.degraded_energy, plain.degraded_energy);
    EXPECT_EQ(audited.reference_energy, plain.reference_energy);
#ifdef RMWP_AUDIT
    EXPECT_GT(audited.audit_checks, 0u);
    EXPECT_EQ(plain.audit_checks, 0u);
#endif
}

// ---- differential mode ----

TEST(Auditor, DifferentialNeverContradictsHeuristicAdmits) {
    const MiniWorld world;
    TraceGenParams params;
    params.length = 60;
    Rng trace_rng(11);
    const Trace trace = generate_trace(world.catalog, params, trace_rng);

    HeuristicRM rm;
    OraclePredictor oracle;
    SimOptions options;
    options.audit_differential = true;
    // Throws audit_error on any admit the complete search refutes.
    const TraceResult result =
        simulate_trace(world.platform, world.catalog, trace, rm, oracle, options);
#ifdef RMWP_AUDIT
    EXPECT_GT(result.audit_differential_checks, 0u);
#else
    EXPECT_EQ(result.audit_differential_checks, 0u);
#endif
}

TEST(Auditor, DifferentialFlagsImpossibleAdmit) {
    const MiniWorld world;
    // Candidate that provably fits nowhere: deadline below every WCET.
    ArrivalContext context = world.context_for(make_task(0, 0, 0.0, 2.0));
    Decision bogus;
    bogus.admitted = true;
    bogus.assignments = {TaskAssignment{0, 2}};
    const auto differential = world.auditor.differential_admission(context, bogus);
    ASSERT_TRUE(differential.checked);
    EXPECT_FALSE(differential.exact_admits);
    EXPECT_TRUE(differential.report.has(AuditCode::differential_admit))
        << differential.report.summary();
}

// ---- event-queue tie-break contracts (deterministic simultaneity) ----

TEST(EventQueueContract, DispatchIsMonotoneAndPastSchedulingThrows) {
    EventQueue queue;
    queue.schedule(5.0, 0, 1);
    queue.schedule(5.0, 1, 2);
    const Event first = queue.pop();
    const Event second = queue.pop();
    // Equal timestamps dispatch in insertion order (fault onset vs. arrival
    // interleavings are therefore deterministic).
    EXPECT_EQ(first.kind, 0u);
    EXPECT_EQ(second.kind, 1u);
    // The dispatched past is sealed.
    EXPECT_THROW(queue.schedule(4.0, 0, 3), precondition_error);
    EXPECT_THROW(queue.schedule(std::nan(""), 0, 4), precondition_error);
    queue.schedule(5.0, 2, 5); // the present is still fine
    EXPECT_EQ(queue.pop().kind, 2u);
}

TEST(EventQueueContract, FaultOnsetCoincidingWithArrivalIsDeterministic) {
    const MiniWorld world;
    // An arrival at exactly t = 30 and a GPU outage onset at exactly t = 30.
    const Trace trace({Request{0.0, 0, 40.0}, Request{30.0, 0, 40.0}});
    std::vector<FaultEvent> events(1);
    events[0].kind = FaultKind::outage;
    events[0].resource = 2;
    events[0].start = 30.0;
    events[0].end = 50.0;
    const FaultSchedule faults{std::move(events)};

    const auto run = [&] {
        HeuristicRM rm;
        NullPredictor off;
        SimOptions options;
        options.fault_schedule = &faults;
        return simulate_trace(world.platform, world.catalog, trace, rm, off, options);
    };
    const TraceResult a = run();
    const TraceResult b = run();
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.total_energy, b.total_energy); // bitwise
    EXPECT_EQ(a.rescue_activations, b.rescue_activations);
    EXPECT_EQ(a.rescued, b.rescued);
    // Arrivals are enqueued before fault events, so the coinciding arrival
    // was decided under pre-fault health and the onset then rescued it if
    // needed — either way both runs took the same deterministic path.
    EXPECT_EQ(a.fault_aborted, b.fault_aborted);
}

} // namespace
} // namespace rmwp
